"""The open-loop latency-vs-offered-load curve (the "hockey stick").

Writes ``bench_results/concurrency_hockey_stick.txt``: one seeded sweep
of arrival rates against a single event-loop shard, p50/p99 end-to-end
latency per point.  The assertions pin the curve's *shape* -- flat
below the service-time ceiling, bent sharply upward past it -- rather
than exact values, so recalibration cannot silently erase the knee.
"""

from conftest import OPERATIONS, RECORDS, write_result

from repro.bench.scaling import (
    DEFAULT_HOCKEY_RATES,
    autoscale_table,
    hockey_stick_table,
    latency_vs_load,
    run_autoscale_demo,
    run_workers,
    workers_ceiling_summary,
    workers_table,
)


def test_hockey_stick_artifact(results_dir):
    rows = latency_vs_load(record_count=max(50, RECORDS // 3),
                           operation_count=max(200, OPERATIONS // 2))
    text = hockey_stick_table(rows)
    write_result(results_dir, "concurrency_hockey_stick.txt", text)

    by_rate = {row["offered"]: row for row in rows}
    low = by_rate[min(by_rate)]
    high = by_rate[max(by_rate)]
    # Past the ceiling the offered stream outruns completions, so the
    # backlog grows and p99 latency bends sharply upward.
    assert high["p99_latency"] > 10 * low["p99_latency"]
    assert high["max_backlog"] > low["max_backlog"]
    # Below the knee, completions keep up with admissions.
    assert low["completed_per_s"] > 0.9 * low["offered"]
    # Throughput saturates: doubling offered load past the ceiling must
    # not double completions.
    mid = by_rate[sorted(by_rate)[len(by_rate) // 2]]
    assert high["completed_per_s"] < 1.5 * mid["completed_per_s"]
    # The monotone latency climb along the sweep (allowing ties).
    p99s = [row["p99_latency"] for row in rows]
    assert p99s == sorted(p99s)


def test_workers_ceiling_artifact(results_dir):
    """The workers-vs-ceiling table: the knee per worker count, plus the
    autoscale demo that closes the loop on it.

    The assertions pin the PR's headline: with 4 workers the knee sits
    at >= 2x the single-loop saturation point (~40k -> >= 80k offered
    ops/s before p99 crosses 1 ms), and worker count 1 keeps the legacy
    single-loop ceiling.
    """
    sweeps = run_workers(record_count=max(50, RECORDS // 3),
                         operation_count=max(200, OPERATIONS // 2))
    phases = run_autoscale_demo()
    text = "\n".join([
        workers_table(sweeps), "",
        workers_ceiling_summary(sweeps), "",
        "autoscale demo (EWMA-triggered worker raise, then spill to a "
        "spare shard):",
        autoscale_table(phases),
    ])
    write_result(results_dir, "concurrency_workers.txt", text)

    knees = {sweep.cores: sweep.knee for sweep in sweeps}
    # Single loop saturates at the calibrated ~40k ceiling...
    assert knees[1] == 40_000.0
    # ...and 4 workers push the knee to at least double that.
    assert knees[4] >= 80_000.0 >= 2 * knees[1]
    # More cores never lower the ceiling.
    ordered = [knees[cores] for cores in sorted(knees)]
    assert ordered == sorted(ordered)
    # The autoscale demo recovers: saturation phase blows past 1 ms p99,
    # the ladder (worker raise + spill) lands, and the final phase at
    # the same offered rate is back under the knee's ceiling.
    hot = max(row.p99_latency for row in phases)
    assert hot > 1e-3
    assert phases[-1].p99_latency < 1e-3
    assert any("worker-raise" in row.actions for row in phases)
    assert any("scale-out" in row.actions for row in phases)
    assert phases[-1].shards_serving == 2


def test_default_rates_span_the_knee():
    rates = DEFAULT_HOCKEY_RATES
    assert rates == tuple(sorted(rates))
    # The calibrated single-shard ceiling is ~40 kops/s; the sweep must
    # sample both sides of it for the artifact to show the knee.
    assert min(rates) < 20_000 < 40_000 <= max(rates)
