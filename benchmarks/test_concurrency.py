"""The open-loop latency-vs-offered-load curve (the "hockey stick").

Writes ``bench_results/concurrency_hockey_stick.txt``: one seeded sweep
of arrival rates against a single event-loop shard, p50/p99 end-to-end
latency per point.  The assertions pin the curve's *shape* -- flat
below the service-time ceiling, bent sharply upward past it -- rather
than exact values, so recalibration cannot silently erase the knee.
"""

import timeit

from conftest import OPERATIONS, RECORDS, write_result

from repro.bench.scaling import (
    DEFAULT_HOCKEY_RATES,
    autoscale_table,
    hockey_stick_table,
    latency_vs_load,
    run_autoscale_demo,
    run_workers,
    run_workers_skew,
    workers_ceiling_summary,
    workers_skew_summary,
    workers_skew_table,
    workers_table,
)
from repro.cluster.workers import RouteMemo, classify


def test_hockey_stick_artifact(results_dir):
    rows = latency_vs_load(record_count=max(50, RECORDS // 3),
                           operation_count=max(200, OPERATIONS // 2))
    text = hockey_stick_table(rows)
    write_result(results_dir, "concurrency_hockey_stick.txt", text)

    by_rate = {row["offered"]: row for row in rows}
    low = by_rate[min(by_rate)]
    high = by_rate[max(by_rate)]
    # Past the ceiling the offered stream outruns completions, so the
    # backlog grows and p99 latency bends sharply upward.
    assert high["p99_latency"] > 10 * low["p99_latency"]
    assert high["max_backlog"] > low["max_backlog"]
    # Below the knee, completions keep up with admissions.
    assert low["completed_per_s"] > 0.9 * low["offered"]
    # Throughput saturates: doubling offered load past the ceiling must
    # not double completions.
    mid = by_rate[sorted(by_rate)[len(by_rate) // 2]]
    assert high["completed_per_s"] < 1.5 * mid["completed_per_s"]
    # The monotone latency climb along the sweep (allowing ties).
    p99s = [row["p99_latency"] for row in rows]
    assert p99s == sorted(p99s)


def test_workers_ceiling_artifact(results_dir):
    """The workers-vs-ceiling table: the knee per worker count, plus the
    autoscale demo that closes the loop on it.

    The assertions pin the PR's headline: with 4 workers the knee sits
    at >= 2x the single-loop saturation point (~40k -> >= 80k offered
    ops/s before p99 crosses 1 ms), and worker count 1 keeps the legacy
    single-loop ceiling.
    """
    sweeps = run_workers(record_count=max(50, RECORDS // 3),
                         operation_count=max(200, OPERATIONS // 2))
    phases = run_autoscale_demo()
    text = "\n".join([
        workers_table(sweeps), "",
        workers_ceiling_summary(sweeps), "",
        "autoscale demo (EWMA-triggered worker raise, then spill to a "
        "spare shard):",
        autoscale_table(phases),
    ])
    write_result(results_dir, "concurrency_workers.txt", text)

    knees = {sweep.cores: sweep.knee for sweep in sweeps}
    # Single loop saturates at the calibrated ~40k ceiling...
    assert knees[1] == 40_000.0
    # ...and 4 workers push the knee to at least double that.
    assert knees[4] >= 80_000.0 >= 2 * knees[1]
    # More cores never lower the ceiling.
    ordered = [knees[cores] for cores in sorted(knees)]
    assert ordered == sorted(ordered)
    # The autoscale demo recovers: saturation phase blows past 1 ms p99,
    # the ladder (worker raise + spill) lands, and the final phase at
    # the same offered rate is back under the knee's ceiling.
    hot = max(row.p99_latency for row in phases)
    assert hot > 1e-3
    assert phases[-1].p99_latency < 1e-3
    assert any("worker-raise" in row.actions for row in phases)
    assert any("scale-out" in row.actions for row in phases)
    assert phases[-1].shards_serving == 2


def test_workers_skew_artifact(results_dir):
    """The skew table: zipfian vs uniform knees, static slot%K vs
    skew-aware placement.

    The assertions pin this PR's headline: with placement on, the
    4-core zipfian knee reaches >= 1.5x the static-partition zipfian
    knee, driven by rebalances (and at least one read-split) that the
    static rows never fire.
    """
    sweeps = run_workers_skew()
    text = "\n".join([
        workers_skew_table(sweeps), "",
        workers_skew_summary(sweeps),
    ])
    write_result(results_dir, "concurrency_workers_skew.txt", text)

    by_axis = {(sweep.cores, sweep.distribution, sweep.placement): sweep
               for sweep in sweeps}
    static = by_axis[(4, "zipfian", False)]
    placed = by_axis[(4, "zipfian", True)]
    uniform = by_axis[(4, "uniform", False)]
    # The headline ratio: placement claws the skewed knee back up.
    assert placed.knee >= 1.5 * static.knee
    # ...but never past the no-skew control.
    assert placed.knee <= uniform.knee
    # The knee moved because the rebalancer (and the read-split rung)
    # actually fired; the static partition never rebalances.
    assert placed.rebalances > 0
    assert placed.splits > 0
    assert static.rebalances == 0 and uniform.rebalances == 0
    # Single core is immune to placement: nothing to re-home.
    assert by_axis[(1, "zipfian", True)].knee \
        == by_axis[(1, "zipfian", False)].knee


def test_route_memo_dispatch_overhead_did_not_regress():
    """Micro-assert for the classify() memoization: the cached path must
    beat recomputing the route, or the hot dispatch path regressed."""
    request = [b"GET", b"user4000000000000000000"]
    memo = RouteMemo()
    assert memo.classify(request) == (classify(request), True)
    raw = min(timeit.repeat(lambda: classify(request),
                            number=5_000, repeat=5))
    cached = min(timeit.repeat(lambda: memo.classify(request),
                               number=5_000, repeat=5))
    assert cached < raw
    # And it actually was the cache: one miss to fill, hits ever after.
    assert memo.misses == 1
    assert memo.hits >= 25_000


def test_default_rates_span_the_knee():
    rates = DEFAULT_HOCKEY_RATES
    assert rates == tuple(sorted(rates))
    # The calibrated single-shard ceiling is ~40 kops/s; the sweep must
    # sample both sides of it for the artifact to show the knee.
    assert min(rates) < 20_000 < 40_000 <= max(rates)
