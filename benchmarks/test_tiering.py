"""The tiering scenario as a pytest-benchmark driver.

Writes ``bench_results/tiering.txt`` and asserts the comparison's
*relationships* (not exact values): demotion frees resident hot
footprint roughly in proportion to the cold fraction, cold reads pay a
promote premium, and Art. 17 erasure reaches the archive (segments
voided, longer receipt) -- while at hot fraction 1.0 the tiered store
is indistinguishable from hot-only.
"""

from conftest import OPERATIONS, RECORDS, write_result

from repro.bench.tiering import (
    footprint_reduction,
    run_tiering,
    tiering_table,
)


def _cells():
    return run_tiering(record_count=max(60, RECORDS // 2),
                       operation_count=max(200, OPERATIONS // 2))


def test_tiering_artifact(results_dir):
    cells = _cells()
    write_result(results_dir, "tiering.txt", tiering_table(cells))

    by = {(c.mode, c.hot_fraction): c for c in cells}
    kept = footprint_reduction(cells)

    # At hot fraction 1.0 every key stays warm: nothing demotes and the
    # resident footprint matches hot-only exactly.
    assert by[("tiered", 1.0)].demotions == 0
    assert by[("tiered", 1.0)].hot_bytes == by[("hot-only", 1.0)].hot_bytes

    for fraction in (0.5, 0.25):
        hot_only = by[("hot-only", fraction)]
        tiered = by[("tiered", fraction)]
        # The headline: the archive frees the idle share of the hot
        # footprint (within slack for envelope-size variation).
        assert tiered.hot_bytes < hot_only.hot_bytes
        assert kept[fraction] < fraction + 0.15
        assert tiered.demotions > 0
        # Footprint is sampled before the cold-read probe, so every
        # demoted key is still archived at that point.
        assert tiered.cold_keys == tiered.demotions
        # The archive's own residency (compressed segments + blooms)
        # stays within a constant factor of the displaced hot bytes:
        # GDPR values are ciphertext, so zlib cannot win, and the seal
        # adds a per-record envelope -- but not more than ~1.5x.
        displaced = hot_only.hot_bytes - tiered.hot_bytes
        assert 0 < tiered.cold_resident_bytes < 1.5 * displaced
        assert tiered.cold_device_bytes > 0
        # Reads that fault in from the archive pay a promote premium.
        assert tiered.cold_read_seconds > 2 * hot_only.cold_read_seconds
        assert tiered.promotions > 0
        # Art. 17 reaches the archive: segments voided, receipt still
        # complete, and slower than the all-hot erasure.
        assert tiered.cold_segments_voided >= 1
        assert tiered.keys_erased == hot_only.keys_erased
        assert tiered.erase_seconds > hot_only.erase_seconds

    # Deeper cold tier => more of the erasure work lands in the archive.
    assert by[("tiered", 0.25)].cold_device_bytes \
        > by[("tiered", 0.5)].cold_device_bytes


def test_tiering_byte_identical_across_runs():
    first = tiering_table(run_tiering(record_count=60,
                                      operation_count=200))
    second = tiering_table(run_tiering(record_count=60,
                                       operation_count=200))
    assert first == second
