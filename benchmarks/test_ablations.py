"""Ablation benchmarks over the compliance-spectrum design choices."""

from conftest import OPERATIONS, RECORDS, write_result

from repro.bench.ablation import (
    audit_batch_sweep,
    device_sweep,
    erasure_propagation,
    fsync_policy_sweep,
    gdpr_slowdown,
)
from repro.bench.reporting import render_table


def test_fsync_policy_spectrum(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: fsync_policy_sweep(RECORDS, OPERATIONS),
        rounds=1, iterations=1)
    base = results["no-aof"]
    table = render_table(
        ["policy", "throughput_ops_s", "fraction"],
        [[k, round(v, 1), round(v / base, 3)]
         for k, v in results.items()])
    write_result(results_dir, "ablation_fsync.txt", table)
    # Strictness ordering: no AOF > appendfsync=no > everysec > always.
    assert results["no-aof"] > results["appendfsync=no"]
    assert results["appendfsync=no"] >= results["appendfsync=everysec"]
    assert results["appendfsync=everysec"] > results["appendfsync=always"]
    benchmark.extra_info.update(
        {k: round(v, 1) for k, v in results.items()})


def test_audit_batch_interval_tradeoff(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: audit_batch_sweep((0.0, 0.1, 1.0, 10.0),
                                  RECORDS // 2, OPERATIONS // 2),
        rounds=1, iterations=1)
    table = render_table(
        ["interval_s", "throughput_ops_s", "records_at_risk",
         "worst_case_exposure"],
        [[r["interval_s"], round(r["throughput"], 1),
          int(r["records_at_risk"]), int(r["worst_case_exposure"])]
         for r in rows])
    write_result(results_dir, "ablation_audit_batch.txt", table)
    # Larger batch window -> more throughput, more exposure: the paper's
    # real-time vs eventual compliance trade-off in one table.
    throughputs = [r["throughput"] for r in rows]
    assert throughputs == sorted(throughputs)
    assert rows[0]["records_at_risk"] == 0          # sync: nothing at risk
    assert rows[-1]["records_at_risk"] > 0           # batch: window exposed
    exposures = [r["worst_case_exposure"] for r in rows]
    assert exposures == sorted(exposures)            # bigger window, more loss
    # The paper's "once every second" point recovers >= 6x over sync.
    sync_tp = rows[0]["throughput"]
    onesec_tp = next(r["throughput"] for r in rows
                     if r["interval_s"] == 1.0)
    assert onesec_tp / sync_tp >= 6.0
    benchmark.extra_info["sync_tp"] = round(sync_tp, 1)
    benchmark.extra_info["batch1s_tp"] = round(onesec_tp, 1)


def test_device_classes_for_strict_logging(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: device_sweep(RECORDS, OPERATIONS),
        rounds=1, iterations=1)
    table = render_table(
        ["device", "throughput_ops_s_at_fsync_always"],
        [[k, round(v, 1)] for k, v in results.items()])
    write_result(results_dir, "ablation_devices.txt", table)
    # Section 5.1: NVM makes strict (synchronous) logging affordable.
    assert results["nvm-3dxpoint"] > 5 * results["intel-750-ssd"]
    assert results["intel-750-ssd"] > 5 * results["hdd-7200rpm"]
    benchmark.extra_info.update(
        {k: round(v, 1) for k, v in results.items()})


def test_erasure_propagation_across_replicas(benchmark, results_dir):
    rows = benchmark.pedantic(erasure_propagation, rounds=1, iterations=1)
    table = render_table(
        ["replica_delay_s", "erasure_horizon_s"],
        [[r["replica_delay_s"], round(r["erasure_horizon_s"], 4)]
         for r in rows])
    write_result(results_dir, "ablation_erasure_propagation.txt", table)
    # The horizon tracks the slowest replica's delay (Art. 17 reaches
    # replicas only as fast as replication does).
    for row in rows:
        assert row["erasure_horizon_s"] >= row["replica_delay_s"] * 0.9
        assert row["erasure_horizon_s"] <= row["replica_delay_s"] * 2 + 0.01
    horizons = [r["erasure_horizon_s"] for r in rows]
    assert horizons == sorted(horizons)
    benchmark.extra_info.update(
        {f"delay_{r['replica_delay_s']}": round(r["erasure_horizon_s"], 4)
         for r in rows})


def test_gdpr_strict_slowdown_headline(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: gdpr_slowdown(RECORDS // 2, OPERATIONS // 2),
        rounds=1, iterations=1)
    table = render_table(
        ["config", "value"],
        [[k, round(v, 2)] for k, v in results.items()])
    write_result(results_dir, "gdpr_slowdown.txt", table)
    # The paper's abstract: strict synchronous logging costs ~20x.
    assert 12 <= results["paper_20x_slowdown"] <= 30
    # The full strict GDPR stack (second fsync + crypto + ACL + index)
    # is costlier still.
    assert results["slowdown_x"] > results["paper_20x_slowdown"]
    benchmark.extra_info["paper_20x"] = round(
        results["paper_20x_slowdown"], 1)
    benchmark.extra_info["full_stack_x"] = round(results["slowdown_x"], 1)
