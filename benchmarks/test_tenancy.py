"""The tenancy scenario as a pytest-benchmark driver.

Writes ``bench_results/tenancy.txt`` and asserts the comparison's
*relationships* (not exact values): the noisy tenant's admitted rate
pins to its ops/s quota while the excess is throttled, the quiet
tenant's p99 under contention stays within 2x of its solo baseline, and
the per-tenant usage reports seal into a verifiable audit chain.
"""

from conftest import OPERATIONS, RECORDS, write_result

from repro.bench.tenancy import (
    NOISY_OFFERED,
    NOISY_QUOTA,
    run_tenancy,
    tenancy_table,
)


def test_tenancy_artifact(results_dir):
    result = run_tenancy(record_count=RECORDS,
                         operation_count=OPERATIONS)
    write_result(results_dir, "tenancy.txt", tenancy_table(result))

    by = {(s.tenant, s.phase): s for s in result.streams}
    solo = by[("quiet", "solo")]
    quiet = by[("quiet", "contended")]
    noisy = by[("noisy", "contended")]

    # The cap holds: the noisy tenant lands at its quota (token-bucket
    # burst gives a little headroom at the start of the run), and the
    # overload was real -- most of the offered stream got throttled.
    assert noisy.admitted_rate <= NOISY_QUOTA * 1.1
    assert noisy.admitted_rate >= NOISY_QUOTA * 0.8
    assert noisy.throttled > noisy.completed / 2
    assert noisy.offered_rate == NOISY_OFFERED

    # Isolation: the neighbour's 4x overload doesn't leak into the
    # quiet tenant's tail.
    assert quiet.throttled == 0
    assert quiet.p99_ms <= 2 * solo.p99_ms

    # Metering: every sealed report re-verifies, and the throttles are
    # on the chain as billing evidence.
    assert result.metering_reports > 0
    assert result.metering_verified == result.metering_reports
    assert result.usage["noisy"]["throttled"] == noisy.throttled
    assert result.usage["noisy"]["ops"] \
        == noisy.completed - noisy.throttled
