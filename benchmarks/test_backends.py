"""The backends scenario as a pytest-benchmark driver.

Writes ``bench_results/backends.txt`` and asserts the comparison's
*relationships* (not exact values): the KV engine's faster baseline,
the relational engine's smaller relative compliance penalty, and
synchronous audit dominating both -- the paper's Redis-vs-PostgreSQL
takeaways.
"""

from conftest import OPERATIONS, RECORDS, write_result

from repro.bench.backends import (
    backends_table,
    headline_comparison,
    run_backends,
)


def test_backends_artifact(results_dir):
    cells = run_backends(record_count=max(60, RECORDS // 2),
                         operation_count=max(200, OPERATIONS // 2))
    write_result(results_dir, "backends.txt", backends_table(cells))

    tput = {(cell.engine, cell.feature): cell.throughput
            for cell in cells}
    headline = headline_comparison(cells)

    # Stock KV beats stock relational (no parse/plan/WAL overheads)...
    assert tput[("redislike", "baseline")] \
        > 2 * tput[("relational", "baseline")]
    # ...but pays a larger *relative* price for full compliance: the
    # relational baseline already carries WAL costs (the paper's
    # Redis-vs-Postgres asymmetry).
    assert headline["redislike_slowdown_x"] \
        > 2 * headline["relational_slowdown_x"]
    # Monitoring (read logging) costs the KV engine relatively more:
    # it gains a durable log it never had.
    kv_logging = tput[("redislike", "+logging")] \
        / tput[("redislike", "baseline")]
    sql_logging = tput[("relational", "+logging")] \
        / tput[("relational", "baseline")]
    assert sql_logging > kv_logging
    # Synchronous audit is the dominant feature cost on both engines.
    for engine in ("redislike", "relational"):
        for feature in ("+logging", "+metadata", "+ttl", "+encrypt"):
            assert tput[(engine, "+audit")] < tput[(engine, feature)]
    # Every feature costs something.
    for (engine, feature), value in tput.items():
        if feature != "baseline":
            assert value < tput[(engine, "baseline")]
    # Fast-GDPR (block-sealed audit + fused writes + write-behind) runs
    # the full feature set yet recovers >=5x over per-op SYNC audit on
    # the KV engine -- the paper's "batch the monitoring logs"
    # suggestion, quantified -- and beats strict full-gdpr on both.
    assert tput[("redislike", "fast-gdpr")] \
        >= 5 * tput[("redislike", "+audit")]
    for engine in ("redislike", "relational"):
        assert tput[(engine, "fast-gdpr")] \
            > tput[(engine, "full-gdpr")]


def test_backends_byte_identical_across_runs():
    once = backends_table(run_backends(record_count=40,
                                       operation_count=100))
    again = backends_table(run_backends(record_count=40,
                                        operation_count=100))
    assert once == again
