"""Figure 2: delay erasing expired keys vs. total database size.

Paper (lazy Redis expiry): 41 s at 1k keys doubling roughly with size to
10,728 s at 128k keys; their modified (full-scan) expiry erases within
sub-second latency for up to 1M keys.
"""

import pytest
from conftest import FULL_SWEEP, write_result

from repro.bench.figure2 import (
    PAPER_LAZY_SECONDS,
    doubling_ratios,
    figure2_table,
    measure_erasure_delay,
    run_figure2,
)

SIZES = (1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000) \
    if FULL_SWEEP else (1_000, 2_000, 4_000, 8_000, 16_000)


def test_figure2_lazy_vs_fullscan(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: run_figure2(sizes=SIZES,
                            strategies=("lazy", "fullscan")),
        rounds=1, iterations=1)
    table = figure2_table(results)
    write_result(results_dir, "figure2.txt", table)
    lazy = results["lazy"]
    fullscan = results["fullscan"]
    # Lazy erasure delay is minutes-to-hours and grows with size.
    assert lazy[0].erase_seconds > 5.0
    assert lazy[-1].erase_seconds > lazy[0].erase_seconds * 4
    # Roughly linear growth: each doubling costs ~2x (paper shape).
    ratios = [r for _, r in doubling_ratios(lazy)]
    for ratio in ratios:
        assert 1.0 <= ratio <= 5.0
    # Same order of magnitude as the paper's measured seconds.
    for measurement in lazy:
        paper = PAPER_LAZY_SECONDS[measurement.total_keys]
        assert paper / 4 <= measurement.erase_seconds <= paper * 4
    # The modified expiry erases everything within one second.
    for measurement in fullscan:
        assert measurement.erase_seconds < 1.0
    benchmark.extra_info["table"] = table


def test_figure2_lazy_1k_point(benchmark):
    m = benchmark.pedantic(lambda: measure_erasure_delay(1_000, "lazy"),
                           rounds=1, iterations=1)
    benchmark.extra_info["erase_seconds"] = round(m.erase_seconds, 1)
    benchmark.extra_info["paper_seconds"] = PAPER_LAZY_SECONDS[1_000]
    assert m.completed


def test_figure2_fullscan_sub_second_large(benchmark):
    size = 1_000_000 if FULL_SWEEP else 100_000
    m = benchmark.pedantic(
        lambda: measure_erasure_delay(size, "fullscan"),
        rounds=1, iterations=1)
    benchmark.extra_info["keys"] = size
    benchmark.extra_info["erase_seconds"] = round(m.erase_seconds, 4)
    assert m.completed
    assert m.erase_seconds < 1.0  # the paper's sub-second claim


def test_figure2_indexed_strategy_extension(benchmark):
    """Section 5.1's research direction: an expiry index erases as fast
    as the full scan without paying O(n) per cycle."""
    m = benchmark.pedantic(
        lambda: measure_erasure_delay(50_000, "indexed"),
        rounds=1, iterations=1)
    assert m.completed
    assert m.erase_seconds < 1.0
    benchmark.extra_info["erase_seconds"] = round(m.erase_seconds, 4)
