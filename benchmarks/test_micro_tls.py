"""Section 4.2 micro-benchmark: encryption overhead.

Paper: TLS proxies reduced available bandwidth from 44 Gb/s to 4.9 Gb/s;
LUKS+TLS runs at about a third of original throughput, and "most of the
overhead was due to TLS".
"""

from conftest import OPERATIONS, RECORDS, write_result

from repro.bench.ablation import encryption_split
from repro.bench.micro import measure_channel_bandwidth, run_tls_overhead
from repro.bench.reporting import render_table


def test_stunnel_bandwidth_collapse(benchmark, results_dir):
    results = benchmark.pedantic(measure_channel_bandwidth, rounds=1,
                                 iterations=1)
    table = render_table(["path", "effective_gbps"],
                         [[k, round(v, 2)] for k, v in results.items()])
    write_result(results_dir, "micro_tls_bandwidth.txt", table)
    # Paper's measured numbers: ~44 vs ~4.9 Gb/s.
    assert 35 <= results["raw"] <= 44.5
    assert 4.0 <= results["stunnel"] <= 5.0
    assert results["raw"] / results["stunnel"] > 7
    benchmark.extra_info.update(
        {k: round(v, 2) for k, v in results.items()})


def test_tls_ycsb_overhead(benchmark):
    results = benchmark.pedantic(
        lambda: run_tls_overhead(RECORDS, OPERATIONS),
        rounds=1, iterations=1)
    ratio = results["luks+tls"] / results["unmodified"]
    # Paper: "a third of its original throughput".
    assert 0.15 <= ratio <= 0.50
    benchmark.extra_info["fraction_of_baseline"] = round(ratio, 3)


def test_encryption_split_tls_dominates(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: encryption_split(RECORDS, OPERATIONS),
        rounds=1, iterations=1)
    table = render_table(
        ["config", "throughput_ops_s", "fraction"],
        [[k, round(v, 1), round(v / results["plaintext"], 3)]
         for k, v in results.items()])
    write_result(results_dir, "ablation_encryption.txt", table)
    # The paper's attribution: TLS, not at-rest crypto, dominates.
    tls_cost = results["plaintext"] - results["tls-only"]
    luks_cost = results["plaintext"] - results["luks-only"]
    assert tls_cost > 4 * luks_cost
    assert results["luks+tls"] <= results["tls-only"]
    benchmark.extra_info.update(
        {k: round(v, 1) for k, v in results.items()})
