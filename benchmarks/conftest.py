"""Shared benchmark configuration.

Scale knobs (environment variables):

* ``REPRO_BENCH_RECORDS`` / ``REPRO_BENCH_OPS`` -- YCSB scale per phase
  (defaults 300 / 800; throughput in simulated time is scale-invariant
  well below the paper's 2M operations, see EXPERIMENTS.md).
* ``REPRO_BENCH_FULL=1`` -- run the full Figure 2 sweep to 128k keys and
  the 1M-key fast-expiry extension (minutes of wall time instead of
  seconds).

Every benchmark writes its rendered table into ``bench_results/`` so the
paper-vs-measured record in EXPERIMENTS.md can be regenerated.
"""

import os
import pathlib

import pytest

RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "300"))
OPERATIONS = int(os.environ.get("REPRO_BENCH_OPS", "800"))
FULL_SWEEP = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent \
    / "bench_results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir, name, text):
    path = results_dir / name
    path.write_text(text + "\n")
    return path
