"""Figure 1: GDPR-compliant Redis throughput across YCSB phases.

Paper: unmodified ~20-25 kops/s; "AOF w/ sync" (everysec, all ops logged)
and "LUKS + TLS" each at ~30% of baseline, across Load-A, A, B, C, D,
Load-E, E, F.
"""

from conftest import OPERATIONS, RECORDS, write_result

from repro.bench.figure1 import figure1_table, run_config, run_figure1

_CACHE = {}


def _figure1():
    if "results" not in _CACHE:
        _CACHE["results"] = run_figure1(record_count=RECORDS,
                                        operation_count=OPERATIONS)
    return _CACHE["results"]


def test_figure1_unmodified_baseline(benchmark):
    cells = benchmark.pedantic(
        lambda: run_config("unmodified", RECORDS, OPERATIONS),
        rounds=1, iterations=1)
    by_phase = {cell.phase: cell.throughput for cell in cells}
    benchmark.extra_info.update(
        {phase: round(tp, 1) for phase, tp in by_phase.items()})
    # The paper's testbed baseline: ~20-25 kops/s on simple phases.
    for phase in ("Load-A", "A", "B", "C", "D"):
        assert 10_000 <= by_phase[phase] <= 30_000, phase
    # F's read-modify-write issues two round trips per op.
    assert 8_000 <= by_phase["F"] <= by_phase["A"]
    # Scans read up to 100 records per op: far lower throughput.
    assert by_phase["E"] < by_phase["A"] / 5


def test_figure1_aof_everysec(benchmark):
    cells = benchmark.pedantic(
        lambda: run_config("aof-everysec", RECORDS, OPERATIONS),
        rounds=1, iterations=1)
    benchmark.extra_info.update(
        {cell.phase: round(cell.throughput, 1) for cell in cells})


def test_figure1_luks_tls(benchmark):
    cells = benchmark.pedantic(
        lambda: run_config("luks+tls", RECORDS, OPERATIONS),
        rounds=1, iterations=1)
    benchmark.extra_info.update(
        {cell.phase: round(cell.throughput, 1) for cell in cells})


def test_figure1_shape_matches_paper(benchmark, results_dir):
    """The figure's headline shape: both modified configurations land
    near 30% of baseline on every phase."""
    results = benchmark.pedantic(_figure1, rounds=1, iterations=1)
    table = figure1_table(results)
    write_result(results_dir, "figure1.txt", table)
    phases = [cell.phase for cell in results["unmodified"]]
    for index, phase in enumerate(phases):
        base = results["unmodified"][index].throughput
        aof = results["aof-everysec"][index].throughput
        tls = results["luks+tls"][index].throughput
        # Paper: ~30% of original for each.  Accept a generous band --
        # phase E (scans) dilutes per-op overheads for AOF.
        assert 0.15 <= aof / base <= 0.65, (phase, aof / base)
        assert 0.15 <= tls / base <= 0.55, (phase, tls / base)
    benchmark.extra_info["table"] = table
