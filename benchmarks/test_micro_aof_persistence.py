"""Section 4.3 micro-benchmark: deleted data persisting in the AOF.

Paper: "in Redis AOF persistence model, any deleted data persists in AOF
until its compaction"; an hourly rewrite bounds the persistence of deleted
personal data to one hour.
"""

from conftest import write_result

from repro.bench.micro import deleted_data_persistence, rewrite_cost_curve
from repro.bench.reporting import render_table


def test_deleted_data_persists_until_compaction(benchmark, results_dir):
    probe = benchmark.pedantic(
        lambda: deleted_data_persistence(rewrite_interval=3600.0),
        rounds=1, iterations=1)
    table = render_table(
        ["property", "value"],
        [["in AOF immediately after DEL", probe.in_aof_after_delete],
         ["in AOF after periodic rewrite", probe.in_aof_after_rewrite],
         ["seconds until purged", probe.seconds_until_purged]])
    write_result(results_dir, "micro_aof_persistence.txt", table)
    assert probe.in_aof_after_delete is True      # the paper's finding
    assert probe.in_aof_after_rewrite is False    # compaction purges it
    # Hourly compaction bounds persistence to the hour boundary.
    assert probe.seconds_until_purged is not None
    assert probe.seconds_until_purged <= 3600.0 + 60.0
    benchmark.extra_info["purge_seconds"] = probe.seconds_until_purged


def test_rewrite_cost_grows_with_dataset(benchmark, results_dir):
    """Why Redis does not compact per delete: rewrite cost is O(dataset),
    which motivates the paper's periodic-compaction compromise."""
    points = benchmark.pedantic(rewrite_cost_curve, rounds=1,
                                iterations=1)
    table = render_table(["live_keys", "rewrite_seconds"],
                         [[n, round(cost, 6)] for n, cost in points])
    write_result(results_dir, "micro_rewrite_cost.txt", table)
    costs = [cost for _, cost in points]
    assert costs[-1] > costs[0] * 5  # clearly superlinear in keys
    benchmark.extra_info.update(
        {f"keys_{n}": round(c, 6) for n, c in points})
