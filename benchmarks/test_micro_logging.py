"""Section 4.1 micro-benchmark: candidate audit mechanisms.

Paper: "since Redis anyway performs its journaling via AOF, the first two
options [MONITOR, slowlog] result in more overhead than AOF"; fsync-always
drops throughput to ~5% of original; relaxing to everysec recovers 6x.
"""

from conftest import OPERATIONS, RECORDS, write_result

from repro.bench.figure1 import run_fsync_comparison
from repro.bench.micro import compare_logging_mechanisms
from repro.bench.reporting import render_table


def test_logging_mechanism_comparison(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: compare_logging_mechanisms(RECORDS, OPERATIONS),
        rounds=1, iterations=1)
    table = render_table(
        ["mechanism", "throughput_ops_s", "fraction_of_none"],
        [[name, round(tp, 1), round(tp / results["none"], 3)]
         for name, tp in results.items()])
    write_result(results_dir, "micro_logging.txt", table)
    # AOF piggybacking beats MONITOR and slowlog-with-AOF.
    assert results["aof"] > results["monitor"]
    assert results["aof"] > results["slowlog+aof"]
    # Every mechanism costs something.
    assert results["none"] > results["aof"]
    benchmark.extra_info.update(
        {name: round(tp, 1) for name, tp in results.items()})


def test_fsync_always_vs_everysec(benchmark, results_dir):
    throughputs = benchmark.pedantic(
        lambda: run_fsync_comparison(RECORDS, OPERATIONS),
        rounds=1, iterations=1)
    base = throughputs["unmodified"]
    always = throughputs["aof-always"]
    everysec = throughputs["aof-everysec"]
    table = render_table(
        ["config", "throughput_ops_s", "fraction_of_unmodified"],
        [[name, round(tp, 1), round(tp / base, 3)]
         for name, tp in throughputs.items()])
    write_result(results_dir, "micro_fsync.txt", table)
    # Paper: fsync-always ~5% of original (the 20x headline).
    assert 0.02 <= always / base <= 0.10
    # Paper: everysec improves ~6x over always, landing near 30%.
    assert 4.0 <= everysec / always <= 10.0
    assert 0.20 <= everysec / base <= 0.50
    benchmark.extra_info["slowdown_20x"] = round(base / always, 1)
    benchmark.extra_info["recovery_6x"] = round(everysec / always, 1)
