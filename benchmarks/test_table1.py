"""Table 1: GDPR articles mapped to storage features, plus the paper's
headline statistic (31 of 99 articles concern storage) and the
compliance-spectrum assessments of section 3.2."""

from conftest import write_result

from repro.bench.table1 import (
    assessments,
    build_comparison_text,
    build_table1_text,
    headline_statistics,
)
from repro.gdpr.articles import TABLE1, StorageFeature, feature_demand


def test_table1_regenerates(benchmark, results_dir):
    text = benchmark.pedantic(build_table1_text, rounds=1, iterations=1)
    write_result(results_dir, "table1.txt", text)
    assert len(TABLE1) == 13
    for fragment in ("Purpose limitation", "Right to be forgotten",
                     "Records of processing activity",
                     "Transfers subject to safeguards"):
        assert fragment in text


def test_headline_statistics(benchmark):
    stats = benchmark.pedantic(headline_statistics, rounds=1,
                               iterations=1)
    # "more than 30% of GDPR articles are related to storage"
    assert stats["storage_related_articles"] == 31
    assert stats["total_articles"] == 99
    assert stats["storage_share"] > 0.30
    benchmark.extra_info.update(
        {k: v for k, v in stats.items() if not isinstance(v, dict)})


def test_feature_demand_shape(benchmark):
    demand = benchmark.pedantic(feature_demand, rounds=1, iterations=1)
    # Indexing and deletion are the most-demanded narrow features;
    # every feature is demanded by at least the two "All" rows.
    assert demand[StorageFeature.INDEXING] >= 4
    assert all(count >= 2 for count in demand.values())


def test_compliance_spectrum(benchmark, results_dir):
    results = benchmark.pedantic(assessments, rounds=1, iterations=1)
    comparison = build_comparison_text()
    write_result(results_dir, "table1_comparison.txt", comparison)
    baseline = results["redis-baseline"]
    strict = results["gdpr-strict"]
    eventual = results["gdpr-eventual"]
    # Unmodified Redis fails the security articles outright.
    assert baseline.articles_compliant < 13
    assert not baseline.strict
    # The strict GDPR store passes everything in real time.
    assert strict.strict
    # The eventual configuration is compliant but not strict.
    assert eventual.articles_compliant == 13
    assert not eventual.strict
    benchmark.extra_info["baseline_compliant"] = \
        baseline.articles_compliant
    benchmark.extra_info["strict_compliant"] = strict.articles_compliant
