"""Tests for parallel slot migration (rebalance) and the event-mode
cluster wiring."""

import random

import pytest

from repro.cluster import (
    ShardedGDPRStore,
    build_cluster,
    slot_for_key,
)
from repro.common.clock import SimClock
from repro.common.errors import ClusterError
from repro.gdpr.metadata import GDPRMetadata
from repro.kvstore.store import KeyValueStore, StoreConfig


def populated_store(num_shards=3, keys=90, seed=7):
    store = ShardedGDPRStore(num_shards=num_shards)
    rng = random.Random(seed)
    for number in range(keys):
        owner = "alice" if number % 3 == 0 else f"user-{number % 5}"
        store.put(f"user:{number}",
                  bytes(rng.randrange(97, 123) for _ in range(24)),
                  GDPRMetadata(owner=owner,
                               purposes=frozenset({"service"})))
    return store


class TestRebalance:
    def test_rebalance_moves_an_even_share(self):
        store = populated_store()
        target_before = len(store.shards[2].index)
        plan = store.rebalance_plan(2)
        receipts = store.rebalance(2)
        assert len(receipts) == len(plan)
        assert all(not receipt.aborted for receipt in receipts)
        assert len(store.shards[2].index) > target_before
        # Every migrated slot is now owned by the target.
        for receipt in receipts:
            assert store.slots.shard_of_slot(receipt.slot) == 2
            assert receipt.target == 2

    def test_migrations_interleave_as_event_streams(self):
        """Multiple migrators progress concurrently: with slot-count >
        concurrency the completion times cluster, instead of one slot
        finishing completely before the next starts."""
        store = populated_store(keys=120)
        receipts = store.rebalance(2, concurrency=4, batch_size=2)
        assert len(receipts) >= 4
        # Completion order need not equal plan order when streams
        # interleave; at minimum all receipts completed after start.
        for receipt in receipts:
            assert receipt.completed_at >= receipt.started_at

    def test_audit_chains_intact_after_rebalance(self):
        store = populated_store()
        store.rebalance(0)
        verified = store.verify_audit_chains()
        assert set(verified) == {0, 1, 2}

    def test_subject_rights_survive_rebalance(self):
        store = populated_store()
        keys_before = store.keys_of_subject("alice")
        store.rebalance(1)
        assert store.keys_of_subject("alice") == keys_before
        receipt = store.erase_subject("alice")
        assert sorted(receipt.keys_erased) == keys_before
        assert receipt.crypto_erased

    def test_drive_false_lets_caller_interleave(self):
        store = populated_store()
        plan = store.rebalance_plan(2)
        receipts = store.rebalance(2, drive=False)
        assert receipts == []        # streams scheduled, nothing run yet
        # Caller drives the clock; foreground traffic interleaves here.
        while len(receipts) < len(plan):
            assert store.clock.run_next()
        assert len(receipts) == len(plan)

    def test_rebalance_rejects_unknown_target(self):
        store = populated_store()
        with pytest.raises(ClusterError):
            store.rebalance(7)

    def test_explicit_slot_list_deduplicated(self):
        store = populated_store()
        slot = slot_for_key("user:0")
        source = store.slots.shard_of_slot(slot)
        target = (source + 1) % store.num_shards
        receipts = store.rebalance(target, slots=[slot, slot])
        assert len(receipts) == 1
        assert store.slots.shard_of_slot(slot) == target


class TestEventCluster:
    def test_event_cluster_matches_sync_cluster_results(self):
        def run(event_driven):
            def factory(index, clock):
                return KeyValueStore(
                    StoreConfig(command_cpu_cost=25e-6, seed=index),
                    clock=clock)
            cluster = build_cluster(2, store_factory=factory,
                                    event_driven=event_driven)
            for index in range(40):
                cluster.call("SET", f"k{index}", index)
            values = [cluster.call("GET", f"k{index}")
                      for index in range(40)]
            return values

        assert run(True) == run(False)

    def test_event_cluster_requires_shared_scheduler(self):
        from repro.cluster.client import ClusterNode
        from repro.net.channel import Channel

        scheduler_a, scheduler_b = SimClock(), SimClock()
        nodes = []
        for index, scheduler in enumerate((scheduler_a, scheduler_b)):
            store = KeyValueStore(StoreConfig(), clock=SimClock())
            channel = Channel(clock=scheduler, event_driven=True)
            nodes.append(ClusterNode(index, store, channel,
                                     scheduler=scheduler))
        from repro.cluster import ClusterClient
        with pytest.raises(ClusterError):
            ClusterClient(nodes)

    def test_await_replies_raises_instead_of_spinning_on_cron(self):
        """A missing reply must surface as an error even though the
        cron daemon keeps the event heap non-empty forever."""
        from repro.common.resp import RespError

        cluster = build_cluster(1, event_driven=True)
        node = cluster.nodes[0]
        node.send_batch([[b"PING"]])
        with pytest.raises(RespError, match="no reply"):
            node.await_replies(2)      # only one reply will ever come

    def test_pipelined_batch_overlaps_shards(self):
        """With per-shard service meters on one scheduler, a batch
        spanning 4 shards costs far less than 4x one shard's work."""
        def factory(index, clock):
            return KeyValueStore(
                StoreConfig(command_cpu_cost=1e-3, seed=index),
                clock=clock)

        def batch_cost(shards):
            cluster = build_cluster(shards, store_factory=factory,
                                    event_driven=True)
            pipeline = cluster.pipeline()
            for index in range(32):
                pipeline.call("SET", f"key:{index}", index)
            began = cluster.clock.now()
            pipeline.execute()
            return cluster.clock.now() - began

        assert batch_cost(4) < batch_cost(1) * 0.5
