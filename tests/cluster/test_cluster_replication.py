"""Tests for per-shard replication groups: cluster-wide erasure
horizon, timer-event pumping, replica handoff at slot migration, and
read-from-replica routing."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ClusterError
from repro.cluster import (
    ClusterReplication,
    ShardedGDPRStore,
    SlotMigrator,
    build_cluster,
    queue_touches,
    slot_for_key,
)
from repro.gdpr import GDPRMetadata
from repro.kvstore import KeyValueStore, StoreConfig


def metadata(owner="alice"):
    return GDPRMetadata(owner=owner, purposes=frozenset({"service"}))


def tagged_keys(tag, count):
    return [f"{{{tag}}}:k{i}" for i in range(count)]


def make_replicated_store(num_shards=2, replicas=2, delay=0.010,
                          pump_interval=None):
    store = ShardedGDPRStore(num_shards=num_shards)
    replication = store.attach_replication(replicas_per_shard=replicas,
                                           delay=delay,
                                           pump_interval=pump_interval)
    return store, replication


class TestReplicatedShardGroups:
    def test_every_shard_gets_a_group(self):
        store, replication = make_replicated_store(num_shards=3,
                                                   replicas=2)
        assert sorted(replication.groups) == [0, 1, 2]
        for index in range(3):
            group = replication.group_of(index)
            assert group.num_replicas == 2
            assert group.primary is store.shards[index].kv
        assert replication.num_replicas == 6

    def test_attach_twice_rejected(self):
        store, _ = make_replicated_store()
        with pytest.raises(ClusterError):
            store.attach_replication()

    def test_writes_stream_to_replicas_with_delay(self):
        store, replication = make_replicated_store(delay=0.010)
        store.put("user:1", b"payload", metadata())
        shard = store.shard_for("user:1")
        group = replication.group_of(shard)
        for link in group.links:
            assert link.replica.execute("EXISTS", "user:1") == 0
        store.clock.advance(0.011)
        replication.pump()
        for link in group.links:
            assert link.replica.execute("EXISTS", "user:1") == 1

    def test_per_replica_delays(self):
        store = ShardedGDPRStore(num_shards=1)
        replication = store.attach_replication(
            replicas_per_shard=2, delays=[0.002, 0.200])
        store.put("user:1", b"payload", metadata())
        fast, slow = replication.group_of(0).links
        store.clock.advance(0.003)
        replication.pump()
        assert fast.replica.execute("EXISTS", "user:1") == 1
        assert slow.replica.execute("EXISTS", "user:1") == 0

    def test_mismatched_delays_rejected(self):
        store = ShardedGDPRStore(num_shards=1)
        with pytest.raises(ClusterError):
            store.attach_replication(replicas_per_shard=3,
                                     delays=[0.001])

    def test_attach_full_syncs_pre_existing_data(self):
        """Regression: data written before attachment predates the
        write stream; without an initial full resync replicas would
        miss it forever."""
        store = ShardedGDPRStore(num_shards=2)
        store.put("user:1", b"old", metadata())
        replication = store.attach_replication(replicas_per_shard=2,
                                               delay=0.010)
        shard = store.shard_for("user:1")
        for link in replication.group_of(shard).links:
            assert link.replica.execute("GET", "user:1") is not None


class TestErasureHorizon:
    def test_horizon_requires_replication(self):
        store = ShardedGDPRStore(num_shards=2)
        with pytest.raises(ClusterError):
            store.erasure_horizon("user:1")
        with pytest.raises(ClusterError):
            store.subject_erasure_horizon(["user:1"])

    def test_horizon_bounded_by_slowest_replica(self):
        store = ShardedGDPRStore(num_shards=2)
        store.attach_replication(replicas_per_shard=2,
                                 delays=[0.010, 0.120])
        store.put("user:1", b"payload", metadata())
        store.clock.advance(0.2)
        store.replication.pump()
        store.delete("user:1")
        horizon = store.erasure_horizon("user:1", step=0.005)
        assert horizon is not None
        assert 0.115 <= horizon <= 0.130

    def test_subject_horizon_spans_shards(self):
        store, replication = make_replicated_store(num_shards=4,
                                                   delay=0.050)
        for i in range(12):
            store.put(f"user:{i}", b"x", metadata("alice"))
        assert len(store.shards_of_subject("alice")) > 1
        store.clock.advance(0.1)
        replication.pump()
        keys = store.keys_of_subject("alice")
        receipt = store.erase_subject("alice")
        assert sorted(receipt.keys_erased) == keys
        horizon = store.subject_erasure_horizon(keys, step=0.005)
        assert horizon is not None
        assert 0.045 <= horizon <= 0.060
        for key in keys:
            assert not store.replication.key_visible_anywhere(key)

    def test_crypto_erasure_voids_replica_ciphertext_immediately(self):
        store, replication = make_replicated_store(num_shards=1,
                                                   replicas=1,
                                                   delay=1.0)
        store.put("user:1", b"secret", metadata("alice"))
        store.clock.advance(2.0)
        replication.pump()
        receipt = store.erase_subject("alice")
        assert receipt.crypto_erased
        # The replica still *serves* the key (its DEL is in flight)...
        link = replication.group_of(0).links[0]
        blob = link.replica.execute("GET", "user:1")
        assert blob is not None
        # ...but the bytes are sealed with a destroyed key: unreadable.
        with pytest.raises(Exception):
            store.keystore.cipher_for("alice", create=False)

    def test_horizon_waits_for_queued_pre_deletion_write(self):
        """Regression: a visibility-only horizon closed at 0 while the
        key's SET was still in flight -- the replica then served the
        'erased' data when the SET landed."""
        store = ShardedGDPRStore(num_shards=1)
        store.attach_replication(replicas_per_shard=1, delay=1.0)
        store.put("user:1", b"pii", metadata())
        store.clock.advance(0.1)        # SET still queued (1 s delay)
        store.delete("user:1")
        horizon = store.erasure_horizon("user:1", step=0.05,
                                        max_wait=5.0)
        # The DEL trails the SET by 0.1 s; erasure completes when the
        # DEL lands (~1.0 s after issue), not instantly.
        assert horizon is not None
        assert 0.9 <= horizon <= 1.1
        link = store.replication.group_of(0).links[0]
        assert link.replica.execute("EXISTS", "user:1") == 0

    def test_horizon_none_when_stream_stuck(self):
        store, replication = make_replicated_store(num_shards=1,
                                                   replicas=1,
                                                   delay=0.010)
        store.put("user:1", b"x", metadata())
        store.clock.advance(0.02)
        replication.pump()
        link = replication.group_of(0).links[0]
        store.delete("user:1")
        link.discard_backlog()     # partitioned replica: DEL never lands
        assert store.erasure_horizon("user:1", step=0.01,
                                     max_wait=0.1) is None


class TestTimerPumpedReplication:
    def test_daemon_pump_events_drive_replicas(self):
        store, replication = make_replicated_store(
            delay=0.010, pump_interval=0.005)
        store.put("user:1", b"payload", metadata())
        shard = store.shard_for("user:1")
        link = replication.group_of(shard).links[0]
        # No explicit pump() anywhere: advancing the clock fires the
        # daemon timer events, which deliver the stream.
        store.clock.advance(0.030)
        assert link.replica.execute("EXISTS", "user:1") == 1

    def test_pump_events_are_daemon(self):
        store, _ = make_replicated_store(pump_interval=0.005)
        # Only daemon events in the heap: run_until_idle must not spin.
        assert store.clock.pending_live_events() == 0
        assert store.clock.run_until_idle(deadline=None) == 0

    def test_event_driven_determinism_same_seed(self):
        def one_run():
            clock = SimClock()
            trace = clock.enable_trace()
            store = ShardedGDPRStore(num_shards=2, clock=clock)
            store.attach_replication(replicas_per_shard=2,
                                     delays=[0.004, 0.040],
                                     pump_interval=0.002)
            for i in range(10):
                store.put(f"user:{i}", b"x" * 16,
                          metadata("alice" if i % 2 == 0 else "bob"))
            clock.advance(0.05)
            keys = store.keys_of_subject("alice")
            store.erase_subject("alice")
            horizon = store.subject_erasure_horizon(keys, step=0.002)
            return horizon, clock.now(), list(trace)

        first = one_run()
        second = one_run()
        assert first[0] is not None
        assert first == second
        assert any(label.startswith("replication-pump")
                   for _, label in first[2])

    def test_start_pump_retunes_interval(self):
        store, replication = make_replicated_store(pump_interval=0.5)
        group = replication.group_of(0)
        old_handle = group._pump_handle
        group.start_pump(0.001)
        assert group.pump_interval == 0.001
        assert not old_handle.active
        assert group._pump_handle.active

    def test_start_pump_invalid_interval_keeps_running_pump(self):
        store, replication = make_replicated_store(pump_interval=0.005)
        group = replication.group_of(0)
        handle = group._pump_handle
        with pytest.raises(ClusterError):
            group.start_pump(0)
        assert handle.active               # healthy pump untouched
        assert group.pump_interval == 0.005

    def test_stop_pump_cancels_timer(self):
        store, replication = make_replicated_store(pump_interval=0.005)
        group = replication.group_of(0)
        handle = group._pump_handle
        assert handle is not None and handle.active
        group.stop_pump()
        assert not handle.active

    def test_close_stops_pumps_and_stream(self):
        store, replication = make_replicated_store(pump_interval=0.005)
        replication.close()
        for index, shard in enumerate(store.shards):
            assert shard.kv.write_listeners == []
            group = replication.group_of(index)
            for link in group.links:
                assert link.closed


class TestMigrationHandsOffReplicas:
    def test_moved_slot_replicated_on_destination(self):
        store, replication = make_replicated_store(num_shards=2,
                                                   delay=0.010)
        keys = tagged_keys("repl-mig", 5)
        for key in keys:
            store.put(key, b"payload", metadata())
        store.clock.advance(0.02)
        replication.pump()
        slot = slot_for_key(keys[0])
        source = store.slots.shard_of_slot(slot)
        target = 1 - source
        receipt = store.migrate_slot(slot, target)
        assert sorted(receipt.keys_moved) == sorted(keys)
        # Full-synced at the flip: destination replicas hold the slot
        # immediately, before any delayed stream could have delivered it.
        for link in replication.group_of(target).links:
            for key in keys:
                assert link.replica.execute("EXISTS", key) == 1
        assert receipt.replicas_synced >= len(keys)
        # Source replicas drop their copies once the handoff DELs land.
        store.clock.advance(0.02)
        replication.pump()
        for link in replication.group_of(source).links:
            for key in keys:
                assert link.replica.execute("EXISTS", key) == 0

    def test_erasure_mid_migration_reaches_both_copies_replicas(self):
        store, replication = make_replicated_store(num_shards=2,
                                                   delay=0.010)
        keys = tagged_keys("repl-erase", 4)
        for key in keys:
            store.put(key, b"pii", metadata("alice"))
        store.clock.advance(0.02)
        replication.pump()
        slot = slot_for_key(keys[0])
        source = store.slots.shard_of_slot(slot)
        target = 1 - source
        migrator = store.begin_slot_migration(slot, target)
        migrator.step(2)           # shadow copies exist on the target
        store.erase_subject("alice")
        receipt = migrator.finish()
        # Every copy -- source, target, and all four replicas -- is
        # gone once the streams drain.
        horizon = store.subject_erasure_horizon(keys, step=0.002)
        assert horizon is not None
        for key in keys:
            assert not replication.key_visible_anywhere(key)
        assert store.verify_audit_chains()
        assert receipt.keys_moved == []

    def test_kv_cluster_migration_syncs_destination_replicas(self):
        cluster = build_cluster(2)
        replication = cluster.attach_replication(replicas_per_shard=1,
                                                 delay=0.010)
        keys = tagged_keys("kv-repl", 4)
        for i, key in enumerate(keys):
            cluster.call("SET", key, f"v{i}")
        slot = slot_for_key(keys[0])
        source = cluster.slots.shard_of_slot(slot)
        target = 1 - source
        receipt = SlotMigrator(cluster, slot, target).run()
        assert receipt.replicas_synced >= len(keys)
        for link in replication.group_of(target).links:
            for key in keys:
                assert link.replica.execute("EXISTS", key) == 1

    def test_migration_without_replication_still_works(self):
        cluster = build_cluster(2)
        keys = tagged_keys("no-repl", 3)
        for key in keys:
            cluster.call("SET", key, "v")
        slot = slot_for_key(keys[0])
        target = 1 - cluster.slots.shard_of_slot(slot)
        receipt = SlotMigrator(cluster, slot, target).run()
        assert receipt.replicas_synced == 0


class TestReadFromReplica:
    def test_replica_read_returns_stale_then_fresh(self):
        cluster = build_cluster(2)
        cluster.attach_replication(replicas_per_shard=1, delay=0.010)
        cluster.call("SET", "k1", "v1")
        stale = cluster.call("GET", "k1", prefer_replica=True)
        assert stale is None                      # DEL..SET in flight
        assert cluster.replica_reads == 1
        assert cluster.stale_replica_reads == 1
        cluster.sync()
        cluster.clock.advance(0.02)
        for node in cluster.nodes:
            node.clock.sleep_until(cluster.clock.now())
        cluster.replication.pump()
        fresh = cluster.call("GET", "k1", prefer_replica=True)
        assert fresh == b"v1"
        assert cluster.replica_reads == 2
        assert cluster.stale_replica_reads == 1   # unchanged

    def test_client_level_default_routes_reads(self):
        cluster = build_cluster(1)
        cluster.attach_replication(replicas_per_shard=1, delay=0.0)
        cluster.read_from_replicas = True
        cluster.call("SET", "k1", "v1")           # writes hit primaries
        cluster.nodes[0].clock.advance(0.001)
        cluster.replication.pump()
        assert cluster.call("GET", "k1") == b"v1"
        assert cluster.replica_reads == 1

    def test_writes_never_go_to_replicas(self):
        cluster = build_cluster(1)
        cluster.attach_replication(replicas_per_shard=1, delay=0.010)
        cluster.call("SET", "k1", "v1", prefer_replica=True)
        assert cluster.replica_reads == 0
        assert cluster.nodes[0].store.execute("GET", "k1") == b"v1"

    def test_replica_read_follows_topology_change(self):
        """After a slot migration, a replica read through a stale
        routing cache must discover the new owner (the replica's MOVED)
        instead of silently serving the old shard's emptied replica."""
        cluster = build_cluster(2)
        replication = cluster.attach_replication(replicas_per_shard=1,
                                                 delay=0.001)
        cluster.call("SET", "k1", "v1")
        slot = slot_for_key("k1")
        source = cluster.slots.shard_of_slot(slot)
        SlotMigrator(cluster, slot, 1 - source).run()
        cluster.sync()
        cluster.clock.advance(0.01)
        for node in cluster.nodes:
            node.clock.sleep_until(cluster.clock.now())
        replication.pump()     # source replicas apply the handoff DELs
        moved_before = cluster.moved_redirects
        assert cluster.call("GET", "k1", prefer_replica=True) == b"v1"
        assert cluster.moved_redirects == moved_before + 1
        # The cache learned the new owner: no further redirects.
        assert cluster.call("GET", "k1", prefer_replica=True) == b"v1"
        assert cluster.moved_redirects == moved_before + 1

    def test_replica_read_advances_link_clock_in_sync_mode(self):
        """Regression: link clocks are per-shard in sync mode and only
        advanced when the primary path touched the shard, so a replica
        read long after a write still served pre-write state and was
        miscounted as stale."""
        cluster = build_cluster(2)
        cluster.attach_replication(replicas_per_shard=1, delay=0.001)
        cluster.call("SET", "k1", "v1")
        cluster.clock.advance(10.0)    # only the master clock moves
        assert cluster.call("GET", "k1", prefer_replica=True) == b"v1"
        assert cluster.stale_replica_reads == 0

    def test_replica_read_mid_migration_uses_primary_path(self):
        cluster = build_cluster(2)
        cluster.attach_replication(replicas_per_shard=1, delay=10.0)
        cluster.call("SET", "k1", "v1")
        slot = slot_for_key("k1")
        source = cluster.slots.shard_of_slot(slot)
        migrator = SlotMigrator(cluster, slot, 1 - source)
        # Replicas are hopelessly stale (10 s delay); the migrating slot
        # must fall through to the ASK-speaking primary path anyway.
        assert cluster.call("GET", "k1", prefer_replica=True) == b"v1"
        assert cluster.replica_reads == 0
        migrator.abort()

    def test_cluster_adapter_defers_to_client_setting(self):
        from repro.ycsb.adapters import ClusterAdapter

        cluster = build_cluster(1)
        cluster.attach_replication(replicas_per_shard=1, delay=0.0)
        cluster.read_from_replicas = True
        adapter = ClusterAdapter(cluster)     # knob left at None
        adapter.insert("rec1", {"f": b"v"})
        cluster.nodes[0].clock.advance(0.001)
        cluster.replication.pump()
        assert adapter.read("rec1") == {"f": b"v"}
        assert adapter.replica_reads == 1     # client default honoured
        adapter.read_from_replicas = False    # explicit override wins
        adapter.read("rec1")
        assert adapter.replica_reads == 1

    def test_no_replication_attached_falls_through(self):
        cluster = build_cluster(1)
        cluster.call("SET", "k1", "v1")
        assert cluster.call("GET", "k1", prefer_replica=True) == b"v1"
        assert cluster.replica_reads == 0

    def test_rebuild_shard_keeps_replica_factory(self):
        clock = SimClock()
        primary = KeyValueStore(StoreConfig(), clock=clock)
        made = []

        def factory(index):
            kv = KeyValueStore(StoreConfig(), clock=clock)
            made.append(kv)
            return kv

        replication = ClusterReplication(clock)
        replication.add_shard(0, primary, num_replicas=1,
                              replica_factory=factory)
        assert len(made) == 1
        group = replication.rebuild_shard(0, primary)
        assert len(made) == 2          # factory carried over
        assert group.links[0].replica is made[1]

    def test_queue_touches_matches_keys_only(self):
        primary = KeyValueStore(StoreConfig(), clock=SimClock())
        replication = ClusterReplication(primary.clock)
        group = replication.add_shard(0, primary, num_replicas=1,
                                      delay=10.0)
        link = group.links[0]
        primary.execute("SET", "hit", "value-mentioning-miss")
        assert queue_touches(link, [b"hit"])
        assert not queue_touches(link, [b"miss"])


class TestEventDrivenClusterReplication:
    def test_scheduler_pumped_replicas_and_horizon(self):
        cluster = build_cluster(2, event_driven=True)
        replication = cluster.attach_replication(replicas_per_shard=2,
                                                 delay=0.005,
                                                 pump_interval=0.002)
        for i in range(6):
            cluster.call("SET", f"k{i}", f"v{i}")
        cluster.sync()
        cluster.clock.advance(0.02)    # daemon pumps on the scheduler
        assert replication.backlog() == 0
        assert cluster.call("GET", "k3", prefer_replica=True) == b"v3"
        assert cluster.stale_replica_reads == 0
        cluster.call("DEL", "k3")
        horizon = replication.erasure_horizon(b"k3", step=0.001)
        assert horizon == pytest.approx(0.005, abs=0.002)


class TestRecoveryRehomesReplication:
    def test_recover_shard_rebuilds_group(self):
        store, replication = make_replicated_store(num_shards=2,
                                                   replicas=2,
                                                   delay=0.010,
                                                   pump_interval=0.005)
        store.put("user:1", b"payload", metadata())
        shard = store.shard_for("user:1")
        store.clock.advance(0.02)
        replication.pump()
        old_group = replication.group_of(shard)
        store.recover_shard(shard)
        new_group = replication.group_of(shard)
        assert new_group is not old_group
        assert new_group.primary is store.shards[shard].kv
        assert new_group.num_replicas == 2
        assert [l.delay for l in new_group.links] \
            == [l.delay for l in old_group.links]
        # Replicas were full-synced from the recovered primary...
        for link in new_group.links:
            assert link.replica.execute("EXISTS", "user:1") == 1
        # ...and the new stream is live (pump carried over).
        store.put("user:2", b"more", metadata())
        if store.shard_for("user:2") == shard:
            store.clock.advance(0.02)
            assert new_group.links[0].replica.execute(
                "EXISTS", "user:2") == 1
