"""Tests for live slot migration: MOVED/ASK redirects, data movement,
and GDPR correctness (erasure mid-migration, audit handoff)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    ClusterError,
    KeyNotFoundError,
    MigrationError,
    RedirectLoopError,
)
from repro.common.resp import RespError
from repro.cluster import (
    GDPRSlotMigrator,
    ShardedGDPRStore,
    SlotMap,
    SlotMigrator,
    build_cluster,
    slot_for_key,
)
from repro.gdpr import GDPRMetadata
from repro.ycsb.adapters import ClusterAdapter


def tagged_keys(tag, count, prefix="k"):
    """Keys sharing one hash slot via {tag}."""
    return [f"{{{tag}}}:{prefix}{i}" for i in range(count)]


def make_cluster_with_slot(num_shards=2, tag="mig", count=6):
    """A cluster with `count` keys in one slot, plus where that slot is."""
    cluster = build_cluster(num_shards)
    keys = tagged_keys(tag, count)
    slot = slot_for_key(keys[0])
    for i, key in enumerate(keys):
        cluster.call("SET", key, f"v{i}")
    source = cluster.slots.shard_of_slot(slot)
    target = (source + 1) % num_shards
    return cluster, keys, slot, source, target


class TestSlotMapMigrationStates:
    def test_begin_sets_both_sides(self):
        slots = SlotMap.even(2)
        state = slots.begin_migration(0, 1)
        assert state.source == 0 and state.target == 1
        assert slots.is_migrating(0, 0)
        assert slots.is_importing(0, 1)
        assert not slots.is_stable(0)
        assert slots.migrating_slots_of(0) == [0]
        assert slots.importing_slots_of(1) == [0]
        # Routing is unchanged until the flip.
        assert slots.shard_of_slot(0) == 0

    def test_end_flips_atomically(self):
        slots = SlotMap.even(2)
        slots.begin_migration(5, 1)
        assert slots.end_migration(5) == 1
        assert slots.shard_of_slot(5) == 1
        assert slots.is_stable(5)

    def test_abort_keeps_owner(self):
        slots = SlotMap.even(2)
        slots.begin_migration(5, 1)
        slots.abort_migration(5)
        assert slots.shard_of_slot(5) == 0
        assert slots.is_stable(5)

    def test_double_begin_rejected(self):
        slots = SlotMap.even(2)
        slots.begin_migration(5, 1)
        with pytest.raises(MigrationError):
            slots.begin_migration(5, 1)

    def test_begin_to_owner_rejected(self):
        slots = SlotMap.even(2)
        with pytest.raises(MigrationError):
            slots.begin_migration(5, 0)

    def test_end_without_begin_rejected(self):
        with pytest.raises(MigrationError):
            SlotMap.even(2).end_migration(5)

    def test_assign_refuses_migrating_slot(self):
        slots = SlotMap.even(2)
        slots.begin_migration(5, 1)
        with pytest.raises(MigrationError):
            slots.assign([5], 1)


class TestDataMovement:
    def test_migration_moves_every_key(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        receipt = SlotMigrator(cluster, slot, target).run()
        assert sorted(receipt.keys_moved) == sorted(keys)
        assert receipt.bytes_moved > 0
        assert not receipt.aborted
        src_db = cluster.nodes[source].store.databases[0]
        dst_db = cluster.nodes[target].store.databases[0]
        for key in keys:
            raw = key.encode()
            assert raw not in src_db
            assert raw in dst_db

    def test_ttls_survive_the_move(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        cluster.call("EXPIRE", keys[0], 500)
        SlotMigrator(cluster, slot, target).run()
        ttl = cluster.call("TTL", keys[0])
        assert 0 < ttl <= 500
        assert cluster.call("TTL", keys[1]) == -1

    def test_source_write_after_copy_is_recopied(self):
        """rsync invariant: the target can never win with stale data."""
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(len(keys))        # everything copied once
        cluster.call("SET", keys[0], "updated")
        receipt = migrator.finish()
        assert receipt.recopied >= 1
        assert cluster.call("GET", keys[0]) == b"updated"

    def test_delete_mid_migration_cascades_to_target(self):
        """The flip must never resurrect a deleted key."""
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(len(keys))
        cluster.call("DEL", keys[0])
        migrator.finish()
        assert cluster.call("GET", keys[0]) is None
        dst_db = cluster.nodes[target].store.databases[0]
        assert keys[0].encode() not in dst_db

    def test_abort_rolls_back_target_copies(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(3)
        receipt = migrator.abort()
        assert receipt.aborted
        assert cluster.slots.shard_of_slot(slot) == source
        dst_db = cluster.nodes[target].store.databases[0]
        for key in keys:
            assert key.encode() not in dst_db
        for i, key in enumerate(keys):
            assert cluster.call("GET", key) == f"v{i}".encode()

    def test_abort_prefers_fresher_source_over_stale_shadow(self):
        """A shadow dirtied after its copy must never overwrite the
        source's newer value on abort."""
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(len(keys))        # shadows hold v0..v5
        cluster.call("SET", keys[0], "v2-newer")
        migrator.abort()
        assert cluster.call("GET", keys[0]) == b"v2-newer"
        assert keys[0].encode() not in \
            cluster.nodes[target].store.databases[0]

    def test_migration_cost_identical_across_clock_modes(self):
        """parallel=False shares one clock between shards; the link
        transfer must be charged once, not once per endpoint."""
        def migrate_cost(parallel):
            cluster = build_cluster(2, parallel=parallel)
            cluster.call("SET", "{mig}:k", "v" * 64)
            slot = slot_for_key("{mig}:k")
            source = cluster.slots.shard_of_slot(slot)
            clock = cluster.nodes[source].clock
            before = clock.now()
            SlotMigrator(cluster, slot, 1 - source).run()
            return clock.now() - before

        assert migrate_cost(parallel=False) == \
            pytest.approx(migrate_cost(parallel=True))

    def test_abort_repatriates_keys_born_on_target(self):
        """A key created mid-migration via ASK lives on the target; an
        abort must bring it home, not strand the acknowledged write."""
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(2)
        newkey = "{mig}:born-late"
        cluster.call("SET", newkey, "keep-me")
        assert newkey.encode() in \
            cluster.nodes[target].store.databases[0]
        migrator.abort()
        assert cluster.slots.shard_of_slot(slot) == source
        assert newkey.encode() in \
            cluster.nodes[source].store.databases[0]
        assert newkey.encode() not in \
            cluster.nodes[target].store.databases[0]
        assert cluster.call("GET", newkey) == b"keep-me"

    def test_select_refused_in_cluster_mode(self):
        cluster = build_cluster(2)
        reply = cluster.call("SELECT", 1, raise_errors=False)
        assert isinstance(reply, RespError)
        assert "cluster mode" in str(reply)

    def test_finished_migrator_refuses_reuse(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.run()
        with pytest.raises(MigrationError):
            migrator.step()
        with pytest.raises(MigrationError):
            migrator.finish()


class TestRedirects:
    def test_moved_retry_after_flip(self):
        """A stale client discovers the flip via MOVED, transparently."""
        cluster, keys, slot, source, target = make_cluster_with_slot()
        SlotMigrator(cluster, slot, target).run()
        assert cluster.shard_for(keys[0]) == source     # stale cache
        assert cluster.moved_redirects == 0
        assert cluster.call("GET", keys[0]) == b"v0"
        assert cluster.moved_redirects == 1
        assert cluster.shard_for(keys[0]) == target     # cache learned
        # Subsequent calls pay no redirect.
        cluster.call("GET", keys[1])
        assert cluster.moved_redirects == 1

    def test_ask_is_one_shot_and_does_not_update_cache(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(1)
        newkey = f"{{mig}}:fresh"
        assert slot_for_key(newkey) == slot
        cluster.call("SET", newkey, "born-on-target")
        assert cluster.ask_redirects == 1
        # The new key lives on the importing target, not the source.
        assert newkey.encode() in cluster.nodes[target].store.databases[0]
        assert newkey.encode() not in \
            cluster.nodes[source].store.databases[0]
        # ASK never updates the routing cache: the next access to the
        # same key is ASK-redirected again.
        assert cluster.shard_for(newkey) == source
        assert cluster.call("GET", newkey) == b"born-on-target"
        assert cluster.ask_redirects == 2
        migrator.finish()
        assert cluster.call("GET", newkey) == b"born-on-target"

    def test_importing_shard_refuses_without_asking(self):
        """Direct (non-ASKING) requests to the target get MOVED back to
        the still-authoritative source.  (Observed at the node level:
        the client would follow the redirect transparently.)"""
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(len(keys))
        [reply] = cluster.nodes[target].execute_batch(
            [[b"GET", keys[0].encode()]])
        assert isinstance(reply, RespError)
        assert str(reply) == f"MOVED {slot} {source}"
        # A pinned call still succeeds: the client absorbs the MOVED.
        assert cluster.call("GET", keys[0], shard=target) == b"v0"
        migrator.finish()

    def test_pipeline_straddling_flip_retries_transparently(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        SlotMigrator(cluster, slot, target).run()
        pipeline = cluster.pipeline()
        for key in keys:
            pipeline.call("GET", key)
        replies = pipeline.execute()
        assert replies == [f"v{i}".encode() for i in range(len(keys))]
        assert cluster.moved_redirects >= 1

    def test_tryagain_for_split_multikey(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(len(keys))
        cluster.call("DEL", keys[0])        # now absent on the source
        reply = cluster.call("MGET", keys[0], keys[1],
                             raise_errors=False)
        assert isinstance(reply, RespError)
        assert str(reply).startswith("TRYAGAIN")
        migrator.finish()
        assert cluster.call("MGET", keys[0], keys[1]) == [None, b"v1"]

    def test_pipeline_queue_cleared_when_execute_raises(self):
        """A pipeline that failed must not re-submit its old requests
        on the next execute."""
        cluster = build_cluster(2)
        pipeline = cluster.pipeline()
        pipeline.call("SET", "k", "v")
        # Corrupt the routed shard to force a pre-execution failure.
        pipeline._requests[0] = (99, pipeline._requests[0][1])
        with pytest.raises(ClusterError):
            pipeline.execute()
        assert len(pipeline) == 0
        pipeline.call("GET", "k")
        assert pipeline.execute() == [None]     # the SET never ran

    def test_redirect_loop_is_capped(self):
        class BounceNode:
            """A 'server' that always points at the other shard."""

            class _Store:
                def tick(self):
                    pass

            def __init__(self, index, slot):
                self.index = index
                self.clock = SimClock()
                self.store = self._Store()
                self._slot = slot

            def execute_batch(self, batch):
                return [RespError(f"MOVED {self._slot} "
                                  f"{1 - self.index}")
                        for _ in batch]

        from repro.cluster import ClusterClient
        slot = slot_for_key("k")
        nodes = [BounceNode(0, slot), BounceNode(1, slot)]
        client = ClusterClient(nodes, max_redirects=4)
        with pytest.raises(RedirectLoopError):
            client.call("GET", "k")

    def test_unfollowable_redirect_surfaces_raw_error(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        # Fabricate a reply pointing at a shard this client has no node
        # for: the client must surface it instead of crashing.
        error = RespError(f"MOVED {slot} 7")
        from repro.cluster.client import _parse_redirect
        redirect = _parse_redirect(error)
        assert redirect is not None and redirect.shard == 7


class TestBroadcastsDuringMigration:
    def test_dbsize_excludes_importing_slots(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        for i in range(20):     # ballast outside the migrating slot
            cluster.call("SET", f"other{i}", "v")
        total = cluster.call("DBSIZE")
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(len(keys))    # both shards now hold copies
        assert cluster.call("DBSIZE") == total
        migrator.finish()
        assert cluster.call("DBSIZE") == total

    def test_keys_excludes_importing_slots(self):
        cluster, keys, slot, source, target = make_cluster_with_slot()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(len(keys))
        found = cluster.call("KEYS", "*")
        assert sorted(found) == sorted(k.encode() for k in keys)
        migrator.finish()
        assert sorted(cluster.call("KEYS", "*")) == \
            sorted(k.encode() for k in keys)


class TestClusterAdapterDuringMigration:
    def test_ycsb_workload_survives_a_live_migration(self):
        cluster = build_cluster(2)
        adapter = ClusterAdapter(cluster, pipeline_depth=4)
        keys = tagged_keys("ycsb", 8, prefix="user")
        slot = slot_for_key(keys[0])
        target = 1 - cluster.slots.shard_of_slot(slot)
        for key in keys:
            adapter.insert(key, {"f0": b"a", "f1": b"b"})
        adapter.flush()
        migrator = SlotMigrator(cluster, slot, target)
        migrator.step(3)
        # Read-your-writes across the migration boundary.
        adapter.update(keys[0], {"f0": b"updated"})
        assert adapter.read(keys[0])["f0"] == b"updated"
        migrator.finish()
        assert adapter.read(keys[0])["f0"] == b"updated"
        assert adapter.read(keys[5])["f1"] == b"b"
        assert adapter.redirects_followed >= 1


def gdpr_fixture(tag="gdpr", subjects=("alice", "bob"), per_subject=3):
    store = ShardedGDPRStore(num_shards=2)
    keys = {}
    for subject in subjects:
        keys[subject] = [f"{{{tag}}}:{subject}:{i}"
                         for i in range(per_subject)]
        for key in keys[subject]:
            store.put(key, f"{subject}-data".encode(),
                      GDPRMetadata(owner=subject,
                                   purposes=frozenset({"service"})))
    slot = slot_for_key(f"{{{tag}}}:x")
    source = store.slots.shard_of_slot(slot)
    return store, keys, slot, source, 1 - source


class TestGDPRMigration:
    def test_metadata_and_values_move_together(self):
        store, keys, slot, source, target = gdpr_fixture()
        receipt = store.migrate_slot(slot, target)
        assert len(receipt.keys_moved) == 6
        assert store.slots.shard_of_slot(slot) == target
        for key in keys["alice"]:
            record = store.get(key)
            assert record.value == b"alice-data"
            assert record.metadata.owner == "alice"
            assert store.shards[target].index.get_metadata(key) \
                is not None
            assert store.shards[source].index.get_metadata(key) is None
        assert store.shards_of_subject("alice") == [target]

    def test_handoff_recorded_in_both_audit_chains(self):
        store, keys, slot, source, target = gdpr_fixture()
        store.migrate_slot(slot, target)
        store.verify_audit_chains()     # chains intact on both shards
        source_ops = [r.operation
                      for r in store.shards[source].audit.records()]
        target_ops = [r.operation
                      for r in store.shards[target].audit.records()]
        assert source_ops.count("migrate-out") == 6
        assert target_ops.count("migrate-in") == 6
        assert "migrate-begin" in source_ops and \
            "migrate-end" in source_ops
        assert "migrate-begin" in target_ops and \
            "migrate-end" in target_ops

    def test_rights_fan_out_sees_shadow_copies_mid_migration(self):
        store, keys, slot, source, target = gdpr_fixture()
        migrator = store.begin_slot_migration(slot, target)
        migrator.step(6)
        assert store.shards_of_subject("alice") == [source, target]
        report = store.access_report("alice")
        assert len(report.records) == 3     # no double counting
        migrator.finish()

    def test_erasure_mid_migration_reaches_both_copies(self):
        """The acceptance criterion: an Art. 17 erasure issued while the
        slot migrates leaves zero recoverable copies on either shard."""
        store, keys, slot, source, target = gdpr_fixture()
        migrator = store.begin_slot_migration(slot, target)
        migrator.step(3)    # some copies already on the target
        receipt = store.erase_subject("alice")
        # The receipt lists exactly the shards that recorded an erasure;
        # the source's delete-cascade may have evicted the target's
        # shadows before its own erasure ran (audited as migrate-evict).
        assert source in receipt.shards_touched
        assert receipt.shards_touched == sorted(receipt.per_shard)
        final = migrator.finish()
        # Bob's records made it; alice's are gone everywhere.
        assert store.subject_exists("bob")
        assert not store.subject_exists("alice")
        for shard in store.shards:
            for key in keys["alice"]:
                assert shard.kv.execute("GET", key) is None
                assert shard.index.get_metadata(key) is None
        # Crypto-erasure voided the subject's key: even residual AOF
        # ciphertext on the source is unreadable forever.
        assert receipt.crypto_erased
        with pytest.raises(KeyNotFoundError):
            store.keystore.cipher_for("alice", create=False)
        store.verify_audit_chains()
        assert "migrate-evict" in [
            r.operation for r in store.shards[target].audit.records()]

    def test_erasure_after_flip_still_complete(self):
        store, keys, slot, source, target = gdpr_fixture()
        store.migrate_slot(slot, target)
        receipt = store.erase_subject("alice")
        assert receipt.shards_touched == [target]
        assert not store.subject_exists("alice")
        assert store.subject_exists("bob")

    def test_new_records_mid_migration_are_born_on_target(self):
        store, keys, slot, source, target = gdpr_fixture()
        migrator = store.begin_slot_migration(slot, target)
        migrator.step(2)
        newkey = "{gdpr}:carol:0"
        assert slot_for_key(newkey) == slot
        store.put(newkey, b"carol-data",
                  GDPRMetadata(owner="carol",
                               purposes=frozenset({"service"})))
        assert store.shards_of_subject("carol") == [target]
        migrator.finish()
        assert store.get(newkey).value == b"carol-data"

    def test_abort_leaves_gdpr_state_consistent(self):
        store, keys, slot, source, target = gdpr_fixture()
        migrator = store.begin_slot_migration(slot, target)
        migrator.step(4)
        receipt = migrator.abort()
        assert receipt.aborted
        assert store.slots.shard_of_slot(slot) == source
        assert store.shards_of_subject("alice") == [source]
        assert len(store.access_report("alice").records) == 3
        store.verify_audit_chains()

    def test_abort_repatriates_records_born_on_target(self):
        store, keys, slot, source, target = gdpr_fixture()
        migrator = store.begin_slot_migration(slot, target)
        migrator.step(2)
        newkey = "{gdpr}:carol:0"
        store.put(newkey, b"carol-data",
                  GDPRMetadata(owner="carol",
                               purposes=frozenset({"service"})))
        assert store.shards_of_subject("carol") == [target]
        migrator.abort()
        assert store.shards_of_subject("carol") == [source]
        assert store.get(newkey).value == b"carol-data"
        assert store.shards[target].index.get_metadata(newkey) is None
        store.verify_audit_chains()
        assert "migrate-return" in [
            r.operation for r in store.shards[source].audit.records()]

    def test_receipt_reports_residual_source_ciphertext(self):
        store, keys, slot, source, target = gdpr_fixture()
        receipt = store.migrate_slot(slot, target)
        # The source AOF still holds (sealed) bytes of the moved keys
        # until a rewrite: exactly the paper's section 4.3 concern.
        assert receipt.residual_in_source_aof
        store.shards[source].kv.rewrite_aof()
        assert not any(
            store.shards[source].kv.aof_log.read_all().find(
                key.encode()) >= 0
            for key in receipt.keys_moved)
