"""Tests for the cluster client: routing, pipelining economics, and the
parallel-shard clock model."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ClusterError, CrossSlotError
from repro.common.resp import RespError, SimpleString
from repro.cluster import SlotMap, build_cluster
from repro.kvstore import KeyValueStore, StoreConfig


def spread_keys(cluster, count=64):
    return [f"k{i}" for i in range(count)]


class TestRouting:
    def test_set_get_round_trip(self):
        cluster = build_cluster(3)
        assert cluster.call("SET", "k", "v") == SimpleString("OK")
        assert cluster.call("GET", "k") == b"v"

    def test_keys_land_on_their_slot_owner(self):
        cluster = build_cluster(4)
        for key in spread_keys(cluster):
            cluster.call("SET", key, "v")
        sizes = cluster.keyspace_sizes()
        assert sum(sizes) == 64
        assert all(size > 0 for size in sizes)  # 64 keys spread over 4
        for key in spread_keys(cluster):
            shard = cluster.shard_for(key)
            node = cluster.nodes[shard]
            assert node.store.execute("GET", key) == b"v"

    def test_cross_slot_multikey_rejected(self):
        cluster = build_cluster(2)
        # Find two keys on different shards.
        keys = spread_keys(cluster)
        a = keys[0]
        b = next(k for k in keys
                 if cluster.shard_for(k) != cluster.shard_for(a))
        with pytest.raises(CrossSlotError):
            cluster.call("MGET", a, b)

    def test_hash_tags_allow_multikey(self):
        cluster = build_cluster(4)
        cluster.call("MSET", "{user}a", "1", "{user}b", "2")
        assert cluster.call("MGET", "{user}a", "{user}b") == [b"1", b"2"]

    def test_keyless_commands_route_to_shard_zero(self):
        cluster = build_cluster(3)
        assert cluster.call("PING") == SimpleString("PONG")
        assert cluster.nodes[0].store.stats.commands_processed == 1

    def test_explicit_shard_pinning(self):
        cluster = build_cluster(3)
        assert "repro_version" in cluster.call(
            "INFO", shard=2).decode("utf-8")

    def test_errors_raised_and_returned(self):
        cluster = build_cluster(2)
        with pytest.raises(RespError):
            cluster.call("NOSUCHCMD", "k")
        reply = cluster.call("NOSUCHCMD", "k", raise_errors=False)
        assert isinstance(reply, RespError)

    def test_slot_map_must_cover_nodes(self):
        slot_map = SlotMap.even(4)
        with pytest.raises(ClusterError):
            build_cluster(2, slot_map=slot_map)

    def test_cross_slot_rename_rejected(self):
        cluster = build_cluster(4)
        keys = spread_keys(cluster)
        source = keys[0]
        cluster.call("SET", source, "v")
        target = next(k for k in keys
                      if cluster.shard_for(k) != cluster.shard_for(source))
        with pytest.raises(CrossSlotError):
            cluster.call("RENAME", source, target)
        # Tagged (same-slot) renames go through.
        cluster.call("SET", "{t}old", "v")
        cluster.call("RENAME", "{t}old", "{t}new")
        assert cluster.call("GET", "{t}new") == b"v"


class TestBroadcastCommands:
    def populate(self, num_shards=3, count=24):
        cluster = build_cluster(num_shards)
        for key in [f"k{i}" for i in range(count)]:
            cluster.call("SET", key, "v")
        return cluster

    def test_flushall_reaches_every_shard(self):
        cluster = self.populate()
        assert cluster.call("FLUSHALL") == SimpleString("OK")
        assert cluster.keyspace_sizes() == [0, 0, 0]

    def test_dbsize_sums_across_shards(self):
        cluster = self.populate(count=24)
        assert cluster.call("DBSIZE") == 24

    def test_keys_merges_across_shards(self):
        cluster = self.populate(count=10)
        found = sorted(cluster.call("KEYS", "*"))
        assert found == sorted(f"k{i}".encode() for i in range(10))

    def test_scan_and_randomkey_need_a_pinned_shard(self):
        cluster = self.populate()
        with pytest.raises(ClusterError):
            cluster.call("SCAN", "0")
        with pytest.raises(ClusterError):
            cluster.call("RANDOMKEY")
        # Pinned to one shard they behave as single-node commands.
        cursor, page = cluster.call("SCAN", "0", shard=1)
        assert isinstance(page, list)
        assert cluster.call("RANDOMKEY", shard=1) is not None

    def test_broadcasts_rejected_in_pipelines(self):
        cluster = self.populate()
        with pytest.raises(ClusterError):
            cluster.pipeline().call("FLUSHALL")


class TestPipelining:
    def test_pipeline_mixed_errors_kept_in_position(self):
        cluster = build_cluster(3)
        pipeline = cluster.pipeline()
        pipeline.call("SET", "a", "1").call("NOSUCHCMD", "a")
        pipeline.call("GET", "a")
        replies = pipeline.execute(raise_errors=False)
        assert replies[0] == SimpleString("OK")
        assert isinstance(replies[1], RespError)
        assert replies[2] == b"1"

    def test_pipeline_raises_on_error_by_default(self):
        cluster = build_cluster(2)
        with pytest.raises(RespError):
            cluster.pipeline().call("NOSUCHCMD", "k").execute()

    def test_depth_amortizes_round_trips(self):
        """The acceptance ratio: depth-8 batches beat depth-1 on the same
        shard count because the channel is paid per batch, not per op."""
        ops = [("SET", f"k{i}", "v") for i in range(64)]
        one_by_one = build_cluster(2)
        for op in ops:
            one_by_one.call(*op)
        batched = build_cluster(2)
        for start in range(0, len(ops), 8):
            pipeline = batched.pipeline()
            for op in ops[start:start + 8]:
                pipeline.call(*op)
            pipeline.execute()
        assert batched.clock.now() < one_by_one.clock.now()

    def test_more_shards_run_batches_concurrently(self):
        """With per-shard clocks a batch costs the slowest shard, so the
        same pipelined workload finishes sooner on more shards."""
        def elapsed(num_shards):
            cluster = build_cluster(
                num_shards,
                store_factory=lambda i, clock: KeyValueStore(
                    StoreConfig(command_cpu_cost=25e-6), clock=clock))
            for start in range(0, 64, 16):
                pipeline = cluster.pipeline()
                for i in range(start, start + 16):
                    pipeline.call("SET", f"k{i}", "v")
                pipeline.execute()
            return cluster.clock.now()

        assert elapsed(4) < elapsed(1)

    def test_serialized_mode_shares_one_clock(self):
        clock = SimClock()
        cluster = build_cluster(3, clock=clock, parallel=False)
        cluster.call("SET", "k", "v")
        assert all(node.clock is clock for node in cluster.nodes)
        assert cluster.call("GET", "k") == b"v"

    def test_sync_brings_idle_shards_forward(self):
        cluster = build_cluster(2)
        cluster.call("SET", "k", "v" * 1000)
        cluster.sync()
        now = cluster.clock.now()
        assert all(node.clock.now() == now for node in cluster.nodes)
