"""Property-based tests over cluster invariants: every key owns exactly
one slot/shard, routing moves only via explicit resharding, and pipelined
batches preserve request order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    NUM_SLOTS,
    SlotMap,
    build_cluster,
    hash_tag,
    slot_for_key,
)

keys = st.binary(min_size=1, max_size=16)
tags = st.binary(min_size=1, max_size=8).filter(
    lambda tag: b"{" not in tag and b"}" not in tag)


@given(keys)
@settings(max_examples=100, deadline=None)
def test_every_key_maps_to_exactly_one_slot_and_shard(key):
    """Slot assignment is total, in range, and deterministic."""
    slot = slot_for_key(key)
    assert 0 <= slot < NUM_SLOTS
    assert slot == slot_for_key(key)
    slot_map = SlotMap.even(5)
    shard = slot_map.shard_for_key(key)
    assert 0 <= shard < 5
    assert shard == slot_map.shard_of_slot(slot)


@given(st.integers(1, 16))
@settings(max_examples=16, deadline=None)
def test_even_map_partitions_all_slots(num_shards):
    """The even layout is a partition: every slot owned, counts sum to
    NUM_SLOTS, and no shard is more than one slot off a perfect split."""
    counts = SlotMap.even(num_shards).slot_counts()
    assert sorted(counts) == list(range(num_shards))
    assert sum(counts.values()) == NUM_SLOTS
    assert max(counts.values()) - min(counts.values()) <= 1


@given(tags, st.binary(max_size=8), st.binary(max_size=8))
@settings(max_examples=60, deadline=None)
def test_hash_tags_colocate_keys(tag, suffix_a, suffix_b):
    """Keys sharing a {hash tag} always land in the same slot."""
    assert hash_tag(b"{" + tag + b"}" + suffix_a) == tag
    assert slot_for_key(b"{" + tag + b"}" + suffix_a) == \
        slot_for_key(b"{" + tag + b"}" + suffix_b)


@given(st.lists(keys, min_size=1, max_size=20, unique=True),
       st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_routing_stable_until_explicit_reshard(sample, num_shards):
    """Adding a shard never reroutes a key; only an explicit slot
    assignment does, and then exactly the moved slots reroute."""
    slot_map = SlotMap.even(num_shards)
    before = {key: slot_map.shard_for_key(key) for key in sample}
    new_shard = slot_map.add_shard()
    assert {key: slot_map.shard_for_key(key) for key in sample} == before
    # Explicitly reshard the slots of the first sampled key.
    moved_slot = slot_for_key(sample[0])
    slot_map.assign([moved_slot], new_shard)
    for key in sample:
        expected = (new_shard if slot_for_key(key) == moved_slot
                    else before[key])
        assert slot_map.shard_for_key(key) == expected


@given(st.lists(st.integers(0, 199), min_size=1, max_size=24),
       st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_pipeline_replies_arrive_in_request_order(key_ids, num_shards):
    """A pipelined batch's replies line up index-for-index with its
    requests, regardless of how the batch scatters over shards."""
    cluster = build_cluster(num_shards)
    seed = cluster.pipeline()
    for key_id in sorted(set(key_ids)):
        seed.call("SET", f"k{key_id}", f"v{key_id}")
    seed.execute()
    pipeline = cluster.pipeline()
    for key_id in key_ids:
        pipeline.call("GET", f"k{key_id}")
    replies = pipeline.execute()
    assert replies == [f"v{key_id}".encode() for key_id in key_ids]
