"""Tests for multi-core shard execution (the worker pool).

Covers the dispatch rules (keyspace partition, control, barrier), RESP
reply ordering, the worker-count-1 exact-parity guarantee, the ceiling
raise with more cores, adaptive batching, live worker raises, round-robin
fairness under a flood, and seeded determinism.
"""

import pytest

from repro.cluster import (
    SlotMap,
    WorkerPool,
    WorkerPoolConfig,
    build_cluster,
    slot_for_key,
)
from repro.cluster.slots import SlotPlacement
from repro.cluster.workers import (
    BARRIER,
    ROUTE_BARRIER,
    ROUTE_CONTROL,
    classify,
    route_workers,
    worker_for,
)
from repro.common.clock import ShardClock, SimClock
from repro.common.errors import ClusterError
from repro.device.append_log import AppendLog
from repro.device.latency import INTEL_750_SSD
from repro.kvstore import KeyValueStore, StoreConfig, connect_event
from repro.ycsb import OpenLoopRunner, WORKLOAD_B

CPU = 25e-6          # one core's ceiling = 1/CPU = 40 kops/s


def cpu_factory(index, clock):
    return KeyValueStore(StoreConfig(command_cpu_cost=CPU, seed=index),
                         clock=clock)


def make_pool_server(workers=2, cpu=CPU, connections=2, **pool_opts):
    """A raw event-loop server with a worker pool attached."""
    scheduler = SimClock()
    shard_clock = ShardClock(0.0, workers=workers)
    store = KeyValueStore(StoreConfig(command_cpu_cost=cpu),
                          clock=shard_clock)
    server, conns = connect_event(store, scheduler=scheduler,
                                  connections=connections)
    pool = WorkerPool(shard_clock,
                      WorkerPoolConfig(workers=workers, **pool_opts))
    server.attach_workers(pool)
    return server, conns, pool, shard_clock


def run_openloop(workers=None, clients=8, rate=60_000.0, ops=300,
                 records=60, seed=42, **cluster_opts):
    cluster = build_cluster(1, store_factory=cpu_factory,
                            event_driven=True, latency=10e-6,
                            workers=workers, **cluster_opts)
    spec = WORKLOAD_B.scaled(record_count=records, operation_count=ops)
    runner = OpenLoopRunner(cluster, spec, clients=clients,
                            arrival_rate=rate, seed=seed)
    runner.preload()
    return cluster, runner.run(ops)


class TestRouting:
    def test_single_key_commands_route_by_slot(self):
        route = classify([b"GET", b"user:1"])
        assert route == slot_for_key(b"user:1")
        assert worker_for(route, 4) == route % 4

    def test_same_slot_multikey_rides_one_worker(self):
        route = classify([b"MSET", b"{t}a", b"1", b"{t}b", b"2"])
        assert isinstance(route, int)

    def test_cross_worker_multikey_is_a_barrier(self):
        keys = [b"a", b"b", b"c", b"d", b"e"]
        route = classify([b"MSET"] + [b for k in keys for b in (k, k)])
        assert isinstance(route, tuple)
        # Slots differing mod K on at least one worker count.
        assert any(worker_for(route, k) == BARRIER for k in (2, 3, 4))

    def test_multikey_route_survives_worker_raises(self):
        # The token is the slot set, so re-resolving against a different
        # worker count is well defined either way.
        route = classify([b"MSET", b"x", b"1", b"y", b"2"])
        for count in (1, 2, 4, 8):
            assert worker_for(route, count) in \
                set(range(count)) | {BARRIER}

    def test_control_and_global_commands(self):
        assert classify([b"PING"]) == ROUTE_CONTROL
        assert classify([b"CONFIG", b"GET", b"appendonly"]) \
            == ROUTE_CONTROL
        assert worker_for(ROUTE_CONTROL, 4) == 0
        for name in (b"FLUSHALL", b"DBSIZE", b"KEYS", b"SCAN",
                     b"RANDOMKEY", b"BGREWRITEAOF", b"SAVE"):
            assert classify([name]) == ROUTE_BARRIER, name
        assert worker_for(ROUTE_BARRIER, 4) == BARRIER

    def test_malformed_requests_are_control(self):
        assert classify("not-a-list") == ROUTE_CONTROL
        assert classify([b"GET", 7]) == ROUTE_CONTROL
        assert classify([]) == ROUTE_CONTROL

    def test_worker_one_everything_lands_on_worker_zero(self):
        for request in ([b"GET", b"k"], [b"PING"],
                        [b"MSET", b"x", b"1", b"y", b"2"]):
            route = classify(request)
            if route != ROUTE_BARRIER:
                assert worker_for(route, 1) == 0


class TestRouteWorkers:
    def test_static_matches_slot_mod_k(self):
        route = classify([b"GET", b"user:1"])
        for count in (1, 2, 4):
            assert route_workers(route, count) == (route % count,)
            assert worker_for(route, count) == route % count

    def test_control_and_barrier_tokens(self):
        assert route_workers(ROUTE_CONTROL, 4) == (0,)
        assert route_workers(ROUTE_BARRIER, 4) == (BARRIER,)

    def test_classify_tuple_route_is_the_sorted_slot_set(self):
        keys = [b"alpha", b"beta", b"gamma"]
        request = [b"MSET"] + [part for key in keys
                               for part in (key, key)]
        route = classify(request)
        assert route == tuple(sorted({slot_for_key(key)
                                      for key in keys}))

    def test_tuple_route_collapses_or_barriers_per_worker_count(self):
        # Slots 2 and 6 agree mod 2 and mod 4; 2 and 7 never agree.
        assert route_workers((2, 6), 2) == (0,)
        assert route_workers((2, 6), 4) == (2,)
        assert route_workers((2, 7), 2) == (BARRIER,)

    def test_placement_override_rehomes_and_barriers(self):
        placement = SlotPlacement(2)
        placement.assign(2, 1)
        # Single-key traffic follows the override...
        assert route_workers(2, 2, placement) == (1,)
        # ...so a multikey route whose slots used to share a core now
        # straddles two and degrades to a barrier...
        assert route_workers((2, 6), 2, placement) == (BARRIER,)
        # ...while one whose slots are re-homed together rides a core.
        placement.assign(7, 1)
        assert route_workers((2, 7), 2, placement) == (1,)

    def test_split_fans_reads_only(self):
        placement = SlotPlacement(2)
        placement.split(3, (0, 1))
        assert route_workers(3, 2, placement, readonly=True) == (0, 1)
        assert route_workers(3, 2, placement, readonly=False) == (1,)


def _key_on_worker(worker, count):
    """A key whose slot lands on ``worker`` under ``slot % count``."""
    for number in range(1000):
        key = f"k{number}"
        if slot_for_key(key.encode()) % count == worker:
            return key
    raise AssertionError("no key found")


class TestRouteCacheInvalidation:
    def test_cached_route_repartitions_after_shed(self):
        server, (conn, _), pool, _ = make_pool_server(workers=2)
        key = _key_on_worker(1, 2)
        conn.call("SET", key, "v")      # warms the resolved-route cache
        route, readonly = pool.route_memo.classify([b"GET",
                                                    key.encode()])
        assert pool._resolve(route, readonly) == (route % 2,)
        pool.remove_worker()
        server.scheduler.run_until_idle()
        # The regression this guards: the cached candidate set must be
        # dropped with the shed worker, not keep pointing at it.
        assert pool._resolve(route, readonly) == (0,)
        conn.replies.clear()
        assert conn.call("GET", key) == b"v"

    def test_cached_route_repartitions_after_raise(self):
        server, (conn, _), pool, _ = make_pool_server(workers=1)
        key = _key_on_worker(1, 2)      # lands on worker 1 once K=2
        conn.call("SET", key, "v")
        route, readonly = pool.route_memo.classify([b"GET",
                                                    key.encode()])
        assert pool._resolve(route, readonly) == (0,)
        pool.add_worker()
        server.scheduler.run_until_idle()
        assert pool._resolve(route, readonly) == (1,)
        conn.replies.clear()
        assert conn.call("GET", key) == b"v"


class TestReplyOrderAndBarriers:
    def test_pipelined_replies_in_request_order_across_workers(self):
        server, (conn, _), pool, _ = make_pool_server(workers=4)
        for index in range(12):
            conn.send_command("SET", f"k{index}", index)
        server.scheduler.run_until_idle()
        assert list(conn.replies) == ["OK"] * 12
        conn.replies.clear()
        for index in range(12):
            conn.send_command("GET", f"k{index}")
        server.scheduler.run_until_idle()
        assert list(conn.replies) \
            == [str(i).encode() for i in range(12)]
        assert pool.commands_served() == 24

    def test_barrier_between_writes_keeps_order(self):
        server, (conn, _), pool, _ = make_pool_server(workers=4)
        conn.send_command("SET", "a", "1")
        conn.send_command("SET", "b", "2")
        conn.send_command("DBSIZE")
        conn.send_command("SET", "c", "3")
        server.scheduler.run_until_idle()
        assert list(conn.replies) == ["OK", "OK", 2, "OK"]
        assert pool.barrier_commands == 1

    def test_barrier_charges_every_core(self):
        server, (conn, _), pool, shard_clock = make_pool_server(workers=4)
        for index in range(8):
            conn.send_command("SET", f"k{index}", index)
        server.scheduler.run_until_idle()
        # Cores diverged while serving the partitioned writes...
        frontiers = {w.now() for w in shard_clock.workers}
        conn.send_command("FLUSHALL")
        server.scheduler.run_until_idle()
        # ...but the whole-keyspace command stopped the world: every
        # core sits at the same (advanced) frontier afterwards.
        aligned = {w.now() for w in shard_clock.workers}
        assert len(aligned) == 1
        assert aligned.pop() >= max(frontiers)

    def test_flood_cannot_starve_neighbour(self):
        """Round-robin holds when both connections target the *same*
        worker: the single op completes long before the flood drains."""
        server, (flood, single), pool, _ = make_pool_server(workers=4)
        finishes = {}
        flood.on_reply = lambda _: finishes.setdefault(
            "flood", []).append(server.scheduler.now())
        single.on_reply = lambda _: finishes.setdefault(
            "single", []).append(server.scheduler.now())
        for _ in range(8):
            flood.send_command("SET", "a", "1")
        single.send_command("SET", "a", "2")
        server.scheduler.run_until_idle()
        assert len(finishes["flood"]) == 8
        assert finishes["single"][0] < finishes["flood"][2]

    def test_flood_on_one_worker_does_not_block_other_workers(self):
        """Commands for an idle core run concurrently with a flood
        pinned to a busy core -- the point of the pool."""
        server, (flood, other), pool, shard_clock = \
            make_pool_server(workers=2)
        hot = next(f"h{i}" for i in range(64)
                   if slot_for_key(f"h{i}".encode()) % 2 == 0)
        cold = next(f"c{i}" for i in range(64)
                    if slot_for_key(f"c{i}".encode()) % 2 == 1)
        for _ in range(10):
            flood.send_command("SET", hot, "1")
        for _ in range(10):
            other.send_command("SET", cold, "2")
        server.scheduler.run_until_idle()
        # 20 commands at CPU each, but the two streams ran on two cores:
        # the makespan is ~10 * CPU, not ~20 * CPU.
        assert server.scheduler.now() < 15 * CPU
        rows = {row["worker"]: row["commands"]
                for row in pool.worker_rows()}
        assert rows[0] == 10 and rows[1] == 10


class TestSingleWorkerParity:
    def test_worker_one_reproduces_legacy_loop_exactly(self):
        _, legacy = run_openloop(workers=None)
        _, pooled = run_openloop(workers=1)
        assert legacy.summary() == pooled.summary()

    def test_worker_one_matches_legacy_at_saturation(self):
        _, legacy = run_openloop(workers=None, rate=80_000.0, ops=400)
        _, pooled = run_openloop(workers=1, rate=80_000.0, ops=400)
        assert legacy.summary() == pooled.summary()


class TestCeiling:
    def test_four_workers_at_least_double_the_ceiling(self):
        _, one = run_openloop(workers=1, clients=16, rate=160_000.0,
                              ops=400)
        _, four = run_openloop(workers=4, clients=16, rate=160_000.0,
                               ops=400)
        assert one.throughput == pytest.approx(1.0 / CPU, rel=0.05)
        assert four.throughput > 2.0 * one.throughput

    def test_report_carries_worker_attribution(self):
        cluster, report = run_openloop(workers=4, clients=16,
                                       rate=120_000.0, ops=400)
        assert report.workers == 4
        assert len(report.worker_rows) == 4
        served = sum(row["commands"] for row in report.worker_rows)
        assert served >= report.completed
        assert report.server_queue_delay is not None
        assert report.server_queue_delay.count >= report.completed
        summary = report.summary_with_workers()
        assert summary["workers"] == 4
        assert len(summary["worker_rows"]) == 4
        assert "server_queue_delay" in summary
        # The legacy summary() stays byte-stable for the artifacts.
        assert "worker_rows" not in report.summary()


class TestAdaptiveBatching:
    def test_batch_grows_under_backlog(self):
        server, (conn, _), pool, _ = make_pool_server(
            workers=1, adaptive_batch=True, dispatch_overhead=5e-6)
        for index in range(64):
            conn.send_command("SET", f"k{index}", index)
        server.scheduler.run_until_idle()
        # Burst of 64 with a batch controller: far fewer dispatches
        # than commands (the legacy loop would pay 64).
        worker = pool.workers[0]
        assert worker.commands == 64
        assert worker.dispatches < 16
        assert worker.batch > 1

    def test_batch_shrinks_when_delay_is_low(self):
        server, (conn, _), pool, _ = make_pool_server(
            workers=1, adaptive_batch=True, dispatch_overhead=5e-6)
        for index in range(64):
            conn.send_command("SET", f"k{index}", index)
        server.scheduler.run_until_idle()
        grown = pool.workers[0].batch
        assert grown > 1
        # One-at-a-time traffic: head delay stays under batch_low_delay,
        # so the budget decays back toward min_batch.
        for index in range(grown + 8):
            conn.send_command("GET", f"k{index}")
            server.scheduler.run_until_idle()
        assert pool.workers[0].batch < grown

    def test_fixed_batch_without_flag(self):
        server, (conn, _), pool, _ = make_pool_server(
            workers=1, adaptive_batch=False)
        for index in range(32):
            conn.send_command("SET", f"k{index}", index)
        server.scheduler.run_until_idle()
        assert pool.workers[0].batch == 1
        assert pool.workers[0].dispatches == 32

    def test_batched_replies_flush_in_order(self):
        server, (conn, _), pool, _ = make_pool_server(
            workers=2, adaptive_batch=True, dispatch_overhead=5e-6)
        for index in range(32):
            conn.send_command("SET", f"k{index}", index)
        for index in range(32):
            conn.send_command("GET", f"k{index}")
        server.scheduler.run_until_idle()
        assert list(conn.replies) \
            == ["OK"] * 32 + [str(i).encode() for i in range(32)]


class TestLiveWorkerRaise:
    def test_add_worker_applies_at_quiescence(self):
        server, (conn, _), pool, shard_clock = make_pool_server(workers=1)
        conn.send_command("SET", "a", "1")
        server.scheduler.run_until_idle()
        heading = pool.add_worker()
        assert heading == 2
        server.scheduler.run_until_idle()
        assert pool.num_workers == 2
        assert shard_clock.num_workers == 2
        assert pool.resizes and pool.resizes[-1][1] == 2
        # The raised pool still serves correctly on both cores.
        for index in range(8):
            conn.send_command("SET", f"k{index}", index)
            conn.send_command("GET", f"k{index}")
        server.scheduler.run_until_idle()
        conn.replies.clear()
        assert conn.call("GET", "k3") == b"3"
        assert sum(row["commands"] > 0
                   for row in pool.worker_rows()) == 2

    def test_new_worker_starts_at_the_resize_instant(self):
        server, (conn, _), pool, shard_clock = make_pool_server(workers=1)
        for index in range(16):
            conn.send_command("SET", f"k{index}", index)
        server.scheduler.run_until_idle()
        frontier = shard_clock.now()
        pool.add_worker()
        server.scheduler.run_until_idle()
        assert shard_clock.workers[1].now() >= frontier
        assert shard_clock.workers[1].busy_seconds == 0.0


class TestLiveWorkerShed:
    def test_remove_worker_applies_at_quiescence(self):
        server, (conn, _), pool, shard_clock = make_pool_server(workers=2)
        for index in range(8):
            conn.send_command("SET", f"k{index}", index)
        server.scheduler.run_until_idle()
        heading = pool.remove_worker()
        assert heading == 1
        server.scheduler.run_until_idle()
        assert pool.num_workers == 1
        assert shard_clock.num_workers == 1
        assert pool.resizes and pool.resizes[-1][1] == 1
        assert len(pool.retired) == 1
        # The shed core's history keeps counting in the merged totals.
        assert pool.commands_served() == 8
        # The survivor serves the whole keyspace, in order.
        conn.replies.clear()
        for index in range(8):
            conn.send_command("GET", f"k{index}")
        server.scheduler.run_until_idle()
        assert list(conn.replies) \
            == [str(i).encode() for i in range(8)]

    def test_shed_mid_stream_preserves_reply_order(self):
        server, (conn, _), pool, _ = make_pool_server(workers=2)
        for index in range(16):
            conn.send_command("SET", f"k{index}", index)
        pool.remove_worker()       # requested while commands are queued
        for index in range(16):
            conn.send_command("GET", f"k{index}")
        server.scheduler.run_until_idle()
        assert list(conn.replies) \
            == ["OK"] * 16 + [str(i).encode() for i in range(16)]
        assert pool.num_workers == 1

    def test_never_below_one_worker(self):
        _, _, pool, _ = make_pool_server(workers=1)
        with pytest.raises(ValueError):
            pool.remove_worker()

    def test_shard_clock_frontier_never_goes_backwards(self):
        shard = ShardClock(0.0, workers=2)
        shard.activate(shard.workers[1])
        shard.advance(5.0)          # worker 1 owns the frontier
        shard.release()
        before = shard.now()
        shard.remove_worker()
        assert shard.now() >= before
        assert shard.num_workers == 1

    def test_cold_autoscaled_pool_returns_to_one_worker(self):
        from repro.cluster import Autoscaler, AutoscaleConfig
        cluster = build_cluster(1, store_factory=cpu_factory,
                                event_driven=True, latency=10e-6,
                                workers=2)
        pool = cluster.nodes[0].pool
        scaler = Autoscaler(
            cluster.clock, [pool],
            AutoscaleConfig(interval=1e-3, low_delay=50e-6,
                            cooldown=5e-3))
        spec = WORKLOAD_B.scaled(record_count=40, operation_count=200)
        runner = OpenLoopRunner(cluster, spec, clients=4,
                                arrival_rate=5_000.0, seed=7)
        runner.preload()
        scaler.start()
        report = runner.run(200)
        scaler.stop()
        assert any(event.action == "worker-shed"
                   for event in scaler.events)
        assert pool.num_workers == 1
        # The shed never perturbed the stream: every op completed and
        # none failed (per-connection reply order is what completion
        # accounting rides on).
        assert report.completed == 200
        assert report.failures == 0


class TestAofAttribution:
    def _aof_pool_server(self, workers=2):
        scheduler = SimClock()
        shard_clock = ShardClock(0.0, workers=workers)
        aof_log = AppendLog(clock=shard_clock, latency=INTEL_750_SSD)
        store = KeyValueStore(
            StoreConfig(command_cpu_cost=CPU, appendonly=True,
                        appendfsync="everysec"),
            clock=shard_clock, aof_log=aof_log)
        server, conns = connect_event(store, scheduler=scheduler,
                                      connections=2)
        pool = WorkerPool(shard_clock, WorkerPoolConfig(workers=workers))
        server.attach_workers(pool)
        server.start_cron()
        return server, conns, pool, shard_clock

    def test_cron_fsync_bills_the_writing_worker(self):
        server, (conn, _), pool, shard_clock = self._aof_pool_server()
        write_key = next(f"w{i}" for i in range(64)
                         if slot_for_key(f"w{i}".encode()) % 2 == 1)
        read_key = next(f"r{i}" for i in range(64)
                        if slot_for_key(f"r{i}".encode()) % 2 == 0)
        conn.send_command("SET", write_key, "v")
        conn.send_command("GET", write_key)
        server.scheduler.run_until_idle()
        writer, reader = pool.workers[1], pool.workers[0]
        reader_busy = reader.clock.busy_seconds
        # Carry the daemon cron across the everysec boundary with
        # foreground work that costs nothing itself.
        server.scheduler.schedule_after(1.5, lambda: None, label="work")
        server.scheduler.run_until_idle()
        # The fsync's device time landed on the core that wrote...
        assert writer.aof_seconds >= INTEL_750_SSD.fsync
        assert writer.clock.busy_seconds >= writer.aof_seconds
        # ...and only there: the other core was not stopped.
        assert reader.aof_seconds == 0.0
        assert reader.clock.busy_seconds == reader_busy
        assert pool.worker_rows()[1]["aof_seconds"] == writer.aof_seconds

    def test_attribution_follows_the_last_writer(self):
        server, (conn, _), pool, _ = self._aof_pool_server()
        key_w0 = next(f"a{i}" for i in range(64)
                      if slot_for_key(f"a{i}".encode()) % 2 == 0)
        key_w1 = next(f"b{i}" for i in range(64)
                      if slot_for_key(f"b{i}".encode()) % 2 == 1)
        conn.send_command("SET", key_w1, "1")
        conn.send_command("SET", key_w0, "2")   # worker 0 wrote last
        server.scheduler.run_until_idle()
        server.scheduler.schedule_after(1.5, lambda: None, label="work")
        server.scheduler.run_until_idle()
        assert pool.workers[0].aof_seconds >= INTEL_750_SSD.fsync
        assert pool.workers[1].aof_seconds == 0.0


class TestDeterminism:
    def test_same_seed_same_workers_identical_traces(self):
        def trace():
            cluster = build_cluster(1, store_factory=cpu_factory,
                                    event_driven=True, latency=10e-6,
                                    workers=2, adaptive_batch=True,
                                    dispatch_overhead=2e-6)
            out = cluster.clock.enable_trace()
            spec = WORKLOAD_B.scaled(record_count=40,
                                     operation_count=150)
            runner = OpenLoopRunner(cluster, spec, clients=4,
                                    arrival_rate=70_000.0, seed=11)
            runner.preload()
            runner.run(150)
            return out

        assert trace() == trace()

    def test_same_seed_identical_reports(self):
        _, one = run_openloop(workers=4, rate=100_000.0)
        _, two = run_openloop(workers=4, rate=100_000.0)
        assert one.summary_with_workers() == two.summary_with_workers()

    def test_backlog_accounting_with_pool(self):
        _, report = run_openloop(workers=2, clients=4, rate=100_000.0,
                                 ops=300)
        assert report.admitted == 300
        assert report.completed == 300
        assert report.failures == 0
        assert report.max_backlog >= 0


class TestBuildClusterWiring:
    def test_workers_require_event_driven(self):
        with pytest.raises(ClusterError):
            build_cluster(1, workers=2)

    def test_workers_must_be_positive(self):
        with pytest.raises(ClusterError):
            build_cluster(1, event_driven=True, workers=0)

    def test_pool_attached_per_node(self):
        cluster = build_cluster(2, store_factory=cpu_factory,
                                event_driven=True, workers=3)
        for node in cluster.nodes:
            assert node.pool is not None
            assert node.pool.num_workers == 3
            assert isinstance(node.clock, ShardClock)

    def test_legacy_build_has_no_pool(self):
        cluster = build_cluster(1, store_factory=cpu_factory,
                                event_driven=True)
        assert cluster.nodes[0].pool is None

    def test_pool_rejects_foreign_store_clock(self):
        scheduler = SimClock()
        store = KeyValueStore(StoreConfig(command_cpu_cost=CPU),
                              clock=SimClock())
        server, _ = connect_event(store, scheduler=scheduler,
                                  connections=1)
        pool = WorkerPool(ShardClock(0.0, workers=2))
        with pytest.raises(ValueError, match="ShardClock"):
            server.attach_workers(pool)
