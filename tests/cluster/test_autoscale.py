"""Tests for the queueing-delay autoscaler.

The escalation ladder (worker raise -> scale-out), its rate limits, the
daemon timer's liveness rules, and the two integrations: a WorkerPool
whose p99 recovers after a live worker raise, and a ShardedGDPRStore
that adds a shard and rebalances -- with Art. 17 erasure verified while
the scale-out migrations are still in flight.
"""

import pytest

from repro.cluster import (
    Autoscaler,
    AutoscaleConfig,
    ShardedGDPRStore,
    SignalProbe,
    build_cluster,
    slot_for_key,
)
from repro.common.clock import SimClock
from repro.common.errors import KeyErasedError, UnknownSubjectError
from repro.gdpr import GDPRMetadata
from repro.kvstore import KeyValueStore, StoreConfig
from repro.ycsb import OpenLoopRunner, WORKLOAD_B

CPU = 25e-6


def cpu_factory(index, clock):
    return KeyValueStore(StoreConfig(command_cpu_cost=CPU, seed=index),
                         clock=clock)


class FakeTarget:
    """A pool-shaped target with a dial-a-value EWMA."""

    def __init__(self, ewma=0.0, workers=1):
        self.ewma = ewma
        self._workers = workers
        self.raises = 0
        self.sheds = 0

    def queueing_delay_ewma(self):
        return self.ewma

    @property
    def num_workers(self):
        return self._workers

    def add_worker(self):
        self._workers += 1
        self.raises += 1
        return self._workers

    def remove_worker(self):
        self._workers -= 1
        self.sheds += 1
        return self._workers


def make_scaler(targets, scale_outs=None, **config):
    clock = SimClock()
    calls = [] if scale_outs is None else scale_outs

    def spill(scaler, index):
        calls.append(index)
        return f"spill-{index}"

    scaler = Autoscaler(clock, targets,
                        AutoscaleConfig(**config), scale_out=spill)
    return clock, scaler, calls


class TestEscalationLadder:
    def test_cold_target_triggers_nothing(self):
        _, scaler, calls = make_scaler([FakeTarget(ewma=1e-6)])
        assert scaler.check() is None
        assert scaler.events == [] and calls == []

    def test_hot_target_with_headroom_raises_workers(self):
        target = FakeTarget(ewma=1e-3)
        _, scaler, calls = make_scaler([target], max_workers=4)
        event = scaler.check()
        assert event.action == "worker-raise"
        assert event.signal == 1e-3
        assert target.raises == 1
        assert "2" in event.detail
        assert calls == []

    def test_hot_target_at_max_workers_scales_out(self):
        target = FakeTarget(ewma=1e-3, workers=4)
        _, scaler, calls = make_scaler([target], max_workers=4)
        event = scaler.check()
        assert event.action == "scale-out"
        assert event.detail == "spill-0"
        assert calls == [0]
        assert target.raises == 0

    def test_scale_outs_capped(self):
        target = FakeTarget(ewma=1e-3, workers=4)
        clock, scaler, calls = make_scaler([target], max_workers=4,
                                           cooldown=0.0,
                                           max_scale_outs=1)
        assert scaler.check().action == "scale-out"
        clock.advance(1.0)
        assert scaler.check() is None
        assert calls == [0]

    def test_cooldown_rate_limits_per_target(self):
        target = FakeTarget(ewma=1e-3)
        clock, scaler, _ = make_scaler([target], max_workers=8,
                                       cooldown=0.5)
        assert scaler.check().action == "worker-raise"
        clock.advance(0.1)
        assert scaler.check() is None           # still cooling down
        clock.advance(0.5)
        assert scaler.check().action == "worker-raise"
        assert target.num_workers == 3

    def test_one_action_per_check(self):
        targets = [FakeTarget(ewma=1e-3), FakeTarget(ewma=1e-3)]
        clock, scaler, _ = make_scaler(targets, max_workers=4,
                                       cooldown=10.0)
        first = scaler.check()
        assert first.target == 0
        # The second hot target gets the *next* check; target 0 is in
        # cooldown by then.
        second = scaler.check()
        assert second.target == 1
        assert [t.raises for t in targets] == [1, 1]

    def test_signal_probe_escalates_straight_to_scale_out(self):
        probe = SignalProbe(lambda: 5e-3)
        assert probe.queueing_delay_ewma() == 5e-3
        _, scaler, calls = make_scaler([probe])
        assert scaler.check().action == "scale-out"
        assert calls == [0]

    def test_no_hook_and_no_headroom_means_no_action(self):
        target = FakeTarget(ewma=1e-3, workers=4)
        scaler = Autoscaler(SimClock(), [target],
                            AutoscaleConfig(max_workers=4))
        assert scaler.check() is None

    def test_rejects_non_scheduling_clock(self):
        from repro.common.clock import WallClock
        with pytest.raises(ValueError):
            Autoscaler(WallClock(), [])


class TestScaleDown:
    def test_disabled_by_default(self):
        target = FakeTarget(ewma=1e-6, workers=4)
        clock, scaler, _ = make_scaler([target])
        assert scaler.check() is None
        clock.advance(10.0)
        assert scaler.check() is None
        assert target.sheds == 0

    def test_shed_after_full_cold_window(self):
        target = FakeTarget(ewma=1e-6, workers=3)
        clock, scaler, _ = make_scaler([target], low_delay=50e-6,
                                       cooldown=0.5)
        # First observation starts the cold streak; not actionable yet.
        assert scaler.check() is None
        clock.advance(0.6)
        event = scaler.check()
        assert event.action == "worker-shed"
        assert "2" in event.detail
        assert target.sheds == 1 and target.num_workers == 2

    def test_floor_at_one_worker(self):
        target = FakeTarget(ewma=1e-6, workers=1)
        clock, scaler, _ = make_scaler([target], low_delay=50e-6,
                                       cooldown=0.1)
        assert scaler.check() is None
        clock.advance(1.0)
        assert scaler.check() is None
        assert target.sheds == 0

    def test_warm_sample_resets_the_streak(self):
        target = FakeTarget(ewma=1e-6, workers=2)
        clock, scaler, _ = make_scaler([target], low_delay=50e-6,
                                       high_delay=300e-6, cooldown=0.5)
        assert scaler.check() is None           # streak starts
        clock.advance(0.3)
        target.ewma = 100e-6                    # warm (but not hot)
        assert scaler.check() is None           # streak resets
        clock.advance(0.3)
        target.ewma = 1e-6
        assert scaler.check() is None           # new streak, just begun
        clock.advance(0.3)
        assert scaler.check() is None           # 0.3 cold < cooldown
        clock.advance(0.3)
        assert scaler.check().action == "worker-shed"

    def test_each_shed_needs_a_fresh_streak(self):
        target = FakeTarget(ewma=1e-6, workers=4)
        clock, scaler, _ = make_scaler([target], low_delay=50e-6,
                                       cooldown=0.5)
        scaler.check()
        clock.advance(0.6)
        assert scaler.check().action == "worker-shed"
        clock.advance(0.6)          # past the action cooldown, but the
        assert scaler.check() is None   # streak restarted at the shed
        clock.advance(0.6)
        assert scaler.check().action == "worker-shed"
        assert target.num_workers == 2


class TestDaemonTimer:
    def test_checks_ride_live_events_without_keeping_loop_alive(self):
        clock, scaler, _ = make_scaler([FakeTarget()], interval=1e-3)
        scaler.start()
        # A finite amount of foreground work...
        clock.schedule_after(5.5e-3, lambda: None, label="work")
        clock.run_until_idle()
        # ...carried ~5 daemon checks, and the loop still terminated.
        assert 4 <= scaler.checks <= 6
        assert clock.pending_live_events() == 0

    def test_stop_cancels_the_timer(self):
        clock, scaler, _ = make_scaler([FakeTarget()], interval=1e-3)
        scaler.start()
        clock.schedule_after(2.5e-3, lambda: None, label="work")
        clock.run_until_idle()
        seen = scaler.checks
        scaler.stop()
        clock.schedule_after(5e-3, lambda: None, label="work")
        clock.run_until_idle()
        assert scaler.checks == seen

    def test_start_is_idempotent(self):
        clock, scaler, _ = make_scaler([FakeTarget()], interval=1e-3)
        scaler.start()
        scaler.start()
        clock.schedule_after(1.5e-3, lambda: None, label="work")
        clock.run_until_idle()
        assert scaler.checks == 1


class TestWorkerPoolIntegration:
    def test_ewma_crossing_raises_workers_and_p99_recovers(self):
        cluster = build_cluster(1, store_factory=cpu_factory,
                                event_driven=True, latency=10e-6,
                                workers=1)
        pool = cluster.nodes[0].pool
        scaler = Autoscaler(
            cluster.clock, [pool],
            AutoscaleConfig(interval=1e-3, high_delay=300e-6,
                            max_workers=4, cooldown=2e-3))
        spec = WORKLOAD_B.scaled(record_count=60, operation_count=900)
        runner = OpenLoopRunner(cluster, spec, clients=16,
                                arrival_rate=70_000.0, seed=42)
        runner.preload()
        scaler.start()
        hot = runner.run(300)
        assert pool.num_workers > 1
        assert any(event.action == "worker-raise"
                   for event in scaler.events)
        recovered = runner.run(300)
        assert recovered.latency.percentile(99) \
            < hot.latency.percentile(99)
        assert recovered.throughput > hot.throughput
        scaler.stop()


class TestShardedStoreScaleOut:
    def _populated(self, num_shards=2, keys=24):
        store = ShardedGDPRStore(num_shards=num_shards, clock=SimClock())
        for number in range(keys):
            owner = "alice" if number % 2 == 0 else "bob"
            store.put(f"user:{number}", f"value-{number}".encode(),
                      GDPRMetadata(owner=owner,
                                   purposes=frozenset({"service"})))
        return store

    def test_default_scale_out_adds_shard_and_rebalances(self):
        store = self._populated()
        hot = {"ewma": 0.0}
        scaler = store.attach_autoscaler([lambda: hot["ewma"]],
                                         start=False)
        assert scaler.check() is None
        hot["ewma"] = 1e-3
        event = scaler.check()
        assert event.action == "scale-out"
        assert "shard-add -> 2" in event.detail
        assert store.num_shards == 3
        # The rebalance was scheduled drive=False: migrations are live
        # events still in flight right now.
        assert store.clock.pending_live_events() > 0
        store.clock.run_until_idle()
        moved = [key for key in store.shards[2].index.keys()]
        assert moved    # the new shard actually took keys

    def test_erasure_guarantees_hold_mid_scale_out(self):
        """Art. 17 lands while the scale-out migrations are mid-flight:
        every alice record is erased everywhere (no shadow copy on the
        new shard revives one), bob's survive, audit chains verify on
        all three shards."""
        store = self._populated()
        alice_keys = store.keys_of_subject("alice")
        scaler = store.attach_autoscaler([lambda: 1e-3], start=False)
        assert scaler.check().action == "scale-out"
        assert store.clock.pending_live_events() > 0
        receipt = store.erase_subject("alice")      # mid-migration
        assert sorted(receipt.keys_erased) == sorted(alice_keys)
        store.clock.run_until_idle()                # migrations finish
        assert not store.subject_exists("alice")
        for key in alice_keys:
            for shard in store.shards:
                assert key not in shard.index.keys()
            with pytest.raises(KeyError):
                store.get(key)
        with pytest.raises(UnknownSubjectError):
            store.access_report("alice")
        # The shared keystore remembers the erased id cluster-wide: the
        # grown topology refuses to resurrect the subject.
        with pytest.raises(KeyErasedError):
            store.put("user:999", b"new",
                      GDPRMetadata(owner="alice",
                                   purposes=frozenset({"service"})))
        # The surviving subject still spans the grown topology intact.
        bob_keys = store.keys_of_subject("bob")
        for key in bob_keys:
            assert store.get(key).value == \
                f"value-{key.split(':')[1]}".encode()
        verified = store.verify_audit_chains()
        assert set(verified) == {0, 1, 2}

    def test_autoscaler_daemon_drives_scale_out_under_live_events(self):
        store = self._populated()
        hot = {"ewma": 1e-3}
        store.attach_autoscaler(
            [lambda: hot["ewma"]],
            config=AutoscaleConfig(interval=1e-3, high_delay=300e-6))
        store.clock.schedule_after(3.5e-3, lambda: None, label="work")
        store.clock.run_until_idle()
        assert store.num_shards == 3
        keys = {index: len(list(shard.index.keys()))
                for index, shard in enumerate(store.shards)}
        assert keys[2] > 0

    def test_pool_shaped_signals_pass_through(self):
        store = self._populated()
        probe = FakeTarget(ewma=0.0)
        scaler = store.attach_autoscaler([probe], start=False)
        assert scaler.targets[0] is probe
