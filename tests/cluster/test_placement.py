"""Tests for skew-aware worker placement.

Covers the :class:`SlotPlacement` table (overrides, read splits,
version bumps, resize invalidation), the :class:`Rebalancer` (O(1)
per-slot load accounting, the top-N hot tracker, interval-stepped
decay, greedy LPT re-homing, the degenerate single-hot-slot read
split), the pool integration (rebalances apply at quiescence, reply
order survives, K=1 is immune), the autoscaler's rebalance rung, and
seeded determinism with placement on.
"""

import pytest

from repro.cluster import (
    Autoscaler,
    AutoscaleConfig,
    PlacementPolicy,
    Rebalancer,
    SlotPlacement,
    build_cluster,
    slot_for_key,
)
from repro.common.errors import ClusterError
from repro.ycsb import OpenLoopRunner, WORKLOAD_B

from test_workers import cpu_factory, make_pool_server


class TestSlotPlacement:
    def test_default_is_slot_mod_k(self):
        placement = SlotPlacement(3)
        for slot in (0, 1, 5, 16383):
            assert placement.worker_of_slot(slot) == slot % 3
            assert placement.split_of_slot(slot) is None

    def test_assign_overrides_and_reverts(self):
        placement = SlotPlacement(2)
        placement.assign(4, 1)
        assert placement.worker_of_slot(4) == 1
        assert placement.overrides == {4: 1}
        # Assigning the default home drops the override entirely.
        placement.assign(4, 0)
        assert placement.overrides == {}
        assert placement.worker_of_slot(4) == 0

    def test_version_bumps_on_every_change(self):
        placement = SlotPlacement(2)
        before = placement.version
        placement.assign(4, 1)
        placement.split(3, (0,))
        placement.unsplit(3)
        placement.clear()
        placement.resize(4)
        assert placement.version == before + 5

    def test_split_always_includes_the_home_worker(self):
        placement = SlotPlacement(4)
        placement.split(5, (0, 2))        # home of slot 5 is worker 1
        assert placement.split_of_slot(5) == (0, 1, 2)

    def test_split_validation(self):
        placement = SlotPlacement(2)
        with pytest.raises(ClusterError):
            placement.split(3, (5,))       # unknown worker
        with pytest.raises(ClusterError):
            placement.split(3, (1,))       # fan collapses to the home
        with pytest.raises(ClusterError):
            placement.assign(3, 9)         # unknown worker
        with pytest.raises(ClusterError):
            placement.assign(100_000, 0)   # slot out of range

    def test_resize_drops_overrides_and_splits(self):
        placement = SlotPlacement(2)
        placement.assign(4, 1)
        placement.split(3, (0, 1))
        placement.resize(3)
        assert placement.overrides == {}
        assert placement.splits == {}
        assert placement.worker_of_slot(4) == 4 % 3

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            SlotPlacement(0)
        with pytest.raises(ValueError):
            SlotPlacement(2).resize(0)


class TestRebalancer:
    def test_note_accumulates_and_tracks_top_n(self):
        rebalancer = Rebalancer(SlotPlacement(2),
                                PlacementPolicy(hot_slots=2))
        for slot, billed in ((1, 5e-6), (2, 3e-6), (3, 9e-6),
                             (1, 5e-6)):
            rebalancer.note(slot, billed)
        assert rebalancer.loads == pytest.approx(
            {1: 1e-5, 2: 3e-6, 3: 9e-6})
        # Only the two heaviest slots survive in the hot tracker.
        assert set(rebalancer.hot) == {1, 3}

    def test_maybe_arm_rate_limits_and_decays(self):
        policy = PlacementPolicy(rebalance_interval=1e-3,
                                 slot_load_decay=0.5)
        rebalancer = Rebalancer(SlotPlacement(2), policy)
        rebalancer.note(0, 8e-6)          # both slots home to worker 0
        rebalancer.note(2, 8e-6)
        assert not rebalancer.maybe_arm(5e-4)   # interval not elapsed
        assert rebalancer.maybe_arm(2e-3)       # elapsed + imbalanced
        assert rebalancer.loads[0] == pytest.approx(4e-6)  # decayed
        assert not rebalancer.maybe_arm(2.1e-3)  # rate limited again

    def test_balanced_loads_do_not_arm(self):
        rebalancer = Rebalancer(SlotPlacement(2))
        rebalancer.note(0, 5e-6)          # worker 0
        rebalancer.note(1, 5e-6)          # worker 1
        assert not rebalancer.imbalanced()
        assert rebalancer.apply(0.0).moved == 0

    def test_apply_is_greedy_lpt(self):
        # Four slots all homed to worker 0 of 2, heaviest first lands
        # on the emptiest core: loads 8,6,2,1 -> {8,2} vs {6,1}.
        rebalancer = Rebalancer(SlotPlacement(2))
        for slot, load in ((0, 8e-6), (2, 6e-6), (4, 2e-6), (6, 1e-6)):
            rebalancer.note(slot, load)
        assert rebalancer.imbalanced()
        event = rebalancer.apply(0.0)
        assert event.moved > 0
        per_core = rebalancer.core_loads()
        assert max(per_core) == pytest.approx(9e-6)
        assert min(per_core) == pytest.approx(8e-6)

    def test_dominant_slot_gets_read_split(self):
        rebalancer = Rebalancer(SlotPlacement(2))
        rebalancer.note(5, 9e-6)          # > half the total load
        rebalancer.note(0, 1e-6)
        event = rebalancer.apply(0.0)
        assert event.split_slots == (5,)
        fan = rebalancer.placement.split_of_slot(5)
        assert fan is not None and len(fan) == 2
        # The split dilutes the dominant slot across the fan.
        assert not rebalancer.imbalanced()

    def test_single_worker_never_applies(self):
        rebalancer = Rebalancer(SlotPlacement(1))
        rebalancer.note(0, 1e-3)
        assert not rebalancer.imbalanced()
        assert rebalancer.apply(0.0) is None
        assert rebalancer.events == []


def _hot_key_stream(pool_opts, requests=120):
    """Hammer one key through a 2-core pool with placement enabled."""
    server, (conn, other), pool, _ = make_pool_server(
        workers=2, placement=PlacementPolicy(rebalance_interval=1e-4),
        **pool_opts)
    conn.call("SET", "hot", "v")
    for _ in range(requests):
        conn.send_command("GET", "hot")
        other.send_command("GET", "hot")
    server.scheduler.run_until_idle()
    return server, conn, pool


class TestPoolIntegration:
    def test_single_hot_key_read_splits_across_cores(self):
        _, conn, pool = _hot_key_stream({})
        assert pool.rebalances
        hot_slot = slot_for_key(b"hot")
        assert any(hot_slot in event.split_slots
                   for event in pool.rebalances)
        # Both cores actually served traffic for the one hot slot.
        assert sum(row["commands"] > 0
                   for row in pool.worker_rows()) == 2
        # Replies stayed correct and in order throughout.
        assert set(conn.replies) <= {"OK", b"v"}

    def test_writes_stay_pinned_under_a_split(self):
        server, conn, pool = _hot_key_stream({})
        # Freeze the rebalancer so the home cannot move mid-assert.
        pool.rebalancer._last_check = float("inf")
        home = pool.placement.worker_of_slot(slot_for_key(b"hot"))
        writes_before = [worker.commands for worker in pool.workers]
        conn.replies.clear()
        for number in range(10):
            conn.send_command("SET", "hot", number)
        server.scheduler.run_until_idle()
        served = [worker.commands - before for worker, before
                  in zip(pool.workers, writes_before)]
        assert served[home] == 10
        assert sum(served) == 10

    def test_request_rebalance_contract(self):
        # A huge interval keeps the pool from self-arming, so this
        # exercises the autoscaler-driven path in isolation.
        server, (conn, _), pool, _ = make_pool_server(
            workers=2,
            placement=PlacementPolicy(rebalance_interval=1e9))
        # Balanced (no load at all): nothing to arm, caller escalates.
        assert pool.request_rebalance() is False
        key = None
        for number in range(100):      # a key homed to worker 0
            candidate = f"k{number}"
            if slot_for_key(candidate.encode()) % 2 == 0:
                key = candidate
                break
        for _ in range(50):
            conn.send_command("INCR", key)
        server.scheduler.run_until_idle()
        assert pool.request_rebalance() is True
        server.scheduler.run_until_idle()
        assert pool.rebalances
        # One is already armed-and-applied; a balanced pool declines.
        pool.rebalancer.loads.clear()
        pool.rebalancer.hot.clear()
        assert pool.request_rebalance() is False

    def test_pool_without_placement_has_no_rebalancer(self):
        _, _, pool, _ = make_pool_server(workers=2)
        assert pool.placement is None
        assert pool.rebalancer is None
        assert pool.request_rebalance() is False
        assert pool.rebalances == []

    def test_single_worker_pool_never_rebalances(self):
        server, (conn, _), pool, _ = make_pool_server(
            workers=1, placement=PlacementPolicy(
                rebalance_interval=1e-4))
        for _ in range(60):
            conn.send_command("GET", "hot")
        server.scheduler.run_until_idle()
        assert pool.rebalances == []
        assert pool.request_rebalance() is False

    def test_resize_resets_the_placement_table(self):
        server, _, pool = _hot_key_stream({})
        assert pool.placement.splits or pool.placement.overrides
        pool.add_worker()
        server.scheduler.run_until_idle()
        assert pool.placement.num_workers == 3
        assert pool.placement.overrides == {}
        assert pool.placement.splits == {}


def _skewed_run(placement, seed=42, rate=100_000.0, ops=300):
    cluster = build_cluster(1, store_factory=cpu_factory,
                            event_driven=True, latency=10e-6,
                            workers=4, adaptive_batch=True,
                            placement=placement)
    spec = WORKLOAD_B.scaled(record_count=44, operation_count=ops)
    runner = OpenLoopRunner(cluster, spec, clients=8,
                            arrival_rate=rate, seed=seed)
    runner.preload()
    return cluster, runner.run(ops)


class TestBuildClusterAndDeterminism:
    def test_build_cluster_wires_placement(self):
        cluster, _ = _skewed_run(placement=True, ops=50)
        pool = cluster.nodes[0].pool
        assert pool.placement is not None
        assert isinstance(pool.config.placement, PlacementPolicy)

    def test_build_cluster_accepts_explicit_policy(self):
        policy = PlacementPolicy(hot_slots=4)
        cluster, _ = _skewed_run(placement=policy, ops=50)
        assert cluster.nodes[0].pool.config.placement is policy

    def test_placement_off_leaves_pool_static(self):
        cluster, _ = _skewed_run(placement=None, ops=50)
        assert cluster.nodes[0].pool.placement is None

    def test_same_seed_identical_reports_with_placement(self):
        _, one = _skewed_run(placement=True)
        _, two = _skewed_run(placement=True)
        assert one.summary_with_workers() == two.summary_with_workers()

    def test_placed_run_completes_everything(self):
        cluster, report = _skewed_run(placement=True)
        assert report.completed == 300
        assert report.failures == 0
        assert cluster.nodes[0].pool.rebalances


class _FakeTarget:
    """An autoscale target whose rebalance rung can be scripted."""

    def __init__(self, signal, rebalances):
        self._signal = signal
        self._rebalances = rebalances
        self.num_workers = 2
        self.raised = 0

    def queueing_delay_ewma(self):
        return self._signal

    def request_rebalance(self):
        return self._rebalances

    def add_worker(self):
        self.raised += 1
        self.num_workers += 1
        return self.num_workers


class TestAutoscalerRebalanceRung:
    def _scaler(self, target):
        from repro.common.clock import SimClock
        return Autoscaler(SimClock(), [target],
                          AutoscaleConfig(high_delay=100e-6,
                                          max_workers=4))

    def test_rebalance_preempts_worker_raise(self):
        target = _FakeTarget(signal=5e-3, rebalances=True)
        event = self._scaler(target).check()
        assert event.action == "rebalance"
        assert target.raised == 0

    def test_declined_rebalance_escalates_to_worker_raise(self):
        target = _FakeTarget(signal=5e-3, rebalances=False)
        event = self._scaler(target).check()
        assert event.action == "worker-raise"
        assert target.raised == 1

    def test_real_pool_rung_fires_on_skew(self):
        cluster, _ = _skewed_run(placement=True, ops=60,
                                 rate=150_000.0)
        pool = cluster.nodes[0].pool
        scaler = Autoscaler(cluster.clock, [pool],
                            AutoscaleConfig(high_delay=1e-6,
                                            max_workers=4))
        # Load the rebalancer with a lopsided picture, then check().
        pool.rebalancer.loads.clear()
        pool.rebalancer.hot.clear()
        pool.rebalancer.note(0, 1e-3)
        pool._rebalance_pending = False
        event = scaler.check()
        assert event is not None and event.action == "rebalance"
