"""Integration tests for tenancy at the cluster boundary.

TENANT connection stamping over RESP, admission errors on the wire
(TENANTUNKNOWN / TENANTDENIED / QUOTAEXCEEDED), tenant-scoped keyspace
commands, GDPR fan-out isolation through sharded stores, and the
open-loop driver's per-tenant streams.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.resp import RespError, SimpleString
from repro.cluster import build_cluster
from repro.tenancy import (
    MeteringPipeline,
    TenantGate,
    TenantPolicy,
    TenantQuota,
    TenantRegistry,
)
from repro.ycsb import WorkloadSpec
from repro.ycsb.openloop import OpenLoopRunner


def make_gate(clock, quotas=None):
    registry = TenantRegistry()
    registry.register("acme", quota=(quotas or {}).get("acme"))
    registry.register("globex", quota=(quotas or {}).get("globex"))
    return TenantGate(registry, clock)


def make_tenant_cluster(num_shards=2, quotas=None, **kw):
    clock = SimClock()
    gate = make_gate(clock, quotas)
    cluster = build_cluster(num_shards, clock=clock,
                            tenant_gate=gate, **kw)
    return cluster, gate


class TestTenantStamping:
    def test_tenant_command_scopes_the_connection(self):
        cluster, _ = make_tenant_cluster()
        cluster.set_tenant("acme")
        assert cluster.call("SET", "acme/k", "v") == SimpleString("OK")
        assert cluster.call("GET", "acme/k") == b"v"

    def test_unknown_tenant_refused_at_stamp_time(self):
        cluster, _ = make_tenant_cluster()
        with pytest.raises(RespError, match="TENANTUNKNOWN"):
            cluster.call("TENANT", "nobody", shard=0)

    def test_foreign_namespace_denied(self):
        cluster, gate = make_tenant_cluster()
        cluster.set_tenant("acme")
        with pytest.raises(RespError, match="TENANTDENIED"):
            cluster.call("SET", "globex/k", "v")
        with pytest.raises(RespError, match="TENANTDENIED"):
            cluster.call("GET", "unprefixed-key")
        assert gate.counters_of("acme").denied == 2

    def test_unstamped_connections_bypass_tenancy(self):
        # Operator connections (no TENANT) keep full keyspace access.
        cluster, _ = make_tenant_cluster()
        assert cluster.call("SET", "anything", "v") == SimpleString("OK")
        assert cluster.call("GET", "anything") == b"v"


class TestQuotaOnTheWire:
    def test_rate_quota_returns_quotaexceeded(self):
        cluster, gate = make_tenant_cluster(
            quotas={"acme": TenantQuota(ops_per_sec=100.0, burst=3.0)})
        cluster.set_tenant("acme")
        replies = [cluster.call("GET", "acme/k", raise_errors=False)
                   for _ in range(6)]
        throttled = [reply for reply in replies
                     if isinstance(reply, RespError)
                     and reply.message.startswith("QUOTAEXCEEDED")]
        assert len(throttled) == 3
        assert gate.counters_of("acme").throttled == 3

    def test_key_quota_enforced_through_the_wire(self):
        cluster, _ = make_tenant_cluster(
            quotas={"acme": TenantQuota(max_keys=2)})
        cluster.set_tenant("acme")
        assert cluster.call("SET", "acme/k0", "v") == SimpleString("OK")
        assert cluster.call("SET", "acme/k1", "v") == SimpleString("OK")
        with pytest.raises(RespError, match="key quota"):
            cluster.call("SET", "acme/k2", "v")
        # Deleting frees the slot again.
        assert cluster.call("DEL", "acme/k0") == 1
        assert cluster.call("SET", "acme/k2", "v") == SimpleString("OK")


class TestTenantScopedKeyspace:
    def _populated(self):
        cluster, gate = make_tenant_cluster()
        for tenant in ("acme", "globex"):
            cluster.set_tenant(tenant)
            for number in range(4):
                cluster.call("SET", f"{tenant}/k{number}", "v")
        return cluster

    def test_dbsize_counts_only_the_tenant(self):
        cluster = self._populated()
        cluster.set_tenant("acme")
        total = sum(cluster.call("DBSIZE", shard=shard)
                    for shard in range(len(cluster.nodes)))
        assert total == 4

    def test_keys_filtered_to_the_tenant(self):
        cluster = self._populated()
        cluster.set_tenant("globex")
        seen = []
        for shard in range(len(cluster.nodes)):
            seen.extend(cluster.call("KEYS", "*", shard=shard))
        assert sorted(seen) == [f"globex/k{n}".encode()
                                for n in range(4)]

    def test_scan_filtered_to_the_tenant(self):
        cluster = self._populated()
        cluster.set_tenant("acme")
        seen = []
        for shard in range(len(cluster.nodes)):
            cursor = b"0"
            while True:
                cursor, page = cluster.call(
                    "SCAN", cursor, "COUNT", "100", shard=shard)
                seen.extend(page)
                if cursor == b"0":
                    break
        assert sorted(seen) == [f"acme/k{n}".encode() for n in range(4)]


class TestOpenLoopTenantStreams:
    def test_throttles_counted_apart_from_failures(self):
        clock = SimClock()
        gate = make_gate(
            clock, {"acme": TenantQuota(ops_per_sec=200.0, burst=5.0)})
        cluster = build_cluster(2, clock=clock, event_driven=True,
                                tenant_gate=gate)
        spec = WorkloadSpec(name="tenant-mix", read_proportion=0.5,
                            update_proportion=0.5, record_count=20,
                            operation_count=200)
        runner = OpenLoopRunner(cluster, spec, clients=4,
                                arrival_rate=2000.0, seed=11,
                                tenant="acme")
        report = runner.run()
        # A throttled op still completes its round trip -- the error IS
        # the reply -- so completed covers admitted and throttled alike.
        assert report.completed == 200
        assert 0 < report.throttled < 200
        assert report.failures == 0
        # Admitted traffic stayed in the tenant's namespace.
        assert gate.counters_of("acme").denied == 0

    def test_untenanted_stream_unaffected_by_registry(self):
        clock = SimClock()
        gate = make_gate(clock)
        cluster = build_cluster(2, clock=clock, event_driven=True,
                                tenant_gate=gate)
        spec = WorkloadSpec(name="plain-mix", read_proportion=0.5,
                            update_proportion=0.5, record_count=20,
                            operation_count=100)
        report = OpenLoopRunner(cluster, spec, clients=2,
                                arrival_rate=2000.0, seed=3).run()
        assert report.completed == 100
        assert report.failures == 0 and report.throttled == 0


class TestMeteringAcrossTheCluster:
    def test_wire_traffic_lands_on_the_sealed_chain(self):
        cluster, gate = make_tenant_cluster()
        pipeline = MeteringPipeline(gate, auto_timer=False)
        cluster.set_tenant("acme")
        for number in range(5):
            cluster.call("SET", f"acme/k{number}", "v")
        cluster.set_tenant("globex")
        cluster.call("SET", "globex/k", "v")
        assert pipeline.flush() == 2
        assert pipeline.verify() == 2
        totals = pipeline.totals_of("acme")
        assert totals["write_ops"] == 5
        assert totals["keys_held"] == 5
