"""Fast shape checks over the benchmark drivers (tiny scales).

The real assertions against paper numbers live in ``benchmarks/``; these
tests guarantee the drivers stay runnable and structurally sound under
plain ``pytest tests/``.
"""

import pytest

from repro.bench.calibration import (
    FIGURE1_CONFIGS,
    make_aof_sync,
    make_figure1_system,
    make_inprocess,
    make_luks_tls,
    make_unmodified,
)
from repro.bench.figure1 import PHASE_PLAN, figure1_table, run_config
from repro.bench.figure2 import (
    DEFAULT_SIZES,
    doubling_ratios,
    figure2_table,
    measure_erasure_delay,
    populate_expiring,
    run_figure2,
)
from repro.bench.reporting import normalize, render_series, render_table
from repro.bench.table1 import headline_statistics
from repro.common.clock import SimClock
from repro.kvstore import KeyValueStore, StoreConfig


class TestSystemFactories:
    def test_unmodified_has_no_aof(self):
        system = make_unmodified()
        assert system.store.aof is None
        assert system.client is not None

    def test_aof_sync_logs_reads(self):
        system = make_aof_sync()
        assert system.store.aof is not None
        assert system.store.aof.log_reads is True

    def test_luks_tls_has_volume(self):
        system = make_luks_tls(volume_mb=1)
        assert system.luks is not None
        assert system.luks.unlocked

    def test_luks_snapshot_write(self):
        system = make_luks_tls(volume_mb=1)
        system.store.execute("SET", "k", "v")
        written = system.maybe_snapshot_to_luks()
        assert written > 0

    def test_snapshot_skipped_without_luks(self):
        system = make_unmodified()
        assert system.maybe_snapshot_to_luks() == 0

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            make_figure1_system("quantum")

    def test_all_figure1_configs_buildable(self):
        for config in FIGURE1_CONFIGS:
            assert make_figure1_system(config).store is not None

    def test_inprocess_factory(self):
        system = make_inprocess()
        system.store.execute("SET", "k", "v")
        assert system.adapter.read.__self__ is system.adapter


class TestFigure1Driver:
    def test_phase_plan_matches_figure(self):
        assert [label for label, _, _ in PHASE_PLAN] == \
            ["Load-A", "A", "B", "C", "D", "Load-E", "E", "F"]

    def test_run_config_tiny(self):
        cells = run_config("unmodified", record_count=20,
                           operation_count=30)
        assert [c.phase for c in cells] == [p for p, _, _ in PHASE_PLAN]
        assert all(c.throughput > 0 for c in cells)

    def test_table_renders(self):
        results = {"unmodified": run_config("unmodified", 10, 15)}
        table = figure1_table(results)
        assert "Load-A" in table and "phase" in table


class TestFigure2Driver:
    def test_populate_mix(self):
        store = KeyValueStore(clock=SimClock())
        short = populate_expiring(store, 100, short_fraction=0.2)
        assert short == 20
        assert store.databases[0].volatile_count == 100

    def test_measurement_fields(self):
        m = measure_erasure_delay(500, strategy="fullscan")
        assert m.completed
        assert m.short_keys == 100
        assert m.erase_seconds < 1.0

    def test_lazy_small_completes(self):
        m = measure_erasure_delay(500, strategy="lazy")
        assert m.completed
        assert m.erase_seconds > 1.0

    def test_safety_cap(self):
        m = measure_erasure_delay(2_000, strategy="lazy", sim_cap=1.0)
        assert not m.completed

    def test_run_figure2_structure(self):
        results = run_figure2(sizes=(500, 1000),
                              strategies=("fullscan",))
        assert len(results["fullscan"]) == 2
        table = figure2_table(results)
        assert "total_keys" in table

    def test_doubling_ratios(self):
        results = run_figure2(sizes=(500, 1000, 2000),
                              strategies=("lazy",))
        ratios = doubling_ratios(results["lazy"])
        assert len(ratios) == 2
        assert all(r > 0 for _, r in ratios)

    def test_default_sizes_match_paper(self):
        assert DEFAULT_SIZES == (1_000, 2_000, 4_000, 8_000, 16_000,
                                 32_000, 64_000, 128_000)


class TestReporting:
    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")

    def test_render_series(self):
        text = render_series("title", [(1, 2)], "x", "y")
        assert text.startswith("title")

    def test_normalize(self):
        assert normalize([2.0, 4.0], 4.0) == [0.5, 1.0]
        assert normalize([1.0], 0.0) == [0.0]


class TestHeadlineStats:
    def test_thirty_one_of_ninety_nine(self):
        stats = headline_statistics()
        assert stats["storage_related_articles"] == 31
        assert 0.31 <= stats["storage_share"] <= 0.32
        assert stats["table1_rows"] == 13


class TestConcurrencyScenario:
    """The acceptance shape of the open-loop `concurrency` scenario."""

    def _cell(self, clients, rate, shards=1, gdpr=False, seed=42):
        from repro.bench.scaling import run_concurrency_cell
        return run_concurrency_cell(
            shards, clients, rate, gdpr, record_count=40,
            operation_count=200, seed=seed)

    def test_throughput_rises_with_clients_to_the_ceiling(self):
        from repro.bench.calibration import BASE_COMMAND_CPU
        one = self._cell(clients=1, rate=80_000.0)
        four = self._cell(clients=4, rate=80_000.0)
        sixteen = self._cell(clients=16, rate=80_000.0)
        assert four.throughput > one.throughput * 1.4
        ceiling = 1.0 / BASE_COMMAND_CPU
        assert sixteen.throughput == pytest.approx(ceiling, rel=0.2)
        assert sixteen.throughput <= ceiling * 1.01

    def test_p99_queue_grows_past_saturation(self):
        below = self._cell(clients=8, rate=15_000.0)
        above = self._cell(clients=8, rate=80_000.0)
        assert above.p99_queue > 10 * max(below.p99_queue, 1e-9)

    def test_same_seed_identical_cells(self):
        assert self._cell(clients=4, rate=60_000.0) \
            == self._cell(clients=4, rate=60_000.0)

    def test_gdpr_lowers_the_ceiling(self):
        off = self._cell(clients=8, rate=60_000.0, gdpr=False)
        on = self._cell(clients=8, rate=60_000.0, gdpr=True)
        assert on.throughput < off.throughput

    def test_table_renders(self):
        from repro.bench.scaling import concurrency_table
        table = concurrency_table([self._cell(clients=2,
                                              rate=30_000.0)])
        assert "p99 queue us" in table
