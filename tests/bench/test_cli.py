"""Tests for the `python -m repro.bench` command-line driver."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_table1_subset(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "31/99" in out

    def test_micro_subset_small_scale(self, capsys):
        assert main(["micro", "--records", "50", "--ops", "100"]) == 0
        out = capsys.readouterr().out
        assert "logging mechanisms" in out
        assert "stunnel" in out

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--records", "20", "--ops", "20"]) == 0
        out = capsys.readouterr().out
        assert "total_keys" in out
        assert "paper_lazy_s" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["warpdrive"])

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {"table1", "figure1", "figure2",
                                    "micro", "ablations"}
