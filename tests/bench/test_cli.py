"""Tests for the `python -m repro.bench` command-line driver."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_table1_subset(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "31/99" in out

    def test_micro_subset_small_scale(self, capsys):
        assert main(["micro", "--records", "50", "--ops", "100"]) == 0
        out = capsys.readouterr().out
        assert "logging mechanisms" in out
        assert "stunnel" in out

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--records", "20", "--ops", "20"]) == 0
        out = capsys.readouterr().out
        assert "total_keys" in out
        assert "paper_lazy_s" in out

    def test_scaling_small(self, capsys):
        assert main(["scaling", "--records", "40", "--ops", "80"]) == 0
        out = capsys.readouterr().out
        assert "shards" in out and "depth" in out
        assert "erasure fan-out" in out

    def test_scaling_depth8_beats_depth1(self, capsys):
        from repro.bench.scaling import run_scaling
        cells = run_scaling(shard_counts=(2,), depths=(1, 8),
                            record_count=60, operation_count=150)
        by_depth = {(c.gdpr, c.depth): c.throughput for c in cells}
        for gdpr in (False, True):
            assert by_depth[(gdpr, 8)] > by_depth[(gdpr, 1)]

    def test_resharding_small(self, capsys):
        assert main(["resharding", "--records", "50",
                     "--ops", "90"]) == 0
        out = capsys.readouterr().out
        assert "live slot migration" in out
        assert "drag" in out

    def test_resharding_moves_data_and_recovers(self):
        from repro.bench.scaling import run_resharding
        result = run_resharding(record_count=60, operation_count=120)
        assert result.slots_moved > 0
        assert result.keys_moved > 0
        assert result.bytes_moved > 0
        assert result.moved_redirects > 0
        # Migration costs throughput while it runs...
        assert result.during < result.steady_before
        # ...but the cluster recovers once the topology settles (the new
        # shard shares the load, so 'after' is at worst marginally off).
        assert result.steady_after > 0.8 * result.steady_before

    def test_replication_small(self, capsys):
        assert main(["replication", "--shards", "2", "--replicas", "2",
                     "--records", "30", "--ops", "60"]) == 0
        out = capsys.readouterr().out
        assert "erasure horizon" in out
        assert "hz p99 ms" in out
        assert "Art. 17 erasure through replicas" in out

    def test_replication_horizon_tracks_delay(self):
        from repro.bench.scaling import run_replication_cell
        slow = run_replication_cell(2, 2, 0.010, gdpr=False,
                                    record_count=40,
                                    operation_count=80)
        fast = run_replication_cell(2, 2, 0.001, gdpr=False,
                                    record_count=40,
                                    operation_count=80)
        assert slow.horizons > 0 and fast.horizons > 0
        # The horizon is the replication delay made visible: ten times
        # the delay, ten times the compliance window.
        assert slow.horizon_p99 > 5 * fast.horizon_p99
        assert slow.horizon_p99 == pytest.approx(0.010, rel=0.3)
        # Primary-side throughput does not depend on the replica delay.
        assert slow.throughput == pytest.approx(fast.throughput)

    def test_backends_small(self, capsys):
        assert main(["backends", "--records", "30", "--ops", "80"]) == 0
        out = capsys.readouterr().out
        assert "per-GDPR-feature overhead" in out
        assert "redislike" in out and "relational" in out
        assert "full-gdpr" in out and "of baseline" in out

    def test_backends_relative_penalty_asymmetry(self):
        from repro.bench.backends import headline_comparison, run_backends
        headline = headline_comparison(run_backends(
            record_count=40, operation_count=100,
            features=("baseline", "full-gdpr")))
        # Stock KV is faster; full compliance costs it relatively more
        # (the paper's Redis-vs-Postgres asymmetry).
        assert headline["redislike_baseline_ops"] \
            > headline["relational_baseline_ops"]
        assert headline["redislike_slowdown_x"] \
            > headline["relational_slowdown_x"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["warpdrive"])

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {"table1", "figure1", "figure2",
                                    "micro", "ablations", "scaling",
                                    "resharding", "concurrency",
                                    "workers", "workers_skew",
                                    "replication", "backends",
                                    "tiering", "tenancy"}
