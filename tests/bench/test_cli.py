"""Tests for the `python -m repro.bench` command-line driver."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_table1_subset(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "31/99" in out

    def test_micro_subset_small_scale(self, capsys):
        assert main(["micro", "--records", "50", "--ops", "100"]) == 0
        out = capsys.readouterr().out
        assert "logging mechanisms" in out
        assert "stunnel" in out

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--records", "20", "--ops", "20"]) == 0
        out = capsys.readouterr().out
        assert "total_keys" in out
        assert "paper_lazy_s" in out

    def test_scaling_small(self, capsys):
        assert main(["scaling", "--records", "40", "--ops", "80"]) == 0
        out = capsys.readouterr().out
        assert "shards" in out and "depth" in out
        assert "erasure fan-out" in out

    def test_scaling_depth8_beats_depth1(self, capsys):
        from repro.bench.scaling import run_scaling
        cells = run_scaling(shard_counts=(2,), depths=(1, 8),
                            record_count=60, operation_count=150)
        by_depth = {(c.gdpr, c.depth): c.throughput for c in cells}
        for gdpr in (False, True):
            assert by_depth[(gdpr, 8)] > by_depth[(gdpr, 1)]

    def test_resharding_small(self, capsys):
        assert main(["resharding", "--records", "50",
                     "--ops", "90"]) == 0
        out = capsys.readouterr().out
        assert "live slot migration" in out
        assert "drag" in out

    def test_resharding_moves_data_and_recovers(self):
        from repro.bench.scaling import run_resharding
        result = run_resharding(record_count=60, operation_count=120)
        assert result.slots_moved > 0
        assert result.keys_moved > 0
        assert result.bytes_moved > 0
        assert result.moved_redirects > 0
        # Migration costs throughput while it runs...
        assert result.during < result.steady_before
        # ...but the cluster recovers once the topology settles (the new
        # shard shares the load, so 'after' is at worst marginally off).
        assert result.steady_after > 0.8 * result.steady_before

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["warpdrive"])

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {"table1", "figure1", "figure2",
                                    "micro", "ablations", "scaling",
                                    "resharding", "concurrency"}
