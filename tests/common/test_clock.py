"""Tests for clock abstractions."""

import pytest

from repro.common.clock import (
    ShardClock,
    SimClock,
    Stopwatch,
    WallClock,
    WorkerClock,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_advance_zero_is_noop(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_sleep_until_future(self):
        clock = SimClock()
        clock.sleep_until(3.0)
        assert clock.now() == 3.0

    def test_sleep_until_past_is_noop(self):
        clock = SimClock(start=5.0)
        clock.sleep_until(3.0)
        assert clock.now() == 5.0

    def test_timer_fires_during_advance(self):
        clock = SimClock()
        fired = []
        clock.call_at(1.0, lambda: fired.append(clock.now()))
        clock.advance(2.0)
        assert fired == [1.0]
        assert clock.now() == 2.0

    def test_timer_not_fired_before_due(self):
        clock = SimClock()
        fired = []
        clock.call_at(5.0, lambda: fired.append(True))
        clock.advance(4.999)
        assert fired == []
        assert clock.pending_timers() == 1

    def test_timers_fire_in_order(self):
        clock = SimClock()
        order = []
        clock.call_at(2.0, lambda: order.append("b"))
        clock.call_at(1.0, lambda: order.append("a"))
        clock.call_at(3.0, lambda: order.append("c"))
        clock.advance(10.0)
        assert order == ["a", "b", "c"]

    def test_call_later_relative(self):
        clock = SimClock(start=10.0)
        fired = []
        clock.call_later(1.0, lambda: fired.append(clock.now()))
        clock.advance(1.5)
        assert fired == [11.0]

    def test_timer_in_past_rejected(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ValueError):
            clock.call_at(4.0, lambda: None)

    def test_same_deadline_timers_fifo(self):
        clock = SimClock()
        order = []
        clock.call_at(1.0, lambda: order.append(1))
        clock.call_at(1.0, lambda: order.append(2))
        clock.advance(1.0)
        assert order == [1, 2]


class TestEventScheduler:
    def test_equal_timestamps_fire_in_schedule_order(self):
        clock = SimClock()
        order = []
        for tag in ("a", "b", "c", "d"):
            clock.schedule_at(1.0, lambda tag=tag: order.append(tag))
        clock.run_until_idle()
        assert order == ["a", "b", "c", "d"]

    def test_run_next_single_steps(self):
        clock = SimClock()
        fired = []
        clock.schedule_at(2.0, lambda: fired.append(2))
        clock.schedule_at(1.0, lambda: fired.append(1))
        assert clock.run_next() is True
        assert fired == [1]
        assert clock.now() == 1.0
        assert clock.run_next() is True
        assert fired == [1, 2]
        assert clock.run_next() is False

    def test_cancelled_event_never_fires(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule_at(1.0, lambda: fired.append("no"))
        clock.schedule_at(2.0, lambda: fired.append("yes"))
        assert handle.cancel() is True
        assert handle.cancel() is False     # idempotent
        clock.run_until_idle()
        assert fired == ["yes"]
        assert clock.pending_timers() == 0

    def test_cancelled_timer_skipped_by_advance(self):
        clock = SimClock()
        fired = []
        handle = clock.call_at(1.0, lambda: fired.append(True))
        handle.cancel()
        clock.advance(2.0)
        assert fired == []

    def test_daemon_events_do_not_keep_loop_alive(self):
        clock = SimClock()
        beats = []

        def heartbeat():
            beats.append(clock.now())
            clock.schedule_after(1.0, heartbeat, daemon=True)

        clock.schedule_after(1.0, heartbeat, daemon=True)
        clock.schedule_at(3.5, lambda: None)      # the only real work
        clock.run_until_idle()
        # The daemon fired while real work was pending, then stopped
        # keeping the loop alive.
        assert beats == [1.0, 2.0, 3.0]
        assert clock.now() == 3.5

    def test_run_until_idle_with_deadline(self):
        clock = SimClock()
        fired = []
        clock.schedule_at(1.0, lambda: fired.append(1))
        clock.schedule_at(5.0, lambda: fired.append(5))
        ran = clock.run_until_idle(deadline=2.0)
        assert ran == 1
        assert fired == [1]
        assert clock.now() == 2.0             # lands exactly on deadline
        clock.run_until_idle()
        assert fired == [1, 5]

    def test_events_scheduled_during_advance_fire_in_window(self):
        clock = SimClock()
        order = []

        def first():
            order.append(("first", clock.now()))
            clock.schedule_at(1.5, lambda: order.append(
                ("nested", clock.now())))

        clock.schedule_at(1.0, first)
        clock.advance(2.0)
        assert order == [("first", 1.0), ("nested", 1.5)]
        assert clock.now() == 2.0

    def test_nested_advance_never_moves_backwards(self):
        clock = SimClock()

        def overshoot():
            clock.advance(5.0)    # a service charge inside the window

        clock.schedule_at(1.0, overshoot)
        clock.advance(2.0)
        assert clock.now() == 6.0

    def test_identical_runs_produce_identical_traces(self):
        import random

        def run():
            clock = SimClock()
            trace = clock.enable_trace()
            rng = random.Random(7)

            def burst():
                for _ in range(3):
                    delay = rng.random()
                    clock.schedule_after(delay, lambda: None,
                                         label=f"work-{delay:.6f}")

            clock.schedule_at(0.5, burst, label="burst")
            clock.schedule_at(1.0, burst, label="burst")
            clock.run_until_idle()
            return trace

        assert run() == run()

    def test_pending_live_events_excludes_daemons(self):
        clock = SimClock()
        clock.schedule_at(1.0, lambda: None, daemon=True)
        clock.schedule_at(1.0, lambda: None)
        assert clock.pending_live_events() == 1
        assert clock.pending_timers() == 2


class TestWorkerClock:
    def test_advance_bills_busy_time(self):
        worker = WorkerClock(0, 1.0)
        worker.advance(0.5)
        assert worker.now() == 1.5
        assert worker.busy_seconds == 0.5

    def test_idle_and_sleep_are_not_billed(self):
        worker = WorkerClock(0, 0.0)
        worker.idle_until(2.0)
        worker.sleep_until(3.0)
        assert worker.now() == 3.0
        assert worker.busy_seconds == 0.0

    def test_idle_never_moves_backwards(self):
        worker = WorkerClock(0, 5.0)
        worker.idle_until(1.0)
        assert worker.now() == 5.0

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            WorkerClock(0, 0.0).advance(-1.0)


class TestShardClock:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            ShardClock(workers=0)

    def test_active_worker_takes_the_charges(self):
        shard = ShardClock(workers=3)
        shard.activate(shard.worker(1))
        shard.advance(0.2)
        assert shard.now() == 0.2
        shard.release()
        assert [w.busy_seconds for w in shard.workers] == [0.0, 0.2, 0.0]

    def test_no_active_worker_charges_all_cores(self):
        """Stop-the-world: direct calls and barriers occupy the shard."""
        shard = ShardClock(workers=3)
        shard.advance(0.1)
        assert all(w.busy_seconds == 0.1 for w in shard.workers)
        assert shard.busy_seconds() == pytest.approx(0.3)

    def test_now_reports_the_frontier(self):
        shard = ShardClock(workers=2)
        shard.activate(shard.worker(0))
        shard.advance(1.0)
        shard.release()
        assert shard.now() == 1.0          # max across cores
        shard.activate(shard.worker(1))
        assert shard.now() == 0.0          # the active core's own time
        shard.release()

    def test_sleep_without_active_worker_idles_every_core(self):
        shard = ShardClock(workers=2)
        shard.sleep_until(4.0)
        assert all(w.now() == 4.0 for w in shard.workers)
        assert shard.busy_seconds() == 0.0

    def test_double_activate_rejected(self):
        shard = ShardClock(workers=2)
        shard.activate(shard.worker(0))
        with pytest.raises(RuntimeError):
            shard.activate(shard.worker(1))

    def test_add_worker_joins_at_given_start(self):
        shard = ShardClock(workers=1)
        shard.advance(2.0)
        worker = shard.add_worker(2.0)
        assert worker.index == 1
        assert worker.now() == 2.0
        assert worker.busy_seconds == 0.0
        assert shard.num_workers == 2

    def test_single_worker_matches_plain_meter(self):
        """workers=1 is behaviourally identical to one SimClock meter --
        the basis of the worker-count-1 regression guarantee."""
        shard = ShardClock(workers=1)
        plain = SimClock()
        for step in (0.1, 0.25, 0.0):
            shard.advance(step)
            plain.advance(step)
        shard.sleep_until(1.0)
        plain.sleep_until(1.0)
        assert shard.now() == plain.now()


class TestWallClock:
    def test_now_monotonic(self):
        clock = WallClock()
        first = clock.now()
        assert clock.now() >= first

    def test_advance_without_sleep_offsets(self):
        clock = WallClock(sleep=False)
        before = clock.now()
        clock.advance(100.0)
        assert clock.now() - before >= 100.0

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            WallClock().advance(-1.0)


class TestStopwatch:
    def test_elapsed_tracks_sim_time(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(2.5)
        assert watch.elapsed() == 2.5

    def test_restart_resets(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(2.0)
        watch.restart()
        clock.advance(1.0)
        assert watch.elapsed() == 1.0
