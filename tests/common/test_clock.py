"""Tests for clock abstractions."""

import pytest

from repro.common.clock import SimClock, Stopwatch, WallClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_advance_zero_is_noop(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_sleep_until_future(self):
        clock = SimClock()
        clock.sleep_until(3.0)
        assert clock.now() == 3.0

    def test_sleep_until_past_is_noop(self):
        clock = SimClock(start=5.0)
        clock.sleep_until(3.0)
        assert clock.now() == 5.0

    def test_timer_fires_during_advance(self):
        clock = SimClock()
        fired = []
        clock.call_at(1.0, lambda: fired.append(clock.now()))
        clock.advance(2.0)
        assert fired == [1.0]
        assert clock.now() == 2.0

    def test_timer_not_fired_before_due(self):
        clock = SimClock()
        fired = []
        clock.call_at(5.0, lambda: fired.append(True))
        clock.advance(4.999)
        assert fired == []
        assert clock.pending_timers() == 1

    def test_timers_fire_in_order(self):
        clock = SimClock()
        order = []
        clock.call_at(2.0, lambda: order.append("b"))
        clock.call_at(1.0, lambda: order.append("a"))
        clock.call_at(3.0, lambda: order.append("c"))
        clock.advance(10.0)
        assert order == ["a", "b", "c"]

    def test_call_later_relative(self):
        clock = SimClock(start=10.0)
        fired = []
        clock.call_later(1.0, lambda: fired.append(clock.now()))
        clock.advance(1.5)
        assert fired == [11.0]

    def test_timer_in_past_rejected(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ValueError):
            clock.call_at(4.0, lambda: None)

    def test_same_deadline_timers_fifo(self):
        clock = SimClock()
        order = []
        clock.call_at(1.0, lambda: order.append(1))
        clock.call_at(1.0, lambda: order.append(2))
        clock.advance(1.0)
        assert order == [1, 2]


class TestWallClock:
    def test_now_monotonic(self):
        clock = WallClock()
        first = clock.now()
        assert clock.now() >= first

    def test_advance_without_sleep_offsets(self):
        clock = WallClock(sleep=False)
        before = clock.now()
        clock.advance(100.0)
        assert clock.now() - before >= 100.0

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            WallClock().advance(-1.0)


class TestStopwatch:
    def test_elapsed_tracks_sim_time(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(2.5)
        assert watch.elapsed() == 2.5

    def test_restart_resets(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(2.0)
        watch.restart()
        clock.advance(1.0)
        assert watch.elapsed() == 1.0
