"""Tests for the RESP codec."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.resp import (
    RespDecoder,
    RespError,
    SimpleString,
    decode_all,
    encode,
    encode_command,
)


class TestEncode:
    def test_simple_string(self):
        assert encode(SimpleString("OK")) == b"+OK\r\n"

    def test_simple_string_rejects_crlf(self):
        with pytest.raises(ProtocolError):
            encode(SimpleString("bad\r\nvalue"))

    def test_error(self):
        assert encode(RespError("ERR nope")) == b"-ERR nope\r\n"

    def test_integer(self):
        assert encode(42) == b":42\r\n"

    def test_negative_integer(self):
        assert encode(-7) == b":-7\r\n"

    def test_bool_encodes_as_integer(self):
        assert encode(True) == b":1\r\n"
        assert encode(False) == b":0\r\n"

    def test_bulk_string_bytes(self):
        assert encode(b"hello") == b"$5\r\nhello\r\n"

    def test_bulk_string_str(self):
        assert encode("hi") == b"$2\r\nhi\r\n"

    def test_empty_bulk(self):
        assert encode(b"") == b"$0\r\n\r\n"

    def test_null(self):
        assert encode(None) == b"$-1\r\n"

    def test_array(self):
        assert encode([1, b"a"]) == b"*2\r\n:1\r\n$1\r\na\r\n"

    def test_empty_array(self):
        assert encode([]) == b"*0\r\n"

    def test_nested_array(self):
        data = encode([[1], [b"x"]])
        assert decode_all(data) == [[[1], [b"x"]]]

    def test_unencodable_type(self):
        with pytest.raises(ProtocolError):
            encode(object())


class TestEncodeCommand:
    def test_simple_command(self):
        assert encode_command("GET", "key") == \
            b"*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n"

    def test_numbers_coerced(self):
        data = encode_command("EXPIRE", "k", 300)
        assert decode_all(data) == [[b"EXPIRE", b"k", b"300"]]

    def test_bytes_passthrough(self):
        data = encode_command(b"SET", b"k", b"\x00\xff")
        assert decode_all(data) == [[b"SET", b"k", b"\x00\xff"]]

    def test_rejects_compound_args(self):
        with pytest.raises(ProtocolError):
            encode_command("SET", ["nested"])


class TestDecoder:
    def roundtrip(self, value):
        return decode_all(encode(value))[0]

    def test_roundtrip_types(self):
        for value in (SimpleString("PONG"), 7, b"payload", None,
                      [b"a", 1, None]):
            assert self.roundtrip(value) == value

    def test_roundtrip_error(self):
        assert self.roundtrip(RespError("ERR x")) == RespError("ERR x")

    def test_incremental_feed(self):
        decoder = RespDecoder()
        data = encode(b"hello world")
        decoder.feed(data[:4])
        found, _ = decoder.next_value()
        assert not found
        decoder.feed(data[4:])
        found, value = decoder.next_value()
        assert found and value == b"hello world"

    def test_null_distinguished_from_incomplete(self):
        decoder = RespDecoder()
        decoder.feed(encode(None))
        found, value = decoder.next_value()
        assert found is True and value is None

    def test_multiple_values_drain(self):
        decoder = RespDecoder()
        decoder.feed(encode(1) + encode(2) + encode(b"x"))
        assert decoder.drain() == [1, 2, b"x"]

    def test_binary_safe_bulk(self):
        payload = bytes(range(256))
        assert self.roundtrip(payload) == payload

    def test_bulk_with_embedded_crlf(self):
        payload = b"line1\r\nline2"
        assert self.roundtrip(payload) == payload

    def test_bad_type_marker(self):
        decoder = RespDecoder()
        decoder.feed(b"!oops\r\n")
        with pytest.raises(ProtocolError):
            decoder.next_value()

    def test_bad_integer(self):
        decoder = RespDecoder()
        decoder.feed(b":notanum\r\n")
        with pytest.raises(ProtocolError):
            decoder.next_value()

    def test_bulk_length_overflow_rejected(self):
        decoder = RespDecoder(max_bulk=10)
        decoder.feed(b"$100\r\n")
        with pytest.raises(ProtocolError):
            decoder.next_value()

    def test_bulk_missing_terminator(self):
        decoder = RespDecoder()
        decoder.feed(b"$3\r\nabcXY")
        with pytest.raises(ProtocolError):
            decoder.next_value()

    def test_trailing_bytes_rejected_by_decode_all(self):
        with pytest.raises(ProtocolError):
            decode_all(encode(1) + b":")

    def test_partial_array_returns_not_found(self):
        decoder = RespDecoder()
        full = encode([b"a", b"b"])
        decoder.feed(full[:-3])
        found, _ = decoder.next_value()
        assert not found
        decoder.feed(full[-3:])
        found, value = decoder.next_value()
        assert found and value == [b"a", b"b"]

    def test_null_array(self):
        decoder = RespDecoder()
        decoder.feed(b"*-1\r\n")
        found, value = decoder.next_value()
        assert found and value is None

    def test_buffered_counts_pending(self):
        decoder = RespDecoder()
        decoder.feed(b"$5\r\nab")
        assert decoder.buffered == len(b"$5\r\nab")
