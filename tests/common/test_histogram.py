"""Tests for the latency histogram."""

import pytest

from repro.common.histogram import LatencyHistogram


class TestRecording:
    def test_empty_summary(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean() == 0.0
        assert hist.percentile(50) == 0.0

    def test_count_and_mean(self):
        hist = LatencyHistogram()
        hist.record_many([1.0, 2.0, 3.0])
        assert hist.count == 3
        assert hist.mean() == pytest.approx(2.0)

    def test_min_max_exact(self):
        hist = LatencyHistogram()
        hist.record_many([0.5, 0.1, 0.9])
        assert hist.min() == pytest.approx(0.1)
        assert hist.max() == pytest.approx(0.9)

    def test_non_positive_clamped(self):
        hist = LatencyHistogram(min_latency=1e-9)
        hist.record(0.0)
        hist.record(-1.0)
        assert hist.count == 2
        assert hist.min() == pytest.approx(1e-9)

    def test_relative_error_bound(self):
        hist = LatencyHistogram(relative_error=0.01)
        for value in (1e-6, 37e-6, 1e-3, 0.5, 12.0):
            single = LatencyHistogram(relative_error=0.01)
            single.record(value)
            estimate = single.percentile(50)
            assert abs(estimate - value) / value < 0.03

    def test_bad_relative_error(self):
        with pytest.raises(ValueError):
            LatencyHistogram(relative_error=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(relative_error=1.0)


class TestPercentiles:
    def test_monotone_percentiles(self):
        hist = LatencyHistogram()
        hist.record_many([i / 1000.0 for i in range(1, 1001)])
        p50 = hist.percentile(50)
        p95 = hist.percentile(95)
        p99 = hist.percentile(99)
        assert p50 <= p95 <= p99

    def test_p50_near_median(self):
        hist = LatencyHistogram()
        hist.record_many([i / 1000.0 for i in range(1, 1001)])
        assert hist.percentile(50) == pytest.approx(0.5, rel=0.05)

    def test_p100_is_max_bucket(self):
        hist = LatencyHistogram()
        hist.record_many([0.1, 0.2, 5.0])
        assert hist.percentile(100) == pytest.approx(5.0, rel=0.03)

    def test_invalid_percentile(self):
        hist = LatencyHistogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_percentiles_list(self):
        hist = LatencyHistogram()
        hist.record_many([1.0] * 10)
        pairs = hist.percentiles([50, 99])
        assert [p for p, _ in pairs] == [50, 99]

    def test_summary_keys(self):
        hist = LatencyHistogram()
        hist.record(1.0)
        summary = hist.summary()
        assert set(summary) == {"count", "mean", "min", "max",
                                "p50", "p95", "p99"}


class TestMerge:
    def test_merge_combines_counts(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        a.record_many([1.0, 2.0])
        b.record_many([3.0])
        a.merge(b)
        assert a.count == 3
        assert a.mean() == pytest.approx(2.0)
        assert a.max() == pytest.approx(3.0)

    def test_merge_identical_geometry_is_lossless(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        whole = LatencyHistogram()
        for i, latency in enumerate(x * 1e-4 for x in range(1, 201)):
            (a if i % 2 else b).record(latency)
            whole.record(latency)
        a.merge(b)
        for pct in (50, 90, 95, 99, 100):
            assert a.percentile(pct) == whole.percentile(pct)
        assert a.count == whole.count
        assert a.mean() == pytest.approx(whole.mean())

    def test_merge_cross_geometry_resamples(self):
        a = LatencyHistogram(relative_error=0.01)
        b = LatencyHistogram(relative_error=0.05)
        a.record_many([1e-3] * 10)
        b.record_many([1e-2] * 90)
        a.merge(b)
        assert a.count == 100
        # p50/p99 sit in the resampled 10ms mass; error bounded by the
        # sum of the two relative errors.
        assert a.percentile(50) == pytest.approx(1e-2, rel=0.08)
        assert a.percentile(99) == pytest.approx(1e-2, rel=0.08)
        assert a.percentile(5) == pytest.approx(1e-3, rel=0.08)
        assert a.mean() == pytest.approx((10 * 1e-3 + 90 * 1e-2) / 100)
        assert a.max() == pytest.approx(1e-2)

    def test_merge_uneven_bucket_counts(self):
        # One worker saw a narrow unimodal load, the other a wide
        # multimodal one: very different bucket populations must still
        # fold into one faithful distribution.
        narrow = LatencyHistogram()
        wide = LatencyHistogram(relative_error=0.02)
        narrow.record_many([100e-6] * 500)
        wide.record_many([50e-6, 200e-6, 1e-3, 5e-3, 20e-3] * 20)
        assert len(narrow._buckets) != len(wide._buckets)
        narrow.merge(wide)
        assert narrow.count == 600
        assert narrow.percentile(50) == pytest.approx(100e-6, rel=0.05)
        # The 20ms tail (20 of 600 samples => > p96) must survive.
        assert narrow.percentile(99.9) == pytest.approx(20e-3, rel=0.05)
        assert narrow.min() == pytest.approx(50e-6)
        assert narrow.max() == pytest.approx(20e-3)

    def test_merge_into_empty_and_from_empty(self):
        empty = LatencyHistogram(relative_error=0.03)
        full = LatencyHistogram()
        full.record_many([1e-3, 2e-3, 4e-3])
        empty.merge(full)
        assert empty.count == 3
        assert empty.percentile(100) == pytest.approx(4e-3, rel=0.05)
        full.merge(LatencyHistogram(relative_error=0.03))
        assert full.count == 3
