"""Tests for hashing utilities."""

from repro.common.hashing import (
    GENESIS_HASH,
    chain_hash,
    crc32_of,
    fnv1a_64,
    sha256_bytes,
    sha256_hex,
)


class TestFnv:
    def test_deterministic(self):
        assert fnv1a_64(12345) == fnv1a_64(12345)

    def test_different_inputs_differ(self):
        assert fnv1a_64(1) != fnv1a_64(2)

    def test_fits_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= fnv1a_64(value) < 2**64

    def test_negative_masked(self):
        # Negative ints hash like their two's-complement 64-bit image.
        assert fnv1a_64(-1) == fnv1a_64(2**64 - 1)

    def test_spreads_sequential_inputs(self):
        hashes = {fnv1a_64(i) % 1000 for i in range(100)}
        assert len(hashes) > 80  # sequential ids land far apart


class TestCrc:
    def test_known_value(self):
        assert crc32_of(b"") == 0

    def test_chainable(self):
        whole = crc32_of(b"hello world")
        partial = crc32_of(b" world", crc32_of(b"hello"))
        assert whole == partial

    def test_detects_flip(self):
        assert crc32_of(b"data") != crc32_of(b"dataX")


class TestSha:
    def test_hex_length(self):
        assert len(sha256_hex(b"x")) == 64

    def test_bytes_length(self):
        assert len(sha256_bytes(b"x")) == 32


class TestChainHash:
    def test_deterministic(self):
        assert chain_hash(GENESIS_HASH, b"a") == chain_hash(GENESIS_HASH,
                                                            b"a")

    def test_payload_sensitivity(self):
        assert chain_hash(GENESIS_HASH, b"a") != chain_hash(GENESIS_HASH,
                                                            b"b")

    def test_prev_sensitivity(self):
        one = chain_hash(GENESIS_HASH, b"a")
        assert chain_hash(one, b"a") != chain_hash(GENESIS_HASH, b"a")

    def test_genesis_stable(self):
        assert GENESIS_HASH == sha256_hex(b"repro-audit-genesis")
