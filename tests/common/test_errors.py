"""The exception hierarchy contract: one catchable base per layer."""

import pytest

from repro.common import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_device_family(self):
        for cls in (errors.DeviceFullError, errors.DeviceIOError,
                    errors.CorruptionError):
            assert issubclass(cls, errors.DeviceError)

    def test_crypto_family(self):
        for cls in (errors.IntegrityError, errors.KeyNotFoundError,
                    errors.KeyErasedError):
            assert issubclass(cls, errors.CryptoError)

    def test_key_not_found_is_keyerror(self):
        assert issubclass(errors.KeyNotFoundError, KeyError)
        assert issubclass(errors.KeyErasedError, errors.KeyNotFoundError)

    def test_store_family(self):
        for cls in (errors.WrongTypeError, errors.UnknownCommandError,
                    errors.ArityError, errors.PersistenceError):
            assert issubclass(cls, errors.StoreError)

    def test_gdpr_family(self):
        for cls in (errors.AccessDeniedError, errors.PurposeViolationError,
                    errors.LocationViolationError,
                    errors.RetentionViolationError,
                    errors.UnknownSubjectError, errors.AuditError,
                    errors.ComplianceError):
            assert issubclass(cls, errors.GDPRError)

    def test_protocol_is_serialization(self):
        assert issubclass(errors.ProtocolError, errors.SerializationError)

    def test_unknown_subject_is_keyerror(self):
        assert issubclass(errors.UnknownSubjectError, KeyError)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.HandshakeError("nope")
