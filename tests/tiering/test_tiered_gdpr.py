"""GDPR semantics over a tiered engine: audited tier moves, tier-aware
access reports, archive-reaching erasure receipts, and the sharded
cluster running every shard tiered."""

import pytest

from repro.common.clock import SimClock
from repro.cluster.sharded_store import ShardedGDPRStore
from repro.gdpr.metadata import GDPRMetadata
from repro.gdpr.rights import right_of_access, right_to_erasure
from repro.gdpr.store import GDPRConfig, GDPRStore
from repro.kvstore.store import KeyValueStore, StoreConfig
from repro.sqlstore import RelationalStore, SqlConfig
from repro.tiering import TieredEngine, TieringConfig


def make_store(base="redislike", fast_gdpr=False):
    clock = SimClock()
    if base == "redislike":
        inner = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
    else:
        inner = RelationalStore(SqlConfig(wal_enabled=True), clock=clock)
    engine = TieredEngine(inner, tiering=TieringConfig(
        demote_idle_after=5, demote_interval=1, segment_max_records=4))
    store = GDPRStore(kv=engine,
                      config=GDPRConfig(fast_gdpr=fast_gdpr))
    return store, engine, clock


def meta(owner, **kwargs):
    kwargs.setdefault("purposes", frozenset({"billing"}))
    return GDPRMetadata(owner=owner, **kwargs)


@pytest.fixture(params=["redislike", "relational"])
def tiered_store(request):
    return make_store(request.param)


def seed(store, clock, engine):
    for i in range(4):
        store.put(f"alice:{i}", b"a" * 16, meta("alice"))
    store.put("bob:0", b"b" * 16, meta("bob"))
    clock.advance(10)
    engine.tick()                 # idle scan demotes everything
    assert engine.demotions == 5


def test_tier_moves_are_audited(tiered_store):
    store, engine, clock = tiered_store
    seed(store, clock, engine)
    store.get("alice:0")          # promote
    receipt = right_to_erasure(store, "alice")
    assert receipt.cold_segments_voided >= 1
    ops = [r.operation for r in store.audit.records()]
    assert "tier-demote" in ops
    assert "tier-promote" in ops
    assert "tier-cold-erase" in ops
    cold_erase = next(r for r in store.audit.records()
                      if r.operation == "tier-cold-erase")
    assert cold_erase.subject == store._audit_name("alice") \
        or cold_erase.subject == "alice"


def test_access_report_labels_tiers(tiered_store):
    store, engine, clock = tiered_store
    seed(store, clock, engine)
    store.get("alice:0")          # back to hot
    report = right_of_access(store, "alice")
    tiers = {r["key"]: r["tier"] for r in report.records}
    assert tiers["alice:0"] == "hot"
    assert tiers["alice:1"] == "cold"
    assert len(report.records) == 4


def test_erasure_reaches_archive(tiered_store):
    store, engine, clock = tiered_store
    seed(store, clock, engine)
    receipt = right_to_erasure(store, "alice")
    assert sorted(receipt.keys_erased) == [f"alice:{i}" for i in range(4)]
    assert receipt.crypto_erased
    assert receipt.cold_segments_voided >= 1
    assert not receipt.residual_in_aof
    # No tier serves the subject anymore.
    assert engine.execute("GET", "alice:0") is None
    assert engine.cold_keys_of_subject("alice") == []
    assert not store.subject_exists("alice")
    # Other subjects' archived records still read fine.
    assert store.get("bob:0").value == b"b" * 16


def test_promoted_records_keep_their_metadata(tiered_store):
    store, engine, clock = tiered_store
    store.put("k", b"v" * 8, meta("alice", ttl=100.0))
    clock.advance(10)
    engine.tick()
    assert not engine.inner.has_live_key(b"k")
    record = store.get("k")       # promote through the GDPR facade
    assert record.value == b"v" * 8
    assert record.metadata.owner == "alice"
    assert record.metadata.purposes == frozenset({"billing"})
    assert store.keys_of_subject("alice") == ["k"]


def test_fast_gdpr_flushes_writebehind_before_demote():
    store, engine, clock = make_store(fast_gdpr=True)
    assert engine.before_demote is not None
    store.put("k", b"v", meta("alice"))
    clock.advance(10)
    engine.tick()
    assert engine.demotions == 1
    assert store.get("k").value == b"v"
    receipt = right_to_erasure(store, "alice")
    assert receipt.crypto_erased


def test_ttl_expiry_of_cold_records_feeds_erasure_events(tiered_store):
    store, engine, clock = tiered_store
    store.put("short", b"v", meta("carol", ttl=30.0))
    clock.advance(10)
    engine.tick()                 # demoted with 20s of TTL left
    assert not engine.inner.has_live_key(b"short")
    clock.advance(30)
    store.tick()                  # cold active expiry
    assert engine.execute("GET", "short") is None
    assert not store.subject_exists("carol")
    assert any(e.key == "short" for e in store.erasure_events)


# -- the sharded cluster, every shard tiered ---------------------------------

def make_cluster(num_shards=2):
    return ShardedGDPRStore(
        num_shards=num_shards, clock=SimClock(),
        tiering=TieringConfig(demote_idle_after=5, demote_interval=1,
                              segment_max_records=4))


def test_sharded_store_tiers_every_shard():
    cluster = make_cluster()
    for i in range(12):
        cluster.put(f"user:{i}", b"x" * 16,
                    meta("alice" if i % 2 == 0 else "bob"))
    cluster.clock.advance(10)
    cluster.tick()
    demoted = sum(shard.kv.demotions for shard in cluster.shards)
    assert demoted == 12
    assert all(shard.kv.supports_tiering for shard in cluster.shards)
    assert cluster.get("user:3").value == b"x" * 16   # cross-shard promote


def test_sharded_erasure_voids_cold_on_every_shard():
    cluster = make_cluster()
    for i in range(12):
        cluster.put(f"user:{i}", b"x" * 16,
                    meta("alice" if i % 2 == 0 else "bob"))
    cluster.clock.advance(10)
    cluster.tick()
    receipt = cluster.erase_subject("alice")
    assert sorted(receipt.keys_erased) == \
        sorted(f"user:{i}" for i in range(0, 12, 2))
    assert receipt.crypto_erased
    for shard in cluster.shards:
        assert shard.kv.cold_keys_of_subject("alice") == []
    assert cluster.get("user:1").value == b"x" * 16


def test_recovered_shard_keeps_its_archive():
    cluster = make_cluster()
    for i in range(8):
        cluster.put(f"user:{i}", b"x" * 16, meta("alice"))
    cluster.clock.advance(10)
    cluster.tick()
    index = cluster.shard_for("user:0")
    old_engine = cluster.shards[index].kv
    assert old_engine.demotions > 0
    cluster.recover_shard(index)
    new_engine = cluster.shards[index].kv
    assert new_engine is not old_engine
    # The cold device carried over: archived records survive the crash.
    assert new_engine.cold.recovered_segments > 0
    assert cluster.get("user:0").value == b"x" * 16
