"""Unit tests for :class:`~repro.tiering.TieredEngine`: demotion,
promote-on-read, merged keyspace views, cross-tier deletion and expiry,
snapshots, and the crash-window shadow rules."""

import pytest

from repro.common.clock import SimClock
from repro.crypto.keystore import KeyStore
from repro.device.append_log import AppendLog
from repro.kvstore.store import KeyValueStore, StoreConfig
from repro.sqlstore import RelationalStore, SqlConfig
from repro.tiering import TieredEngine, TieringConfig


def make_engine(base="redislike", **tiering_kwargs):
    clock = SimClock()
    if base == "redislike":
        inner = KeyValueStore(StoreConfig(appendonly=True),
                              clock=clock, aof_log=AppendLog(clock=clock))
    else:
        inner = RelationalStore(SqlConfig(wal_enabled=True), clock=clock,
                                wal_log=AppendLog(clock=clock))
    tiering_kwargs.setdefault("demote_idle_after", 10)
    tiering_kwargs.setdefault("demote_interval", 1)
    tiering_kwargs.setdefault("segment_max_records", 4)
    return TieredEngine(inner, tiering=TieringConfig(**tiering_kwargs))


def test_idle_scan_demotes_and_read_promotes():
    engine = make_engine()
    engine.execute("SET", "idle", "v")
    engine.execute("SET", "busy", "w")
    engine.tick()                              # seeds the idle clocks
    for _ in range(4):
        engine.clock.advance(5)
        engine.execute("GET", "busy")          # touch keeps it hot
        engine.tick()
    assert engine.demotions == 1
    assert not engine.inner.has_live_key(b"idle")
    assert engine.inner.has_live_key(b"busy")
    assert engine.has_live_key(b"idle")        # merged view still sees it
    assert engine.execute("GET", "idle") == b"v"   # transparent promote
    assert engine.promotions == 1
    assert engine.inner.has_live_key(b"idle")


def test_demote_keys_explicit_and_merged_views():
    engine = make_engine(auto_demote=False)
    for i in range(6):
        engine.execute("SET", f"k{i}", f"v{i}")
    assert engine.demote_keys([b"k0", b"k1", b"k2"]) == 3
    assert engine.execute("DBSIZE") == 6
    assert engine.key_count() == 6
    assert sorted(engine.execute("KEYS", "*")) == \
        [f"k{i}".encode() for i in range(6)]
    cursor, keys = engine.execute("SCAN", "0")
    assert cursor == b"0"
    assert sorted(keys) == [f"k{i}".encode() for i in range(6)]
    records = {r.key: r.value for r in engine.scan_records()}
    assert records[b"k1"] == b"v1"
    assert set(engine.live_keys()) == set(records)


def test_del_reaches_cold_copies():
    engine = make_engine(auto_demote=False)
    events, stream = [], []
    engine.add_deletion_listener(
        lambda db, key, reason, when: events.append((key, reason)))
    engine.add_write_listener(lambda db, argv: stream.append(list(argv)))
    engine.execute("SET", "cold", "1")
    engine.execute("SET", "hot", "2")
    engine.demote_keys([b"cold"])
    assert (b"cold", "demote") in events       # demotion reason visible
    removed = engine.execute("DEL", "cold", "hot", "missing")
    assert removed == 2
    assert (b"cold", "del") in events and (b"hot", "del") in events
    assert [b"DEL", b"cold"] in stream         # replicas drop theirs too
    assert engine.execute("EXISTS", "cold") == 0
    assert engine.execute("DBSIZE") == 0


def test_cold_lazy_and_active_expiry():
    engine = make_engine(auto_demote=False)
    events, stream = [], []
    engine.add_deletion_listener(
        lambda db, key, reason, when: events.append((key, reason)))
    engine.add_write_listener(lambda db, argv: stream.append(list(argv)))
    engine.execute("SET", "lazy", "1", "EX", 100)
    engine.execute("SET", "active", "2", "EX", 100)
    engine.demote_keys([b"lazy", b"active"])
    engine.clock.advance(200)
    before = engine.stats.expired_keys
    assert engine.execute("GET", "lazy") is None
    assert (b"lazy", "lazy-expire") in events
    engine.tick()
    assert (b"active", "active-expire") in events
    assert engine.stats.expired_keys == before + 2
    assert [b"DEL", b"lazy"] in stream and [b"DEL", b"active"] in stream
    assert engine.execute("DBSIZE") == 0


def test_overwrite_kills_cold_copy_silently():
    engine = make_engine(auto_demote=False)
    events = []
    engine.execute("SET", "k", "old")
    engine.demote_keys([b"k"])
    engine.add_deletion_listener(
        lambda db, key, reason, when: events.append((key, reason)))
    engine.execute("SET", "k", "new")          # plain SET: no promote
    assert events == []                        # the key never logically died
    assert engine.execute("GET", "k") == b"new"
    assert engine.promotions == 0
    assert engine.execute("DBSIZE") == 1


def test_conditional_set_promotes_first():
    engine = make_engine(auto_demote=False)
    engine.execute("SET", "k", "old")
    engine.demote_keys([b"k"])
    # NX must observe the archived copy and refuse.
    assert engine.execute("SET", "k", "new", "NX") is None
    assert engine.execute("GET", "k") == b"old"


def test_crash_window_shadow_hot_wins():
    engine = make_engine(auto_demote=False)
    engine.execute("SET", "k", "hot-copy")
    # Simulate the crash window: sealed cold copy, hot copy never removed.
    from repro.tiering.segment import ColdInput
    engine.cold.seal([ColdInput(b"k", b"stale-cold", None, None)],
                     sealed_at=0.0)
    assert engine.execute("GET", "k") == b"hot-copy"
    assert engine.execute("DBSIZE") == 1       # not double counted
    assert engine.cold.lookup(b"k") is None    # shadow evicted on surface


def test_flushall_reaches_the_archive():
    engine = make_engine(auto_demote=False)
    engine.execute("SET", "a", "1")
    engine.execute("SET", "b", "2")
    engine.demote_keys([b"a"])
    engine.execute("FLUSHALL")
    assert engine.execute("DBSIZE") == 0
    assert engine.cold.segment_count == 0
    assert engine.execute("GET", "a") is None


def test_containers_stay_hot():
    engine = make_engine(auto_demote=False)
    engine.execute("HSET", "row", "f", "v")
    engine.execute("SET", "plain", "v")
    assert engine.demote_keys([b"row", b"plain"]) == 1
    assert engine.inner.has_live_key(b"row")
    assert engine.execute("HGET", "row", "f") == b"v"


def test_snapshot_round_trip_includes_cold():
    engine = make_engine(auto_demote=False)
    engine.execute("SET", "hot", "1")
    engine.execute("SET", "cold", "2")
    engine.execute("SET", "cold-ttl", "3", "EX", 500)
    engine.demote_keys([b"cold", b"cold-ttl"])
    snapshot = engine.save_snapshot()
    replica = engine.spawn_replica()
    assert replica.load_snapshot(snapshot) == 3
    assert replica.execute("GET", "hot") == b"1"
    assert replica.execute("GET", "cold") == b"2"
    assert replica.execute("TTL", "cold-ttl") == 500


def test_plain_hot_snapshot_still_loads():
    donor = KeyValueStore(StoreConfig(), clock=SimClock())
    donor.execute("SET", "fresh", "x")
    plain = donor.save_snapshot()
    engine = make_engine(auto_demote=False)
    engine.execute("SET", "stale", "y")
    engine.demote_keys([b"stale"])             # archive holds stale state
    assert engine.load_snapshot(plain) == 1    # cold archive cleared
    assert engine.cold.segment_count == 0
    assert engine.execute("GET", "fresh") == b"x"
    assert engine.execute("GET", "stale") is None


def test_memory_footprint_shrinks_on_demotion():
    engine = make_engine(auto_demote=False)
    for i in range(20):
        engine.execute("SET", f"k{i:02d}", "x" * 256)
    before = engine.memory_footprint()
    engine.demote_keys([f"k{i:02d}".encode() for i in range(16)])
    after = engine.memory_footprint()
    assert after["hot_keys"] == 4
    assert after["cold_keys"] == 16
    assert after["hot_bytes"] < before["hot_bytes"] / 4
    # Compressed cold residency beats the hot bytes it replaced.
    assert after["cold_resident_bytes"] < before["hot_bytes"]
    stats = engine.cold_stats()
    assert stats["demotions"] == 16
    assert stats["seals"] == 4                 # segment_max_records=4


def test_keys_of_owner_merges_tiers_on_relational():
    engine = make_engine(base="relational", auto_demote=False)
    for i in range(4):
        key = f"u:{i}"
        engine.execute("SET", key, "v")
        engine.annotate_metadata(key, "alice", ["billing"])
    engine.demote_keys([b"u:0", b"u:1"])
    assert engine.keys_of_owner("alice") == ["u:0", "u:1", "u:2", "u:3"]
    # Promotion restores the metadata columns the SET would have dropped.
    engine.execute("GET", "u:0")
    assert engine.inner.keys_of_owner("alice") == \
        ["u:0", "u:2", "u:3"]


def test_keys_of_owner_stays_sidecar_on_redislike():
    engine = make_engine(auto_demote=False)
    engine.execute("SET", "k", "v")
    engine.annotate_metadata("k", "alice", ["billing"])
    assert engine.keys_of_owner("alice") is None


def test_erase_subject_cold_voids_archive():
    keystore = KeyStore()
    engine = make_engine(auto_demote=False)
    engine.attach_keystore(keystore)
    engine.execute("SET", "a:1", "secret")
    engine.annotate_metadata("a:1", "alice", [])
    engine.execute("SET", "b:1", "fine")
    engine.annotate_metadata("b:1", "bob", [])
    engine.demote_keys([b"a:1", b"b:1"])
    assert engine.cold_keys_of_subject("alice") == [b"a:1"]
    assert engine.erase_subject_cold("alice") == 1
    keystore.erase_key("alice")
    assert engine.execute("GET", "a:1") is None
    assert engine.execute("GET", "b:1") == b"fine"
    assert engine.cold_segments_of_subject("bob") == [0]


def test_non_default_db_bypasses_tiering():
    engine = make_engine(auto_demote=False)
    session = engine.session(1)
    engine.execute("SET", "other-db", "v", session=session)
    engine.execute("SET", "tiered", "v")
    engine.demote_keys([b"tiered", b"other-db"])
    # Only db 0's key demoted; db 1 is untouched hot state.
    assert engine.execute("GET", "other-db", session=session) == b"v"
    assert engine.inner.has_live_key(b"other-db", 1)
