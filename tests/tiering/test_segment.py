"""Unit tests for the cold segment store: sealing, lookup, tombstone
versioning, subject erasure, expiry, and device-level recovery."""

import pytest

from repro.common.clock import SimClock
from repro.crypto.keystore import KeyStore
from repro.device.append_log import AppendLog
from repro.tiering.segment import ColdInput, ColdSegmentStore


def make_store(keystore=None):
    clock = SimClock()
    device = AppendLog(clock=clock, name="cold.seg")
    return ColdSegmentStore(device=device, keystore=keystore), device


def inputs(*pairs, owner=None, expire_at=None):
    return [ColdInput(k, v, expire_at, owner) for k, v in pairs]


def test_seal_lookup_round_trip():
    store, _ = make_store()
    store.seal(inputs((b"a", b"1"), (b"b", b"2")), sealed_at=0.0)
    entry = store.lookup(b"a")
    assert entry is not None
    assert store.open_value(entry) == b"1"
    assert store.lookup(b"missing") is None
    assert store.live_count() == 2


def test_expire_and_owner_preserved():
    store, _ = make_store()
    store.seal([ColdInput(b"k", b"v", 42.0, "alice")], sealed_at=1.0)
    entry = store.lookup(b"k")
    assert entry.expire_at == 42.0
    assert entry.owner == "alice"
    assert not entry.encrypted          # no keystore attached
    assert store.open_value(entry) == b"v"


def test_newest_segment_wins():
    store, _ = make_store()
    store.seal(inputs((b"k", b"old")), sealed_at=0.0)
    store.seal(inputs((b"k", b"new")), sealed_at=1.0)
    assert store.open_value(store.lookup(b"k")) == b"new"


def test_tombstone_versioning():
    store, _ = make_store()
    old_seq = store.seal(inputs((b"k", b"old")), sealed_at=0.0)
    store.tombstone_key(b"k", up_to_seq=old_seq)
    assert store.lookup(b"k") is None
    # A re-demoted copy sealed after the tombstone must survive it.
    store.seal(inputs((b"k", b"again")), sealed_at=1.0)
    assert store.open_value(store.lookup(b"k")) == b"again"
    # A full tombstone (no up_to_seq) kills everything sealed so far.
    store.tombstone_key(b"k")
    assert store.lookup(b"k") is None


def test_subject_erasure_is_crypto_erasure():
    keystore = KeyStore()
    store, _ = make_store(keystore)
    store.seal(inputs((b"a:1", b"secret"), owner="alice")
               + inputs((b"b:1", b"fine"), owner="bob"), sealed_at=0.0)
    assert store.lookup(b"a:1").encrypted
    assert store.open_value(store.lookup(b"a:1")) == b"secret"
    touched = store.erase_subject("alice")
    assert touched == [0]
    assert store.lookup(b"a:1") is None          # entry no longer live
    assert store.keys_of_subject("alice") == []
    assert store.open_value(store.lookup(b"b:1")) == b"fine"
    # Erasure also voids the ciphertext itself once the key dies.
    keystore.erase_key("alice")
    assert "alice" in store.erased_subjects


def test_keys_of_subject_uses_blooms():
    store, _ = make_store(KeyStore())
    store.seal(inputs((b"a:1", b"x"), (b"a:2", b"y"), owner="alice"),
               sealed_at=0.0)
    store.seal(inputs((b"b:1", b"z"), owner="bob"), sealed_at=1.0)
    assert store.keys_of_subject("alice") == [b"a:1", b"a:2"]
    assert store.segments_of_subject("bob") == [1]
    assert store.keys_of_subject("nobody") == []


def test_pop_expired_orders_and_filters():
    store, _ = make_store()
    store.seal([ColdInput(b"soon", b"1", 5.0, None),
                ColdInput(b"later", b"2", 50.0, None),
                ColdInput(b"never", b"3", None, None)], sealed_at=0.0)
    due = store.pop_expired(now=10.0)
    assert [e.key for e in due] == [b"soon"]
    store.tombstone_key(b"soon")
    assert store.pop_expired(now=100.0)[0].key == b"later"


def test_recovery_from_device_bytes():
    store, device = make_store(KeyStore())
    store.seal(inputs((b"a", b"1"), owner="alice"), sealed_at=0.0)
    store.seal(inputs((b"b", b"2"), (b"c", b"3")), sealed_at=1.0)
    store.tombstone_key(b"b")
    store.erase_subject("alice")
    recovered = ColdSegmentStore(device=device, keystore=store.keystore)
    assert recovered.recovered_segments == 2
    assert recovered.lookup(b"a") is None        # subject erased
    assert recovered.lookup(b"b") is None        # tombstoned
    assert recovered.open_value(recovered.lookup(b"c")) == b"3"
    assert "alice" in recovered.erased_subjects


def test_recovery_drops_torn_tail():
    store, device = make_store()
    store.seal(inputs((b"a", b"1")), sealed_at=0.0)
    store.seal(inputs((b"b", b"2")), sealed_at=1.0)
    device.corrupt_tail(6)                       # bit-flip into the last frame
    recovered = ColdSegmentStore(device=device)
    assert recovered.torn_frames_dropped == 1
    assert recovered.recovered_segments == 1
    assert recovered.open_value(recovered.lookup(b"a")) == b"1"
    assert recovered.lookup(b"b") is None


def test_clear_keeps_erased_subjects():
    store, device = make_store(KeyStore())
    store.seal(inputs((b"a", b"1"), owner="alice"), sealed_at=0.0)
    store.erase_subject("alice")
    store.clear()
    assert store.segment_count == 0
    assert "alice" in store.erased_subjects
    # ... and the marker survives recovery of the cleared device.
    recovered = ColdSegmentStore(device=device)
    assert recovered.segment_count == 0
    assert "alice" in recovered.erased_subjects


def test_checksummed_payload_detects_corruption():
    store, _ = make_store()
    seq = store.seal(inputs((b"a", b"1")), sealed_at=0.0)
    info = store._segments[seq]
    store._decode_cache.clear()
    store._segments[seq] = info._replace(payload_crc=info.payload_crc ^ 1)
    with pytest.raises(ValueError, match="checksum"):
        store.lookup(b"a")


def test_empty_seal_rejected():
    store, _ = make_store()
    with pytest.raises(ValueError):
        store.seal([], sealed_at=0.0)


def test_stats_counters():
    store, _ = make_store()
    store.seal(inputs((b"a", b"1"), (b"b", b"2")), sealed_at=0.0)
    store.tombstone_key(b"a")
    stats = store.stats()
    assert stats["seals"] == 1
    assert stats["sealed_entries"] == 2
    assert stats["tombstones"] == 1
    assert stats["segments"] == 1
