"""Unit tests for the cold-segment bloom filters."""

import pytest

from repro.tiering.bloom import BloomFilter


def test_no_false_negatives():
    bloom = BloomFilter.for_capacity(500, 0.01)
    members = [f"user:{i}".encode() for i in range(500)]
    bloom.update(members)
    assert all(m in bloom for m in members)


def test_measured_fp_rate_under_configured_bound():
    fp_rate = 0.01
    bloom = BloomFilter.for_capacity(1000, fp_rate)
    bloom.update(f"member:{i}".encode() for i in range(1000))
    trials = 20_000
    false_positives = sum(
        1 for i in range(trials) if f"absent:{i}".encode() in bloom)
    assert false_positives / trials < fp_rate


def test_serialization_round_trip():
    bloom = BloomFilter.for_capacity(64, 0.02)
    bloom.update(f"k{i}".encode() for i in range(64))
    restored = BloomFilter.from_bytes(bloom.to_bytes())
    assert restored.bit_count == bloom.bit_count
    assert restored.hash_count == bloom.hash_count
    assert restored.added == bloom.added
    assert all(f"k{i}".encode() in restored for i in range(64))
    assert restored.fill_ratio() == bloom.fill_ratio()


def test_deterministic_across_instances():
    # CI's byte-identical bench re-run needs hashing with no per-process
    # randomness (unlike the builtin hash()).
    a = BloomFilter.for_capacity(100, 0.01)
    b = BloomFilter.for_capacity(100, 0.01)
    for bloom in (a, b):
        bloom.update(f"k{i}".encode() for i in range(100))
    assert a.to_bytes() == b.to_bytes()


def test_empty_filter_matches_nothing():
    bloom = BloomFilter.for_capacity(16, 0.01)
    assert b"anything" not in bloom
    assert not bloom.may_contain(b"anything")
    assert bloom.fill_ratio() == 0.0


def test_from_bytes_rejects_garbage():
    with pytest.raises(ValueError):
        BloomFilter.from_bytes(b"\x00\x01")
    good = BloomFilter.for_capacity(8, 0.1).to_bytes()
    with pytest.raises(ValueError):
        BloomFilter.from_bytes(good[:-1])


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        BloomFilter(0, 3)
    with pytest.raises(ValueError):
        BloomFilter(64, 0)
    with pytest.raises(ValueError):
        BloomFilter.for_capacity(10, 1.5)
