"""Engine-conformance suite: every backend, one contract.

Every test runs four times -- over the Redis-like hash-table store, the
relational engine, and a **tiered** variant of each (the hot engine
behind :class:`~repro.tiering.TieredEngine`, with demotion aggressive
enough that records routinely cross tiers mid-test) -- asserting the
shared :class:`~repro.engine.base.StorageEngine` semantics: command
behaviour, expiry (lazy and active, with translated DEL propagation),
deletion reasons, DUMP/RESTORE, snapshot and durable-log round trips,
keyspace views, replication spawning, and GDPR erasure through the
facade.  The tiered variants passing the *same* assertions is the
transparency contract: tiering must be observationally invisible.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import StoreError
from repro.common.resp import RespError
from repro.crypto.keystore import KeyStore
from repro.device.append_log import AppendLog
from repro.engine.base import ENGINES, StorageEngine, register_engine
from repro.gdpr.metadata import GDPRMetadata
from repro.gdpr.store import GDPRConfig, GDPRStore
from repro.kvstore.aof import contains_key
from repro.kvstore.replication import ReplicationManager
from repro.kvstore.store import KeyValueStore, StoreConfig
from repro.sqlstore import RelationalStore, SqlConfig
from repro.tiering import TieredEngine, TieringConfig


def _make_kv(clock):
    return KeyValueStore(
        StoreConfig(appendonly=True, aof_log_reads=False),
        clock=clock, aof_log=AppendLog(clock=clock))


def _make_sql(clock):
    return RelationalStore(
        SqlConfig(wal_enabled=True, wal_log_reads=False),
        clock=clock, wal_log=AppendLog(clock=clock))


def _tiered(base_factory):
    def make(clock):
        return TieredEngine(
            base_factory(clock),
            tiering=TieringConfig(demote_idle_after=4, demote_interval=1,
                                  segment_max_records=4))
    return make


FACTORIES = {
    "redislike": _make_kv,
    "relational": _make_sql,
    "tiered-redislike": _tiered(_make_kv),
    "tiered-relational": _tiered(_make_sql),
}


@pytest.fixture(params=sorted(FACTORIES))
def engine(request):
    return FACTORIES[request.param](SimClock())


def test_both_engines_registered():
    assert ENGINES["redislike"] is KeyValueStore
    assert ENGINES["relational"] is RelationalStore
    for cls in (KeyValueStore, RelationalStore):
        assert issubclass(cls, StorageEngine)


def test_set_get_del_exists(engine):
    assert engine.execute("GET", "k") is None
    engine.execute("SET", "k", "v1")
    assert engine.execute("GET", "k") == b"v1"
    engine.execute("SET", "k", "v2")          # overwrite
    assert engine.execute("GET", "k") == b"v2"
    assert engine.execute("EXISTS", "k") == 1
    assert engine.execute("DEL", "k") == 1
    assert engine.execute("GET", "k") is None
    assert engine.execute("DEL", "k") == 0


def test_hash_rows(engine):
    engine.execute("HSET", "row", "f1", "a", "f2", "b")
    assert engine.execute("HGET", "row", "f1") == b"a"
    assert engine.execute("HMGET", "row", "f2", "nope") == [b"b", None]
    flat = engine.execute("HGETALL", "row")
    assert dict(zip(flat[::2], flat[1::2])) == {b"f1": b"a", b"f2": b"b"}
    # Type discipline holds on both engines (typed store errors, the
    # servers map them to WRONGTYPE on the wire).
    with pytest.raises(StoreError):
        engine.execute("GET", "row")
    engine.execute("SET", "s", "x")
    with pytest.raises(StoreError):
        engine.execute("HGETALL", "s")


def test_lazy_expiry_and_deletion_reason(engine):
    events = []
    engine.add_deletion_listener(
        lambda db, key, reason, when: events.append((key, reason)))
    engine.execute("SET", "k", "v")
    engine.execute("EXPIRE", "k", 5)
    assert engine.execute("TTL", "k") == 5
    engine.clock.advance(6)
    assert engine.execute("GET", "k") is None     # lazy reclamation
    assert (b"k", "lazy-expire") in events
    assert engine.stats.expired_keys == 1


def test_active_expiry_reason(engine):
    events = []
    engine.add_deletion_listener(
        lambda db, key, reason, when: events.append((key, reason)))
    engine.execute("SET", "k", "v")
    engine.execute("PEXPIRE", "k", 1000)
    engine.clock.advance(10)
    engine.tick()                                 # cron / vacuum cycle
    assert (b"k", "active-expire") in events
    assert not engine.has_live_key(b"k")


def test_expiry_propagates_as_del(engine):
    stream = []
    engine.add_write_listener(lambda db, argv: stream.append(argv))
    engine.execute("SET", "k", "v")
    engine.execute("EXPIRE", "k", 1)
    # Relative expiries travel as absolute PEXPIREAT.
    assert any(argv[0] == b"PEXPIREAT" for argv in stream)
    engine.clock.advance(2)
    engine.tick()
    assert [b"DEL", b"k"] in stream


def test_expire_in_the_past_deletes(engine):
    events = []
    engine.add_deletion_listener(
        lambda db, key, reason, when: events.append((key, reason)))
    engine.clock.advance(100)
    engine.execute("SET", "k", "v")
    assert engine.execute("EXPIREAT", "k", 1) == 1
    assert engine.execute("EXISTS", "k") == 0
    assert (b"k", "del") in events


def test_persist_clears_expiry(engine):
    engine.execute("SET", "k", "v")
    engine.execute("EXPIRE", "k", 5)
    assert engine.execute("PERSIST", "k") == 1
    assert engine.execute("TTL", "k") == -1
    engine.clock.advance(10)
    assert engine.execute("GET", "k") == b"v"


def test_dump_restore_round_trip(engine):
    engine.execute("SET", "k", "payload")
    blob = engine.execute("DUMP", "k")
    assert blob is not None
    assert engine.execute("DUMP", "missing") is None
    engine.execute("RESTORE", "k2", 0, blob)
    assert engine.execute("GET", "k2") == b"payload"
    with pytest.raises(RespError, match="BUSYKEY"):
        engine.execute("RESTORE", "k2", 0, blob)
    engine.execute("RESTORE", "k2", 1000, blob, "REPLACE")
    assert engine.execute("PTTL", "k2") > 0
    engine.clock.advance(2)
    assert engine.execute("GET", "k2") is None


def test_dump_restore_wide_rows(engine):
    engine.execute("HSET", "row", "f1", "a", "f2", "b")
    blob = engine.execute("DUMP", "row")
    engine.execute("RESTORE", "copy", 0, blob)
    assert engine.execute("HGET", "copy", "f2") == b"b"


def test_snapshot_round_trip(engine):
    engine.execute("SET", "a", "1")
    engine.execute("HSET", "b", "f", "2")
    engine.execute("SET", "c", "3")
    engine.execute("EXPIRE", "c", 50)
    snapshot = engine.save_snapshot()
    replica = engine.spawn_replica()
    assert replica.load_snapshot(snapshot) == 3
    assert replica.execute("GET", "a") == b"1"
    assert replica.execute("HGET", "b", "f") == b"2"
    assert replica.execute("TTL", "c") == 50


def test_durable_log_replay_round_trip(engine):
    engine.execute("SET", "a", "1")
    engine.execute("HSET", "b", "f", "2")
    engine.execute("DEL", "a")
    engine.execute("SET", "c", "3")
    replica = engine.spawn_replica()
    # Replicas have no log of their own; replay the primary's bytes.
    replayed = replica.replay_aof(engine.aof_log.read_all())
    assert replayed >= 4
    assert replica.execute("GET", "a") is None
    assert replica.execute("HGET", "b", "f") == b"2"
    assert replica.execute("GET", "c") == b"3"


def test_log_compaction_removes_deleted_keys(engine):
    engine.execute("SET", "keep", "x")
    engine.execute("SET", "gone", "y")
    engine.execute("DEL", "gone")
    assert contains_key(engine.aof_log.read_all(), b"gone")
    engine.rewrite_aof()
    data = engine.aof_log.read_all()
    assert not contains_key(data, b"gone")
    assert contains_key(data, b"keep")


def test_keyspace_views(engine):
    engine.execute("SET", "a", "1")
    engine.execute("SET", "b", "2")
    engine.execute("EXPIRE", "b", 1)
    assert engine.execute("DBSIZE") == engine.key_count() == 2
    engine.clock.advance(5)
    assert engine.has_live_key(b"a")
    assert not engine.has_live_key(b"b")
    assert b"a" in engine.live_keys() and b"b" not in engine.live_keys()
    records = {r.key: r for r in engine.scan_records()}
    assert set(records) == {b"a"}
    assert records[b"a"].value == b"1"
    assert records[b"a"].expire_at is None


def test_keys_command_and_flush(engine):
    engine.execute("SET", "user1", "x")
    engine.execute("SET", "user2", "y")
    engine.execute("SET", "other", "z")
    assert sorted(engine.execute("KEYS", "user*")) == [b"user1", b"user2"]
    engine.execute("FLUSHALL")
    assert engine.execute("DBSIZE") == 0


def test_replication_over_either_engine(engine):
    manager = ReplicationManager(engine)
    link = manager.add_replica("r0", delay=0.001)
    assert link.replica.engine_name == engine.engine_name
    engine.execute("SET", "pii", "secret")
    engine.clock.advance(0.01)
    manager.pump()
    assert link.replica.execute("GET", "pii") == b"secret"
    engine.execute("DEL", "pii")
    assert manager.key_visible_anywhere(b"pii")   # replica still serves it
    horizon = manager.erasure_horizon(b"pii", step=0.0005)
    assert horizon is not None and horizon <= 0.002


@pytest.fixture(params=sorted(FACTORIES))
def gdpr_store(request):
    clock = SimClock()
    engine = FACTORIES[request.param](clock)
    return GDPRStore(kv=engine, config=GDPRConfig(),
                     keystore=KeyStore())


def _meta(owner):
    return GDPRMetadata(owner=owner, purposes=frozenset({"service"}))


def test_gdpr_erasure_over_either_engine(gdpr_store):
    store = gdpr_store
    for number in range(4):
        owner = "alice" if number % 2 == 0 else "bob"
        store.put(f"user:{number}", b"data", _meta(owner))
    assert store.keys_of_subject("alice") == ["user:0", "user:2"]
    from repro.gdpr.rights import right_to_erasure
    receipt = right_to_erasure(store, "alice")
    assert receipt.keys_erased == ["user:0", "user:2"]
    assert receipt.crypto_erased
    assert not store.subject_exists("alice")
    assert store.subject_exists("bob")
    # Erasure events were timestamped off the engine's deletion tap.
    erased = {event.key for event in store.erasure_events}
    assert {"user:0", "user:2"} <= erased
    # Compaction leaves no trace in the durable log.
    assert not receipt.residual_in_aof


def test_gdpr_ttl_erasure_over_either_engine(gdpr_store):
    store = gdpr_store
    store.put("user:ttl", b"data",
              GDPRMetadata(owner="carol",
                           purposes=frozenset({"service"}), ttl=10.0))
    store.clock.advance(11)
    store.tick()
    report = store.erasure_report()
    assert report["events"] >= 1
    assert not store.subject_exists("carol")


def test_gdpr_index_rebuild_over_either_engine(gdpr_store):
    store = gdpr_store
    for number in range(3):
        store.put(f"user:{number}", b"data", _meta("alice"))
    store.index.clear()
    assert store.rebuild_indexes() == 3
    assert store.keys_of_subject("alice") == \
        ["user:0", "user:1", "user:2"]


# -- cross-tier indistinguishability -----------------------------------------

# A scripted client session with two non-command markers: ("advance", s)
# moves the clock, ("demote",) force-demotes every hot record on the
# tiered run (a no-op on the hot-only run).  Every reply the client sees
# must be identical either way.
_TIER_SCRIPT = [
    ("SET", "a", "1"), ("SET", "b", "2"), ("SET", "c", "3"),
    ("SET", "d", "4"),
    ("EXPIRE", "c", 30), ("EXPIRE", "d", 2),
    ("advance", 1), ("demote",),
    ("GET", "a"), ("TTL", "c"), ("EXISTS", "a", "b", "nope"),
    ("KEYS", "*"), ("DBSIZE",),
    ("advance", 5),                       # d's deadline passes while cold
    ("GET", "d"), ("DBSIZE",), ("KEYS", "*"),
    ("demote",),
    ("DEL", "b", "missing"), ("EXISTS", "b"),
    ("SET", "a", "overwrite"), ("GET", "a"),
    ("SET", "c", "3!"), ("GET", "c"), ("TTL", "c"),
    ("demote",), ("advance", 1),
    ("GET", "a"), ("GET", "b"), ("GET", "c"), ("DBSIZE",),
]


def _run_script(engine, script):
    replies = []
    for step in script:
        if step[0] == "advance":
            engine.clock.advance(step[1])
        elif step[0] == "demote":
            if isinstance(engine, TieredEngine):
                engine.demote_keys(engine.inner.live_keys(0))
        else:
            reply = engine.execute(*step)
            if step[0] == "KEYS":       # order is unspecified; normalize
                reply = sorted(reply)
            replies.append((step, reply))
    final = sorted((r.key, r.value, r.expire_at)
                   for r in engine.scan_records())
    return replies, final


@pytest.mark.parametrize("base", ["redislike", "relational"])
def test_tiered_engine_indistinguishable_from_hot_only(base):
    """The same client script against a hot-only engine and a tiered one
    (with forced demotions interleaved) produces identical replies and
    an identical final keyspace."""
    hot_replies, hot_final = _run_script(
        FACTORIES[base](SimClock()), _TIER_SCRIPT)
    tiered_engine = FACTORIES[f"tiered-{base}"](SimClock())
    tiered_replies, tiered_final = _run_script(tiered_engine, _TIER_SCRIPT)
    assert tiered_replies == hot_replies
    assert tiered_final == hot_final
    # The script really did exercise the archive, not an empty cold path.
    assert tiered_engine.demotions > 0
    assert tiered_engine.promotions > 0


# -- tenant isolation --------------------------------------------------------

# Two tenants sharing one store, deliberately using the *same* local key
# names and the same subject name: the strongest aliasing case.  Tenant
# A's views and rights fan-out must never observe tenant B -- on both
# engines and through the tiered wrapper (same four factories).

def _two_tenants(store):
    from repro.tenancy import TenantStore
    a = TenantStore(store, "acme")
    b = TenantStore(store, "globex")
    for number in range(3):
        a.put(f"user:{number}", b"a-data", _meta("alice"))
        b.put(f"user:{number}", b"b-data", _meta("alice"))
    return a, b


def test_tenant_keyspace_views_are_disjoint(gdpr_store):
    a, b = _two_tenants(gdpr_store)
    assert a.keys() == ["user:0", "user:1", "user:2"]
    assert b.keys() == ["user:0", "user:1", "user:2"]
    assert a.key_count() == b.key_count() == 3
    # The shared engine really holds both namespaces...
    assert gdpr_store.kv.key_count() == 6
    # ...and the prefix views cut them apart exactly.
    for key in gdpr_store.kv.live_keys_with_prefix("acme/"):
        assert key.startswith(b"acme/")
    assert gdpr_store.kv.key_count_with_prefix("acme/") == 3
    # Values never bleed across the namespace boundary.
    assert a.get("user:0").value == b"a-data"
    assert b.get("user:0").value == b"b-data"


def test_tenant_subject_indexes_are_disjoint(gdpr_store):
    a, b = _two_tenants(gdpr_store)
    assert a.keys_of_subject("alice") == ["user:0", "user:1", "user:2"]
    assert b.keys_of_subject("alice") == ["user:0", "user:1", "user:2"]
    assert a.subject_exists("alice") and b.subject_exists("alice")


def test_tenant_access_report_stays_inside_the_tenant(gdpr_store):
    a, _ = _two_tenants(gdpr_store)
    report = a.access_report("alice")
    assert len(report.records) == 3
    for row in report.records:
        assert row["key"].startswith("acme/")
        assert not row["key"].startswith("globex/")


def test_tenant_export_stays_inside_the_tenant(gdpr_store):
    a, _ = _two_tenants(gdpr_store)
    exported = a.export_subject("alice").decode("utf-8")
    assert "acme/" in exported
    assert "globex" not in exported


def test_tenant_erasure_fanout_stops_at_the_boundary(gdpr_store):
    a, b = _two_tenants(gdpr_store)
    receipt = a.erase_subject("alice")
    assert sorted(receipt.keys_erased) \
        == ["acme/user:0", "acme/user:1", "acme/user:2"]
    assert receipt.crypto_erased
    assert not a.subject_exists("alice")
    assert a.keys() == []
    # Tenant B's same-named subject survives untouched and servable:
    # its records seal under the distinct globex/alice data key.
    assert b.subject_exists("alice")
    assert b.keys() == ["user:0", "user:1", "user:2"]
    for number in range(3):
        assert b.get(f"user:{number}").value == b"b-data"


# -- registry hygiene --------------------------------------------------------

def test_register_engine_rejects_duplicate_name():
    """Two different classes cannot claim one engine name; re-registering
    the same class is idempotent."""
    register_engine("redislike", KeyValueStore)     # same class: no-op
    assert ENGINES["redislike"] is KeyValueStore
    with pytest.raises(ValueError, match="already registered"):
        register_engine("redislike", RelationalStore)
    assert ENGINES["redislike"] is KeyValueStore    # registry unchanged
