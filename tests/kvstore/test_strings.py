"""Tests for string commands."""

import pytest

from repro.common.errors import ArityError, UnknownCommandError, WrongTypeError
from repro.common.resp import RespError, SimpleString
from repro.kvstore import KeyValueStore


@pytest.fixture
def store():
    return KeyValueStore()


class TestGetSet:
    def test_set_returns_ok(self, store):
        assert store.execute("SET", "k", "v") == SimpleString("OK")

    def test_get_returns_bytes(self, store):
        store.execute("SET", "k", "v")
        assert store.execute("GET", "k") == b"v"

    def test_get_missing_returns_none(self, store):
        assert store.execute("GET", "nope") is None

    def test_set_overwrites(self, store):
        store.execute("SET", "k", "v1")
        store.execute("SET", "k", "v2")
        assert store.execute("GET", "k") == b"v2"

    def test_binary_values(self, store):
        payload = bytes(range(256))
        store.execute("SET", b"k", payload)
        assert store.execute("GET", "k") == payload

    def test_set_ex_sets_ttl(self, store):
        store.execute("SET", "k", "v", "EX", 100)
        assert store.execute("TTL", "k") == 100

    def test_set_px_sets_ttl(self, store):
        store.execute("SET", "k", "v", "PX", 5000)
        assert store.execute("TTL", "k") == 5

    def test_set_nx_on_missing(self, store):
        assert store.execute("SET", "k", "v", "NX") == SimpleString("OK")

    def test_set_nx_on_existing(self, store):
        store.execute("SET", "k", "v1")
        assert store.execute("SET", "k", "v2", "NX") is None
        assert store.execute("GET", "k") == b"v1"

    def test_set_xx_on_missing(self, store):
        assert store.execute("SET", "k", "v", "XX") is None

    def test_set_xx_on_existing(self, store):
        store.execute("SET", "k", "v1")
        assert store.execute("SET", "k", "v2", "XX") == SimpleString("OK")

    def test_set_clears_previous_ttl(self, store):
        store.execute("SET", "k", "v", "EX", 100)
        store.execute("SET", "k", "v2")
        assert store.execute("TTL", "k") == -1

    def test_set_nx_xx_conflict(self, store):
        with pytest.raises(RespError):
            store.execute("SET", "k", "v", "NX", "XX")

    def test_set_bad_option(self, store):
        with pytest.raises(RespError):
            store.execute("SET", "k", "v", "BOGUS")

    def test_set_nonpositive_expire(self, store):
        with pytest.raises(RespError):
            store.execute("SET", "k", "v", "EX", 0)

    def test_get_wrong_type(self, store):
        store.execute("HSET", "h", "f", "v")
        with pytest.raises(WrongTypeError):
            store.execute("GET", "h")


class TestSetVariants:
    def test_setnx(self, store):
        assert store.execute("SETNX", "k", "v") == 1
        assert store.execute("SETNX", "k", "w") == 0

    def test_setex(self, store):
        store.execute("SETEX", "k", 60, "v")
        assert store.execute("GET", "k") == b"v"
        assert store.execute("TTL", "k") == 60

    def test_setex_rejects_bad_ttl(self, store):
        with pytest.raises(RespError):
            store.execute("SETEX", "k", 0, "v")
        with pytest.raises(RespError):
            store.execute("SETEX", "k", -5, "v")

    def test_psetex(self, store):
        store.execute("PSETEX", "k", 1500, "v")
        assert store.execute("PTTL", "k") == 1500

    def test_getset(self, store):
        assert store.execute("GETSET", "k", "v1") is None
        assert store.execute("GETSET", "k", "v2") == b"v1"
        assert store.execute("GET", "k") == b"v2"

    def test_append_creates(self, store):
        assert store.execute("APPEND", "k", "ab") == 2
        assert store.execute("APPEND", "k", "cd") == 4
        assert store.execute("GET", "k") == b"abcd"

    def test_strlen(self, store):
        store.execute("SET", "k", "hello")
        assert store.execute("STRLEN", "k") == 5
        assert store.execute("STRLEN", "missing") == 0


class TestCounters:
    def test_incr_from_missing(self, store):
        assert store.execute("INCR", "n") == 1
        assert store.execute("INCR", "n") == 2

    def test_decr(self, store):
        assert store.execute("DECR", "n") == -1

    def test_incrby_decrby(self, store):
        assert store.execute("INCRBY", "n", 10) == 10
        assert store.execute("DECRBY", "n", 3) == 7

    def test_incr_non_integer_value(self, store):
        store.execute("SET", "n", "abc")
        with pytest.raises(RespError):
            store.execute("INCR", "n")

    def test_incrby_non_integer_delta(self, store):
        with pytest.raises(RespError):
            store.execute("INCRBY", "n", "abc")

    def test_incr_stores_string(self, store):
        store.execute("INCR", "n")
        assert store.execute("GET", "n") == b"1"


class TestMulti:
    def test_mset_mget(self, store):
        store.execute("MSET", "a", "1", "b", "2")
        assert store.execute("MGET", "a", "b", "c") == [b"1", b"2", None]

    def test_mset_odd_args(self, store):
        with pytest.raises(RespError):
            store.execute("MSET", "a", "1", "b")

    def test_mget_skips_wrong_type(self, store):
        store.execute("HSET", "h", "f", "v")
        store.execute("SET", "s", "x")
        assert store.execute("MGET", "h", "s") == [None, b"x"]


class TestDispatch:
    def test_unknown_command(self, store):
        with pytest.raises(UnknownCommandError):
            store.execute("FROBNICATE", "k")

    def test_arity_exact(self, store):
        with pytest.raises(ArityError):
            store.execute("GET")
        with pytest.raises(ArityError):
            store.execute("GET", "a", "b")

    def test_arity_minimum(self, store):
        with pytest.raises(ArityError):
            store.execute("SET", "k")

    def test_case_insensitive_names(self, store):
        store.execute("set", "k", "v")
        assert store.execute("GeT", "k") == b"v"

    def test_int_arguments_coerced(self, store):
        store.execute("SET", "k", 123)
        assert store.execute("GET", "k") == b"123"

    def test_commands_counted(self, store):
        store.execute("SET", "k", "v")
        store.execute("GET", "k")
        assert store.stats.commands_processed == 2


class TestSetAbsoluteExpiry:
    def test_set_pxat_sets_deadline(self, store):
        store.execute("SET", "k", "v", "PXAT", 100_000)
        assert 99 <= store.execute("TTL", "k") <= 100

    def test_set_exat_sets_deadline(self, store):
        store.execute("SET", "k", "v", "EXAT", 500)
        assert 499 <= store.execute("TTL", "k") <= 500

    def test_pxat_in_past_rejected(self, store):
        with pytest.raises(RespError):
            store.execute("SET", "k", "v", "PXAT", 0)

    def test_pxat_fuses_to_one_aof_record(self):
        from repro.kvstore import StoreConfig
        store = KeyValueStore(StoreConfig(appendonly=True))
        store.execute("SET", "k", "v", "PXAT", 100_000)
        assert store.aof_log.appends == 1

    def test_relative_expiry_still_two_records(self):
        from repro.kvstore import StoreConfig
        store = KeyValueStore(StoreConfig(appendonly=True))
        store.execute("SET", "k", "v", "EX", 100)
        assert store.aof_log.appends == 2

    def test_fused_record_replays_deadline(self):
        from repro.kvstore import StoreConfig
        store = KeyValueStore(StoreConfig(appendonly=True))
        store.execute("SET", "k", "v", "PXAT", 100_000)
        replica = KeyValueStore(StoreConfig(appendonly=True))
        replica.replay_aof(store.aof_log.read_all())
        assert replica.execute("GET", "k") == b"v"
        assert 99 <= replica.execute("TTL", "k") <= 100
