"""Tests for generic key commands and expiry semantics."""

import pytest

from repro.common.clock import SimClock
from repro.common.resp import RespError, SimpleString
from repro.kvstore import KeyValueStore, StoreConfig


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def store(clock):
    return KeyValueStore(clock=clock)


class TestDelete:
    def test_del_existing(self, store):
        store.execute("SET", "k", "v")
        assert store.execute("DEL", "k") == 1
        assert store.execute("GET", "k") is None

    def test_del_missing(self, store):
        assert store.execute("DEL", "nope") == 0

    def test_del_multiple(self, store):
        store.execute("MSET", "a", "1", "b", "2")
        assert store.execute("DEL", "a", "b", "c") == 2

    def test_unlink_equivalent(self, store):
        store.execute("SET", "k", "v")
        assert store.execute("UNLINK", "k") == 1

    def test_del_clears_ttl_state(self, store):
        store.execute("SET", "k", "v", "EX", 100)
        store.execute("DEL", "k")
        store.execute("SET", "k", "v")
        assert store.execute("TTL", "k") == -1

    def test_deletion_listener_fires(self, store):
        events = []
        store.add_deletion_listener(
            lambda db, key, reason, when: events.append((key, reason)))
        store.execute("SET", "k", "v")
        store.execute("DEL", "k")
        assert events == [(b"k", "del")]


class TestExistsTypeKeys:
    def test_exists(self, store):
        store.execute("SET", "k", "v")
        assert store.execute("EXISTS", "k") == 1
        assert store.execute("EXISTS", "k", "missing", "k") == 2

    def test_type(self, store):
        store.execute("SET", "s", "v")
        store.execute("HSET", "h", "f", "v")
        store.execute("RPUSH", "l", "a")
        store.execute("SADD", "st", "a")
        store.execute("ZADD", "z", "1", "a")
        assert store.execute("TYPE", "s") == SimpleString("string")
        assert store.execute("TYPE", "h") == SimpleString("hash")
        assert store.execute("TYPE", "l") == SimpleString("list")
        assert store.execute("TYPE", "st") == SimpleString("set")
        assert store.execute("TYPE", "z") == SimpleString("zset")
        assert store.execute("TYPE", "none") == SimpleString("none")

    def test_keys_glob(self, store):
        store.execute("MSET", "user:1", "a", "user:2", "b", "other", "c")
        keys = sorted(store.execute("KEYS", "user:*"))
        assert keys == [b"user:1", b"user:2"]

    def test_keys_star(self, store):
        store.execute("MSET", "a", "1", "b", "2")
        assert len(store.execute("KEYS", "*")) == 2

    def test_randomkey(self, store):
        assert store.execute("RANDOMKEY") is None
        store.execute("SET", "only", "v")
        assert store.execute("RANDOMKEY") == b"only"

    def test_rename(self, store):
        store.execute("SET", "old", "v", "EX", 50)
        store.execute("RENAME", "old", "new")
        assert store.execute("GET", "old") is None
        assert store.execute("GET", "new") == b"v"
        assert store.execute("TTL", "new") == 50

    def test_rename_missing(self, store):
        with pytest.raises(RespError):
            store.execute("RENAME", "ghost", "x")


class TestScan:
    def test_scan_full_iteration(self, store):
        for i in range(25):
            store.execute("SET", f"k{i}", "v")
        cursor = 0
        seen = set()
        while True:
            cursor_bytes, keys = store.execute("SCAN", cursor)
            seen.update(keys)
            cursor = int(cursor_bytes)
            if cursor == 0:
                break
        assert len(seen) == 25

    def test_scan_match(self, store):
        store.execute("MSET", "a:1", "x", "b:1", "y")
        _, keys = store.execute("SCAN", 0, "MATCH", "a:*", "COUNT", 100)
        assert keys == [b"a:1"]

    def test_scan_bad_count(self, store):
        with pytest.raises(RespError):
            store.execute("SCAN", 0, "COUNT", 0)

    def test_scan_bad_syntax(self, store):
        with pytest.raises(RespError):
            store.execute("SCAN", 0, "BOGUS")


class TestTTL:
    def test_expire_and_ttl(self, store):
        store.execute("SET", "k", "v")
        assert store.execute("EXPIRE", "k", 100) == 1
        assert store.execute("TTL", "k") == 100

    def test_expire_missing_key(self, store):
        assert store.execute("EXPIRE", "ghost", 100) == 0

    def test_ttl_missing_key(self, store):
        assert store.execute("TTL", "ghost") == -2

    def test_ttl_no_expiry(self, store):
        store.execute("SET", "k", "v")
        assert store.execute("TTL", "k") == -1

    def test_pexpire_pttl(self, store):
        store.execute("SET", "k", "v")
        store.execute("PEXPIRE", "k", 2500)
        assert store.execute("PTTL", "k") == 2500

    def test_expireat(self, store, clock):
        store.execute("SET", "k", "v")
        store.execute("EXPIREAT", "k", int(clock.now()) + 60)
        assert 58 <= store.execute("TTL", "k") <= 60

    def test_negative_ttl_deletes_now(self, store):
        store.execute("SET", "k", "v")
        assert store.execute("EXPIRE", "k", -1) == 1
        assert store.execute("GET", "k") is None

    def test_persist(self, store):
        store.execute("SET", "k", "v", "EX", 100)
        assert store.execute("PERSIST", "k") == 1
        assert store.execute("TTL", "k") == -1

    def test_persist_without_ttl(self, store):
        store.execute("SET", "k", "v")
        assert store.execute("PERSIST", "k") == 0

    def test_persist_missing(self, store):
        assert store.execute("PERSIST", "ghost") == 0


class TestLazyExpiration:
    def test_expired_key_invisible_on_get(self, store, clock):
        store.execute("SET", "k", "v", "EX", 10)
        clock.advance(10.5)
        assert store.execute("GET", "k") is None

    def test_expired_key_invisible_to_exists(self, store, clock):
        store.execute("SET", "k", "v", "EX", 10)
        clock.advance(11)
        assert store.execute("EXISTS", "k") == 0

    def test_expired_key_invisible_to_keys(self, store, clock):
        store.execute("SET", "k", "v", "EX", 10)
        clock.advance(11)
        assert store.execute("KEYS", "*") == []

    def test_expired_key_invisible_to_dbsize(self, store, clock):
        store.execute("SET", "a", "v")
        store.execute("SET", "k", "v", "EX", 10)
        assert store.execute("DBSIZE") == 2
        clock.advance(11)
        assert store.execute("DBSIZE") == 1

    def test_lazy_expire_counts_stat(self, store, clock):
        store.execute("SET", "k", "v", "EX", 10)
        clock.advance(11)
        store.execute("GET", "k")
        assert store.stats.expired_keys == 1

    def test_lazy_expire_reason_in_listener(self, store, clock):
        reasons = []
        store.add_deletion_listener(
            lambda db, key, reason, when: reasons.append(reason))
        store.execute("SET", "k", "v", "EX", 10)
        clock.advance(11)
        store.execute("GET", "k")
        assert reasons == ["lazy-expire"]

    def test_not_expired_before_deadline(self, store, clock):
        store.execute("SET", "k", "v", "EX", 10)
        clock.advance(9.99)
        assert store.execute("GET", "k") == b"v"

    def test_write_to_expired_key_recreates(self, store, clock):
        store.execute("SET", "k", "v", "EX", 10)
        clock.advance(11)
        store.execute("APPEND", "k", "new")
        assert store.execute("GET", "k") == b"new"


class TestFlush:
    def test_flushdb(self, store):
        store.execute("MSET", "a", "1", "b", "2")
        assert store.execute("FLUSHDB") == SimpleString("OK")
        assert store.execute("DBSIZE") == 0

    def test_flushall_spans_databases(self, store):
        session = store.session()
        store.execute("SET", "k0", "v", session=session)
        store.execute("SELECT", 1, session=session)
        store.execute("SET", "k1", "v", session=session)
        store.execute("FLUSHALL", session=session)
        assert store.execute("DBSIZE", session=session) == 0
        store.execute("SELECT", 0, session=session)
        assert store.execute("DBSIZE", session=session) == 0


class TestSessions:
    def test_select_isolates_databases(self, store):
        s1 = store.session()
        s2 = store.session()
        store.execute("SET", "k", "one", session=s1)
        store.execute("SELECT", 1, session=s2)
        store.execute("SET", "k", "two", session=s2)
        assert store.execute("GET", "k", session=s1) == b"one"
        assert store.execute("GET", "k", session=s2) == b"two"

    def test_select_out_of_range(self, store):
        with pytest.raises(RespError):
            store.execute("SELECT", 99)

    def test_select_bad_index(self, store):
        with pytest.raises(RespError):
            store.execute("SELECT", "abc")
