"""Tests for AOF persistence: policies, read logging, replay, rewrite."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import PersistenceError
from repro.common.resp import encode_command
from repro.device.append_log import AppendLog
from repro.device.latency import INTEL_750_SSD
from repro.kvstore import KeyValueStore, StoreConfig, contains_key, replay_commands


def make_store(clock=None, **config):
    clock = clock if clock is not None else SimClock()
    defaults = dict(appendonly=True, appendfsync="everysec")
    defaults.update(config)
    return KeyValueStore(StoreConfig(**defaults), clock=clock), clock


class TestWritePath:
    def test_writes_recorded(self):
        store, _ = make_store()
        store.execute("SET", "k", "v")
        commands = replay_commands(store.aof_log.read_all())
        assert [b"SET", b"k", b"v"] in commands

    def test_reads_skipped_by_default(self):
        store, _ = make_store()
        store.execute("SET", "k", "v")
        store.execute("GET", "k")
        commands = replay_commands(store.aof_log.read_all())
        assert [b"GET", b"k"] not in commands

    def test_reads_logged_with_flag(self):
        store, _ = make_store(aof_log_reads=True)
        store.execute("SET", "k", "v")
        store.execute("GET", "k")
        commands = replay_commands(store.aof_log.read_all())
        assert [b"GET", b"k"] in commands
        assert store.aof.reads_logged == 1

    def test_failed_write_not_logged_as_write(self):
        store, _ = make_store()
        store.execute("SET", "k", "v")
        store.execute("SET", "k", "w", "NX")  # fails: key exists
        commands = replay_commands(store.aof_log.read_all())
        assert [b"SET", b"k", b"w", b"NX"] not in commands

    def test_expire_propagated_as_pexpireat(self):
        store, _ = make_store()
        store.execute("SET", "k", "v")
        store.execute("EXPIRE", "k", 100)
        commands = replay_commands(store.aof_log.read_all())
        assert any(c[0] == b"PEXPIREAT" for c in commands)
        assert not any(c[0] == b"EXPIRE" for c in commands)

    def test_active_expiry_propagates_del(self):
        store, clock = make_store(expiry_strategy="fullscan")
        store.execute("SET", "k", "v", "EX", 5)
        clock.advance(6)
        store.cron()
        commands = replay_commands(store.aof_log.read_all())
        assert [b"DEL", b"k"] in commands

    def test_select_emitted_on_db_switch(self):
        store, _ = make_store()
        session = store.session()
        store.execute("SELECT", 2, session=session)
        store.execute("SET", "k", "v", session=session)
        commands = replay_commands(store.aof_log.read_all())
        assert [b"SELECT", b"2"] in commands


class TestFsyncPolicies:
    def test_always_durable_immediately(self):
        store, _ = make_store(appendfsync="always")
        store.execute("SET", "k", "v")
        assert store.aof_log.unsynced_bytes == 0
        assert store.aof_log.durable_length > 0

    def test_everysec_defers_fsync(self):
        store, clock = make_store(appendfsync="everysec")
        store.execute("SET", "k", "v")
        assert store.aof_log.durable_length == 0
        clock.advance(1.1)
        store.tick()
        assert store.aof_log.durable_length > 0

    def test_no_policy_never_fsyncs(self):
        store, clock = make_store(appendfsync="no")
        store.execute("SET", "k", "v")
        clock.advance(100)
        store.tick()
        assert store.aof_log.fsyncs == 0

    def test_everysec_exposure_window(self):
        store, clock = make_store(appendfsync="everysec")
        clock.advance(1.1)
        store.tick()
        store.execute("SET", "k", "v")
        assert store.aof.unsynced_bytes() > 0
        store.aof_log.crash(power_loss=True)
        # Power loss before the next fsync loses the last second of ops.
        fresh = KeyValueStore(StoreConfig(appendonly=True))
        fresh.replay_aof(store.aof_log.read_all())
        assert fresh.execute("GET", "k") is None

    def test_always_survives_power_loss(self):
        store, _ = make_store(appendfsync="always")
        store.execute("SET", "k", "v")
        store.aof_log.crash(power_loss=True)
        fresh = KeyValueStore(StoreConfig(appendonly=True))
        fresh.replay_aof(store.aof_log.read_all())
        assert fresh.execute("GET", "k") == b"v"

    def test_bad_policy_rejected(self):
        with pytest.raises(PersistenceError):
            make_store(appendfsync="sometimes")


class TestReplay:
    def test_replay_reconstructs_all_types(self):
        store, _ = make_store()
        store.execute("SET", "s", "v")
        store.execute("HSET", "h", "f", "v")
        store.execute("RPUSH", "l", "a", "b")
        store.execute("SADD", "st", "x")
        store.execute("ZADD", "z", "1", "m")
        fresh = KeyValueStore(StoreConfig(appendonly=True))
        count = fresh.replay_aof(store.aof_log.read_all())
        assert count == 5
        assert fresh.execute("GET", "s") == b"v"
        assert fresh.execute("HGET", "h", "f") == b"v"
        assert fresh.execute("LRANGE", "l", 0, -1) == [b"a", b"b"]
        assert fresh.execute("SISMEMBER", "st", "x") == 1
        assert fresh.execute("ZSCORE", "z", "m") == b"1.0"

    def test_replay_preserves_absolute_deadline(self):
        clock = SimClock()
        store, _ = make_store(clock=clock)
        store.execute("SET", "k", "v")
        store.execute("EXPIRE", "k", 100)
        clock.advance(40)
        fresh = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
        fresh.replay_aof(store.aof_log.read_all())
        assert fresh.execute("TTL", "k") == 60

    def test_replay_tolerates_truncated_tail(self):
        store, _ = make_store()
        store.execute("SET", "a", "1")
        data = store.aof_log.read_all() + b"*2\r\n$3\r\nDEL"  # torn record
        fresh = KeyValueStore(StoreConfig(appendonly=True))
        assert fresh.replay_aof(data) == 1
        assert fresh.execute("GET", "a") == b"1"

    def test_replay_strict_mode_rejects_truncation(self):
        store, _ = make_store()
        store.execute("SET", "a", "1")
        data = store.aof_log.read_all() + b"*1\r\n$3\r\nDE"
        fresh = KeyValueStore(StoreConfig(appendonly=True))
        with pytest.raises(PersistenceError):
            fresh.replay_aof(data, tolerate_truncated_tail=False)

    def test_replay_rejects_non_command_payload(self):
        with pytest.raises(PersistenceError):
            replay_commands(b":42\r\n")

    def test_replay_does_not_relog(self):
        store, _ = make_store()
        store.execute("SET", "a", "1")
        data = store.aof_log.read_all()
        fresh_log = AppendLog()
        fresh = KeyValueStore(StoreConfig(appendonly=True),
                              aof_log=fresh_log)
        fresh.replay_aof(data)
        assert fresh_log.total_length == 0

    def test_replay_with_deletes(self):
        store, _ = make_store()
        store.execute("SET", "a", "1")
        store.execute("DEL", "a")
        fresh = KeyValueStore(StoreConfig(appendonly=True))
        fresh.replay_aof(store.aof_log.read_all())
        assert fresh.execute("GET", "a") is None


class TestRewrite:
    def test_rewrite_compacts_history(self):
        store, _ = make_store()
        for i in range(20):
            store.execute("SET", "k", f"v{i}")
        before = store.aof_log.total_length
        store.rewrite_aof()
        assert store.aof_log.total_length < before

    def test_rewrite_preserves_state(self):
        store, _ = make_store()
        store.execute("SET", "s", "v")
        store.execute("HSET", "h", "f", "v")
        store.execute("ZADD", "z", "2.5", "m")
        store.execute("SET", "e", "x", "EX", 500)
        store.rewrite_aof()
        fresh = KeyValueStore(StoreConfig(appendonly=True),
                              clock=store.clock)
        fresh.replay_aof(store.aof_log.read_all())
        assert fresh.execute("GET", "s") == b"v"
        assert fresh.execute("HGET", "h", "f") == b"v"
        assert float(fresh.execute("ZSCORE", "z", "m")) == 2.5
        assert 495 <= fresh.execute("TTL", "e") <= 500

    def test_deleted_key_persists_until_rewrite(self):
        # The section 4.3 finding.
        store, _ = make_store()
        store.execute("SET", "doomed", "pii")
        store.execute("DEL", "doomed")
        assert contains_key(store.aof_log.read_all(), b"doomed")
        store.rewrite_aof()
        assert not contains_key(store.aof_log.read_all(), b"doomed")

    def test_periodic_rewrite_interval(self):
        store, clock = make_store(aof_rewrite_interval=3600.0)
        store.execute("SET", "doomed", "pii")
        store.execute("DEL", "doomed")
        clock.advance(3700)
        store.tick()
        assert store.rewrites_completed >= 1
        assert not contains_key(store.aof_log.read_all(), b"doomed")

    def test_growth_triggered_rewrite(self):
        store, _ = make_store(auto_aof_rewrite_percentage=100,
                              auto_aof_rewrite_min_size=512)
        for i in range(200):
            store.execute("SET", "k", "x" * 100)
        assert store.rewrites_completed >= 1

    def test_rewrite_without_aof_raises(self):
        store = KeyValueStore()
        with pytest.raises(PersistenceError):
            store.rewrite_aof()

    def test_bgrewriteaof_command(self):
        store, _ = make_store()
        store.execute("SET", "k", "v")
        reply = store.execute("BGREWRITEAOF")
        assert b"rewriting" in str(reply).encode() or "rewriting" in str(
            reply)


class TestTiming:
    def test_always_policy_charges_fsync_per_op(self):
        clock = SimClock()
        log = AppendLog(clock=clock, latency=INTEL_750_SSD)
        store = KeyValueStore(
            StoreConfig(appendonly=True, appendfsync="always"),
            clock=clock, aof_log=log)
        before = clock.now()
        store.execute("SET", "k", "v")
        assert clock.now() - before >= INTEL_750_SSD.fsync

    def test_record_cost_charged(self):
        clock = SimClock()
        store = KeyValueStore(
            StoreConfig(appendonly=True, aof_record_base_cost=1e-3),
            clock=clock)
        store.execute("SET", "k", "v")
        assert clock.now() >= 1e-3
