"""Tests for RDB-style snapshots."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import CorruptionError
from repro.kvstore import KeyValueStore, StoreConfig, snapshot_mentions_key
from repro.kvstore.snapshot import dump, load


@pytest.fixture
def store():
    return KeyValueStore(clock=SimClock())


class TestRoundtrip:
    def test_all_types_roundtrip(self, store):
        store.execute("SET", "s", "value")
        store.execute("HSET", "h", "f1", "v1", "f2", "v2")
        store.execute("RPUSH", "l", "a", "b", "c")
        store.execute("SADD", "set", "x", "y")
        store.execute("ZADD", "z", "1.5", "m1", "2.5", "m2")
        data = store.save_snapshot()
        fresh = KeyValueStore()
        assert fresh.load_snapshot(data) == 5
        assert fresh.execute("GET", "s") == b"value"
        assert fresh.execute("HGET", "h", "f2") == b"v2"
        assert fresh.execute("LRANGE", "l", 0, -1) == [b"a", b"b", b"c"]
        assert fresh.execute("SMEMBERS", "set") == [b"x", b"y"]
        assert fresh.execute("ZRANGEBYSCORE", "z", "-inf", "+inf") == \
            [b"m1", b"m2"]

    def test_expiry_preserved(self, store):
        store.execute("SET", "k", "v", "EX", 100)
        data = store.save_snapshot()
        fresh = KeyValueStore(clock=store.clock)
        fresh.load_snapshot(data)
        assert 99 <= fresh.execute("TTL", "k") <= 100

    def test_multiple_databases(self, store):
        session = store.session()
        store.execute("SET", "k0", "v0", session=session)
        store.execute("SELECT", 3, session=session)
        store.execute("SET", "k3", "v3", session=session)
        data = store.save_snapshot()
        fresh = KeyValueStore()
        fresh.load_snapshot(data)
        s = fresh.session()
        assert fresh.execute("GET", "k0", session=s) == b"v0"
        fresh.execute("SELECT", 3, session=s)
        assert fresh.execute("GET", "k3", session=s) == b"v3"

    def test_empty_store(self, store):
        data = store.save_snapshot()
        fresh = KeyValueStore()
        assert fresh.load_snapshot(data) == 0

    def test_load_replaces_existing_state(self, store):
        store.execute("SET", "k", "v")
        data = store.save_snapshot()
        fresh = KeyValueStore()
        fresh.execute("SET", "stale", "x")
        fresh.load_snapshot(data)
        assert fresh.execute("GET", "stale") is None
        assert fresh.execute("GET", "k") == b"v"

    def test_binary_payloads(self, store):
        payload = bytes(range(256))
        store.execute("SET", b"\x00key", payload)
        fresh = KeyValueStore()
        fresh.load_snapshot(store.save_snapshot())
        assert fresh.execute("GET", b"\x00key") == payload


class TestIntegrity:
    def test_crc_detects_flip(self, store):
        store.execute("SET", "k", "v")
        data = bytearray(store.save_snapshot())
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(CorruptionError):
            load(bytes(data))

    def test_truncation_detected(self, store):
        store.execute("SET", "k", "v")
        data = store.save_snapshot()
        with pytest.raises(CorruptionError):
            load(data[:-5])

    def test_bad_magic(self):
        with pytest.raises(CorruptionError):
            load(b"NOTADB00" + b"\x00" * 20)

    def test_too_small(self):
        with pytest.raises(CorruptionError):
            load(b"tiny")


class TestMentions:
    def test_snapshot_mentions_deleted_key_until_redump(self, store):
        # The section 4.3 concern applied to snapshots.
        store.execute("SET", "doomed", "pii")
        first = store.save_snapshot()
        store.execute("DEL", "doomed")
        assert snapshot_mentions_key(first, b"doomed")
        second = store.save_snapshot()
        assert not snapshot_mentions_key(second, b"doomed")

    def test_save_records_timestamp(self, store):
        store.clock.advance(10)
        store.save_snapshot()
        assert store.last_snapshot_at == pytest.approx(10.0)

    def test_save_command(self, store):
        store.execute("SET", "k", "v")
        store.execute("SAVE")
        assert store.last_snapshot is not None
        assert snapshot_mentions_key(store.last_snapshot, b"k")
