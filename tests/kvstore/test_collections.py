"""Tests for hash, list, set, and sorted-set commands."""

import pytest

from repro.common.errors import WrongTypeError
from repro.common.resp import RespError, SimpleString
from repro.kvstore import KeyValueStore


@pytest.fixture
def store():
    return KeyValueStore()


class TestHash:
    def test_hset_hget(self, store):
        assert store.execute("HSET", "h", "f", "v") == 1
        assert store.execute("HGET", "h", "f") == b"v"

    def test_hset_multiple_fields(self, store):
        assert store.execute("HSET", "h", "a", "1", "b", "2") == 2

    def test_hset_update_returns_zero(self, store):
        store.execute("HSET", "h", "f", "v")
        assert store.execute("HSET", "h", "f", "w") == 0
        assert store.execute("HGET", "h", "f") == b"w"

    def test_hset_odd_pairs(self, store):
        with pytest.raises(RespError):
            store.execute("HSET", "h", "a", "1", "b")

    def test_hmset(self, store):
        assert store.execute("HMSET", "h", "a", "1") == SimpleString("OK")

    def test_hsetnx(self, store):
        assert store.execute("HSETNX", "h", "f", "v") == 1
        assert store.execute("HSETNX", "h", "f", "w") == 0
        assert store.execute("HGET", "h", "f") == b"v"

    def test_hget_missing(self, store):
        assert store.execute("HGET", "h", "f") is None
        store.execute("HSET", "h", "f", "v")
        assert store.execute("HGET", "h", "other") is None

    def test_hmget(self, store):
        store.execute("HSET", "h", "a", "1", "b", "2")
        assert store.execute("HMGET", "h", "a", "x", "b") == \
            [b"1", None, b"2"]

    def test_hgetall(self, store):
        store.execute("HSET", "h", "a", "1", "b", "2")
        flat = store.execute("HGETALL", "h")
        assert dict(zip(flat[::2], flat[1::2])) == {b"a": b"1", b"b": b"2"}

    def test_hgetall_missing(self, store):
        assert store.execute("HGETALL", "h") == []

    def test_hdel(self, store):
        store.execute("HSET", "h", "a", "1", "b", "2")
        assert store.execute("HDEL", "h", "a", "x") == 1
        assert store.execute("HLEN", "h") == 1

    def test_hdel_last_field_removes_key(self, store):
        store.execute("HSET", "h", "a", "1")
        store.execute("HDEL", "h", "a")
        assert store.execute("EXISTS", "h") == 0

    def test_hlen_hexists(self, store):
        store.execute("HSET", "h", "a", "1")
        assert store.execute("HLEN", "h") == 1
        assert store.execute("HEXISTS", "h", "a") == 1
        assert store.execute("HEXISTS", "h", "b") == 0

    def test_hkeys_hvals(self, store):
        store.execute("HSET", "h", "a", "1", "b", "2")
        assert sorted(store.execute("HKEYS", "h")) == [b"a", b"b"]
        assert sorted(store.execute("HVALS", "h")) == [b"1", b"2"]

    def test_hash_on_string_key(self, store):
        store.execute("SET", "s", "v")
        with pytest.raises(WrongTypeError):
            store.execute("HSET", "s", "f", "v")
        with pytest.raises(WrongTypeError):
            store.execute("HGET", "s", "f")


class TestList:
    def test_rpush_lrange(self, store):
        store.execute("RPUSH", "l", "a", "b", "c")
        assert store.execute("LRANGE", "l", 0, -1) == [b"a", b"b", b"c"]

    def test_lpush_order(self, store):
        store.execute("LPUSH", "l", "a", "b")
        assert store.execute("LRANGE", "l", 0, -1) == [b"b", b"a"]

    def test_push_returns_length(self, store):
        assert store.execute("RPUSH", "l", "a") == 1
        assert store.execute("RPUSH", "l", "b", "c") == 3

    def test_lpop_rpop(self, store):
        store.execute("RPUSH", "l", "a", "b", "c")
        assert store.execute("LPOP", "l") == b"a"
        assert store.execute("RPOP", "l") == b"c"

    def test_pop_empty(self, store):
        assert store.execute("LPOP", "missing") is None

    def test_pop_last_removes_key(self, store):
        store.execute("RPUSH", "l", "only")
        store.execute("LPOP", "l")
        assert store.execute("EXISTS", "l") == 0

    def test_llen(self, store):
        store.execute("RPUSH", "l", "a", "b")
        assert store.execute("LLEN", "l") == 2
        assert store.execute("LLEN", "missing") == 0

    def test_lrange_negative_indexes(self, store):
        store.execute("RPUSH", "l", "a", "b", "c", "d")
        assert store.execute("LRANGE", "l", -2, -1) == [b"c", b"d"]

    def test_lrange_out_of_bounds(self, store):
        store.execute("RPUSH", "l", "a")
        assert store.execute("LRANGE", "l", 5, 10) == []

    def test_lindex(self, store):
        store.execute("RPUSH", "l", "a", "b")
        assert store.execute("LINDEX", "l", 0) == b"a"
        assert store.execute("LINDEX", "l", -1) == b"b"
        assert store.execute("LINDEX", "l", 9) is None


class TestSet:
    def test_sadd_smembers(self, store):
        assert store.execute("SADD", "s", "a", "b", "a") == 2
        assert store.execute("SMEMBERS", "s") == [b"a", b"b"]

    def test_sismember(self, store):
        store.execute("SADD", "s", "a")
        assert store.execute("SISMEMBER", "s", "a") == 1
        assert store.execute("SISMEMBER", "s", "z") == 0

    def test_srem(self, store):
        store.execute("SADD", "s", "a", "b")
        assert store.execute("SREM", "s", "a", "zz") == 1
        assert store.execute("SCARD", "s") == 1

    def test_srem_last_removes_key(self, store):
        store.execute("SADD", "s", "a")
        store.execute("SREM", "s", "a")
        assert store.execute("EXISTS", "s") == 0

    def test_scard_missing(self, store):
        assert store.execute("SCARD", "missing") == 0


class TestZSet:
    def test_zadd_zscore(self, store):
        assert store.execute("ZADD", "z", "1.5", "a") == 1
        assert store.execute("ZSCORE", "z", "a") == b"1.5"

    def test_zadd_update_score(self, store):
        store.execute("ZADD", "z", "1", "a")
        assert store.execute("ZADD", "z", "2", "a") == 0
        assert float(store.execute("ZSCORE", "z", "a")) == 2.0

    def test_zcard(self, store):
        store.execute("ZADD", "z", "1", "a", "2", "b")
        assert store.execute("ZCARD", "z") == 2

    def test_zrem(self, store):
        store.execute("ZADD", "z", "1", "a", "2", "b")
        assert store.execute("ZREM", "z", "a", "ghost") == 1
        assert store.execute("ZCARD", "z") == 1

    def test_zrem_last_removes_key(self, store):
        store.execute("ZADD", "z", "1", "a")
        store.execute("ZREM", "z", "a")
        assert store.execute("EXISTS", "z") == 0

    def test_zrangebyscore_ordering(self, store):
        store.execute("ZADD", "z", "3", "c", "1", "a", "2", "b")
        assert store.execute("ZRANGEBYSCORE", "z", "-inf", "+inf") == \
            [b"a", b"b", b"c"]

    def test_zrangebyscore_bounds_inclusive(self, store):
        store.execute("ZADD", "z", "1", "a", "2", "b", "3", "c")
        assert store.execute("ZRANGEBYSCORE", "z", "2", "3") == [b"b", b"c"]

    def test_zrangebyscore_limit(self, store):
        store.execute("ZADD", "z", "1", "a", "2", "b", "3", "c")
        assert store.execute("ZRANGEBYSCORE", "z", "-inf", "+inf",
                             "LIMIT", 1, 1) == [b"b"]

    def test_zrangebyscore_missing_key(self, store):
        assert store.execute("ZRANGEBYSCORE", "z", "-inf", "+inf") == []

    def test_zrangebyscore_bad_limit(self, store):
        store.execute("ZADD", "z", "1", "a")
        with pytest.raises(RespError):
            store.execute("ZRANGEBYSCORE", "z", "0", "1", "LIMIT", 0)

    def test_zadd_bad_score(self, store):
        with pytest.raises(RespError):
            store.execute("ZADD", "z", "not-a-float", "a")

    def test_zscore_missing(self, store):
        store.execute("ZADD", "z", "1", "a")
        assert store.execute("ZSCORE", "z", "ghost") is None

    def test_same_score_orders_by_member(self, store):
        store.execute("ZADD", "z", "1", "bb", "1", "aa")
        assert store.execute("ZRANGEBYSCORE", "z", "1", "1") == \
            [b"aa", b"bb"]
