"""Tests for admin commands, slowlog, monitor feed, and keyspace internals."""

import random

import pytest

from repro.common.clock import SimClock
from repro.common.resp import RespError, SimpleString
from repro.kvstore import KeyValueStore, RandomAccessSet, StoreConfig
from repro.kvstore.monitor import MonitorFeed
from repro.kvstore.slowlog import Slowlog


@pytest.fixture
def store():
    return KeyValueStore(clock=SimClock())


class TestInfoConfig:
    def test_info_contains_sections(self, store):
        store.execute("SET", "k", "v")
        text = store.execute("INFO").decode()
        assert "# Stats" in text
        assert "db0:keys=1" in text

    def test_config_get_glob(self, store):
        flat = store.execute("CONFIG", "GET", "append*")
        pairs = dict(zip(flat[::2], flat[1::2]))
        assert b"appendonly" in pairs
        assert b"appendfsync" in pairs

    def test_config_set_appendfsync(self, store):
        store.execute("CONFIG", "SET", "appendfsync", "always")
        assert store.config.appendfsync == "always"

    def test_config_set_unknown(self, store):
        with pytest.raises(RespError):
            store.execute("CONFIG", "SET", "bogus-param", "1")

    def test_config_bad_subcommand(self, store):
        with pytest.raises(RespError):
            store.execute("CONFIG", "FROB")

    def test_time_reflects_clock(self, store):
        store.clock.advance(12.5)
        seconds, micros = store.execute("TIME")
        assert int(seconds) == 12
        assert abs(int(micros) - 500_000) < 2000

    def test_echo(self, store):
        assert store.execute("ECHO", "hi") == b"hi"


class TestSlowlogCommand:
    def test_slowlog_records_with_zero_threshold(self, store):
        store.execute("CONFIG", "SET", "slowlog-log-slower-than", "0")
        store.execute("SET", "k", "v")
        assert store.execute("SLOWLOG", "LEN") >= 1

    def test_slowlog_get_structure(self, store):
        store.execute("CONFIG", "SET", "slowlog-log-slower-than", "0")
        store.execute("SET", "k", "v")
        entries = store.execute("SLOWLOG", "GET", 5)
        assert entries
        entry = entries[0]
        assert len(entry) == 4  # id, ts, duration_us, args
        assert entry[3][0] == b"SET"

    def test_slowlog_reset(self, store):
        store.execute("CONFIG", "SET", "slowlog-log-slower-than", "0")
        store.execute("SET", "k", "v")
        store.execute("SLOWLOG", "RESET")
        # Only the RESET command itself (recorded after it ran) remains.
        entries = store.execute("SLOWLOG", "GET", 10)
        assert len(entries) == 1
        assert entries[0][3][:2] == [b"SLOWLOG", b"RESET"]

    def test_slowlog_default_threshold_ignores_fast_ops(self, store):
        store.execute("SET", "k", "v")  # zero-cost command under SimClock
        assert store.execute("SLOWLOG", "LEN") == 0

    def test_slowlog_bad_subcommand(self, store):
        with pytest.raises(RespError):
            store.execute("SLOWLOG", "FROB")


class TestSlowlogUnit:
    def test_ring_bound(self):
        log = Slowlog(threshold=0.0, max_len=3)
        for i in range(10):
            log.maybe_record(float(i), 1.0, [b"CMD", str(i).encode()])
        assert len(log) == 3
        assert log.dropped == 7

    def test_most_recent_first(self):
        log = Slowlog(threshold=0.0, max_len=10)
        log.maybe_record(1.0, 1.0, [b"A"])
        log.maybe_record(2.0, 1.0, [b"B"])
        assert log.get(1)[0].args == (b"B",)

    def test_negative_threshold_disables(self):
        log = Slowlog(threshold=-1)
        assert log.maybe_record(0.0, 100.0, [b"SLOW"]) is False

    def test_threshold_filters(self):
        log = Slowlog(threshold=0.5)
        assert log.maybe_record(0.0, 0.1, [b"FAST"]) is False
        assert log.maybe_record(0.0, 0.9, [b"SLOW"]) is True


class TestMonitorFeed:
    def test_publish_to_sinks(self):
        feed = MonitorFeed()
        lines = []
        feed.attach(lines.append)
        feed.publish(1.0, 0, [b"SET", b"k", b"v"])
        assert len(lines) == 1
        assert b'"SET"' in lines[0]

    def test_inactive_feed_skips_formatting(self):
        feed = MonitorFeed()
        feed.publish(1.0, 0, [b"SET", b"k", b"v"])
        assert feed.records_streamed == 0

    def test_detach(self):
        feed = MonitorFeed()
        sink = lambda line: None  # noqa: E731
        feed.attach(sink)
        assert feed.active
        feed.detach(sink)
        assert not feed.active

    def test_format_includes_db_and_timestamp(self):
        line = MonitorFeed.format_record(3.25, 2, [b"GET", b"key"])
        assert line.startswith(b"3.250000 [2")
        assert b'"GET" "key"' in line

    def test_charges_clock_when_active(self):
        clock = SimClock()
        feed = MonitorFeed(clock=clock, format_cost=1e-6)
        feed.attach(lambda line: None)
        feed.publish(0.0, 0, [b"PING"])
        assert clock.now() == pytest.approx(1e-6)


class TestRandomAccessSet:
    def test_add_discard_contains(self):
        s = RandomAccessSet()
        s.add(b"a")
        s.add(b"b")
        assert b"a" in s and len(s) == 2
        s.discard(b"a")
        assert b"a" not in s and len(s) == 1

    def test_duplicate_add_ignored(self):
        s = RandomAccessSet()
        s.add(b"a")
        s.add(b"a")
        assert len(s) == 1

    def test_discard_missing_ignored(self):
        s = RandomAccessSet()
        s.discard(b"ghost")
        assert len(s) == 0

    def test_random_key_from_empty(self):
        assert RandomAccessSet().random_key(random.Random(0)) is None

    def test_random_key_uniformish(self):
        s = RandomAccessSet()
        for i in range(10):
            s.add(f"k{i}".encode())
        rng = random.Random(0)
        seen = {s.random_key(rng) for _ in range(300)}
        assert len(seen) == 10

    def test_swap_remove_keeps_consistency(self):
        s = RandomAccessSet()
        for i in range(100):
            s.add(f"k{i}".encode())
        rng = random.Random(1)
        for i in range(0, 100, 2):
            s.discard(f"k{i}".encode())
        assert len(s) == 50
        for _ in range(100):
            key = s.random_key(rng)
            assert key in s
        assert sorted(s) == sorted(f"k{i}".encode()
                                   for i in range(1, 100, 2))
