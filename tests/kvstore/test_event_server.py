"""Tests for the event-loop server: multiplexing, fairness, cron events."""

import pytest

from repro.common.clock import SimClock
from repro.common.resp import RespError
from repro.kvstore import (
    EventLoopServer,
    KeyValueStore,
    StoreConfig,
    connect_event,
)


def make_server(cpu_cost=25e-6, scheduler=None, connections=2, **config):
    store_clock = SimClock()
    store = KeyValueStore(
        StoreConfig(command_cpu_cost=cpu_cost, **config),
        clock=store_clock)
    server, conns = connect_event(store, scheduler=scheduler,
                                  connections=connections)
    return server, conns


class TestEventLoopBasics:
    def test_closed_loop_call_round_trips(self):
        server, (conn, _) = make_server()
        assert conn.call("SET", "k", "v") == "OK"
        assert conn.call("GET", "k") == b"v"

    def test_error_replies_raise(self):
        server, (conn, _) = make_server()
        conn.call("SET", "k", "v")
        with pytest.raises(RespError):
            conn.call("INCR", "k")

    def test_two_connections_share_one_store(self):
        server, (one, two) = make_server()
        one.call("SET", "shared", "1")
        assert two.call("GET", "shared") == b"1"

    def test_pipelined_replies_come_back_in_order(self):
        server, (conn, _) = make_server()
        for index in range(10):
            conn.send_command("SET", f"k{index}", index)
        server.scheduler.run_until_idle()
        assert list(conn.replies) == ["OK"] * 10
        conn.replies.clear()
        for index in range(10):
            conn.send_command("GET", f"k{index}")
        server.scheduler.run_until_idle()
        assert list(conn.replies) == [str(i).encode() for i in range(10)]

    def test_service_time_charged_per_command(self):
        server, (conn, _) = make_server(cpu_cost=1e-3)
        began = server.scheduler.now()
        conn.call("SET", "k", "v")
        assert server.scheduler.now() - began >= 1e-3

    def test_foreign_clock_channel_rejected(self):
        from repro.kvstore.server import EventConnection
        from repro.net.channel import Channel

        server, _ = make_server()
        stray = Channel(clock=SimClock(), event_driven=True)
        with pytest.raises(ValueError, match="scheduler"):
            EventConnection(server, channel=stray)

    def test_separate_meter_clock(self):
        scheduler = SimClock()
        store = KeyValueStore(StoreConfig(command_cpu_cost=1e-3),
                              clock=SimClock())
        server, (conn,) = connect_event(store, scheduler=scheduler,
                                        connections=1)
        conn.call("SET", "k", "v")
        assert store.clock.now() >= 1e-3
        assert scheduler.now() >= 1e-3


class TestFairness:
    def test_flood_cannot_starve_neighbour(self):
        """One command per loop tick, round-robin: a connection that
        pipelines a flood finishes *after* a neighbour's single op."""
        server, (flood, single) = make_server()
        finishes = {}
        flood.on_reply = lambda _: finishes.setdefault(
            "flood", []).append(server.scheduler.now())
        single.on_reply = lambda _: finishes.setdefault(
            "single", []).append(server.scheduler.now())
        for _ in range(8):
            flood.send_command("SET", "a", "1")
        single.send_command("SET", "b", "2")
        server.scheduler.run_until_idle()
        assert len(finishes["flood"]) == 8
        assert len(finishes["single"]) == 1
        # The single op completed after at most two flood ops, not all 8.
        assert finishes["single"][0] < finishes["flood"][2]

    def test_round_robin_alternates_across_n_connections(self):
        server, conns = make_server(connections=4)
        order = []
        original = server._serve

        def spy(conn, request):
            order.append(server.connections.index(conn))
            return original(conn, request)

        server._serve = spy
        for conn in conns:
            for _ in range(3):
                conn.send_command("PING")
        server.scheduler.run_until_idle()
        # Requests from 4 connections interleave 0,1,2,3,0,1,2,3,...
        assert order[:8] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_loop_iterations_counted(self):
        server, (conn, _) = make_server()
        for _ in range(5):
            conn.send_command("PING")
        server.scheduler.run_until_idle()
        assert server.loop_iterations == 5


class TestCronEvents:
    def test_cron_expires_keys_from_daemon_events(self):
        scheduler = SimClock()
        store = KeyValueStore(
            StoreConfig(command_cpu_cost=25e-6,
                        expiry_strategy="fullscan"),
            clock=scheduler)
        server, (conn,) = connect_event(store, connections=1)
        server.start_cron()
        conn.call("SET", "doomed", "v")
        conn.call("PEXPIRE", "doomed", 50)
        # Post a marker event past the deadline; cron daemons fire along
        # the way but never keep the loop alive themselves.
        scheduler.schedule_at(scheduler.now() + 1.0, lambda: None)
        scheduler.run_until_idle()
        assert conn.call("GET", "doomed") is None
        assert store.stats.expired_keys == 1

    def test_stop_cron_cancels_the_timer(self):
        server, _ = make_server()
        server.start_cron()
        assert server._cron_handle.active
        server.stop_cron()
        assert server._cron_handle is None
        assert server.scheduler.pending_timers() == 0

    def test_monitor_feed_streams_over_event_loop(self):
        server, (watcher, worker) = make_server()
        assert watcher.call("MONITOR") == "OK"
        stream = []
        watcher.on_raw = stream.append   # MONITOR is a raw text feed
        worker.call("SET", "k", "v")
        server.scheduler.run_until_idle()
        feed = b"".join(stream)
        assert b"SET" in feed and b'"k"' in feed
