"""Tests for the extended string/hash commands."""

import pytest

from repro.common.errors import WrongTypeError
from repro.common.resp import RespError
from repro.kvstore import KeyValueStore


@pytest.fixture
def store():
    return KeyValueStore()


class TestGetRange:
    def test_basic_slice(self, store):
        store.execute("SET", "k", "Hello World")
        assert store.execute("GETRANGE", "k", 0, 4) == b"Hello"

    def test_negative_indexes(self, store):
        store.execute("SET", "k", "Hello World")
        assert store.execute("GETRANGE", "k", -5, -1) == b"World"

    def test_full_string(self, store):
        store.execute("SET", "k", "abc")
        assert store.execute("GETRANGE", "k", 0, -1) == b"abc"

    def test_missing_key(self, store):
        assert store.execute("GETRANGE", "nope", 0, 10) == b""

    def test_inverted_range(self, store):
        store.execute("SET", "k", "abc")
        assert store.execute("GETRANGE", "k", 2, 1) == b""

    def test_out_of_bounds_clamped(self, store):
        store.execute("SET", "k", "abc")
        assert store.execute("GETRANGE", "k", 0, 100) == b"abc"


class TestSetRange:
    def test_overwrite_middle(self, store):
        store.execute("SET", "k", "Hello World")
        assert store.execute("SETRANGE", "k", 6, "Redis") == 11
        assert store.execute("GET", "k") == b"Hello Redis"

    def test_zero_pad_on_gap(self, store):
        assert store.execute("SETRANGE", "k", 5, "x") == 6
        assert store.execute("GET", "k") == b"\x00\x00\x00\x00\x00x"

    def test_extend_beyond_end(self, store):
        store.execute("SET", "k", "ab")
        store.execute("SETRANGE", "k", 2, "cd")
        assert store.execute("GET", "k") == b"abcd"

    def test_negative_offset_rejected(self, store):
        with pytest.raises(RespError):
            store.execute("SETRANGE", "k", -1, "x")

    def test_wrong_type(self, store):
        store.execute("HSET", "h", "f", "v")
        with pytest.raises(WrongTypeError):
            store.execute("SETRANGE", "h", 0, "x")


class TestIncrByFloat:
    def test_from_missing(self, store):
        assert store.execute("INCRBYFLOAT", "k", "1.5") == b"1.5"

    def test_accumulates(self, store):
        store.execute("INCRBYFLOAT", "k", "10.5")
        assert store.execute("INCRBYFLOAT", "k", "0.1") == b"10.6"

    def test_negative_delta(self, store):
        store.execute("SET", "k", "5")
        assert store.execute("INCRBYFLOAT", "k", "-2.5") == b"2.5"

    def test_integral_result_trims_point(self, store):
        store.execute("SET", "k", "1.5")
        assert store.execute("INCRBYFLOAT", "k", "0.5") == b"2"

    def test_non_float_value(self, store):
        store.execute("SET", "k", "abc")
        with pytest.raises(RespError):
            store.execute("INCRBYFLOAT", "k", "1")

    def test_non_float_delta(self, store):
        with pytest.raises(RespError):
            store.execute("INCRBYFLOAT", "k", "xyz")


class TestHashExtensions:
    def test_hincrby_from_missing(self, store):
        assert store.execute("HINCRBY", "h", "n", 5) == 5
        assert store.execute("HINCRBY", "h", "n", -2) == 3

    def test_hincrby_existing_field(self, store):
        store.execute("HSET", "h", "n", "10")
        assert store.execute("HINCRBY", "h", "n", 7) == 17

    def test_hincrby_non_integer(self, store):
        store.execute("HSET", "h", "n", "abc")
        with pytest.raises(RespError):
            store.execute("HINCRBY", "h", "n", 1)

    def test_hstrlen(self, store):
        store.execute("HSET", "h", "f", "hello")
        assert store.execute("HSTRLEN", "h", "f") == 5
        assert store.execute("HSTRLEN", "h", "missing") == 0
        assert store.execute("HSTRLEN", "nope", "f") == 0


class TestPersistenceOfExtensions:
    def test_extended_commands_replay(self, store):
        from repro.kvstore import StoreConfig

        source = KeyValueStore(StoreConfig(appendonly=True))
        source.execute("SETRANGE", "s", 0, "base")
        source.execute("INCRBYFLOAT", "f", "2.5")
        source.execute("HINCRBY", "h", "n", 9)
        replica = KeyValueStore(StoreConfig(appendonly=True))
        replica.replay_aof(source.aof_log.read_all())
        assert replica.execute("GET", "s") == b"base"
        assert replica.execute("GET", "f") == b"2.5"
        assert replica.execute("HGET", "h", "n") == b"9"
