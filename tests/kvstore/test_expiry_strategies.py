"""Tests for the three active-expiry strategies (Figure 2 mechanisms)."""

import random

import pytest

from repro.common.clock import SimClock
from repro.kvstore import KeyValueStore, StoreConfig
from repro.kvstore.expiry import (
    FullScanExpiryCycle,
    IndexedExpiryCycle,
    LazyExpiryCycle,
    make_strategy,
)


def populate(store, total, expired_fraction, now_offset=100.0):
    """Load keys; ``expired_fraction`` of them already past deadline."""
    db = store.databases[0]
    expired = int(total * expired_fraction)
    now = store.clock.now()
    for i in range(total):
        key = f"k{i}".encode()
        db.set_value(key, b"v")
        deadline = now - 1.0 if i < expired else now + now_offset
        store.set_key_expiry(db, key, deadline)
    return expired


class TestMakeStrategy:
    def test_known_names(self):
        assert isinstance(make_strategy("lazy"), LazyExpiryCycle)
        assert isinstance(make_strategy("fullscan"), FullScanExpiryCycle)
        assert isinstance(make_strategy("indexed"), IndexedExpiryCycle)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_strategy("magic")


class TestLazyCycle:
    def test_single_cycle_deletes_few(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="lazy"))
        expired = populate(store, 1000, 0.2)
        deleted = store.cron()
        # One slow cycle samples ~20 keys; with a 20% expired fraction it
        # stops after one inner loop (<= ~20 deletions, typically ~4).
        assert 0 <= deleted <= 40
        assert store.stats.expired_keys < expired

    def test_high_fraction_loops_until_below_quarter(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="lazy"))
        populate(store, 400, 1.0, now_offset=1000.0)
        deleted = store.cron()
        # With 100% expired the loop repeats; far more than one batch dies.
        assert deleted > 40

    def test_eventually_erases_everything(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="lazy"))
        expired = populate(store, 200, 0.3)
        for _ in range(2000):
            if store.stats.expired_keys >= expired:
                break
            store.clock.advance(0.1)
            store.cron()
        assert store.stats.expired_keys == expired

    def test_does_not_touch_unexpired(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="lazy"))
        populate(store, 100, 0.0)
        store.cron()
        assert len(store.databases[0]) == 100

    def test_charges_time_per_sample(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="lazy"))
        populate(store, 100, 0.5)
        before = store.clock.now()
        store.cron()
        assert store.clock.now() > before

    def test_stats_accumulate(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="lazy"))
        populate(store, 100, 0.5)
        store.cron()
        assert store.expiry.stats.cycles >= 1
        assert store.expiry.stats.sampled > 0


class TestFullScanCycle:
    def test_one_cycle_erases_all_expired(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="fullscan"))
        expired = populate(store, 1000, 0.2)
        deleted = store.cron()
        assert deleted == expired
        assert len(store.databases[0]) == 1000 - expired

    def test_repeat_cycle_idempotent(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="fullscan"))
        populate(store, 100, 0.5)
        store.cron()
        assert store.cron() == 0

    def test_scan_cost_scales_with_volatile_count(self):
        small = KeyValueStore(StoreConfig(expiry_strategy="fullscan"))
        populate(small, 100, 0.0)
        big = KeyValueStore(StoreConfig(expiry_strategy="fullscan"))
        populate(big, 10_000, 0.0)
        small.cron()
        big.cron()
        assert big.clock.now() > small.clock.now()


class TestIndexedCycle:
    def test_one_cycle_erases_all_expired(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="indexed"))
        expired = populate(store, 1000, 0.2)
        assert store.cron() == expired

    def test_stale_entries_skipped_after_persist(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="indexed"))
        store.execute("SET", "k", "v", "EX", 1)
        store.execute("PERSIST", "k")
        store.clock.advance(2)
        assert store.cron() == 0
        assert store.execute("GET", "k") == b"v"

    def test_stale_entries_skipped_after_reexpire(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="indexed"))
        store.execute("SET", "k", "v", "EX", 1)
        store.execute("EXPIRE", "k", 1000)  # new deadline, old heap entry
        store.clock.advance(2)
        assert store.cron() == 0
        assert store.execute("EXISTS", "k") == 1

    def test_cost_independent_of_live_keys(self):
        # O(k log n) pops vs full scans: with zero expired keys, the
        # indexed cycle does no per-key work at all.
        store = KeyValueStore(StoreConfig(expiry_strategy="indexed"))
        populate(store, 10_000, 0.0)
        before = store.clock.now()
        store.cron()
        assert store.clock.now() == before

    def test_flush_clears_index(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="indexed"))
        store.execute("SET", "k", "v", "EX", 1)
        store.execute("FLUSHDB")
        assert store.expiry.index_size == 0


class TestStrategySwitch:
    def test_config_set_switch_rebuilds_index(self):
        store = KeyValueStore(StoreConfig(expiry_strategy="lazy"))
        store.execute("SET", "k", "v", "EX", 1)
        store.execute("CONFIG", "SET", "active-expiry-strategy", "indexed")
        store.clock.advance(2)
        assert store.cron() == 1

    def test_deterministic_with_seed(self):
        def run(seed):
            store = KeyValueStore(
                StoreConfig(expiry_strategy="lazy", seed=seed))
            populate(store, 500, 0.4)
            deleted = []
            for _ in range(20):
                store.clock.advance(0.1)
                deleted.append(store.cron())
            return deleted

        assert run(7) == run(7)
        assert run(7) != run(8) or sum(run(7)) == 0
