"""Tests for the RESP server/client over simulated channels."""

import pytest

from repro.common.clock import SimClock
from repro.common.resp import RespError, SimpleString, encode_command
from repro.kvstore import (
    KeyValueStore,
    StoreConfig,
    StoreServer,
    connect_plain,
    connect_tls,
)
from repro.net.channel import loopback
from repro.net.tls import stunnel_channel


@pytest.fixture
def clock():
    return SimClock()


def plain_client(clock, **config):
    store = KeyValueStore(StoreConfig(**config), clock=clock)
    channel = loopback(clock)
    return connect_plain(store, channel), store


class TestPlainClient:
    def test_set_get(self, clock):
        client, _ = plain_client(clock)
        assert client.call("SET", "k", "v") == SimpleString("OK")
        assert client.call("GET", "k") == b"v"

    def test_null_reply(self, clock):
        client, _ = plain_client(clock)
        assert client.call("GET", "missing") is None

    def test_integer_reply(self, clock):
        client, _ = plain_client(clock)
        client.call("SET", "k", "v")
        assert client.call("EXISTS", "k") == 1

    def test_array_reply(self, clock):
        client, _ = plain_client(clock)
        client.call("RPUSH", "l", "a", "b")
        assert client.call("LRANGE", "l", 0, -1) == [b"a", b"b"]

    def test_error_raised(self, clock):
        client, _ = plain_client(clock)
        with pytest.raises(RespError):
            client.call("NOSUCHCMD")

    def test_error_returned_when_not_raising(self, clock):
        client, _ = plain_client(clock)
        reply = client.call("NOSUCHCMD", raise_errors=False)
        assert isinstance(reply, RespError)

    def test_wrongtype_surfaces_as_resp_error(self, clock):
        client, _ = plain_client(clock)
        client.call("HSET", "h", "f", "v")
        with pytest.raises(RespError) as excinfo:
            client.call("GET", "h")
        assert "WRONGTYPE" in str(excinfo.value)

    def test_arity_error_surfaces(self, clock):
        client, _ = plain_client(clock)
        with pytest.raises(RespError) as excinfo:
            client.call("GET")
        assert "wrong number of arguments" in str(excinfo.value)

    def test_round_trip_advances_clock(self, clock):
        client, _ = plain_client(clock)
        before = clock.now()
        client.call("PING")
        assert clock.now() > before

    def test_ping(self, clock):
        client, _ = plain_client(clock)
        assert client.call("PING") == SimpleString("PONG")
        assert client.call("PING", "hello") == b"hello"

    def test_binary_safe_args(self, clock):
        client, _ = plain_client(clock)
        payload = bytes(range(256))
        client.call("SET", b"bin", payload)
        assert client.call("GET", "bin") == payload


class TestTlsClient:
    def test_commands_over_tls(self, clock):
        store = KeyValueStore(StoreConfig(), clock=clock)
        channel = stunnel_channel(clock)
        client = connect_tls(store, channel, b"secret", clock=clock)
        assert client.call("SET", "k", "v") == SimpleString("OK")
        assert client.call("GET", "k") == b"v"

    def test_tls_slower_than_plain(self):
        plain_clock = SimClock()
        client, _ = plain_client(plain_clock)
        client.call("SET", "k", "v" * 1000)
        tls_clock = SimClock()
        store = KeyValueStore(StoreConfig(), clock=tls_clock)
        channel = stunnel_channel(tls_clock)
        tls_client = connect_tls(store, channel, b"secret",
                                 clock=tls_clock)
        tls_start = tls_clock.now()  # skip handshake cost
        tls_client.call("SET", "k", "v" * 1000)
        assert tls_clock.now() - tls_start > plain_clock.now()


class TestMonitorOverServer:
    def test_monitor_streams_commands(self, clock):
        store = KeyValueStore(StoreConfig(), clock=clock)
        channel = loopback(clock)
        worker = connect_plain(store, channel)
        # A second connection on its own channel becomes the monitor.
        monitor_channel = loopback(clock)
        monitor_client = connect_plain(store, monitor_channel)
        assert monitor_client.call("MONITOR") == SimpleString("OK")
        worker.call("SET", "k", "v")
        stream = monitor_channel.endpoints()[0].recv()
        assert b"SET" in stream and b'"k"' in stream

    def test_monitor_records_counted(self, clock):
        store = KeyValueStore(StoreConfig(), clock=clock)
        channel = loopback(clock)
        worker = connect_plain(store, channel)
        monitor_channel = loopback(clock)
        monitor_client = connect_plain(store, monitor_channel)
        monitor_client.call("MONITOR")
        worker.call("SET", "a", "1")
        worker.call("GET", "a")
        assert store.monitor.records_streamed == 2


class QueueTransport:
    """In-memory transport with optional side effects on recv.

    ``on_recv`` models a listener or handler that accepts/drops
    connections while the server is mid-pump -- the connection churn the
    pump loop must tolerate.
    """

    def __init__(self, pending=b"", on_recv=None):
        self.pending = pending
        self.on_recv = on_recv
        self.sent = []

    def send(self, data):
        self.sent.append(data)

    def recv_available(self):
        if self.on_recv is not None:
            callback, self.on_recv = self.on_recv, None
            callback()
        data, self.pending = self.pending, b""
        return data


class TestPumpConnectionChurn:
    """Regression: pump must iterate a snapshot of the connection list."""

    def test_connection_accepted_mid_pump_served_next_round(self, clock):
        server = StoreServer(KeyValueStore(StoreConfig(), clock=clock))
        late = QueueTransport(pending=encode_command(b"SET", b"late",
                                                     b"v"))

        def accept_late():
            server.accept(late)

        early = QueueTransport(pending=encode_command(b"PING"),
                               on_recv=accept_late)
        server.accept(early)
        # The accept happens while pump iterates; the new connection must
        # not be pumped in the same round (unsnapshotted iteration would
        # serve it immediately).
        assert server.pump() == 1
        assert server.store.execute("GET", "late") is None
        assert server.pump() == 1
        assert server.store.execute("GET", "late") == b"v"

    def test_connection_dropped_mid_pump_does_not_skip_others(self, clock):
        server = StoreServer(KeyValueStore(StoreConfig(), clock=clock))

        def drop_first():
            server.connections.remove(first_conn)

        first = QueueTransport(pending=encode_command(b"SET", b"a", b"1"),
                               on_recv=drop_first)
        second = QueueTransport(pending=encode_command(b"SET", b"b",
                                                       b"2"))
        third = QueueTransport(pending=encode_command(b"SET", b"c", b"3"))
        first_conn = server.accept(first)
        server.accept(second)
        server.accept(third)
        # Dropping an earlier connection mid-iteration shifts the list;
        # without the snapshot the next connection is skipped entirely.
        assert server.pump() == 3
        assert server.store.execute("GET", "b") == b"2"
        assert server.store.execute("GET", "c") == b"3"
