"""DUMP/RESTORE: the serialized key-transfer primitive slot migration
ships between shards."""

import pytest

from repro.common.clock import SimClock
from repro.common.resp import RespError, SimpleString
from repro.kvstore import KeyValueStore, StoreConfig
from repro.kvstore.snapshot import dump_value, load_value


def fresh(appendonly=False):
    return KeyValueStore(StoreConfig(appendonly=appendonly))


class TestDumpPayload:
    def test_value_round_trip_all_types(self):
        store = fresh()
        store.execute("SET", "s", "hello")
        store.execute("HSET", "h", "f1", "a", "f2", "b")
        store.execute("RPUSH", "l", "x", "y")
        store.execute("SADD", "set", "m1", "m2")
        store.execute("ZADD", "z", 1.5, "one", 2.5, "two")
        for key in ("s", "h", "l", "set", "z"):
            payload = store.execute("DUMP", key)
            db = store.databases[0]
            assert load_value(payload) == db.get_value(key.encode()) \
                or key == "z"   # ZSet has no __eq__; compare items
        zset = load_value(store.execute("DUMP", "z"))
        assert list(zset.items()) == [(b"one", 1.5), (b"two", 2.5)]

    def test_dump_missing_key_is_nil(self):
        assert fresh().execute("DUMP", "nope") is None

    def test_corrupt_payload_rejected(self):
        store = fresh()
        store.execute("SET", "k", "v")
        payload = store.execute("DUMP", "k")
        mangled = payload[:-1] + bytes([payload[-1] ^ 0xFF])
        with pytest.raises(RespError, match="checksum"):
            store.execute("RESTORE", "k2", 0, mangled)

    def test_dump_value_detects_truncation(self):
        payload = dump_value(b"data")
        from repro.common.errors import CorruptionError
        with pytest.raises(CorruptionError):
            load_value(payload[:-2])


class TestRestore:
    def test_restore_materializes_on_another_store(self):
        a, b = fresh(), fresh()
        a.execute("HSET", "h", "f", "v")
        payload = a.execute("DUMP", "h")
        assert b.execute("RESTORE", "h", 0, payload) == SimpleString("OK")
        assert b.execute("HGET", "h", "f") == b"v"

    def test_busykey_without_replace(self):
        store = fresh()
        store.execute("SET", "k", "old")
        payload = store.execute("DUMP", "k")
        with pytest.raises(RespError, match="BUSYKEY"):
            store.execute("RESTORE", "k", 0, payload)
        store.execute("RESTORE", "k", 0, payload, "REPLACE")
        assert store.execute("GET", "k") == b"old"

    def test_ttl_applied_relative_to_receiver(self):
        store = fresh()
        store.execute("SET", "k", "v")
        payload = store.execute("DUMP", "k")
        store.execute("RESTORE", "k2", 2500, payload)
        assert 0 < store.execute("PTTL", "k2") <= 2500
        store.execute("RESTORE", "k3", 0, payload)
        assert store.execute("PTTL", "k3") == -1

    def test_negative_ttl_rejected(self):
        store = fresh()
        store.execute("SET", "k", "v")
        payload = store.execute("DUMP", "k")
        with pytest.raises(RespError, match="TTL"):
            store.execute("RESTORE", "k2", -5, payload)

    def test_restore_ttl_replayed_as_absolute_deadline(self):
        """The AOF must carry PEXPIREAT, not the relative TTL, so a
        replay later does not extend the key's life."""
        clock = SimClock()
        store = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
        store.execute("SET", "k", "v")
        payload = store.execute("DUMP", "k")
        store.execute("RESTORE", "k2", 5000, payload)
        deadline = store.databases[0].get_expiry(b"k2")
        data = store.aof_log.read_all()
        replayed = KeyValueStore(StoreConfig(), clock=SimClock(clock.now()))
        replayed.replay_aof(data)
        assert replayed.databases[0].get_expiry(b"k2") == \
            pytest.approx(deadline)
