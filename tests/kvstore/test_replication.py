"""Tests for async replication and the erasure-propagation horizon."""

import pytest

from repro.common.clock import SimClock
from repro.kvstore import KeyValueStore, ReplicationManager, StoreConfig


def make_primary(clock=None, **config):
    clock = clock if clock is not None else SimClock()
    return KeyValueStore(StoreConfig(**config), clock=clock), clock


class TestBasicReplication:
    def test_write_reaches_replica(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.010)
        primary.execute("SET", "k", "v")
        assert link.replica.execute("GET", "k") is None  # still in flight
        clock.advance(0.011)
        manager.pump()
        assert link.replica.execute("GET", "k") == b"v"

    def test_reads_not_replicated(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.0)
        primary.execute("SET", "k", "v")
        primary.execute("GET", "k")
        manager.pump()
        assert link.stats.commands_applied == 1

    def test_failed_writes_not_replicated(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.0)
        primary.execute("SET", "k", "v")
        primary.execute("SET", "k", "w", "NX")  # no-op
        manager.pump()
        assert link.stats.commands_applied == 1
        assert link.replica.execute("GET", "k") == b"v"

    def test_command_order_preserved(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.001)
        for i in range(10):
            primary.execute("APPEND", "seq", str(i))
        clock.advance(0.01)
        manager.pump()
        assert link.replica.execute("GET", "seq") == b"0123456789"

    def test_multiple_replicas_different_delays(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        fast = manager.add_replica("fast", delay=0.001)
        slow = manager.add_replica("slow", delay=0.100)
        primary.execute("SET", "k", "v")
        clock.advance(0.002)
        manager.pump()
        assert fast.replica.execute("GET", "k") == b"v"
        assert slow.replica.execute("GET", "k") is None
        clock.advance(0.2)
        manager.pump()
        assert slow.replica.execute("GET", "k") == b"v"

    def test_duplicate_replica_name_rejected(self):
        primary, _ = make_primary()
        manager = ReplicationManager(primary)
        manager.add_replica("r1")
        with pytest.raises(ValueError):
            manager.add_replica("r1")

    def test_remove_replica(self):
        primary, _ = make_primary()
        manager = ReplicationManager(primary)
        manager.add_replica("r1")
        assert manager.remove_replica("r1") is True
        assert manager.remove_replica("r1") is False

    def test_removed_replica_stops_consuming_stream(self):
        """Regression: a dropped replica must stop consuming the write
        stream even if someone still holds the link object."""
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.001)
        primary.execute("SET", "before", "1")
        manager.remove_replica("r1")
        assert link.closed
        assert link.backlog == 0           # in-flight backlog dropped
        primary.execute("SET", "after", "2")
        link.enqueue(0, [b"SET", b"sneak", b"3"])   # refused when closed
        assert link.backlog == 0
        clock.advance(1.0)
        assert link.pump() == 0
        assert link.replica.execute("GET", "after") is None

    def test_close_detaches_write_listener(self):
        """Regression: the manager never unsubscribed from the primary,
        so every discarded manager kept taxing the write path forever."""
        primary, _ = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.001)
        assert len(primary.write_listeners) == 1
        manager.close()
        assert primary.write_listeners == []
        primary.execute("SET", "k", "v")
        assert link.backlog == 0
        manager.close()                    # idempotent
        with pytest.raises(ValueError):
            manager.add_replica("r2")      # closed managers are closed

    def test_last_applied_at_is_delivery_time(self):
        """Regression: recording pump time instead of delivery time
        skewed lag/compliance metrics when pumps were infrequent."""
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.010)
        start = clock.now()
        primary.execute("SET", "k", "v")
        clock.advance(5.0)                 # pump long after delivery
        manager.pump()
        assert link.stats.last_applied_at == pytest.approx(start + 0.010)

    def test_negative_delay_rejected(self):
        primary, _ = make_primary()
        manager = ReplicationManager(primary)
        with pytest.raises(ValueError):
            manager.add_replica("bad", delay=-1.0)

    def test_expiry_translated_absolutely(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=5.0)  # very laggy
        primary.execute("SET", "k", "v")
        primary.execute("EXPIRE", "k", 100)
        clock.advance(6.0)
        manager.pump()
        # The replica applied PEXPIREAT: deadline is absolute, so the
        # 6 s of replication lag ate into the TTL rather than extending it.
        assert link.replica.execute("TTL", "k") == 94

    def test_full_sync(self):
        primary, _ = make_primary()
        manager = ReplicationManager(primary)
        primary.execute("SET", "pre", "existing")
        link = manager.add_replica("r1")
        assert manager.full_sync("r1") == 1
        assert link.replica.execute("GET", "pre") == b"existing"

    def test_full_sync_drains_backlog(self):
        """Regression: commands enqueued before the snapshot are already
        reflected in it; replaying them on top double-applied
        non-idempotent writes (APPEND/INCR)."""
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.010)
        primary.execute("APPEND", "seq", "abc")
        primary.execute("INCR", "hits")
        assert link.backlog == 2          # queued, undelivered
        manager.full_sync("r1")           # snapshot already holds both
        assert link.backlog == 0
        clock.advance(1.0)
        manager.pump()
        assert link.replica.execute("GET", "seq") == b"abc"
        assert link.replica.execute("GET", "hits") == b"1"

    def test_writes_after_full_sync_still_stream(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.010)
        primary.execute("APPEND", "seq", "abc")
        manager.full_sync("r1")
        primary.execute("APPEND", "seq", "def")   # after the snapshot
        clock.advance(1.0)
        manager.pump()
        assert link.replica.execute("GET", "seq") == b"abcdef"

    def test_lag_reporting(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        manager.add_replica("r1", delay=0.5)
        assert manager.max_lag() == 0.0
        primary.execute("SET", "k", "v")
        assert 0.4 <= manager.max_lag() <= 0.5


class TestErasurePropagation:
    """The GDPR angle: a DEL is not erasure until replicas catch up."""

    def test_deleted_key_visible_on_replica_until_pump(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.050)
        primary.execute("SET", "pii", "secret")
        clock.advance(0.1)
        manager.pump()
        primary.execute("DEL", "pii")
        # Primary no longer serves it, but the replica still does.
        assert primary.execute("GET", "pii") is None
        assert link.replica.execute("GET", "pii") == b"secret"
        assert manager.key_visible_anywhere(b"pii")

    def test_erasure_horizon_bounded_by_slowest_replica(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        manager.add_replica("fast", delay=0.010)
        manager.add_replica("slow", delay=0.200)
        primary.execute("SET", "pii", "secret")
        clock.advance(0.5)
        manager.pump()
        primary.execute("DEL", "pii")
        horizon = manager.erasure_horizon(b"pii", step=0.005)
        assert horizon is not None
        assert 0.195 <= horizon <= 0.25

    def test_active_expiry_propagates_to_replicas(self):
        primary, clock = make_primary(expiry_strategy="fullscan")
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.001)
        primary.execute("SET", "k", "v", "EX", 5)
        clock.advance(0.01)
        manager.pump()
        clock.advance(6)
        primary.cron()  # primary reclaims and emits DEL
        clock.advance(0.01)
        manager.pump()
        assert b"k" not in link.replica.databases[0]

    def test_horizon_none_when_unreachable(self):
        primary, clock = make_primary()
        manager = ReplicationManager(primary)
        link = manager.add_replica("r1", delay=0.0)
        primary.execute("SET", "pii", "x")
        manager.pump()
        # Simulate a partitioned replica: clear its queue processing by
        # deleting only on the primary and never pumping that link.
        primary.execute("DEL", "pii")
        link.delay = 10_000.0
        # Re-enqueue happened at delay=0 though; emulate stuck delivery:
        link._queue.clear()
        assert manager.erasure_horizon(b"pii", step=0.01,
                                       max_wait=0.1) is None
