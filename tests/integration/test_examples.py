"""Every example script must run cleanly end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent.parent \
    / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in SCRIPTS}
    assert "quickstart.py" in names
    assert len(SCRIPTS) >= 3


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    # Keep the YCSB example fast under the plain test suite.
    monkeypatch.setenv("REPRO_BENCH_RECORDS", "50")
    monkeypatch.setenv("REPRO_BENCH_OPS", "100")
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_quickstart_output_mentions_audit(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "audit trail" in out
    assert "blocked" in out


def test_rtbf_output_shows_no_residual(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "right_to_be_forgotten.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "residual in AOF:    False" in out
    assert "bob-data" in out
