"""Integration: one shard crashes and recovers from its AOF mid-workload;
the other shards' data, audit chains, and a subsequent cross-shard
Art. 17 erasure are unaffected."""

import pytest

from repro.common.clock import SimClock
from repro.cluster import ShardedGDPRStore
from repro.gdpr import GDPRMetadata
from repro.kvstore import KeyValueStore, StoreConfig

VICTIM = 1


def make_cluster(num_shards=3):
    """Shards fsync every AOF record so a power loss is recoverable to
    the last command (the strict end of the paper's durability spectrum)."""
    clock = SimClock()

    def kv_factory(index, kv_clock):
        return KeyValueStore(
            StoreConfig(appendonly=True, appendfsync="always",
                        aof_log_reads=True),
            clock=kv_clock)

    return ShardedGDPRStore(num_shards=num_shards, clock=clock,
                            kv_factory=kv_factory)


def run_workload(store, count=36):
    placement = {}
    for number in range(count):
        owner = "alice" if number % 3 == 0 else "bob"
        key = f"user:{number}"
        store.put(key, f"value-{number}".encode(),
                  GDPRMetadata(owner=owner,
                               purposes=frozenset({"service"})))
        placement.setdefault(store.shard_for(key), []).append(key)
    return placement


class TestClusterCrashRecovery:
    def setup_method(self):
        self.store = make_cluster()
        self.placement = run_workload(self.store)
        # The workload must populate every shard, including the victim.
        assert set(self.placement) == {0, 1, 2}
        self.store.shards[VICTIM].kv.aof_log.crash(power_loss=True)

    def test_recovery_restores_victim_and_spares_others(self):
        replayed = self.store.recover_shard(VICTIM)
        assert replayed > 0
        # The replacement shard is rebuilt through the same kv factory,
        # keeping the configured durability policy.
        assert self.store.shards[VICTIM].kv.config.appendfsync == "always"
        for shard, keys in self.placement.items():
            for key in keys:
                record = self.store.get(key)
                number = int(key.split(":")[1])
                assert record.value == f"value-{number}".encode()

    def test_other_shards_audit_chains_untouched(self):
        counts_before = {
            index: self.store.shards[index].audit.record_count
            for index in (0, 2)}
        self.store.recover_shard(VICTIM)
        verified = self.store.verify_audit_chains()
        for index in (0, 2):
            assert verified[index] >= counts_before[index] > 0

    def test_cross_shard_erasure_after_recovery(self):
        self.store.recover_shard(VICTIM)
        alice_keys = self.store.keys_of_subject("alice")
        assert any(self.store.shard_for(key) == VICTIM
                   for key in alice_keys)
        receipt = self.store.erase_subject("alice")
        assert sorted(receipt.keys_erased) == alice_keys
        assert receipt.crypto_erased
        assert not receipt.residual_in_aof
        for key in alice_keys:
            with pytest.raises(KeyError):
                self.store.get(key)
        # Bob's records survive everywhere, chains still verify.
        for key in self.store.keys_of_subject("bob"):
            assert self.store.get(key).metadata.owner == "bob"
        assert all(count >= 0 for count
                   in self.store.verify_audit_chains().values())

    def test_unrecovered_crash_only_hurts_victim(self):
        # Before recovery, the other shards keep serving.
        for shard, keys in self.placement.items():
            if shard == VICTIM:
                continue
            for key in keys:
                assert self.store.get(key) is not None


class TestMidWorkloadDurability:
    def test_everysec_victim_recovers_to_fsync_horizon(self):
        """With everysec fsync the victim loses at most the last window;
        recovery still leaves every other shard complete."""
        clock = SimClock()

        def kv_factory(index, kv_clock):
            return KeyValueStore(
                StoreConfig(appendonly=True, appendfsync="everysec",
                            aof_log_reads=True),
                clock=kv_clock)

        store = ShardedGDPRStore(num_shards=3, clock=clock,
                                 kv_factory=kv_factory)
        placement = run_workload(store, count=24)
        clock.advance(2.0)
        store.tick()  # fsync horizon covers the whole prefix
        late_key = "late:key"
        store.put(late_key, b"late",
                  GDPRMetadata(owner="carol",
                               purposes=frozenset({"service"})))
        victim = store.shard_for(late_key)
        store.shards[victim].kv.aof_log.crash(power_loss=True)
        store.recover_shard(victim)
        # The unsynced late write is gone; every pre-horizon record and
        # every other shard's record survives.
        with pytest.raises(KeyError):
            store.get(late_key)
        for shard, keys in placement.items():
            for key in keys:
                assert store.get(key) is not None
