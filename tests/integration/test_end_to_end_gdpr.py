"""Integration: full GDPR flows across the whole stack."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import AccessDeniedError
from repro.gdpr import (
    AuditDurability,
    AuditLog,
    BreachNotifier,
    GDPRConfig,
    GDPRMetadata,
    GDPRStore,
    Operation,
    Principal,
    right_of_access,
    right_to_erasure,
    right_to_object,
    right_to_portability,
)
from repro.kvstore import KeyValueStore, StoreConfig, connect_tls
from repro.net.tls import stunnel_channel


def build_stack():
    clock = SimClock()
    kv = KeyValueStore(
        StoreConfig(appendonly=True, appendfsync="always",
                    aof_log_reads=True, expiry_strategy="indexed"),
        clock=clock)
    store = GDPRStore(kv=kv, config=GDPRConfig(
        encrypt_at_rest=True, audit_durability=AuditDurability.SYNC))
    return store, clock


def meta(owner, purposes=("service",), **kwargs):
    return GDPRMetadata(owner=owner, purposes=frozenset(purposes),
                        **kwargs)


class TestSubjectLifecycle:
    """A data subject's complete journey through the system."""

    def test_full_lifecycle(self):
        store, clock = build_stack()
        # 1. Controller stores personal data under declared purposes.
        store.put("alice:profile", b"name=Alice",
                  meta("alice", ("service", "analytics")))
        store.put("alice:orders", b"order-history",
                  meta("alice", ("service",), ttl=86400.0))
        # 2. A processor with an analytics grant reads it.
        store.access.grant("analyst", Operation.READ, purpose="analytics")
        record = store.get("alice:profile",
                           principal=Principal("analyst"),
                           purpose="analytics")
        assert record.value == b"name=Alice"
        # 3. Alice checks what is held about her (Art. 15).
        report = right_of_access(store, "alice")
        assert len(report.records) == 2
        # 4. Alice objects to analytics (Art. 21); the processor loses
        #    access to that purpose.
        right_to_object(store, "alice", "analytics")
        with pytest.raises(Exception):
            store.get("alice:profile", principal=Principal("analyst"),
                      purpose="analytics")
        # 5. Alice exports her data (Art. 20).
        export = right_to_portability(store, "alice")
        assert b"order-history" in export
        # 6. Alice invokes the right to be forgotten (Art. 17).
        receipt = right_to_erasure(store, "alice")
        assert receipt.crypto_erased and not receipt.residual_in_aof
        assert store.keys_of_subject("alice") == []
        # 7. The audit trail is complete and verifiable.
        assert AuditLog.verify_chain(store.audit.records()) > 8

    def test_retention_enforced_end_to_end(self):
        store, clock = build_stack()
        store.put("temp", b"short-lived", meta("bob", ttl=60.0))
        clock.advance(61)
        store.tick()
        with pytest.raises(KeyError):
            store.get("temp")
        report = store.erasure_report()
        assert report["events"] == 1.0
        # Indexed expiry erases on the first cron tick after the deadline
        # (we advanced 1 s past it, so lateness is bounded by that step).
        assert report["max_lateness"] <= 1.1

    def test_breach_workflow(self):
        store, clock = build_stack()
        store.put("alice:1", b"pii", meta("alice"))
        store.put("bob:1", b"pii", meta("bob"))
        window_start = clock.now()
        # An over-privileged principal reads both subjects' data.
        store.access.grant("intruder", Operation.READ)
        store.get("alice:1", principal=Principal("intruder"))
        store.get("bob:1", principal=Principal("intruder"))
        window_end = clock.now()
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(window_start, window_end)
        assert report.affected_subjects == ["alice", "bob"]
        assert report.high_risk
        clock.advance(3600)
        assert notifier.notify_authority(report) is True
        assert notifier.notify_subjects(report) == 2


class TestRestartRecovery:
    def test_state_and_indexes_survive_restart(self):
        from repro.crypto import KeyStore, random_bytes

        master = random_bytes(32)  # the controller's protected master key
        store, clock = build_stack()
        store.keystore = KeyStore(master)
        store.put("alice:1", b"v1", meta("alice"))
        store.put("bob:1", b"v2", meta("bob"))
        aof_bytes = store.kv.aof_log.read_all()
        wrapped_keys = store.keystore.export_wrapped()

        # "Restart": new kv replays the AOF; keystore re-imports wrapped
        # keys under the same master; indexes are rebuilt by scanning.
        new_kv = KeyValueStore(
            StoreConfig(appendonly=True, aof_log_reads=True),
            clock=clock)
        new_kv.replay_aof(aof_bytes)
        restored_ks = KeyStore(master)
        restored_ks.import_wrapped(wrapped_keys)
        restored = GDPRStore(kv=new_kv, config=GDPRConfig(),
                             keystore=restored_ks)
        assert restored.rebuild_indexes() == 2
        assert restored.get("alice:1").value == b"v1"
        assert restored.keys_of_subject("bob") == ["bob:1"]

    def test_erased_subject_unrecoverable_after_restart(self):
        store, clock = build_stack()
        store.put("alice:1", b"v1", meta("alice"))
        right_to_erasure(store, "alice", compact_log=False)
        # Replay the uncompacted AOF: ciphertext returns, but the key is
        # gone, so the record is undecryptable and unindexed.
        new_kv = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
        new_kv.replay_aof(store.kv.aof_log.read_all())
        restored = GDPRStore(kv=new_kv, config=GDPRConfig(),
                             keystore=store.keystore)
        assert restored.rebuild_indexes() == 0
        assert restored.keys_of_subject("alice") == []


class TestTlsDeployment:
    def test_kv_behind_tls_serves_gdpr_blobs(self):
        clock = SimClock()
        kv = KeyValueStore(StoreConfig(), clock=clock)
        channel = stunnel_channel(clock)
        client = connect_tls(kv, channel, b"deploy-psk", clock=clock)
        client.call("SET", "k", "ciphertext-blob")
        assert client.call("GET", "k") == b"ciphertext-blob"
        # Bytes on the wire are TLS records, not the payload.
        assert channel.bytes_transferred > 0
