"""Integration: crashes across the tiered persistence stack.

The demotion protocol's crash contract: the seal ends with an fsync
*before* hot copies are removed, so whatever instant power is lost,

* every record survives in at least one tier (a torn seal leaves the
  hot copy; a completed seal is durable),
* nothing deleted or erased is resurrected by recovery (durable
  tombstones + subject markers + crypto-erasure).
"""

from repro.common.clock import SimClock
from repro.device.append_log import AppendLog
from repro.gdpr.metadata import GDPRMetadata
from repro.gdpr.rights import right_to_erasure
from repro.gdpr.store import GDPRConfig, GDPRStore
from repro.kvstore.store import KeyValueStore, StoreConfig
from repro.tiering import TieredEngine, TieringConfig
from repro.tiering.segment import ColdInput, ColdSegmentStore


def make_engine(clock=None, cold_device=None, keystore=None):
    clock = clock if clock is not None else SimClock()
    inner = KeyValueStore(
        StoreConfig(appendonly=True, appendfsync="always"),
        clock=clock, aof_log=AppendLog(clock=clock))
    return TieredEngine(inner, device=cold_device, keystore=keystore,
                        tiering=TieringConfig(auto_demote=False,
                                              segment_max_records=4))


def recover(engine, keystore=None):
    """Post-crash rebuild: fresh hot store replaying the surviving AOF,
    fresh cold index recovered from the surviving device bytes."""
    aof_bytes = engine.aof_log.read_all()
    recovered = make_engine(clock=engine.clock,
                            cold_device=engine.cold.device,
                            keystore=keystore)
    recovered.replay_aof(aof_bytes)
    return recovered


class TestTornSeal:
    def test_truncated_seal_loses_no_data(self):
        engine = make_engine()
        for i in range(4):
            engine.execute("SET", f"k{i}", f"v{i}")
        engine.demote_keys([b"k0", b"k1"])        # a completed seal
        # Power fails mid-way through sealing k2/k3: the segment frame
        # reaches the device truncated, and -- crucially -- the hot
        # copies were never removed (removal follows the fsync barrier).
        scratch = ColdSegmentStore(device=AppendLog(clock=engine.clock))
        scratch.seal([ColdInput(b"k2", b"v2", None, None),
                      ColdInput(b"k3", b"v3", None, None)], sealed_at=0.0)
        torn = scratch.device.read_all()[:-9]     # cut inside the frame
        engine.cold.device.append(torn)
        engine.cold.device.flush_and_fsync()
        recovered = recover(engine)
        assert recovered.cold.torn_frames_dropped == 1
        assert recovered.cold.recovered_segments == 1
        for i in range(4):                        # nothing lost, either tier
            assert recovered.execute("GET", f"k{i}") == f"v{i}".encode()
        assert recovered.execute("DBSIZE") == 4

    def test_crash_between_seal_and_hot_removal(self):
        engine = make_engine()
        engine.execute("SET", "dup", "value")
        # The seal completed (fsynced) but the crash hit before
        # demote_remove: the record exists in both tiers.
        engine.cold.seal([ColdInput(b"dup", b"stale", None, None)],
                         sealed_at=0.0)
        engine.aof_log.crash(power_loss=True)
        engine.cold.device.crash(power_loss=True)
        recovered = recover(engine)
        # Hot is authoritative over the crash-window shadow.
        assert recovered.execute("GET", "dup") == b"value"
        assert recovered.execute("DBSIZE") == 1
        assert recovered.execute("KEYS", "*") == [b"dup"]

    def test_deleted_cold_key_stays_dead_after_power_loss(self):
        engine = make_engine()
        engine.execute("SET", "gone", "v")
        engine.demote_keys([b"gone"])
        engine.execute("GET", "gone")             # promote ...
        assert engine.execute("DEL", "gone") == 1  # ... then delete
        engine.aof_log.crash(power_loss=True)
        engine.cold.device.crash(power_loss=True)
        recovered = recover(engine)
        # The archived copy must not resurrect through the replay
        # (which skips evictions): the DEL laid a durable tombstone.
        assert recovered.execute("GET", "gone") is None
        assert recovered.execute("DBSIZE") == 0


class TestErasureSurvivesCrash:
    def _store(self):
        clock = SimClock()
        engine = make_engine(clock=clock)
        store = GDPRStore(kv=engine, config=GDPRConfig())
        meta = GDPRMetadata(owner="alice",
                            purposes=frozenset({"billing"}))
        bob = GDPRMetadata(owner="bob", purposes=frozenset({"billing"}))
        for i in range(4):
            store.put(f"alice:{i}", b"a" * 16, meta)
        store.put("bob:0", b"b" * 16, bob)
        engine.demote_keys([b"alice:0", b"alice:1", b"bob:0"])
        return store, engine

    def test_erased_subject_not_resurrected_by_recovery(self):
        store, engine = self._store()
        receipt = right_to_erasure(store, "alice")
        assert receipt.cold_segments_voided >= 1
        engine.aof_log.crash(power_loss=True)
        engine.cold.device.crash(power_loss=True)
        recovered_kv = recover(engine, keystore=store.keystore)
        recovered = GDPRStore(kv=recovered_kv, config=GDPRConfig(),
                              keystore=store.keystore)
        assert recovered.rebuild_indexes() == 1   # only bob decrypts
        assert not recovered.subject_exists("alice")
        assert recovered.keys_of_subject("bob") == ["bob:0"]
        assert recovered.get("bob:0").value == b"b" * 16
        # The subject marker survived on the cold device itself.
        assert "alice" in recovered_kv.cold.erased_subjects
        assert recovered_kv.cold_keys_of_subject("alice") == []
        for i in range(4):
            assert recovered_kv.execute("GET", f"alice:{i}") is None

    def test_erasure_marker_beats_lost_keystore(self):
        # Even if the keystore state were restored from a backup (the
        # paper's resurrection-by-restore concern), the cold device's
        # own fsynced subject marker keeps the archive void.
        store, engine = self._store()
        right_to_erasure(store, "alice")
        fresh_keystore_view = type(store.keystore)()  # "restored" keystore
        engine.cold.device.crash(power_loss=True)
        recovered = ColdSegmentStore(device=engine.cold.device,
                                     keystore=fresh_keystore_view)
        assert "alice" in recovered.erased_subjects
        assert recovered.keys_of_subject("alice") == []
        assert recovered.lookup(b"alice:0") is None
