"""Integration: crash and recovery across the persistence stack."""

import pytest

from repro.common.clock import SimClock
from repro.device.append_log import AppendLog
from repro.device.block_device import FaultInjector
from repro.kvstore import KeyValueStore, StoreConfig


def make_store(appendfsync="always", **kwargs):
    clock = SimClock()
    log = AppendLog(clock=clock)
    store = KeyValueStore(
        StoreConfig(appendonly=True, appendfsync=appendfsync, **kwargs),
        clock=clock, aof_log=log)
    return store, log, clock


class TestAofCrashRecovery:
    def test_recovery_after_power_loss(self):
        store, log, _ = make_store()
        for i in range(50):
            store.execute("SET", f"k{i}", f"v{i}")
        log.crash(power_loss=True)
        recovered = KeyValueStore(StoreConfig(appendonly=True))
        recovered.replay_aof(log.read_all())
        for i in range(50):
            assert recovered.execute("GET", f"k{i}") == f"v{i}".encode()

    def test_everysec_loses_at_most_window(self):
        store, log, clock = make_store(appendfsync="everysec")
        store.execute("SET", "early", "v")
        clock.advance(1.5)
        store.tick()  # fsync covers "early"
        store.execute("SET", "late", "v")
        log.crash(power_loss=True)
        recovered = KeyValueStore(StoreConfig(appendonly=True))
        recovered.replay_aof(log.read_all())
        assert recovered.execute("GET", "early") == b"v"
        assert recovered.execute("GET", "late") is None

    def test_torn_tail_recovered_to_prefix(self):
        store, log, _ = make_store()
        store.execute("SET", "a", "1")
        store.execute("SET", "b", "2")
        data = log.read_all()
        torn = data[:-7]  # cut inside the final record
        recovered = KeyValueStore(StoreConfig(appendonly=True))
        recovered.replay_aof(torn)
        assert recovered.execute("GET", "a") == b"1"
        assert recovered.execute("GET", "b") is None

    def test_replay_equivalence_after_rewrite(self):
        store, log, _ = make_store()
        for i in range(30):
            store.execute("SET", f"k{i % 5}", f"v{i}")
        store.execute("DEL", "k0")
        store.rewrite_aof()
        recovered = KeyValueStore(StoreConfig(appendonly=True))
        recovered.replay_aof(log.read_all())
        for key in (b"k1", b"k2", b"k3", b"k4"):
            assert recovered.databases[0].get_value(key) == \
                store.databases[0].get_value(key)
        assert recovered.execute("GET", "k0") is None

    def test_write_failure_does_not_corrupt_log(self):
        clock = SimClock()
        faults = FaultInjector()
        log = AppendLog(clock=clock, faults=faults)
        store = KeyValueStore(
            StoreConfig(appendonly=True, appendfsync="always"),
            clock=clock, aof_log=log)
        store.execute("SET", "a", "1")
        faults.fail_after(0)
        # The flush fails mid-command; the record stays buffered.
        with pytest.raises(Exception):
            store.execute("SET", "b", "2")
        store.execute("SET", "c", "3")  # retries flush, includes b's record
        recovered = KeyValueStore(StoreConfig(appendonly=True))
        recovered.replay_aof(log.read_all())
        assert recovered.execute("GET", "a") == b"1"
        assert recovered.execute("GET", "c") == b"3"


class TestSnapshotPlusAof:
    def test_snapshot_then_aof_tail(self):
        # The classic recovery flow: restore the snapshot, replay the AOF
        # written after it.
        store, log, clock = make_store()
        store.execute("SET", "base", "v1")
        snapshot = store.save_snapshot()
        tail_start = log.total_length
        store.execute("SET", "base", "v2")
        store.execute("SET", "extra", "x")

        recovered = KeyValueStore(StoreConfig(appendonly=True))
        recovered.load_snapshot(snapshot)
        recovered.replay_aof(log.read_all()[tail_start:])
        assert recovered.execute("GET", "base") == b"v2"
        assert recovered.execute("GET", "extra") == b"x"

    def test_expired_key_not_resurrected_by_replay(self):
        store, log, clock = make_store(expiry_strategy="fullscan")
        store.execute("SET", "k", "v", "EX", 10)
        clock.advance(20)
        recovered = KeyValueStore(StoreConfig(appendonly=True),
                                  clock=clock)
        recovered.replay_aof(log.read_all())
        # PEXPIREAT lands in the past -> deleted during replay.
        assert recovered.execute("GET", "k") is None
