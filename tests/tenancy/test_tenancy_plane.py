"""Tests for the multi-tenant control plane.

The registry (namespaces, policies, quotas), the deterministic token
bucket, the admission gate (namespace / rate / footprint rungs, usage
accounting off the engine streams), per-tenant GDPR policy overrides in
the store layer, and the audit-chained metering pipeline.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    AuditError,
    LocationViolationError,
    QuotaExceededError,
    TenantAccessError,
    UnknownTenantError,
)
from repro.crypto.keystore import KeyStore
from repro.gdpr import GDPRMetadata
from repro.gdpr.store import GDPRConfig, GDPRStore
from repro.tenancy import (
    MeteringPipeline,
    TenantGate,
    TenantPolicy,
    TenantQuota,
    TenantRegistry,
    TenantStore,
    TokenBucket,
    key_prefix,
    local_name,
    qualify_key,
    qualify_subject,
    tenant_of,
)


def _meta(owner, **kw):
    return GDPRMetadata(owner=owner, purposes=frozenset({"service"}), **kw)


class TestNamespace:
    def test_qualify_and_strip(self):
        assert qualify_key("acme", "user:1") == "acme/user:1"
        assert qualify_subject("acme", "alice") == "acme/alice"
        assert key_prefix("acme") == "acme/"
        assert tenant_of("acme/user:1") == "acme"
        assert tenant_of("plainkey") is None
        assert local_name("acme", "acme/user:1") == "user:1"
        with pytest.raises(ValueError):
            local_name("acme", "globex/user:1")

    def test_registry_rejects_separator_in_ids(self):
        registry = TenantRegistry()
        with pytest.raises(ValueError):
            registry.register("a/b")
        with pytest.raises(ValueError):
            registry.register("")

    def test_registry_lookup(self):
        registry = TenantRegistry()
        policy = TenantPolicy(default_ttl=60.0)
        quota = TenantQuota(ops_per_sec=100.0)
        registry.register("acme", policy, quota)
        assert registry.known("acme")
        assert not registry.known("globex")
        assert registry.policy_of("acme") is policy
        assert registry.quota_of("acme") is quota
        assert registry.tenants() == ["acme"]
        with pytest.raises(UnknownTenantError, match="TENANTUNKNOWN"):
            registry.require("globex")
        assert registry.policy_for_key("acme/k") is policy
        assert registry.policy_for_key("globex/k") is None
        assert registry.policy_for_key("plainkey") is None


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, capacity=5.0, now=0.0)
        assert all(bucket.try_take(0.0) for _ in range(5))
        assert not bucket.try_take(0.0)             # burst spent
        assert bucket.try_take(0.1)                 # 1 token refilled
        assert not bucket.try_take(0.1)

    def test_capacity_caps_refill(self):
        bucket = TokenBucket(rate=10.0, capacity=2.0, now=0.0)
        bucket.try_take(0.0)
        assert bucket.tokens == 1.0
        bucket.try_take(100.0)                      # long idle gap
        assert bucket.tokens == 1.0                 # capped at 2, took 1

    def test_deterministic_across_runs(self):
        def run():
            bucket = TokenBucket(rate=3.0, capacity=3.0, now=0.0)
            return [bucket.try_take(t * 0.1) for t in range(40)]

        assert run() == run()


def make_gate(**quota_kw):
    registry = TenantRegistry()
    registry.register("acme", quota=TenantQuota(**quota_kw))
    registry.register("globex")
    clock = SimClock()
    return registry, TenantGate(registry, clock), clock


class TestGateAdmission:
    def test_unknown_tenant_refused(self):
        _, gate, _ = make_gate()
        with pytest.raises(UnknownTenantError):
            gate.admit("nobody", b"GET", [b"GET", b"nobody/k"],
                       [b"nobody/k"], 0.0)

    def test_namespace_violation_denied(self):
        _, gate, _ = make_gate()
        with pytest.raises(TenantAccessError, match="TENANTDENIED"):
            gate.admit("acme", b"GET", [b"GET", b"globex/k"],
                       [b"globex/k"], 0.0)
        assert gate.counters_of("acme").denied == 1

    def test_rate_quota_throttles(self):
        _, gate, _ = make_gate(ops_per_sec=100.0, burst=2.0)
        argv, keys = [b"GET", b"acme/k"], [b"acme/k"]
        gate.admit("acme", b"GET", argv, keys, 0.0)
        gate.admit("acme", b"GET", argv, keys, 0.0)
        with pytest.raises(QuotaExceededError, match="QUOTAEXCEEDED"):
            gate.admit("acme", b"GET", argv, keys, 0.0)
        assert gate.counters_of("acme").throttled == 1
        # Tokens return with simulated time.
        gate.admit("acme", b"GET", argv, keys, 0.02)

    def test_unlimited_tenant_never_throttles(self):
        _, gate, _ = make_gate()
        for _ in range(1000):
            gate.admit("globex", b"GET", [b"GET", b"globex/k"],
                       [b"globex/k"], 0.0)
        assert gate.counters_of("globex").ops == 1000

    def test_counters_classify_reads_and_writes(self):
        _, gate, _ = make_gate()
        gate.admit("acme", b"GET", [b"GET", b"acme/k"], [b"acme/k"], 0.0)
        gate.admit("acme", b"SET", [b"SET", b"acme/k", b"v"],
                   [b"acme/k"], 0.0)
        counters = gate.counters_of("acme")
        assert counters.ops == 2
        assert counters.read_ops == 1 and counters.write_ops == 1
        assert counters.bytes_in > 0


class TestGateFootprint:
    def _gate_with_store(self, **quota_kw):
        from repro.kvstore import KeyValueStore, StoreConfig
        registry, gate, clock = make_gate(**quota_kw)
        store = KeyValueStore(StoreConfig(), clock=clock)
        gate.watch_store(store)
        return gate, store

    def test_max_keys_enforced(self):
        gate, store = self._gate_with_store(max_keys=2)
        for number in range(2):
            argv = [b"SET", f"acme/k{number}".encode(), b"v"]
            gate.admit("acme", b"SET", argv, [argv[1]], 0.0)
            store.execute(*argv)
        argv = [b"SET", b"acme/k2", b"v"]
        with pytest.raises(QuotaExceededError, match="key quota"):
            gate.admit("acme", b"SET", argv, [argv[1]], 0.0)
        # Overwrites of an existing key stay admissible.
        argv = [b"SET", b"acme/k0", b"v2"]
        gate.admit("acme", b"SET", argv, [argv[1]], 0.0)

    def test_max_bytes_enforced_and_released_on_delete(self):
        gate, store = self._gate_with_store(max_bytes=10)
        argv = [b"SET", b"acme/k", b"12345678"]
        gate.admit("acme", b"SET", argv, [argv[1]], 0.0)
        store.execute(*argv)
        assert gate.bytes_used("acme") == 8
        over = [b"SET", b"acme/k2", b"456"]
        with pytest.raises(QuotaExceededError, match="byte quota"):
            gate.admit("acme", b"SET", over, [over[1]], 0.0)
        store.execute("DEL", "acme/k")
        assert gate.bytes_used("acme") == 0
        gate.admit("acme", b"SET", over, [over[1]], 0.0)

    def test_usage_tracks_expiry_and_direct_writes(self):
        gate, store = self._gate_with_store(max_bytes=100)
        # A direct (bench-preload-style) write is metered too: usage
        # rides the engine's write stream, not the request path.
        store.execute("SET", "acme/k", "vvvv")
        assert gate.key_count("acme") == 1
        assert gate.bytes_used("acme") == 4
        store.execute("PEXPIRE", "acme/k", 50)
        store.clock.advance(1.0)
        assert store.execute("GET", "acme/k") is None   # lazy expire
        assert gate.key_count("acme") == 0
        assert gate.bytes_used("acme") == 0


class TestPerTenantPolicies:
    def _store(self, registry, config=None):
        store = GDPRStore(config=config or GDPRConfig(),
                          keystore=KeyStore())
        store.attach_tenant_policies(registry)
        return store

    def test_default_ttl_override(self):
        registry = TenantRegistry()
        registry.register("acme", TenantPolicy(default_ttl=30.0))
        store = self._store(
            registry, GDPRConfig(default_ttl=3600.0))
        store.put("acme/k", b"v", _meta("acme/alice"))
        store.put("plain-k", b"v", _meta("bob"))
        assert store.get("acme/k").metadata.ttl == 30.0
        assert store.get("plain-k").metadata.ttl == 3600.0

    def test_region_pin_refuses_foreign_node(self):
        registry = TenantRegistry()
        registry.register("acme", TenantPolicy(region="eu-central"))
        registry.register("globex")
        store = self._store(registry)       # node region: eu-west
        with pytest.raises(LocationViolationError):
            store.put("acme/k", b"v", _meta("acme/alice"))
        store.put("globex/k", b"v", _meta("globex/alice"))   # unpinned

    def test_audit_opt_out_keeps_tenant_off_the_chain(self):
        registry = TenantRegistry()
        registry.register("quiet", TenantPolicy(audit_enabled=False))
        registry.register("loud")
        store = self._store(registry)
        store.put("quiet/k", b"v", _meta("quiet/alice"))
        store.put("loud/k", b"v", _meta("loud/alice"))
        store.get("quiet/k")
        store.get("loud/k")
        subjects = [record.subject for record in store.audit.records()]
        assert "loud/alice" in subjects
        assert "quiet/alice" not in subjects

    def test_encryption_opt_out_stores_plaintext_envelopes(self):
        registry = TenantRegistry()
        registry.register("open", TenantPolicy(encryption_required=False))
        registry.register("sealed")
        store = self._store(registry)
        store.put("open/k", b"plaintext-value", _meta("open/alice"))
        store.put("sealed/k", b"secret-value", _meta("sealed/alice"))
        raw_open = store.kv.execute("GET", "open/k")
        raw_sealed = store.kv.execute("GET", "sealed/k")
        assert b"plaintext-value" in raw_open
        assert b"secret-value" not in raw_sealed
        # Both read back identically through the facade.
        assert store.get("open/k").value == b"plaintext-value"
        assert store.get("sealed/k").value == b"secret-value"

    def test_per_tenant_fast_gdpr_builds_writebehind_on_demand(self):
        registry = TenantRegistry()
        registry.register("fast", TenantPolicy(fast_gdpr=True))
        registry.register("strict")
        store = GDPRStore(config=GDPRConfig(), keystore=KeyStore())
        assert store._writebehind is None
        store.attach_tenant_policies(registry)
        assert store._writebehind is not None
        store.put("fast/k", b"v", _meta("fast/alice"))
        store.put("strict/k", b"v", _meta("strict/alice"))
        store.flush_compliance()
        assert store.get("fast/k").value == b"v"
        assert store.get("strict/k").value == b"v"


class TestMetering:
    def _pipeline(self):
        registry, gate, clock = make_gate(ops_per_sec=1000.0)
        pipeline = MeteringPipeline(gate, clock=clock, auto_timer=False)
        return gate, pipeline, clock

    def _traffic(self, gate, tenant, ops, at=0.0):
        for _ in range(ops):
            gate.admit(tenant, b"GET", [b"GET", f"{tenant}/k".encode()],
                       [f"{tenant}/k".encode()], at)

    def test_reports_are_deltas_per_interval(self):
        gate, pipeline, clock = self._pipeline()
        self._traffic(gate, "acme", 5)
        assert pipeline.flush() == 1
        self._traffic(gate, "acme", 3, at=0.1)
        clock.advance(1.0)
        assert pipeline.flush() == 1
        deltas = [report["ops"] for _, name, report in pipeline.reports
                  if name == "acme"]
        assert deltas == [5, 3]
        assert pipeline.totals_of("acme")["ops"] == 8

    def test_idle_tenants_emit_nothing(self):
        gate, pipeline, _ = self._pipeline()
        self._traffic(gate, "acme", 2)
        assert pipeline.flush() == 1        # acme only; globex is idle
        assert pipeline.flush() == 0        # nothing changed since

    def test_chain_verifies_and_indexes_by_tenant(self):
        gate, pipeline, clock = self._pipeline()
        self._traffic(gate, "acme", 4)
        self._traffic(gate, "globex", 2)
        pipeline.flush()
        clock.advance(1.0)
        self._traffic(gate, "acme", 1, at=clock.now())
        pipeline.flush()
        assert pipeline.verify() == 3       # 2 + 1 sealed reports
        acme = pipeline.records_for("acme")
        assert len(acme) == 2
        assert all(r.operation == "usage-report" for r in acme)

    def test_tampered_chain_fails_verification(self):
        gate, pipeline, _ = self._pipeline()
        self._traffic(gate, "acme", 4)
        pipeline.flush()
        data = pipeline.audit.log.read_all()
        # The report detail is JSON nested twice (record inside block
        # member), so "ops" arrives triple-escaped on the wire.
        forged = data.replace(b'\\\\\\"ops\\\\\\":4',
                              b'\\\\\\"ops\\\\\\":1')
        assert forged != data               # the edit really landed
        pipeline.audit.log.replace(forged)
        with pytest.raises(AuditError):
            pipeline.verify()

    def test_daemon_timer_seals_rounds(self):
        registry, gate, clock = make_gate()
        pipeline = MeteringPipeline(gate, clock=clock, interval=0.5)
        self._traffic(gate, "globex", 3)
        clock.schedule_after(1.2, lambda: None, label="work")
        clock.run_until_idle()
        pipeline.stop_timer()
        assert pipeline.reports
        assert pipeline.verify() >= 1


class TestTenantStoreView:
    def test_put_get_delete_round_trip(self):
        base = GDPRStore(config=GDPRConfig(), keystore=KeyStore())
        view = TenantStore(base, "acme")
        view.put("user:1", b"v", _meta("alice"))
        record = view.get("user:1")
        assert record.key == "user:1"           # local name on the way out
        assert record.value == b"v"
        assert record.metadata.owner == "acme/alice"
        assert base.get("acme/user:1").value == b"v"
        assert view.delete("user:1")
        assert view.keys() == []
