"""Tests for the stream cipher and authenticated envelope."""

import pytest

from repro.common.errors import CryptoError, IntegrityError
from repro.crypto.cipher import (
    KEY_SIZE,
    NONCE_SIZE,
    AuthenticatedCipher,
    SectorCipher,
    StreamCipher,
    derive_key,
    random_bytes,
    seeded_entropy,
)


@pytest.fixture
def key():
    return b"k" * KEY_SIZE


class TestStreamCipher:
    def test_roundtrip(self, key):
        cipher = StreamCipher(key)
        nonce = b"n" * NONCE_SIZE
        ciphertext = cipher.encrypt(b"secret payload", nonce)
        assert cipher.decrypt(ciphertext, nonce) == b"secret payload"

    def test_ciphertext_differs_from_plaintext(self, key):
        cipher = StreamCipher(key)
        nonce = b"n" * NONCE_SIZE
        assert cipher.encrypt(b"secret", nonce) != b"secret"

    def test_nonce_changes_ciphertext(self, key):
        cipher = StreamCipher(key)
        a = cipher.encrypt(b"data", b"a" * NONCE_SIZE)
        b = cipher.encrypt(b"data", b"b" * NONCE_SIZE)
        assert a != b

    def test_key_changes_ciphertext(self, key):
        nonce = b"n" * NONCE_SIZE
        a = StreamCipher(key).encrypt(b"data", nonce)
        b = StreamCipher(b"x" * KEY_SIZE).encrypt(b"data", nonce)
        assert a != b

    def test_empty_plaintext(self, key):
        cipher = StreamCipher(key)
        assert cipher.encrypt(b"", b"n" * NONCE_SIZE) == b""

    def test_long_plaintext_spans_blocks(self, key):
        cipher = StreamCipher(key)
        nonce = b"n" * NONCE_SIZE
        payload = bytes(range(256)) * 20
        assert cipher.decrypt(cipher.encrypt(payload, nonce),
                              nonce) == payload

    def test_keystream_start_block(self, key):
        cipher = StreamCipher(key)
        nonce = b"n" * NONCE_SIZE
        full = cipher.keystream(nonce, 96)
        tail = cipher.keystream(nonce, 64, start_block=1)
        assert full[32:] == tail

    def test_bad_key_length(self):
        with pytest.raises(CryptoError):
            StreamCipher(b"short")

    def test_bad_nonce_length(self, key):
        with pytest.raises(CryptoError):
            StreamCipher(key).encrypt(b"x", b"short")


class TestAuthenticatedCipher:
    def test_seal_open_roundtrip(self, key):
        cipher = AuthenticatedCipher(key)
        token = cipher.seal(b"personal data")
        assert cipher.open(token) == b"personal data"

    def test_aad_binding(self, key):
        cipher = AuthenticatedCipher(key)
        token = cipher.seal(b"v", aad=b"key-1")
        assert cipher.open(token, aad=b"key-1") == b"v"
        with pytest.raises(IntegrityError):
            cipher.open(token, aad=b"key-2")

    def test_tampered_ciphertext_rejected(self, key):
        cipher = AuthenticatedCipher(key)
        token = bytearray(cipher.seal(b"value"))
        token[NONCE_SIZE] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.open(bytes(token))

    def test_tampered_tag_rejected(self, key):
        cipher = AuthenticatedCipher(key)
        token = bytearray(cipher.seal(b"value"))
        token[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.open(bytes(token))

    def test_truncated_token_rejected(self, key):
        cipher = AuthenticatedCipher(key)
        with pytest.raises(IntegrityError):
            cipher.open(b"tiny")

    def test_wrong_key_rejected(self, key):
        token = AuthenticatedCipher(key).seal(b"value")
        other = AuthenticatedCipher(b"z" * KEY_SIZE)
        with pytest.raises(IntegrityError):
            other.open(token)

    def test_unique_nonces_give_unique_tokens(self, key):
        cipher = AuthenticatedCipher(key)
        assert cipher.seal(b"same") != cipher.seal(b"same")

    def test_explicit_nonce_deterministic(self, key):
        cipher = AuthenticatedCipher(key)
        nonce = b"n" * NONCE_SIZE
        assert cipher.seal(b"same", nonce=nonce) == \
            cipher.seal(b"same", nonce=nonce)

    def test_overhead_constant(self, key):
        cipher = AuthenticatedCipher(key)
        token = cipher.seal(b"12345")
        assert len(token) - 5 == AuthenticatedCipher.overhead()


class TestSectorCipher:
    def test_sector_roundtrip(self, key):
        cipher = SectorCipher(key)
        sector = b"s" * 512
        assert cipher.decrypt_sector(
            7, cipher.encrypt_sector(7, sector)) == sector

    def test_sector_number_tweaks(self, key):
        cipher = SectorCipher(key)
        data = b"d" * 512
        assert cipher.encrypt_sector(0, data) != cipher.encrypt_sector(
            1, data)

    def test_length_preserving(self, key):
        cipher = SectorCipher(key)
        assert len(cipher.encrypt_sector(3, b"x" * 100)) == 100


class TestKdf:
    def test_deterministic(self):
        assert derive_key(b"pass", b"salt") == derive_key(b"pass", b"salt")

    def test_salt_sensitivity(self):
        assert derive_key(b"pass", b"salt1") != derive_key(b"pass",
                                                           b"salt2")

    def test_passphrase_sensitivity(self):
        assert derive_key(b"a", b"salt") != derive_key(b"b", b"salt")

    def test_empty_passphrase_rejected(self):
        with pytest.raises(CryptoError):
            derive_key(b"", b"salt")

    def test_output_size(self):
        assert len(derive_key(b"p", b"s")) == KEY_SIZE


def test_random_bytes_length_and_variation():
    assert len(random_bytes(16)) == 16
    assert random_bytes(16) != random_bytes(16)


class TestSeededEntropy:
    def test_same_seed_same_stream(self, key):
        with seeded_entropy(7):
            first = [random_bytes(16) for _ in range(3)]
            token = AuthenticatedCipher(key).seal(b"payload", aad=b"a")
        with seeded_entropy(7):
            assert [random_bytes(16) for _ in range(3)] == first
            assert AuthenticatedCipher(key).seal(b"payload",
                                                 aad=b"a") == token

    def test_sealed_tokens_still_open(self, key):
        cipher = AuthenticatedCipher(key)
        with seeded_entropy(1):
            token = cipher.seal(b"secret", aad=b"k")
        assert cipher.open(token, aad=b"k") == b"secret"

    def test_restores_urandom_on_exit_even_nested(self):
        with seeded_entropy(1):
            outer = random_bytes(16)
            with seeded_entropy(2):
                pass
            # Inner exit restores the *outer* seeded source, not urandom.
            with seeded_entropy(1):
                pass
        with seeded_entropy(1):
            assert random_bytes(16) == outer
        # Back on urandom: two draws must differ.
        assert random_bytes(16) != random_bytes(16)
