"""Tests for the key hierarchy and crypto-erasure."""

import pytest

from repro.common.errors import (
    CryptoError,
    IntegrityError,
    KeyErasedError,
    KeyNotFoundError,
)
from repro.crypto.cipher import KEY_SIZE
from repro.crypto.keystore import KeyStore


class TestKeyLifecycle:
    def test_create_and_get(self):
        ks = KeyStore()
        key = ks.create_key("alice")
        assert ks.get_key("alice") == key

    def test_create_is_idempotent(self):
        ks = KeyStore()
        assert ks.create_key("alice") == ks.create_key("alice")

    def test_distinct_subjects_distinct_keys(self):
        ks = KeyStore()
        assert ks.create_key("alice") != ks.create_key("bob")

    def test_missing_key_raises(self):
        with pytest.raises(KeyNotFoundError):
            KeyStore().get_key("nobody")

    def test_contains(self):
        ks = KeyStore()
        ks.create_key("alice")
        assert "alice" in ks
        assert "bob" not in ks

    def test_key_ids_sorted(self):
        ks = KeyStore()
        ks.create_key("b")
        ks.create_key("a")
        assert list(ks.key_ids()) == ["a", "b"]

    def test_bad_master_key_length(self):
        with pytest.raises(CryptoError):
            KeyStore(master_key=b"short")


class TestCryptoErasure:
    def test_erase_removes_key(self):
        ks = KeyStore()
        ks.create_key("alice")
        assert ks.erase_key("alice") is True
        with pytest.raises(KeyErasedError):
            ks.get_key("alice")

    def test_erase_unknown_returns_false(self):
        ks = KeyStore()
        assert ks.erase_key("ghost") is False

    def test_erased_id_cannot_be_recreated(self):
        ks = KeyStore()
        ks.create_key("alice")
        ks.erase_key("alice")
        with pytest.raises(KeyErasedError):
            ks.create_key("alice")

    def test_erasure_voids_ciphertexts(self):
        ks = KeyStore()
        cipher = ks.cipher_for("alice")
        token = cipher.seal(b"pii")
        ks.erase_key("alice")
        with pytest.raises(KeyErasedError):
            ks.cipher_for("alice", create=False)
        assert token  # ciphertext bytes survive, but are unreadable

    def test_erased_ids_listed(self):
        ks = KeyStore()
        ks.create_key("alice")
        ks.erase_key("alice")
        assert list(ks.erased_ids()) == ["alice"]


class TestWrappedExportImport:
    def test_export_import_roundtrip(self):
        master = b"m" * KEY_SIZE
        ks = KeyStore(master)
        data_key = ks.create_key("alice")
        restored = KeyStore(master)
        restored.import_wrapped(ks.export_wrapped())
        assert restored.get_key("alice") == data_key

    def test_import_rejects_tampered_blob(self):
        master = b"m" * KEY_SIZE
        ks = KeyStore(master)
        ks.create_key("alice")
        blobs = ks.export_wrapped()
        blobs["alice"] = blobs["alice"][:-1] + bytes(
            [blobs["alice"][-1] ^ 1])
        with pytest.raises(IntegrityError):
            KeyStore(master).import_wrapped(blobs)

    def test_import_cannot_resurrect_erased(self):
        master = b"m" * KEY_SIZE
        ks = KeyStore(master)
        ks.create_key("alice")
        backup = ks.export_wrapped()
        ks.erase_key("alice")
        ks.import_wrapped(backup)
        with pytest.raises(KeyErasedError):
            ks.get_key("alice")

    def test_wrapped_blobs_not_raw_keys(self):
        ks = KeyStore()
        data_key = ks.create_key("alice")
        assert data_key not in ks.export_wrapped()["alice"]

    def test_import_under_wrong_master_rejected(self):
        ks = KeyStore(b"m" * KEY_SIZE)
        ks.create_key("alice")
        with pytest.raises(IntegrityError):
            KeyStore(b"x" * KEY_SIZE).import_wrapped(ks.export_wrapped())


class TestCipherFor:
    def test_cipher_roundtrip(self):
        ks = KeyStore()
        token = ks.cipher_for("alice").seal(b"v", aad=b"k")
        assert ks.cipher_for("alice").open(token, aad=b"k") == b"v"

    def test_cipher_no_create(self):
        ks = KeyStore()
        with pytest.raises(KeyNotFoundError):
            ks.cipher_for("bob", create=False)

    def test_per_subject_isolation(self):
        ks = KeyStore()
        token = ks.cipher_for("alice").seal(b"v")
        with pytest.raises(IntegrityError):
            ks.cipher_for("bob").open(token)


class TestCipherCache:
    def test_cipher_instance_reused(self):
        ks = KeyStore()
        assert ks.cipher_for("alice") is ks.cipher_for("alice")

    def test_cached_cipher_still_correct(self):
        ks = KeyStore()
        token = ks.cipher_for("alice").seal(b"v", aad=b"k")
        assert ks.cipher_for("alice").open(token, aad=b"k") == b"v"

    def test_erasure_evicts_cache(self):
        ks = KeyStore()
        ks.cipher_for("alice")
        ks.erase_key("alice")
        with pytest.raises(KeyErasedError):
            ks.cipher_for("alice")

    def test_import_invalidates_cache(self):
        donor = KeyStore(b"m" * KEY_SIZE)
        donor.create_key("alice")
        ks = KeyStore(b"m" * KEY_SIZE)
        stale = ks.cipher_for("alice")          # a different data key
        ks.import_wrapped(donor.export_wrapped())
        fresh = ks.cipher_for("alice")
        assert fresh is not stale
        token = donor.cipher_for("alice").seal(b"v")
        assert fresh.open(token) == b"v"
