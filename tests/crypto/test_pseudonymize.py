"""Tests for pseudonymization."""

import pytest

from repro.common.errors import CryptoError
from repro.crypto.pseudonymize import Pseudonymizer


class TestPseudonyms:
    def test_deterministic(self):
        p = Pseudonymizer(key=b"k" * 32)
        assert p.pseudonym("alice") == p.pseudonym("alice")

    def test_distinct_identities(self):
        p = Pseudonymizer(key=b"k" * 32)
        assert p.pseudonym("alice") != p.pseudonym("bob")

    def test_key_scoped(self):
        a = Pseudonymizer(key=b"a" * 32)
        b = Pseudonymizer(key=b"b" * 32)
        assert a.pseudonym("alice") != b.pseudonym("alice")

    def test_prefix_applied(self):
        p = Pseudonymizer(key=b"k" * 32, prefix="anon-")
        assert p.pseudonym("alice").startswith("anon-")

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            Pseudonymizer(key=b"tiny")

    def test_short_digest_rejected(self):
        with pytest.raises(CryptoError):
            Pseudonymizer(key=b"k" * 32, digest_chars=4)


class TestReidentification:
    def test_reverse_lookup(self):
        p = Pseudonymizer(key=b"k" * 32)
        alias = p.pseudonym("alice")
        assert p.reidentify(alias) == "alice"

    def test_unknown_alias(self):
        p = Pseudonymizer(key=b"k" * 32)
        assert p.reidentify("sub-deadbeef00000000") is None

    def test_unlink_breaks_reverse(self):
        p = Pseudonymizer(key=b"k" * 32)
        alias = p.pseudonym("alice")
        assert p.unlink("alice") is True
        assert p.reidentify(alias) is None

    def test_unlink_without_link(self):
        p = Pseudonymizer(key=b"k" * 32)
        # pseudonym() inside unlink creates the link, then removes it;
        # the subject was never linked beforehand but a link did exist at
        # removal time, so unlink reports True the first time.
        p.unlink("never-seen")
        assert p.reidentify(p.pseudonym("never-seen")) == "never-seen"

    def test_linked_count(self):
        p = Pseudonymizer(key=b"k" * 32)
        p.pseudonym("a")
        p.pseudonym("b")
        assert p.linked_count() == 2
        p.unlink("a")
        assert p.linked_count() == 1
