"""Tests for the YCSB request-distribution generators."""

import random
from collections import Counter

import pytest

from repro.ycsb.distributions import (
    CounterGenerator,
    DiscreteGenerator,
    ScrambledZipfianGenerator,
    SkewedLatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
    zeta,
)


class TestCounter:
    def test_sequence(self):
        gen = CounterGenerator()
        assert [gen.next_value() for _ in range(3)] == [0, 1, 2]
        assert gen.last_value() == 2

    def test_start_offset(self):
        gen = CounterGenerator(start=100)
        assert gen.next_value() == 100


class TestUniform:
    def test_bounds_respected(self):
        gen = UniformGenerator(5, 10, rng=random.Random(0))
        values = [gen.next_value() for _ in range(500)]
        assert min(values) >= 5 and max(values) <= 10

    def test_covers_range(self):
        gen = UniformGenerator(0, 9, rng=random.Random(0))
        assert len({gen.next_value() for _ in range(500)}) == 10

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformGenerator(10, 5)

    def test_last_value(self):
        gen = UniformGenerator(0, 100, rng=random.Random(0))
        value = gen.next_value()
        assert gen.last_value() == value


class TestZeta:
    def test_zeta_small(self):
        assert zeta(1, 0.99) == pytest.approx(1.0)
        assert zeta(2, 0.99) == pytest.approx(1.0 + 0.5 ** 0.99)

    def test_zeta_monotone(self):
        assert zeta(100, 0.99) < zeta(200, 0.99)


class TestZipfian:
    def test_bounds(self):
        gen = ZipfianGenerator(0, 99, rng=random.Random(0))
        values = [gen.next_value() for _ in range(2000)]
        assert min(values) >= 0 and max(values) <= 99

    def test_skew_towards_head(self):
        gen = ZipfianGenerator(0, 999, rng=random.Random(0))
        counts = Counter(gen.next_value() for _ in range(20_000))
        head = sum(counts[i] for i in range(10))
        tail = sum(counts[i] for i in range(990, 1000))
        assert head > tail * 10

    def test_most_popular_is_first(self):
        gen = ZipfianGenerator(0, 999, rng=random.Random(0))
        counts = Counter(gen.next_value() for _ in range(20_000))
        assert counts.most_common(1)[0][0] == 0

    def test_offset_range(self):
        gen = ZipfianGenerator(50, 59, rng=random.Random(0))
        values = {gen.next_value() for _ in range(1000)}
        assert min(values) >= 50 and max(values) <= 59

    def test_growing_item_count(self):
        gen = ZipfianGenerator(0, 9, rng=random.Random(0))
        values = [gen.next_for_items(100) for _ in range(2000)]
        assert max(values) > 9  # new items reachable
        assert max(values) <= 99

    def test_deterministic_with_seed(self):
        a = ZipfianGenerator(0, 99, rng=random.Random(5))
        b = ZipfianGenerator(0, 99, rng=random.Random(5))
        assert [a.next_value() for _ in range(50)] == \
            [b.next_value() for _ in range(50)]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(5, 4)


class TestScrambledZipfian:
    def test_bounds(self):
        gen = ScrambledZipfianGenerator(0, 999, rng=random.Random(0))
        values = [gen.next_value() for _ in range(5000)]
        assert min(values) >= 0 and max(values) <= 999

    def test_hotspots_scattered(self):
        gen = ScrambledZipfianGenerator(0, 999, rng=random.Random(0))
        counts = Counter(gen.next_value() for _ in range(20_000))
        top10 = [item for item, _ in counts.most_common(10)]
        # Scrambling spreads popularity: hot items are not clustered at 0.
        assert max(top10) > 100

    def test_still_skewed(self):
        gen = ScrambledZipfianGenerator(0, 999, rng=random.Random(0))
        counts = Counter(gen.next_value() for _ in range(20_000))
        top = counts.most_common(10)
        assert sum(c for _, c in top) > 20_000 * 0.05


class TestSkewedLatest:
    def test_favors_recent(self):
        basis = CounterGenerator(start=1000)
        gen = SkewedLatestGenerator(basis, rng=random.Random(0))
        values = [gen.next_value() for _ in range(5000)]
        assert max(values) == 999  # the most recent item
        recent = sum(1 for v in values if v > 900)
        old = sum(1 for v in values if v < 100)
        assert recent > old * 5

    def test_tracks_inserts(self):
        basis = CounterGenerator(start=10)
        gen = SkewedLatestGenerator(basis, rng=random.Random(0))
        gen.next_value()
        for _ in range(90):
            basis.next_value()
        values = [gen.next_value() for _ in range(2000)]
        assert max(values) == 99

    def test_values_nonnegative(self):
        basis = CounterGenerator(start=5)
        gen = SkewedLatestGenerator(basis, rng=random.Random(0))
        assert all(0 <= gen.next_value() <= 4 for _ in range(200))


class TestDiscrete:
    def test_proportions_respected(self):
        gen = DiscreteGenerator([("read", 0.9), ("update", 0.1)],
                                rng=random.Random(0))
        counts = Counter(gen.next_value() for _ in range(10_000))
        assert counts["read"] / 10_000 == pytest.approx(0.9, abs=0.02)

    def test_zero_weight_excluded(self):
        gen = DiscreteGenerator([("a", 1.0), ("b", 0.0)],
                                rng=random.Random(0))
        assert gen.labels() == ["a"]
        assert all(gen.next_value() == "a" for _ in range(100))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DiscreteGenerator([("a", 0.0)])

    def test_normalization(self):
        gen = DiscreteGenerator([("a", 3.0), ("b", 1.0)],
                                rng=random.Random(0))
        counts = Counter(gen.next_value() for _ in range(8000))
        assert counts["a"] / 8000 == pytest.approx(0.75, abs=0.03)
