"""Tests for workload specs, record generation, adapters, and the runner."""

import pytest

from repro.common.clock import SimClock
from repro.gdpr import GDPRConfig, GDPRMetadata, GDPRStore
from repro.kvstore import KeyValueStore, StoreConfig, connect_plain
from repro.net.channel import loopback
from repro.ycsb import (
    CORE_WORKLOADS,
    FIGURE1_PHASES,
    ClientAdapter,
    ClusterAdapter,
    FieldGenerator,
    GDPRAdapter,
    KVAdapter,
    WorkloadRunner,
    WorkloadSpec,
    build_key_name,
    load_and_run,
    pack_fields,
    unpack_fields,
)


class TestWorkloadSpecs:
    def test_core_workloads_defined(self):
        assert set(CORE_WORKLOADS) == {"A", "B", "C", "D", "E", "F"}

    def test_proportions_sum_to_one(self):
        for spec in CORE_WORKLOADS.values():
            total = sum(p for _, p in spec.operation_mix())
            assert total == pytest.approx(1.0)

    def test_a_is_half_updates(self):
        assert CORE_WORKLOADS["A"].update_proportion == 0.5

    def test_c_is_read_only(self):
        assert CORE_WORKLOADS["C"].read_proportion == 1.0

    def test_d_uses_latest(self):
        assert CORE_WORKLOADS["D"].request_distribution == "latest"

    def test_e_scans(self):
        assert CORE_WORKLOADS["E"].scan_proportion == 0.95

    def test_record_shape(self):
        spec = CORE_WORKLOADS["A"]
        assert spec.field_count == 10
        assert spec.field_length == 100

    def test_invalid_proportions_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", read_proportion=0.7)

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", read_proportion=1.0,
                         request_distribution="gaussian")

    def test_scaled_copy(self):
        scaled = CORE_WORKLOADS["A"].scaled(record_count=50,
                                            operation_count=99)
        assert scaled.record_count == 50
        assert scaled.operation_count == 99
        assert CORE_WORKLOADS["A"].record_count != 50 or True

    def test_figure1_phases(self):
        assert FIGURE1_PHASES == ("Load-A", "A", "B", "C", "D",
                                  "Load-E", "E", "F")


class TestGenerators:
    def test_key_name_hashed(self):
        assert build_key_name(1) == build_key_name(1)
        assert build_key_name(1) != build_key_name(2)
        assert build_key_name(5).startswith("user")

    def test_key_name_ordered(self):
        assert build_key_name(7, ordered=True) < build_key_name(
            8, ordered=True)

    def test_field_values_shape(self):
        gen = FieldGenerator(field_count=10, field_length=100)
        values = gen.build_values()
        assert len(values) == 10
        assert all(len(v) == 100 for v in values.values())
        assert set(values) == {f"field{i}" for i in range(10)}

    def test_update_single_field(self):
        gen = FieldGenerator()
        update = gen.build_update()
        assert len(update) == 1

    def test_record_size(self):
        assert FieldGenerator(10, 100).record_size() == 1000

    def test_pack_unpack_fields(self):
        values = {"field0": b"\x00binary\xff", "field1": b""}
        assert unpack_fields(pack_fields(values)) == values


@pytest.fixture
def kv_adapter():
    store = KeyValueStore(clock=SimClock())
    return KVAdapter(store)


class TestKVAdapter:
    def test_insert_read(self, kv_adapter):
        kv_adapter.insert("user1", {"f0": b"v0", "f1": b"v1"})
        assert kv_adapter.read("user1") == {"f0": b"v0", "f1": b"v1"}

    def test_read_subset(self, kv_adapter):
        kv_adapter.insert("user1", {"f0": b"v0", "f1": b"v1"})
        assert kv_adapter.read("user1", fields=["f1"]) == {"f1": b"v1"}

    def test_update_merges(self, kv_adapter):
        kv_adapter.insert("user1", {"f0": b"v0", "f1": b"v1"})
        kv_adapter.update("user1", {"f1": b"new"})
        assert kv_adapter.read("user1") == {"f0": b"v0", "f1": b"new"}

    def test_scan_returns_records(self, kv_adapter):
        for i in range(20):
            kv_adapter.insert(f"user{i:03d}", {"f0": str(i).encode()})
        results = kv_adapter.scan("user000", 5)
        assert 1 <= len(results) <= 5
        assert all(isinstance(r, dict) for r in results)

    def test_delete(self, kv_adapter):
        kv_adapter.insert("user1", {"f0": b"v"})
        kv_adapter.delete("user1")
        assert kv_adapter.read("user1") == {}


class TestClientAdapter:
    def test_roundtrip_over_channel(self):
        clock = SimClock()
        store = KeyValueStore(clock=clock)
        client = connect_plain(store, loopback(clock))
        adapter = ClientAdapter(client)
        adapter.insert("u1", {"f0": b"v"})
        assert adapter.read("u1") == {"f0": b"v"}
        adapter.update("u1", {"f0": b"w"})
        assert adapter.read("u1", fields=["f0"]) == {"f0": b"w"}
        adapter.delete("u1")
        assert adapter.read("u1") == {}


class TestClusterAdapter:
    def make(self, pipeline_depth=1, num_shards=3):
        from repro.cluster import build_cluster
        cluster = build_cluster(num_shards)
        return ClusterAdapter(cluster, pipeline_depth=pipeline_depth), \
            cluster

    def test_insert_read_round_trip(self):
        adapter, _ = self.make()
        adapter.insert("user1", {"f0": b"a", "f1": b"b"})
        assert adapter.read("user1") == {"f0": b"a", "f1": b"b"}
        assert adapter.read("user1", ["f1"]) == {"f1": b"b"}

    def test_records_spread_across_shards(self):
        adapter, cluster = self.make()
        for number in range(30):
            adapter.insert(build_key_name(number), {"f0": b"v"})
        assert all(size > 0 for size in cluster.keyspace_sizes())

    def test_pipelined_writes_flush_before_read(self):
        adapter, _ = self.make(pipeline_depth=8)
        adapter.insert("user1", {"f0": b"a"})
        adapter.update("user1", {"f0": b"b"})
        # Neither write has hit depth 8, yet the read must see both.
        assert adapter.read("user1") == {"f0": b"b"}

    def test_scan_unsupported_in_cluster_mode(self):
        adapter, _ = self.make()
        with pytest.raises(NotImplementedError):
            adapter.scan("user1", 5)

    def test_runs_core_workload_a(self):
        adapter, cluster = self.make()
        spec = CORE_WORKLOADS["A"].scaled(record_count=40,
                                          operation_count=80)
        reports = load_and_run(adapter, spec, cluster.clock)
        assert reports["run"].operations == 80
        assert reports["run"].throughput > 0

    def test_runner_flushes_trailing_writes_at_phase_end(self):
        # record_count not divisible by depth: the tail batch must not
        # stay buffered when the phase report is cut.
        adapter, cluster = self.make(pipeline_depth=8)
        spec = CORE_WORKLOADS["A"].scaled(record_count=30,
                                          operation_count=0)
        WorkloadRunner(adapter, spec, cluster.clock).load()
        assert sum(cluster.keyspace_sizes()) == 30

    def test_pipelined_load_is_faster(self):
        def load(depth):
            adapter, cluster = self.make(pipeline_depth=depth)
            for number in range(48):
                adapter.insert(build_key_name(number), {"f0": b"v"})
            adapter.flush()
            return cluster.clock.now()

        assert load(8) < load(1)


class TestGDPRAdapter:
    def make(self):
        clock = SimClock()
        kv = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
        store = GDPRStore(kv=kv, config=GDPRConfig())
        return GDPRAdapter(store, purpose="service"), store

    def test_insert_read(self):
        adapter, _ = self.make()
        adapter.insert("u1", {"f0": b"v0"})
        assert adapter.read("u1") == {"f0": b"v0"}

    def test_per_record_subjects(self):
        adapter, store = self.make()
        adapter.insert("u1", {"f0": b"v"})
        adapter.insert("u2", {"f0": b"v"})
        assert store.keys_of_subject("subject-u1") == ["u1"]
        assert store.keys_of_subject("subject-u2") == ["u2"]

    def test_operations_audited(self):
        adapter, store = self.make()
        adapter.insert("u1", {"f0": b"v"})
        adapter.read("u1")
        ops = [r.operation for r in store.audit.records()]
        assert "put" in ops and "get" in ops

    def test_update_preserves_other_fields(self):
        adapter, _ = self.make()
        adapter.insert("u1", {"f0": b"a", "f1": b"b"})
        adapter.update("u1", {"f1": b"c"})
        assert adapter.read("u1") == {"f0": b"a", "f1": b"c"}

    def test_scan_sorted_window(self):
        adapter, _ = self.make()
        for i in range(10):
            adapter.insert(f"user{i:02d}", {"f0": b"v"})
        results = adapter.scan("user03", 4)
        assert len(results) == 4

    def test_delete(self):
        adapter, store = self.make()
        adapter.insert("u1", {"f0": b"v"})
        adapter.delete("u1")
        with pytest.raises(KeyError):
            store.get("u1")


class TestRunner:
    def test_load_inserts_record_count(self):
        clock = SimClock()
        adapter = KVAdapter(KeyValueStore(clock=clock))
        spec = CORE_WORKLOADS["A"].scaled(record_count=50)
        report = WorkloadRunner(adapter, spec, clock).load()
        assert report.operations == 50
        assert report.phase == "Load-A"
        assert adapter.store.execute("DBSIZE") == 51  # records + index

    def test_run_executes_operation_count(self):
        clock = SimClock()
        adapter = KVAdapter(KeyValueStore(clock=clock))
        spec = CORE_WORKLOADS["A"].scaled(record_count=50,
                                          operation_count=200)
        runner = WorkloadRunner(adapter, spec, clock)
        runner.load()
        report = runner.run()
        assert report.operations == 200
        assert report.failures == 0

    def test_histograms_match_mix(self):
        clock = SimClock()
        adapter = KVAdapter(KeyValueStore(clock=clock))
        spec = CORE_WORKLOADS["A"].scaled(record_count=50,
                                          operation_count=400)
        runner = WorkloadRunner(adapter, spec, clock)
        runner.load()
        report = runner.run()
        assert set(report.histograms) <= {"read", "update"}
        reads = report.histograms["read"].count
        updates = report.histograms["update"].count
        assert reads + updates == 400
        assert abs(reads - updates) < 120  # 50/50 mix

    def test_throughput_requires_time(self):
        clock = SimClock()
        store = KeyValueStore(StoreConfig(command_cpu_cost=10e-6),
                              clock=clock)
        spec = CORE_WORKLOADS["C"].scaled(record_count=20,
                                          operation_count=100)
        reports = load_and_run(KVAdapter(store), spec, clock)
        assert reports["run"].throughput > 0
        assert reports["run"].sim_elapsed > 0

    def test_workload_d_inserts_extend_keyspace(self):
        clock = SimClock()
        adapter = KVAdapter(KeyValueStore(clock=clock))
        spec = CORE_WORKLOADS["D"].scaled(record_count=50,
                                          operation_count=300)
        runner = WorkloadRunner(adapter, spec, clock)
        runner.load()
        runner.run()
        assert runner.insert_counter.last_value() > 49

    def test_workload_e_scans(self):
        clock = SimClock()
        adapter = KVAdapter(KeyValueStore(clock=clock))
        spec = CORE_WORKLOADS["E"].scaled(record_count=50,
                                          operation_count=100)
        runner = WorkloadRunner(adapter, spec, clock)
        runner.load()
        report = runner.run()
        assert "scan" in report.histograms

    def test_workload_f_rmw(self):
        clock = SimClock()
        adapter = KVAdapter(KeyValueStore(clock=clock))
        spec = CORE_WORKLOADS["F"].scaled(record_count=50,
                                          operation_count=100)
        runner = WorkloadRunner(adapter, spec, clock)
        runner.load()
        report = runner.run()
        assert "rmw" in report.histograms or "read" in report.histograms

    def test_deterministic_with_seed(self):
        def run(seed):
            clock = SimClock()
            store = KeyValueStore(StoreConfig(command_cpu_cost=10e-6),
                                  clock=clock)
            spec = CORE_WORKLOADS["A"].scaled(record_count=30,
                                              operation_count=100)
            reports = load_and_run(KVAdapter(store), spec, clock,
                                   seed=seed)
            return reports["run"].throughput

        assert run(3) == run(3)

    def test_summary_shape(self):
        clock = SimClock()
        adapter = KVAdapter(KeyValueStore(clock=clock))
        spec = CORE_WORKLOADS["C"].scaled(record_count=20,
                                          operation_count=50)
        runner = WorkloadRunner(adapter, spec, clock)
        runner.load()
        summary = runner.run().summary()
        assert {"phase", "operations", "throughput_ops_per_s",
                "ops"} <= set(summary)
