"""Tests for the open-loop load generator over the event core."""

import random

import pytest

from repro.cluster import build_cluster
from repro.common.errors import ClusterError
from repro.kvstore.store import KeyValueStore, StoreConfig
from repro.ycsb import (
    ArrivalProcess,
    OpenLoopRunner,
    WORKLOAD_B,
    WORKLOAD_E,
)

CPU = 25e-6          # service ceiling = 1/CPU = 40 kops/s


def cpu_factory(index, clock):
    return KeyValueStore(StoreConfig(command_cpu_cost=CPU, seed=index),
                         clock=clock)


def run_openloop(shards=1, clients=4, rate=60_000.0, ops=300,
                 records=60, seed=42, distribution="poisson"):
    cluster = build_cluster(shards, store_factory=cpu_factory,
                            event_driven=True, latency=10e-6)
    spec = WORKLOAD_B.scaled(record_count=records, operation_count=ops)
    runner = OpenLoopRunner(cluster, spec, clients=clients,
                            arrival_rate=rate,
                            arrival_distribution=distribution, seed=seed)
    runner.preload()
    return runner.run(ops)


class TestArrivalProcess:
    def test_uniform_interarrivals_are_constant(self):
        process = ArrivalProcess(1000.0, "uniform")
        assert [process.next_interarrival() for _ in range(3)] \
            == [1e-3, 1e-3, 1e-3]

    def test_poisson_interarrivals_are_seeded(self):
        one = ArrivalProcess(1000.0, "poisson", rng=random.Random(7))
        two = ArrivalProcess(1000.0, "poisson", rng=random.Random(7))
        assert [one.next_interarrival() for _ in range(10)] \
            == [two.next_interarrival() for _ in range(10)]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ArrivalProcess(0.0)
        with pytest.raises(ValueError):
            ArrivalProcess(10.0, "bursty")


class TestOpenLoopRunner:
    def test_all_admitted_operations_complete(self):
        report = run_openloop(ops=200)
        assert report.admitted == 200
        assert report.completed == 200
        assert report.failures == 0

    def test_queue_and_service_measured_separately(self):
        report = run_openloop(clients=1, rate=60_000.0)
        # Saturated single client: ops wait in the backlog (queueing
        # delay) far longer than they spend in service.
        assert report.queue_delay.count == report.completed
        assert report.service_time.count == report.completed
        assert report.queue_delay.percentile(99) \
            > report.service_time.percentile(99)

    def test_throughput_rises_with_clients_until_ceiling(self):
        """The acceptance shape: more clients help until the shard's
        service-time ceiling, then stop helping."""
        tput = {clients: run_openloop(clients=clients).throughput
                for clients in (1, 2, 16)}
        assert tput[2] > tput[1] * 1.5
        ceiling = 1.0 / CPU
        assert tput[16] == pytest.approx(ceiling, rel=0.15)
        assert tput[16] <= ceiling * 1.01

    def test_p99_queueing_grows_past_saturation(self):
        below = run_openloop(clients=8, rate=20_000.0)
        above = run_openloop(clients=8, rate=80_000.0)
        assert above.throughput <= 1.0 / CPU * 1.01
        assert above.queue_delay.percentile(99) \
            > 10 * max(below.queue_delay.percentile(99), 1e-9)
        assert above.max_backlog > below.max_backlog

    def test_two_shards_raise_the_ceiling(self):
        one = run_openloop(shards=1, clients=16, rate=100_000.0)
        two = run_openloop(shards=2, clients=16, rate=100_000.0)
        assert two.throughput > one.throughput * 1.2

    def test_same_seed_identical_reports(self):
        one = run_openloop().summary()
        two = run_openloop().summary()
        assert one == two

    def test_same_seed_identical_event_traces(self):
        def trace():
            cluster = build_cluster(2, store_factory=cpu_factory,
                                    event_driven=True, latency=10e-6)
            out = cluster.clock.enable_trace()
            spec = WORKLOAD_B.scaled(record_count=40,
                                     operation_count=120)
            runner = OpenLoopRunner(cluster, spec, clients=4,
                                    arrival_rate=50_000.0, seed=11)
            runner.preload()
            runner.run(120)
            return out

        assert trace() == trace()

    def test_different_seeds_differ(self):
        assert run_openloop(seed=1).summary() \
            != run_openloop(seed=2).summary()

    def test_zero_operations_admits_nothing(self):
        cluster = build_cluster(1, store_factory=cpu_factory,
                                event_driven=True)
        spec = WORKLOAD_B.scaled(record_count=20, operation_count=50)
        runner = OpenLoopRunner(cluster, spec, clients=2,
                                arrival_rate=10_000.0)
        runner.preload()
        report = runner.run(0)
        assert report.admitted == 0
        assert report.completed == 0

    def test_uniform_arrivals_supported(self):
        report = run_openloop(distribution="uniform", rate=30_000.0,
                              ops=150)
        assert report.completed == 150

    def test_rejects_closed_loop_cluster(self):
        cluster = build_cluster(1)
        with pytest.raises(ClusterError):
            OpenLoopRunner(cluster, WORKLOAD_B)

    def test_rejects_scan_workloads(self):
        cluster = build_cluster(1, event_driven=True)
        with pytest.raises(ValueError):
            OpenLoopRunner(cluster, WORKLOAD_E)

    def test_inserts_extend_the_keyspace(self):
        cluster = build_cluster(1, store_factory=cpu_factory,
                                event_driven=True)
        spec = WORKLOAD_B.scaled(record_count=50, operation_count=200)
        spec = spec.__class__(**{**spec.__dict__,
                                 "name": "insert-heavy",
                                 "read_proportion": 0.5,
                                 "update_proportion": 0.0,
                                 "insert_proportion": 0.5})
        runner = OpenLoopRunner(cluster, spec, clients=4,
                                arrival_rate=50_000.0, seed=3)
        runner.preload()
        report = runner.run(200)
        assert report.completed == 200
        assert runner.insert_counter.last_value() > 50


class TestOpenLoopAcrossMigration:
    def test_load_keeps_flowing_across_a_live_migration(self):
        """Open-loop traffic follows MOVED/ASK redirects while slots
        migrate under it."""
        from repro.cluster import SlotMigrator, slot_for_key
        from repro.ycsb.generator import build_key_name

        cluster = build_cluster(2, store_factory=cpu_factory,
                                event_driven=True, latency=10e-6)
        spec = WORKLOAD_B.scaled(record_count=60, operation_count=250)
        runner = OpenLoopRunner(cluster, spec, clients=4,
                                arrival_rate=50_000.0, seed=5)
        runner.preload()
        # Migrate every slot shard 0 owns among the loaded keys to
        # shard 1, stepping as events interleaved with the run.
        slots = sorted({slot_for_key(build_key_name(n))
                        for n in range(60)})
        slots = [slot for slot in slots
                 if cluster.slots.shard_of_slot(slot) == 0][:5]
        for slot in slots:
            SlotMigrator(cluster, slot, 1).run_as_events(
                cluster.clock, batch_size=2, interval=2e-4)
        report = runner.run(250)
        assert report.completed == 250
        assert report.failures == 0
        for slot in slots:
            assert cluster.slots.shard_of_slot(slot) == 1
        assert report.redirects_followed > 0


class TestPerClientRoutingCaches:
    """Each simulated client keeps its own MOVED cache (no shared
    routing table), so divergent views re-converge one client at a
    time."""

    def _runner(self, clients=4, records=60, ops=300, seed=5):
        cluster = build_cluster(2, store_factory=cpu_factory,
                                event_driven=True, latency=10e-6)
        spec = WORKLOAD_B.scaled(record_count=records,
                                 operation_count=ops)
        runner = OpenLoopRunner(cluster, spec, clients=clients,
                                arrival_rate=50_000.0, seed=seed)
        runner.preload()
        return cluster, runner

    def test_caches_start_from_the_cluster_snapshot(self):
        cluster, runner = self._runner()
        snapshot = cluster.routing_snapshot()
        for client in runner._clients:
            assert client.routes == snapshot
            assert client.routes is not snapshot

    def _hot_slot_runner(self, clients, ops, seed=5):
        """One record => every operation targets one known slot, so
        cache convergence is deterministic per client."""
        from repro.cluster import slot_for_key
        from repro.ycsb.generator import build_key_name

        cluster, runner = self._runner(clients=clients, records=1,
                                       ops=ops, seed=seed)
        return cluster, runner, slot_for_key(build_key_name(0))

    def test_divergent_caches_converge_one_moved_per_client(self):
        from repro.cluster import SlotMigrator

        cluster, runner, slot = self._hot_slot_runner(clients=4, ops=40)
        target = 1 - cluster.slots.shard_of_slot(slot)
        # A durable topology change behind every client's back.
        SlotMigrator(cluster, slot, target).run()
        # Every client's cache is now stale for that slot.
        assert runner.divergent_clients(slot) == 4
        report = runner.run(40)
        assert report.completed == 40
        assert report.failures == 0
        # Each client absorbed exactly one MOVED of its own -- no
        # shared table taught the others.
        assert runner.divergent_clients(slot) == 0
        assert report.route_updates == 4
        assert report.route_updates == runner.route_updates
        assert report.redirects_followed >= report.route_updates

    def test_route_updates_zero_without_topology_change(self):
        _, runner = self._runner(ops=200)
        report = runner.run(200)
        assert report.route_updates == 0
        assert report.redirects_followed == 0

    def test_clients_learn_independently(self):
        """A MOVED teaches only the client that received it: with fewer
        operations than clients, the untouched clients' caches stay
        stale -- divergence strictly between 0 and N."""
        from repro.cluster import SlotMigrator

        cluster, runner, slot = self._hot_slot_runner(clients=8, ops=3,
                                                      seed=13)
        target = 1 - cluster.slots.shard_of_slot(slot)
        SlotMigrator(cluster, slot, target).run()
        assert runner.divergent_clients(slot) == 8
        report = runner.run(3)
        # Three operations reached at most three clients; at least five
        # caches never saw a MOVED and remain stale.
        assert report.route_updates == 3
        assert runner.divergent_clients(slot) == 5
