"""Tests for simulated network channels."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ChannelClosedError
from repro.net.channel import (
    PROXIED_BANDWIDTH_BPS,
    RAW_BANDWIDTH_BPS,
    Channel,
    loopback,
)


class TestDataTransfer:
    def test_send_recv(self):
        channel = loopback()
        a, b = channel.endpoints()
        a.send(b"hello")
        assert b.recv() == b"hello"

    def test_bidirectional(self):
        channel = loopback()
        a, b = channel.endpoints()
        a.send(b"ping")
        b.send(b"pong")
        assert b.recv() == b"ping"
        assert a.recv() == b"pong"

    def test_recv_empty_returns_empty(self):
        channel = loopback()
        a, _ = channel.endpoints()
        assert a.recv() == b""

    def test_messages_concatenate(self):
        channel = loopback()
        a, b = channel.endpoints()
        a.send(b"ab")
        a.send(b"cd")
        assert b.recv() == b"abcd"

    def test_recv_max_bytes(self):
        channel = loopback()
        a, b = channel.endpoints()
        a.send(b"abcdef")
        assert b.recv(4) == b"abcd"
        assert b.recv(4) == b"ef"

    def test_available(self):
        channel = loopback()
        a, b = channel.endpoints()
        a.send(b"abc")
        assert b.available == 3
        b.recv(2)
        assert b.available == 1

    def test_counters(self):
        channel = loopback()
        a, _ = channel.endpoints()
        a.send(b"12345")
        assert channel.messages == 1
        assert channel.bytes_transferred == 5


class TestClose:
    def test_send_after_close(self):
        channel = loopback()
        a, _ = channel.endpoints()
        channel.close()
        with pytest.raises(ChannelClosedError):
            a.send(b"x")

    def test_recv_drains_then_raises(self):
        channel = loopback()
        a, b = channel.endpoints()
        a.send(b"last")
        b.close()
        assert b.recv() == b"last"
        with pytest.raises(ChannelClosedError):
            b.recv()


class TestTiming:
    def test_latency_charged(self):
        clock = SimClock()
        channel = Channel(clock=clock, bandwidth_bps=1e12, latency=1e-3)
        a, _ = channel.endpoints()
        a.send(b"x")
        assert clock.now() == pytest.approx(1e-3, rel=0.01)

    def test_bandwidth_charged(self):
        clock = SimClock()
        channel = Channel(clock=clock, bandwidth_bps=1e6, latency=0.0)
        a, _ = channel.endpoints()
        a.send(b"x" * 1_000_000)
        assert clock.now() == pytest.approx(1.0)

    def test_per_message_overhead(self):
        clock = SimClock()
        channel = Channel(clock=clock, bandwidth_bps=1e12, latency=0.0,
                          per_message_overhead=5e-6)
        a, _ = channel.endpoints()
        a.send(b"x")
        a.send(b"y")
        assert clock.now() == pytest.approx(10e-6, rel=0.01)

    def test_transfer_time_prediction(self):
        channel = Channel(clock=SimClock(), bandwidth_bps=1e9,
                          latency=1e-6)
        assert channel.transfer_time(1000) == pytest.approx(
            1e-6 + 1000 / 1e9)

    def test_paper_bandwidth_constants(self):
        # 44 Gb/s raw; 4.9 Gb/s through the stunnel proxies.
        assert RAW_BANDWIDTH_BPS == pytest.approx(44e9 / 8)
        assert PROXIED_BANDWIDTH_BPS == pytest.approx(4.9e9 / 8)
        assert RAW_BANDWIDTH_BPS / PROXIED_BANDWIDTH_BPS == pytest.approx(
            44 / 4.9, rel=0.01)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Channel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            Channel(latency=-1)
