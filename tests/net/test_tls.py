"""Tests for the TLS-like secure channel and stunnel model."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import HandshakeError, IntegrityError
from repro.net.channel import loopback
from repro.net.tls import (
    TlsSession,
    establish_session_pair,
    stunnel_channel,
)


def make_pair(psk=b"shared-secret"):
    clock = SimClock()
    channel = loopback(clock)
    client, server = establish_session_pair(channel, psk, clock=clock)
    return client, server, clock, channel


class TestHandshake:
    def test_completes_with_matching_psk(self):
        client, server, _, _ = make_pair()
        assert client.handshake_complete
        assert server.handshake_complete

    def test_fails_with_mismatched_psk(self):
        clock = SimClock()
        channel = loopback(clock)
        a, b = channel.endpoints()
        client = TlsSession(a, b"alpha", is_client=True, clock=clock)
        server = TlsSession(b, b"beta", is_client=False, clock=clock)
        client.start_handshake()
        with pytest.raises(HandshakeError):
            server.respond_handshake()

    def test_server_cannot_start(self):
        clock = SimClock()
        channel = loopback(clock)
        _, b = channel.endpoints()
        server = TlsSession(b, b"psk", is_client=False, clock=clock)
        with pytest.raises(HandshakeError):
            server.start_handshake()

    def test_client_cannot_respond(self):
        clock = SimClock()
        channel = loopback(clock)
        a, _ = channel.endpoints()
        client = TlsSession(a, b"psk", is_client=True, clock=clock)
        with pytest.raises(HandshakeError):
            client.respond_handshake()

    def test_data_before_handshake_rejected(self):
        clock = SimClock()
        channel = loopback(clock)
        a, _ = channel.endpoints()
        client = TlsSession(a, b"psk", is_client=True, clock=clock)
        with pytest.raises(HandshakeError):
            client.send(b"too early")

    def test_tampered_server_hello_rejected(self):
        clock = SimClock()
        channel = loopback(clock)
        a, b = channel.endpoints()
        client = TlsSession(a, b"psk", is_client=True, clock=clock)
        server = TlsSession(b, b"psk", is_client=False, clock=clock)
        client.start_handshake()
        server.respond_handshake()
        # Intercept and corrupt the ServerHello.
        hello = bytearray(a.recv())
        hello[-1] ^= 0xFF
        a._deliver(bytes(hello))
        with pytest.raises(HandshakeError):
            client.finish_handshake()


class TestRecords:
    def test_roundtrip_both_directions(self):
        client, server, _, _ = make_pair()
        client.send(b"request")
        assert server.recv() == b"request"
        server.send(b"response")
        assert client.recv() == b"response"

    def test_wire_is_ciphertext(self):
        clock = SimClock()
        channel = loopback(clock)
        client, server = establish_session_pair(channel, b"psk",
                                                clock=clock)
        client.send(b"SECRET-MARKER-VALUE")
        raw = channel.endpoints()[1].recv()
        assert b"SECRET-MARKER-VALUE" not in raw
        # Re-deliver for the record layer to consume.
        channel.endpoints()[1]._deliver(raw)
        assert server.recv() == b"SECRET-MARKER-VALUE"

    def test_recv_when_empty(self):
        client, server, _, _ = make_pair()
        assert server.recv() == b""

    def test_recv_all_multiple_records(self):
        client, server, _, _ = make_pair()
        client.send(b"one")
        client.send(b"two")
        assert server.recv_all() == b"onetwo"

    def test_replay_detected(self):
        clock = SimClock()
        channel = loopback(clock)
        client, server = establish_session_pair(channel, b"psk",
                                                clock=clock)
        client.send(b"msg")
        raw = channel.endpoints()[1].recv()
        channel.endpoints()[1]._deliver(raw)
        assert server.recv() == b"msg"
        channel.endpoints()[1]._deliver(raw)  # replay the same record
        with pytest.raises(IntegrityError):
            server.recv()

    def test_tampered_record_rejected(self):
        clock = SimClock()
        channel = loopback(clock)
        client, server = establish_session_pair(channel, b"psk",
                                                clock=clock)
        client.send(b"msg")
        raw = bytearray(channel.endpoints()[1].recv())
        raw[-1] ^= 0x01
        channel.endpoints()[1]._deliver(bytes(raw))
        with pytest.raises(IntegrityError):
            server.recv()

    def test_crypto_charges_time(self):
        client, server, clock, _ = make_pair()
        before = clock.now()
        client.send(b"x" * 10_000)
        server.recv()
        assert clock.now() > before


class TestStunnelModel:
    def test_proxied_bandwidth_collapse(self):
        # The paper's measurement: 44 Gb/s -> 4.9 Gb/s.
        raw = loopback(SimClock())
        proxied = stunnel_channel(SimClock())
        assert proxied.bandwidth_bps < raw.bandwidth_bps / 8

    def test_proxy_overhead_positive(self):
        proxied = stunnel_channel(SimClock())
        assert proxied.per_message_overhead > 0

    def test_message_slower_through_proxy(self):
        raw = loopback(SimClock())
        proxied = stunnel_channel(SimClock())
        assert proxied.transfer_time(1024) > raw.transfer_time(1024)
