"""The docs suite is part of tier-1: drift fails the build locally,
not just in the CI docs job."""

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


def test_docs_suite_exists():
    assert (ROOT / "README.md").exists()
    for name in ("architecture.md", "cluster.md", "benchmarks.md"):
        assert (ROOT / "docs" / name).exists(), name


def test_no_drift_from_roadmap():
    assert check_docs.check(ROOT) == []


def test_canonical_command_extracted():
    command = check_docs.canonical_verify_command(ROOT)
    assert "pytest" in command


def test_drift_is_detected(tmp_path):
    """The checker is not a rubber stamp: a paraphrased verify command
    in README must be flagged."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "ROADMAP.md").write_text(
        "**Tier-1 verify:** `PYTHONPATH=src python -m pytest -x -q`\n")
    (tmp_path / "README.md").write_text(
        "```\nPYTHONPATH=. python -m pytest -q\n```\n")
    violations = check_docs.check(tmp_path)
    assert any("drifted" in v for v in violations)
    assert any("does not quote" in v for v in violations)
