"""The docs suite is part of tier-1: drift fails the build locally,
not just in the CI docs job."""

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


def test_docs_suite_exists():
    assert (ROOT / "README.md").exists()
    for name in ("architecture.md", "cluster.md", "benchmarks.md"):
        assert (ROOT / "docs" / name).exists(), name


def test_no_drift_from_roadmap():
    assert check_docs.check(ROOT) == []


def test_canonical_command_extracted():
    command = check_docs.canonical_verify_command(ROOT)
    assert "pytest" in command


def test_lost_required_section_is_detected(tmp_path):
    """Deleting the Execution model section (or the concurrency scenario
    docs) must fail the check."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "ROADMAP.md").write_text(
        "**Tier-1 verify:** `PYTHONPATH=src python -m pytest -x -q`\n")
    (tmp_path / "README.md").write_text(
        "```\nPYTHONPATH=src python -m pytest -x -q\n```\n"
        "[a](docs/architecture.md) [b](docs/benchmarks.md)\n")
    (tmp_path / "docs" / "architecture.md").write_text("# Architecture\n")
    (tmp_path / "docs" / "benchmarks.md").write_text(
        "# Benchmarks\n\n| `concurrency` | open loop |\n"
        "concurrency_hockey_stick.txt\n")
    violations = check_docs.check(tmp_path)
    assert any("Execution model" in v for v in violations)
    assert any("Storage engines" in v for v in violations)
    assert not any("`concurrency`" in v for v in violations)


def test_undocumented_bench_scenario_is_detected(tmp_path):
    """A scenario registered in the bench CLI but absent from
    docs/benchmarks.md must fail the check."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "ROADMAP.md").write_text(
        "**Tier-1 verify:** `PYTHONPATH=src python -m pytest -x -q`\n")
    (tmp_path / "README.md").write_text(
        "[b](docs/benchmarks.md)\n"
        "```\nPYTHONPATH=src python -m pytest -x -q\n```\n")
    (tmp_path / "docs" / "benchmarks.md").write_text(
        "# Benchmarks\n\n| `oldthing` | documented |\n")
    bench = tmp_path / "src" / "repro" / "bench"
    bench.mkdir(parents=True)
    (bench / "__main__.py").write_text(
        'EXPERIMENTS = {\n    "oldthing": run_old,\n'
        '    "newthing": run_new,\n}\n')
    violations = check_docs.check(tmp_path)
    assert any("newthing" in v for v in violations)
    assert not any("oldthing" in v for v in violations)


def test_registered_scenarios_parsed_from_cli():
    names = check_docs.bench_scenarios(ROOT)
    assert "concurrency" in names and "figure1" in names


def test_drift_is_detected(tmp_path):
    """The checker is not a rubber stamp: a paraphrased verify command
    in README must be flagged."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "ROADMAP.md").write_text(
        "**Tier-1 verify:** `PYTHONPATH=src python -m pytest -x -q`\n")
    (tmp_path / "README.md").write_text(
        "```\nPYTHONPATH=. python -m pytest -q\n```\n")
    violations = check_docs.check(tmp_path)
    assert any("drifted" in v for v in violations)
    assert any("does not quote" in v for v in violations)
