"""Tests for breach detection and notification (Art. 33/34)."""

import pytest

from repro.common.clock import SimClock
from repro.gdpr import (
    NOTIFICATION_DEADLINE_SECONDS,
    BreachNotifier,
    GDPRConfig,
    GDPRMetadata,
    GDPRStore,
)
from repro.kvstore import KeyValueStore, StoreConfig


def seeded_store():
    clock = SimClock()
    kv = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
    store = GDPRStore(kv=kv, config=GDPRConfig())
    for subject in ("alice", "bob"):
        store.put(f"{subject}:1", b"pii",
                  GDPRMetadata(owner=subject,
                               purposes=frozenset({"svc"})))
    return store, clock


class TestDetection:
    def test_affected_subjects_from_audit(self):
        store, clock = seeded_store()
        start = clock.now()
        store.get("alice:1")
        store.get("bob:1")
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(start, clock.now())
        assert report.affected_subjects == ["alice", "bob"]
        assert set(report.affected_keys) >= {"alice:1", "bob:1"}

    def test_window_filters_events(self):
        store, clock = seeded_store()
        store.get("alice:1")
        clock.advance(100)
        window_start = clock.now()
        store.get("bob:1")
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(window_start, clock.now())
        assert report.affected_subjects == ["bob"]

    def test_compromised_keys_narrow_blast_radius(self):
        store, clock = seeded_store()
        start = 0.0
        store.get("alice:1")
        store.get("bob:1")
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(start, clock.now(),
                                 compromised_keys={"alice:1"})
        assert report.affected_subjects == ["alice"]

    def test_high_risk_heuristic(self):
        store, clock = seeded_store()
        start = clock.now()
        store.get("alice:1")
        notifier = BreachNotifier(store.audit)
        assert notifier.detect(start, clock.now()).high_risk is True

    def test_high_risk_override(self):
        store, clock = seeded_store()
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(0.0, clock.now(), high_risk=False)
        assert report.high_risk is False

    def test_denied_operations_counted(self):
        from repro.common.errors import AccessDeniedError
        from repro.gdpr import Principal
        store, clock = seeded_store()
        start = clock.now()
        with pytest.raises(AccessDeniedError):
            store.get("alice:1", principal=Principal("attacker"))
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(start, clock.now())
        assert report.denied_in_window == 1

    def test_detection_audited(self):
        store, clock = seeded_store()
        notifier = BreachNotifier(store.audit)
        notifier.detect(0.0, clock.now())
        assert any(r.operation == "breach-detect"
                   for r in store.audit.records())

    def test_breach_ids_unique(self):
        store, clock = seeded_store()
        notifier = BreachNotifier(store.audit)
        a = notifier.detect(0.0, clock.now())
        b = notifier.detect(0.0, clock.now())
        assert a.breach_id != b.breach_id


class TestNotificationDeadline:
    def test_72_hour_deadline(self):
        assert NOTIFICATION_DEADLINE_SECONDS == 72 * 3600

    def test_notify_within_deadline(self):
        store, clock = seeded_store()
        store.get("alice:1")
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(0.0, clock.now())
        clock.advance(3600)  # one hour later
        assert notifier.notify_authority(report) is True
        assert report.deadline_met() is True

    def test_notify_past_deadline(self):
        store, clock = seeded_store()
        store.get("alice:1")
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(0.0, clock.now())
        clock.advance(NOTIFICATION_DEADLINE_SECONDS + 1)
        assert notifier.notify_authority(report) is False

    def test_deadline_unknown_before_notification(self):
        store, clock = seeded_store()
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(0.0, clock.now())
        assert report.deadline_met() is None

    def test_overdue_reports(self):
        store, clock = seeded_store()
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(0.0, clock.now())
        assert notifier.overdue_reports() == []
        clock.advance(NOTIFICATION_DEADLINE_SECONDS + 1)
        assert notifier.overdue_reports() == [report]

    def test_subject_notification_high_risk(self):
        store, clock = seeded_store()
        store.get("alice:1")
        store.get("bob:1")
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(0.0, clock.now())
        assert notifier.notify_subjects(report) == 2

    def test_subject_notification_skipped_low_risk(self):
        store, clock = seeded_store()
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(0.0, clock.now(), high_risk=False)
        assert notifier.notify_subjects(report) == 0

    def test_summary_shape(self):
        store, clock = seeded_store()
        notifier = BreachNotifier(store.audit)
        report = notifier.detect(0.0, clock.now())
        summary = report.summary()
        assert {"breach_id", "subjects", "keys", "operations",
                "denied", "high_risk", "deadline_met"} <= set(summary)
