"""Tests for subject rights (Art. 15, 17, 20, 21)."""

import json

import pytest

from repro.common.clock import SimClock
from repro.common.errors import UnknownSubjectError
from repro.gdpr import (
    GDPRConfig,
    GDPRMetadata,
    GDPRStore,
    right_of_access,
    right_to_erasure,
    right_to_object,
    right_to_portability,
)
from repro.gdpr.rights import transfer_subject
from repro.kvstore import KeyValueStore, StoreConfig, contains_key


def make_store(**gdpr_kwargs):
    clock = SimClock()
    kv = KeyValueStore(
        StoreConfig(appendonly=True, aof_log_reads=True,
                    expiry_strategy="fullscan"),
        clock=clock)
    return GDPRStore(kv=kv, config=GDPRConfig(**gdpr_kwargs))


def meta(owner="alice", purposes=("billing",), **kwargs):
    return GDPRMetadata(owner=owner, purposes=frozenset(purposes),
                        **kwargs)


def seed(store):
    store.put("alice:1", b"invoice", meta(ttl=3600.0,
                                          shared_with=frozenset({"p1"})))
    store.put("alice:2", b"profile",
              meta(purposes=("billing", "ads"), decision_making=True))
    store.put("bob:1", b"bobdata", meta(owner="bob"))


class TestRightOfAccess:
    def test_report_covers_all_records(self):
        store = make_store()
        seed(store)
        report = right_of_access(store, "alice")
        assert len(report.records) == 2
        assert {r["key"] for r in report.records} == {"alice:1", "alice:2"}

    def test_report_fields(self):
        store = make_store()
        seed(store)
        report = right_of_access(store, "alice")
        by_key = {r["key"]: r for r in report.records}
        assert by_key["alice:1"]["retention_seconds"] == 3600.0
        assert by_key["alice:1"]["recipients"] == ["p1"]
        assert report.automated_decision_keys == ["alice:2"]
        assert "billing" in report.purposes

    def test_unknown_subject(self):
        store = make_store()
        with pytest.raises(UnknownSubjectError):
            right_of_access(store, "ghost")

    def test_report_audited(self):
        store = make_store()
        seed(store)
        right_of_access(store, "alice")
        ops = [r.operation for r in store.audit.records()]
        assert "access-report" in ops

    def test_report_json_serializable(self):
        store = make_store()
        seed(store)
        parsed = json.loads(right_of_access(store, "alice").to_json())
        assert parsed["subject"] == "alice"


class TestRightToErasure:
    def test_all_keys_erased(self):
        store = make_store()
        seed(store)
        receipt = right_to_erasure(store, "alice")
        assert sorted(receipt.keys_erased) == ["alice:1", "alice:2"]
        assert store.keys_of_subject("alice") == []
        with pytest.raises(KeyError):
            store.get("alice:1")

    def test_other_subjects_untouched(self):
        store = make_store()
        seed(store)
        right_to_erasure(store, "alice")
        assert store.get("bob:1").value == b"bobdata"

    def test_crypto_erasure_performed(self):
        store = make_store()
        seed(store)
        receipt = right_to_erasure(store, "alice")
        assert receipt.crypto_erased is True
        assert "alice" not in store.keystore

    def test_aof_compacted_no_residual(self):
        store = make_store(compact_on_erasure=True)
        seed(store)
        receipt = right_to_erasure(store, "alice")
        assert receipt.log_compacted is True
        assert receipt.residual_in_aof is False
        aof = store.kv.aof_log.read_all()
        assert not contains_key(aof, b"alice:1")

    def test_without_compaction_residual_remains(self):
        store = make_store(compact_on_erasure=False)
        seed(store)
        receipt = right_to_erasure(store, "alice")
        assert receipt.log_compacted is False
        # Deleted data persists in the AOF -- the section 4.3 finding --
        # though crypto-erasure has made the ciphertext unreadable.
        assert receipt.residual_in_aof is True

    def test_unknown_subject(self):
        store = make_store()
        with pytest.raises(UnknownSubjectError):
            right_to_erasure(store, "ghost")

    def test_erasure_is_terminal_for_subject_key(self):
        store = make_store()
        seed(store)
        right_to_erasure(store, "alice")
        # Even restoring old snapshots cannot recover: key is tombstoned.
        from repro.common.errors import KeyErasedError
        with pytest.raises(KeyErasedError):
            store.keystore.get_key("alice")

    def test_duration_measured(self):
        store = make_store()
        seed(store)
        receipt = right_to_erasure(store, "alice")
        assert receipt.duration >= 0.0


class TestRightToPortability:
    def test_json_export(self):
        store = make_store()
        seed(store)
        blob = right_to_portability(store, "alice", fmt="json")
        parsed = json.loads(blob)
        assert parsed["subject"] == "alice"
        assert len(parsed["records"]) == 2
        values = {r["key"]: r["value"] for r in parsed["records"]}
        assert values["alice:1"] == "invoice"

    def test_csv_export(self):
        store = make_store()
        seed(store)
        text = right_to_portability(store, "alice", fmt="csv").decode()
        lines = text.strip().splitlines()
        assert lines[0].startswith("key,")
        assert len(lines) == 3  # header + 2 records

    def test_unsupported_format(self):
        store = make_store()
        seed(store)
        with pytest.raises(ValueError):
            right_to_portability(store, "alice", fmt="xml")

    def test_unknown_subject(self):
        store = make_store()
        with pytest.raises(UnknownSubjectError):
            right_to_portability(store, "ghost")

    def test_export_audited(self):
        store = make_store()
        seed(store)
        right_to_portability(store, "alice")
        assert any(r.operation == "export"
                   for r in store.audit.records())


class TestRightToObject:
    def test_objection_applied_to_all_records(self):
        store = make_store()
        seed(store)
        updated = right_to_object(store, "alice", "ads")
        assert updated == 2
        assert store.index.keys_for_purpose("ads") == []

    def test_objection_blocks_processing(self):
        store = make_store()
        seed(store)
        right_to_object(store, "alice", "ads")
        assert store.process_for_purpose("ads") == []

    def test_other_purposes_unaffected(self):
        store = make_store()
        seed(store)
        right_to_object(store, "alice", "ads")
        assert len(store.process_for_purpose("billing")) == 3

    def test_unknown_subject(self):
        store = make_store()
        with pytest.raises(UnknownSubjectError):
            right_to_object(store, "ghost", "ads")


class TestTransfer:
    def test_transfer_copies_records(self):
        source = make_store()
        target = make_store(node_id="node-1")
        seed(source)
        moved = transfer_subject(source, target, "alice")
        assert moved == 2
        assert target.get("alice:1").value == b"invoice"

    def test_transfer_marks_recipient(self):
        source = make_store()
        target = make_store(node_id="target-controller")
        seed(source)
        transfer_subject(source, target, "alice")
        metadata = source.get("alice:1").metadata
        assert "target-controller" in metadata.shared_with

    def test_target_enforces_own_region(self):
        from repro.common.errors import LocationViolationError
        source = make_store()
        target = make_store(node_id="us-node", region="us-east")
        seed(source)
        with pytest.raises(LocationViolationError):
            transfer_subject(source, target, "alice")
