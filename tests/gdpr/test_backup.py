"""Tests for backup generations under the right to be forgotten."""

import pytest

from repro.common.clock import SimClock
from repro.gdpr import (
    BackupManager,
    GDPRConfig,
    GDPRMetadata,
    GDPRStore,
    right_to_erasure,
)
from repro.kvstore import KeyValueStore, StoreConfig


def make_store():
    clock = SimClock()
    kv = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
    return GDPRStore(kv=kv, config=GDPRConfig()), clock


def meta(owner="alice"):
    return GDPRMetadata(owner=owner, purposes=frozenset({"svc"}))


class TestLifecycle:
    def test_take_and_find(self):
        store, _ = make_store()
        manager = BackupManager(store)
        backup = manager.take_backup("nightly")
        assert manager.find("nightly") is backup

    def test_find_missing(self):
        store, _ = make_store()
        with pytest.raises(KeyError):
            BackupManager(store).find("ghost")

    def test_generation_bound(self):
        store, _ = make_store()
        manager = BackupManager(store, max_generations=3)
        for i in range(5):
            manager.take_backup(f"b{i}")
        assert [b.label for b in manager.backups] == ["b2", "b3", "b4"]

    def test_auto_labels(self):
        store, _ = make_store()
        manager = BackupManager(store)
        assert manager.take_backup().label == "backup-0000"

    def test_backups_audited(self):
        store, _ = make_store()
        BackupManager(store).take_backup()
        assert any(r.operation == "backup"
                   for r in store.audit.records())

    def test_bad_generation_count(self):
        store, _ = make_store()
        with pytest.raises(ValueError):
            BackupManager(store, max_generations=0)


class TestRestore:
    def test_restore_roundtrip(self):
        store, _ = make_store()
        store.put("k", b"value", meta())
        manager = BackupManager(store)
        manager.take_backup("snap")
        store.delete("k")  # mutate the live store afterwards
        restored = manager.restore("snap")
        assert restored.get("k").value == b"value"
        assert restored.keys_of_subject("alice") == ["k"]

    def test_restore_cannot_resurrect_erased_subject(self):
        store, _ = make_store()
        store.put("k", b"pii", meta())
        manager = BackupManager(store)
        manager.take_backup("pre-erasure")
        right_to_erasure(store, "alice")
        restored = manager.restore("pre-erasure")
        # The ciphertext is back in the keyspace, but alice's data key is
        # tombstoned: the record is unreadable and unindexed.
        assert restored.keys_of_subject("alice") == []
        with pytest.raises(KeyError):
            restored.get("k")

    def test_restore_preserves_other_subjects(self):
        store, _ = make_store()
        store.put("a", b"alice-data", meta("alice"))
        store.put("b", b"bob-data", meta("bob"))
        manager = BackupManager(store)
        manager.take_backup("snap")
        right_to_erasure(store, "alice")
        restored = manager.restore("snap")
        assert restored.get("b").value == b"bob-data"


class TestReconciliation:
    def test_mentions_tracking(self):
        store, _ = make_store()
        store.put("k", b"pii", meta())
        manager = BackupManager(store)
        manager.take_backup("with-alice")
        store.delete("k")
        manager.take_backup("without-alice")
        assert manager.generations_mentioning("k") == ["with-alice"]

    def test_reconcile_report_only(self):
        store, _ = make_store()
        store.put("k", b"pii", meta())
        manager = BackupManager(store)
        manager.take_backup("g0")
        receipt = right_to_erasure(store, "alice")
        report = manager.reconcile_erasure("alice", receipt.keys_erased,
                                           rewrite=False)
        assert report.mentioning == ["g0"]
        assert report.rewritten == []
        assert report.residual_generations == 1
        assert report.crypto_voided is True

    def test_reconcile_with_rewrite(self):
        store, _ = make_store()
        store.put("k", b"pii", meta())
        manager = BackupManager(store)
        manager.take_backup("g0")
        receipt = right_to_erasure(store, "alice")
        report = manager.reconcile_erasure("alice", receipt.keys_erased,
                                           rewrite=True)
        assert report.rewritten == ["g0"]
        assert report.residual_generations == 0
        assert manager.generations_mentioning("k") == []

    def test_unaffected_generations_untouched(self):
        store, _ = make_store()
        store.put("bob", b"bob-data", meta("bob"))
        manager = BackupManager(store)
        manager.take_backup("bob-only")
        store.put("k", b"alice-data", meta("alice"))
        manager.take_backup("both")
        receipt = right_to_erasure(store, "alice")
        report = manager.reconcile_erasure("alice", receipt.keys_erased,
                                           rewrite=True)
        assert report.mentioning == ["both"]
        assert not manager.find("bob-only").rewritten
