"""Tests for the block-sealed audit chain (fast-GDPR mode) and the
audit-log bugfixes that ride along: the quiescent group-commit timer,
the O(1) at-risk counter, and the bounded in-memory window."""

import json

import pytest

from repro.common.clock import SimClock
from repro.common.errors import AuditError, DeviceIOError
from repro.device.append_log import AppendLog
from repro.device.latency import INTEL_750_SSD
from repro.gdpr.audit import (
    AuditBlock,
    AuditChainMode,
    AuditDurability,
    AuditLog,
)


def make_block_log(block_size=4, batch_interval=1.0, latency=None,
                   memory_window=None, auto_timer=True):
    clock = SimClock()
    backing = AppendLog(clock=clock,
                        latency=latency if latency else
                        INTEL_750_SSD.scaled(0))
    log = AuditLog(log=backing, clock=clock,
                   chain_mode=AuditChainMode.BLOCK,
                   block_size=block_size, batch_interval=batch_interval,
                   memory_window=memory_window, auto_timer=auto_timer)
    return log, clock


class TestBlockSealing:
    def test_size_threshold_seals(self):
        log, _ = make_block_log(block_size=3)
        for i in range(7):
            log.append("p", "get", key=f"k{i}")
        assert log.blocks_sealed == 2
        assert log.pending_records == 1

    def test_one_fsync_per_block(self):
        log, _ = make_block_log(block_size=4)
        for i in range(8):
            log.append("p", "get", key=f"k{i}")
        assert log.log.fsyncs == 2

    def test_interval_seals_partial_block(self):
        log, clock = make_block_log(block_size=100, batch_interval=1.0)
        log.append("p", "get")
        assert log.blocks_sealed == 0
        clock.advance(1.5)      # daemon timer fires inside the window
        assert log.blocks_sealed == 1
        assert log.pending_records == 0

    def test_quiescent_timer_needs_no_traffic(self):
        # The starvation bugfix, block-mode flavour: sealing fires from
        # the scheduler, not from the next append.
        log, clock = make_block_log(block_size=100, batch_interval=1.0)
        log.append("p", "get")
        clock.run_until_idle(deadline=5.0)
        assert log.blocks_sealed == 1

    def test_verify_durable_counts_members(self):
        log, _ = make_block_log(block_size=4)
        for i in range(8):
            log.append("p", "get", key=f"k{i}")
        assert log.verify_durable() == 8

    def test_sync_seals_pending(self):
        log, _ = make_block_log(block_size=100)
        for i in range(5):
            log.append("p", "get")
        assert log.at_risk_records() == 5
        log.sync()
        assert log.at_risk_records() == 0
        assert log.verify_durable() == 5

    def test_parse_expands_blocks(self):
        log, _ = make_block_log(block_size=2)
        log.append("p", "get", key="a")
        log.append("p", "put", key="b")
        records = AuditLog.parse(log.log.read_durable())
        assert [r.key for r in records] == ["a", "b"]

    def test_block_charges_one_fsync_cost(self):
        log, clock = make_block_log(block_size=50,
                                    latency=INTEL_750_SSD)
        before = clock.now()
        for i in range(50):
            log.append("p", "get")
        elapsed = clock.now() - before
        assert elapsed < 2 * INTEL_750_SSD.fsync


class TestBlockTamperEvidence:
    def _sealed_log(self, n=8, block_size=4):
        log, _ = make_block_log(block_size=block_size)
        for i in range(n):
            log.append("p", "get", key=f"k{i}", subject=f"s{i % 2}")
        return log

    def test_truncation_mid_block_detected(self):
        log = self._sealed_log()
        data = log.log.read_durable()
        with pytest.raises(AuditError):
            AuditLog.verify_block_bytes(data[:-10])

    def test_whole_block_truncation_detected_by_instance(self):
        # Chopping the final block leaves a valid shorter chain; the
        # instance knows how many records it sealed and flags the loss.
        log = self._sealed_log()
        lines = log.log.read_durable().splitlines(keepends=True)
        log.log._data = bytearray(b"".join(lines[:-1]))
        log.log._cached_length = len(log.log._data)
        log.log._durable_length = len(log.log._data)
        with pytest.raises(AuditError, match="sealed"):
            log.verify_durable()

    def test_tampered_member_detected(self):
        log = self._sealed_log()
        lines = log.log.read_durable().splitlines()
        envelope = json.loads(lines[0])
        body = json.loads(envelope["members"][1])
        body["key"] = "FORGED"
        envelope["members"][1] = json.dumps(
            body, sort_keys=True, separators=(",", ":"))
        forged = json.dumps(envelope, sort_keys=True,
                            separators=(",", ":")).encode() + b"\n"
        data = forged + b"\n".join(lines[1:]) + b"\n"
        with pytest.raises(AuditError, match="member digest"):
            AuditLog.verify_block_bytes(data)

    def test_tampered_header_detected(self):
        log = self._sealed_log()
        lines = log.log.read_durable().splitlines()
        envelope = json.loads(lines[0])
        envelope["sealed_at"] = 99.0
        forged = json.dumps(envelope, sort_keys=True,
                            separators=(",", ":")).encode() + b"\n"
        data = forged + b"\n".join(lines[1:]) + b"\n"
        with pytest.raises(AuditError):
            AuditLog.verify_block_bytes(data)

    def test_reordered_blocks_detected(self):
        log = self._sealed_log(n=8, block_size=4)
        lines = log.log.read_durable().splitlines(keepends=True)
        assert len(lines) == 2
        with pytest.raises(AuditError):
            AuditLog.verify_block_bytes(lines[1] + lines[0])

    def test_removed_block_detected(self):
        log = self._sealed_log(n=12, block_size=4)
        lines = log.log.read_durable().splitlines(keepends=True)
        with pytest.raises(AuditError):
            AuditLog.verify_block_bytes(lines[0] + lines[2])

    def test_crash_between_seal_and_fsync_detected(self):
        # Sealing advances the chain before the group commit; a crash in
        # the gap must not go unnoticed.
        log, _ = make_block_log(block_size=4)
        for i in range(4):
            log.append("p", "get", key=f"k{i}")
        assert log.blocks_sealed == 1

        def failing_fsync():
            raise DeviceIOError("power lost before fsync")
        log.log.fsync = failing_fsync
        with pytest.raises(DeviceIOError):
            for i in range(4):
                log.append("p", "put", key=f"x{i}")
        assert log.blocks_sealed == 2   # chain committed to block 2...
        log.log.crash(power_loss=True)  # ...which the device lost
        with pytest.raises(AuditError, match="sealed"):
            log.verify_durable()

    def test_instance_verify_covers_written_blocks(self):
        log = self._sealed_log(n=8, block_size=4)
        assert log.verify() == 8


class TestGroupCommitTimer:
    def test_batch_quiescent_log_syncs_via_timer(self):
        # The starvation bugfix proper: no append ever runs after the
        # first one, yet the at-risk records drain on the interval.
        clock = SimClock()
        log = AuditLog(log=AppendLog(clock=clock,
                                     latency=INTEL_750_SSD.scaled(0)),
                       clock=clock, durability=AuditDurability.BATCH,
                       batch_interval=1.0)
        log.append("p", "get")
        assert log.at_risk_records() == 1
        clock.run_until_idle(deadline=3.0)
        assert log.at_risk_records() == 0

    def test_timer_is_daemon(self):
        clock = SimClock()
        AuditLog(log=AppendLog(clock=clock), clock=clock,
                 durability=AuditDurability.BATCH, batch_interval=1.0)
        # Daemon events must not keep run_until_idle alive on their own.
        assert clock.pending_live_events() == 0

    def test_sync_mode_registers_no_timer(self):
        clock = SimClock()
        AuditLog(log=AppendLog(clock=clock), clock=clock,
                 durability=AuditDurability.SYNC)
        assert clock.pending_timers() == 0

    def test_stop_timer(self):
        log, clock = make_block_log(block_size=100, batch_interval=1.0)
        log.append("p", "get")
        log.stop_timer()
        clock.advance(5.0)
        assert log.blocks_sealed == 0


class TestAtRiskIncremental:
    def test_no_durable_rereads(self):
        # at_risk_records must not touch the device: O(1), not O(bytes).
        log, _ = make_block_log(block_size=2)
        for i in range(10):
            log.append("p", "get")
        reads = []
        original = log.log.read_durable
        log.log.read_durable = lambda: reads.append(1) or original()
        assert log.at_risk_records() == 0
        assert reads == []

    def test_batch_counter_tracks_fsync(self):
        clock = SimClock()
        log = AuditLog(log=AppendLog(clock=clock,
                                     latency=INTEL_750_SSD.scaled(0)),
                       clock=clock, durability=AuditDurability.BATCH,
                       batch_interval=1.0)
        for _ in range(3):
            log.append("p", "get")
        assert log.at_risk_records() == 3
        clock.advance(1.5)
        assert log.at_risk_records() == 0


class TestBoundedMemory:
    def test_window_bounds_memory(self):
        log, _ = make_block_log(block_size=4, memory_window=10)
        for i in range(50):
            log.append("p", "get", key=f"k{i}", subject=f"s{i % 5}")
        assert len(log.records()) == 10
        assert log.record_count == 50

    def test_subject_index_respects_window(self):
        log, _ = make_block_log(block_size=4, memory_window=10)
        for i in range(50):
            log.append("p", "get", key=f"k{i}", subject=f"s{i % 5}")
        alice = log.records_for_subject("s0")
        assert [r.key for r in alice] == ["k40", "k45"]

    def test_subject_index_matches_scan(self):
        log, _ = make_block_log(block_size=4)
        for i in range(30):
            log.append("p", "get", key=f"k{i}", subject=f"s{i % 3}")
        for subject in ("s0", "s1", "s2"):
            indexed = log.records_for_subject(subject)
            scanned = [r for r in log.records() if r.subject == subject]
            assert indexed == scanned

    def test_records_between_bisected(self):
        log, clock = make_block_log(block_size=100)
        for i in range(10):
            log.append("p", f"op{i}")
            clock.advance(1.0)
        window = log.records_between(2.5, 6.5)
        assert [r.operation for r in window] == ["op3", "op4", "op5",
                                                 "op6"]

    def test_checkpoint_releases_memory(self):
        log, _ = make_block_log(block_size=4)
        for i in range(20):
            log.append("p", "get", subject="alice")
        dropped = log.checkpoint()
        assert dropped == 20
        assert log.records() == []
        assert log.records_for_subject("alice") == []
        # The evidence itself is still durable and verifiable.
        assert log.verify() == 20

    def test_record_mode_window_verifies_anchored(self):
        clock = SimClock()
        log = AuditLog(log=AppendLog(clock=clock), clock=clock,
                       memory_window=5)
        for i in range(20):
            log.append("p", "get", key=f"k{i}")
        window = log.records()
        assert len(window) == 5
        assert window[0].seq == 15
        # A bounded window anchors at its first record and verifies.
        assert AuditLog.verify_chain(window) == 5
        assert log.verify() == 5


class TestBlockRoundtrip:
    def test_block_line_roundtrip(self):
        log, _ = make_block_log(block_size=2)
        log.append("p", "get", key="a")
        log.append("p", "put", key="b")
        line = log.log.read_durable().splitlines()[0]
        block = AuditBlock.from_line(line)
        assert block.count == 2
        assert block.first_seq == 0
        assert [r.key for r in block.records()] == ["a", "b"]

    def test_corrupt_block_line_raises(self):
        with pytest.raises(AuditError):
            AuditBlock.from_line(b'{"count": 1, "nope": true}')
