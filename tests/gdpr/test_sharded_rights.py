"""Cross-shard subject rights: Art. 15/20 return the union over shards,
and crypto-erasure voids a subject's records on every shard."""

import csv
import io
import json

import pytest

from repro.common.clock import SimClock
from repro.common.errors import KeyErasedError, UnknownSubjectError
from repro.cluster import ShardedGDPRStore
from repro.gdpr import GDPRMetadata


def populated_store(num_shards=4, keys_per_subject=12):
    store = ShardedGDPRStore(num_shards=num_shards, clock=SimClock())
    keys = {"alice": [], "bob": []}
    for number in range(keys_per_subject * 2):
        owner = "alice" if number % 2 == 0 else "bob"
        key = f"user:{number}"
        store.put(key, f"value-{number}".encode(),
                  GDPRMetadata(owner=owner,
                               purposes=frozenset({"billing"}),
                               decision_making=(number == 0)))
        keys[owner].append(key)
    return store, keys


class TestShardedAccess:
    def test_access_report_is_union_across_shards(self):
        store, keys = populated_store()
        # The fixture must actually span shards for the test to mean
        # anything.
        assert len(set(store.shard_for(k) for k in keys["alice"])) >= 2
        report = store.access_report("alice")
        assert sorted(entry["key"] for entry in report.records) == \
            sorted(keys["alice"])
        assert report.purposes == ["billing"]
        assert report.automated_decision_keys == ["user:0"]

    def test_unknown_subject_rejected(self):
        store, _ = populated_store()
        with pytest.raises(UnknownSubjectError):
            store.access_report("mallory")

    def test_slot_map_must_cover_shards(self):
        from repro.cluster import SlotMap
        from repro.common.errors import ClusterError
        with pytest.raises(ClusterError):
            ShardedGDPRStore(num_shards=2, slot_map=SlotMap.even(4))


class TestShardedPortability:
    def test_json_export_is_union_across_shards(self):
        store, keys = populated_store()
        document = json.loads(store.export_subject("alice", "json"))
        assert document["subject"] == "alice"
        assert sorted(row["key"] for row in document["records"]) == \
            sorted(keys["alice"])
        exported_values = {row["key"]: row["value"]
                           for row in document["records"]}
        assert exported_values["user:0"] == "value-0"

    def test_csv_export_has_every_key_and_no_others(self):
        store, keys = populated_store()
        text = store.export_subject("alice", "csv").decode("utf-8")
        rows = list(csv.DictReader(io.StringIO(text)))
        assert sorted(row["key"] for row in rows) == sorted(keys["alice"])
        assert not set(row["key"] for row in rows) & set(keys["bob"])


class TestShardedErasure:
    def test_erasure_voids_subject_on_every_shard(self):
        store, keys = populated_store()
        receipt = store.erase_subject("alice")
        assert sorted(receipt.keys_erased) == sorted(keys["alice"])
        assert set(receipt.shards_touched) == \
            set(store.shard_for(k) for k in keys["alice"])
        assert receipt.crypto_erased
        assert not receipt.residual_in_aof
        for key in keys["alice"]:
            with pytest.raises(KeyError):
                store.get(key)
        assert not store.subject_exists("alice")
        # The shared keystore tombstones the subject everywhere: even a
        # shard that never held alice's data refuses a new record for the
        # erased id.
        assert "alice" in store.keystore.erased_ids()
        with pytest.raises(KeyErasedError):
            store.put("user:999", b"new",
                      GDPRMetadata(owner="alice",
                                   purposes=frozenset({"billing"})))

    def test_other_subjects_survive_erasure(self):
        store, keys = populated_store()
        store.erase_subject("alice")
        for key in keys["bob"]:
            assert store.get(key).metadata.owner == "bob"
        assert store.keys_of_subject("bob") == sorted(keys["bob"])

    def test_audit_chains_verify_on_every_shard_after_erasure(self):
        store, _ = populated_store()
        store.erase_subject("alice")
        verified = store.verify_audit_chains()
        assert set(verified) == set(range(store.num_shards))
        assert all(count > 0 for count in verified.values())


class TestShardedObjection:
    def test_objection_applies_across_shards(self):
        store, keys = populated_store()
        updated = store.object_to_purpose("alice", "billing")
        assert updated == len(keys["alice"])
        assert store.process_for_purpose("billing") != []
        assert all(record.metadata.owner == "bob"
                   for record in store.process_for_purpose("billing"))
