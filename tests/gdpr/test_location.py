"""Tests for data-location management (Art. 46)."""

import pytest

from repro.common.errors import LocationViolationError
from repro.gdpr.location import BUILTIN_REGIONS, LocationManager, Region
from repro.gdpr.metadata import GDPRMetadata


def meta(regions=()):
    return GDPRMetadata(owner="alice", purposes=frozenset({"svc"}),
                        allowed_regions=frozenset(regions))


class TestPlacementChecks:
    def test_adequate_region_allowed_by_default(self):
        LocationManager().check_placement(meta(), "eu-west")

    def test_inadequate_region_blocked_by_default(self):
        manager = LocationManager()
        with pytest.raises(LocationViolationError):
            manager.check_placement(meta(), "us-east")
        assert manager.violations_blocked == 1

    def test_whitelist_overrides_adequacy(self):
        LocationManager().check_placement(meta(regions=("us-east",)),
                                          "us-east")

    def test_whitelist_excludes_other_regions(self):
        with pytest.raises(LocationViolationError):
            LocationManager().check_placement(meta(regions=("eu-west",)),
                                              "eu-central")

    def test_unknown_region_rejected(self):
        with pytest.raises(LocationViolationError):
            LocationManager().check_placement(meta(), "atlantis")

    def test_custom_region_registration(self):
        manager = LocationManager()
        manager.register_region(Region("ca-central", "CA", adequate=True))
        manager.check_placement(meta(), "ca-central")


class TestNodes:
    def test_place_and_lookup(self):
        manager = LocationManager()
        manager.place_node("node-1", "eu-west")
        assert manager.node_region("node-1") == "eu-west"

    def test_unplaced_node(self):
        with pytest.raises(LocationViolationError):
            LocationManager().node_region("ghost")

    def test_place_in_unknown_region(self):
        with pytest.raises(LocationViolationError):
            LocationManager().place_node("n", "atlantis")


class TestTracking:
    def test_record_locations(self):
        manager = LocationManager()
        manager.record_stored("k", "eu-west")
        manager.record_stored("k", "eu-central")
        assert manager.locations_of("k") == ["eu-central", "eu-west"]

    def test_erase_one_region(self):
        manager = LocationManager()
        manager.record_stored("k", "eu-west")
        manager.record_stored("k", "eu-central")
        manager.record_erased("k", "eu-west")
        assert manager.locations_of("k") == ["eu-central"]

    def test_erase_everywhere(self):
        manager = LocationManager()
        manager.record_stored("k", "eu-west")
        manager.record_erased("k")
        assert manager.locations_of("k") == []

    def test_erase_unknown_noop(self):
        LocationManager().record_erased("ghost")

    def test_keys_in_region(self):
        manager = LocationManager()
        manager.record_stored("a", "eu-west")
        manager.record_stored("b", "eu-west")
        manager.record_stored("c", "uk")
        assert manager.keys_in_region("eu-west") == ["a", "b"]

    def test_builtin_regions_sane(self):
        assert BUILTIN_REGIONS["eu-west"].adequate
        assert not BUILTIN_REGIONS["us-east"].adequate
