"""Tests for the metadata secondary indexes."""

from repro.gdpr.indexing import MetadataIndex
from repro.gdpr.metadata import GDPRMetadata


def meta(owner="alice", purposes=("billing",), objections=(),
         shared=(), ttl=None, created_at=0.0):
    return GDPRMetadata(owner=owner, purposes=frozenset(purposes),
                        objections=frozenset(objections),
                        shared_with=frozenset(shared), ttl=ttl,
                        created_at=created_at)


class TestOwnerIndex:
    def test_keys_of_owner(self):
        index = MetadataIndex()
        index.add("k1", meta())
        index.add("k2", meta())
        index.add("k3", meta(owner="bob"))
        assert index.keys_of_owner("alice") == ["k1", "k2"]
        assert index.keys_of_owner("bob") == ["k3"]

    def test_unknown_owner_empty(self):
        assert MetadataIndex().keys_of_owner("ghost") == []

    def test_remove_updates_owner_index(self):
        index = MetadataIndex()
        index.add("k1", meta())
        index.remove("k1")
        assert index.keys_of_owner("alice") == []

    def test_owners_listing(self):
        index = MetadataIndex()
        index.add("k1", meta(owner="zed"))
        index.add("k2", meta(owner="amy"))
        assert index.owners() == ["amy", "zed"]


class TestPurposeIndex:
    def test_keys_for_purpose(self):
        index = MetadataIndex()
        index.add("k1", meta(purposes=("billing", "ads")))
        index.add("k2", meta(purposes=("billing",)))
        assert index.keys_for_purpose("ads") == ["k1"]
        assert index.keys_for_purpose("billing") == ["k1", "k2"]

    def test_objections_excluded(self):
        index = MetadataIndex()
        index.add("k1", meta(purposes=("billing",), objections=("ads",)))
        index.add("k2", meta(purposes=("ads",)))
        assert index.keys_for_purpose("ads") == ["k2"]

    def test_reindex_after_objection_update(self):
        index = MetadataIndex()
        index.add("k1", meta(purposes=("ads",)))
        updated = index.get_metadata("k1").with_objection("ads")
        index.add("k1", updated)
        assert index.keys_for_purpose("ads") == []

    def test_purposes_listing(self):
        index = MetadataIndex()
        index.add("k1", meta(purposes=("b", "a")))
        assert index.purposes() == ["a", "b"]


class TestRecipientIndex:
    def test_keys_shared_with(self):
        index = MetadataIndex()
        index.add("k1", meta(shared=("partner",)))
        index.add("k2", meta())
        assert index.keys_shared_with("partner") == ["k1"]
        assert index.keys_shared_with("nobody") == []


class TestExpiryIndex:
    def test_expired_keys(self):
        index = MetadataIndex()
        index.add("soon", meta(ttl=10.0, created_at=0.0))
        index.add("later", meta(ttl=100.0, created_at=0.0))
        assert index.expired_keys(now=50.0) == ["soon"]
        assert index.expired_keys(now=50.0) == []  # consumed

    def test_next_deadline(self):
        index = MetadataIndex()
        index.add("a", meta(ttl=30.0, created_at=0.0))
        index.add("b", meta(ttl=10.0, created_at=0.0))
        assert index.next_deadline() == 10.0

    def test_next_deadline_skips_removed(self):
        index = MetadataIndex()
        index.add("a", meta(ttl=10.0, created_at=0.0))
        index.add("b", meta(ttl=30.0, created_at=0.0))
        index.remove("a")
        assert index.next_deadline() == 30.0

    def test_no_deadline(self):
        index = MetadataIndex()
        index.add("a", meta())
        assert index.next_deadline() is None


class TestLifecycle:
    def test_contains_and_len(self):
        index = MetadataIndex()
        index.add("k", meta())
        assert "k" in index and len(index) == 1

    def test_readd_replaces(self):
        index = MetadataIndex()
        index.add("k", meta(owner="alice"))
        index.add("k", meta(owner="bob"))
        assert index.keys_of_owner("alice") == []
        assert index.keys_of_owner("bob") == ["k"]
        assert len(index) == 1

    def test_remove_returns_metadata(self):
        index = MetadataIndex()
        m = meta()
        index.add("k", m)
        assert index.remove("k") == m
        assert index.remove("k") is None

    def test_clear(self):
        index = MetadataIndex()
        index.add("k", meta(ttl=5.0))
        index.clear()
        assert len(index) == 0
        assert index.next_deadline() is None

    def test_rebuild(self):
        index = MetadataIndex()
        index.add("old", meta())
        count = index.rebuild([("n1", meta()), ("n2", meta(owner="bob"))])
        assert count == 2
        assert "old" not in index
        assert index.keys_of_owner("alice") == ["n1"]
