"""Tests for PolicyEngine integration in GDPRStore."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import RetentionViolationError
from repro.gdpr import (
    GDPRConfig,
    GDPRMetadata,
    GDPRStore,
    PolicyEngine,
    RetentionPolicy,
)
from repro.kvstore import KeyValueStore, StoreConfig


def make_store(policies=None):
    clock = SimClock()
    kv = KeyValueStore(
        StoreConfig(appendonly=True, expiry_strategy="indexed"),
        clock=clock)
    store = GDPRStore(kv=kv, config=GDPRConfig(), policies=policies)
    return store, clock


def meta(purposes=("billing",), ttl=None):
    return GDPRMetadata(owner="alice", purposes=frozenset(purposes),
                        ttl=ttl)


class TestPutIntegration:
    def test_ttl_derived_from_policy(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 600.0))
        store, _ = make_store(engine)
        store.put("k", b"v", meta())
        assert store.get("k").metadata.ttl == 600.0
        assert 595 <= store.kv.execute("TTL", "k") <= 600

    def test_tightest_policy_wins(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 600.0))
        engine.set_policy(RetentionPolicy("ads", 60.0))
        store, _ = make_store(engine)
        store.put("k", b"v", meta(purposes=("billing", "ads")))
        assert store.get("k").metadata.ttl == 60.0

    def test_excessive_declared_ttl_rejected(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 60.0))
        store, _ = make_store(engine)
        with pytest.raises(RetentionViolationError):
            store.put("k", b"v", meta(ttl=3600.0))

    def test_no_policy_means_no_derived_ttl(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        assert store.get("k").metadata.ttl is None


class TestPolicySweep:
    def test_sweep_erases_stale_records(self):
        # Records written before a policy tightening carry stale TTLs;
        # the sweep catches them.
        store, clock = make_store()
        store.put("old", b"v", meta(ttl=10_000.0))
        store.policies.set_policy(RetentionPolicy("billing", 100.0))
        clock.advance(200.0)
        erased = store.sweep_policies()
        assert erased == ["old"]
        with pytest.raises(KeyError):
            store.get("old")

    def test_sweep_respects_legal_hold(self):
        store, clock = make_store()
        store.put("held", b"v", meta(ttl=10_000.0))
        store.policies.set_policy(RetentionPolicy("billing", 100.0))
        store.policies.place_legal_hold("held")
        clock.advance(200.0)
        assert store.sweep_policies() == []
        assert store.get("held").value == b"v"

    def test_sweep_audited(self):
        store, clock = make_store()
        store.put("old", b"v", meta(ttl=10_000.0))
        store.policies.set_policy(RetentionPolicy("billing", 100.0))
        clock.advance(200.0)
        store.sweep_policies()
        assert any(r.operation == "policy-erase"
                   for r in store.audit.records())

    def test_sweep_noop_when_compliant(self):
        store, clock = make_store()
        store.policies.set_policy(RetentionPolicy("billing", 1000.0))
        store.put("fresh", b"v", meta())
        clock.advance(10.0)
        assert store.sweep_policies() == []
