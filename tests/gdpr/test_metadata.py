"""Tests for GDPR metadata and the storage envelope."""

import pytest

from repro.common.errors import SerializationError
from repro.gdpr.metadata import GDPRMetadata, pack_envelope, unpack_envelope


def meta(**kwargs):
    defaults = dict(owner="alice", purposes=frozenset({"billing"}))
    defaults.update(kwargs)
    return GDPRMetadata(**defaults)


class TestValidation:
    def test_owner_required(self):
        with pytest.raises(ValueError):
            GDPRMetadata(owner="")

    def test_purpose_objection_overlap_rejected(self):
        with pytest.raises(ValueError):
            GDPRMetadata(owner="a", purposes=frozenset({"x"}),
                         objections=frozenset({"x"}))

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError):
            meta(ttl=0)
        with pytest.raises(ValueError):
            meta(ttl=-5)

    def test_none_ttl_allowed(self):
        assert meta(ttl=None).ttl is None


class TestPurposeLogic:
    def test_allows_declared_purpose(self):
        assert meta().allows_purpose("billing")

    def test_rejects_undeclared_purpose(self):
        assert not meta().allows_purpose("marketing")

    def test_objection_blocks_purpose(self):
        m = meta(purposes=frozenset({"billing", "ads"}))
        objected = m.with_objection("ads")
        assert not objected.allows_purpose("ads")
        assert objected.allows_purpose("billing")

    def test_with_objection_removes_from_whitelist(self):
        m = meta(purposes=frozenset({"a", "b"})).with_objection("a")
        assert m.purposes == frozenset({"b"})
        assert "a" in m.objections

    def test_with_objection_immutable(self):
        m = meta()
        m.with_objection("billing")
        assert m.allows_purpose("billing")

    def test_with_shared(self):
        m = meta().with_shared("partner-inc")
        assert "partner-inc" in m.shared_with


class TestExpiry:
    def test_expire_at_from_ttl(self):
        m = meta(ttl=100.0, created_at=50.0)
        assert m.expire_at() == 150.0

    def test_expire_at_none_without_ttl(self):
        assert meta().expire_at() is None


class TestSerialization:
    def test_dict_roundtrip(self):
        m = meta(ttl=60.0, objections=frozenset({"ads"}),
                 shared_with=frozenset({"partner"}),
                 allowed_regions=frozenset({"eu-west"}),
                 created_at=5.0, decision_making=True)
        assert GDPRMetadata.from_dict(m.to_dict()) == m

    def test_from_dict_missing_owner(self):
        with pytest.raises(SerializationError):
            GDPRMetadata.from_dict({"purposes": []})

    def test_envelope_roundtrip(self):
        m = meta()
        value = bytes(range(256))
        recovered_meta, recovered_value = unpack_envelope(
            pack_envelope(m, value))
        assert recovered_meta == m
        assert recovered_value == value

    def test_envelope_empty_value(self):
        m = meta()
        _, value = unpack_envelope(pack_envelope(m, b""))
        assert value == b""

    def test_envelope_value_with_nul_bytes(self):
        m = meta()
        value = b"\x00\x00payload\x00"
        _, recovered = unpack_envelope(pack_envelope(m, value))
        assert recovered == value

    def test_unpack_garbage(self):
        with pytest.raises(SerializationError):
            unpack_envelope(b"no-separator-here")

    def test_unpack_corrupt_header(self):
        with pytest.raises(SerializationError):
            unpack_envelope(b"{not json\x00value")
