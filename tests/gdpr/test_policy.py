"""Tests for retention policies and legal holds."""

import pytest

from repro.common.errors import RetentionViolationError
from repro.gdpr.metadata import GDPRMetadata
from repro.gdpr.policy import PolicyEngine, RetentionPolicy


def meta(purposes=("billing",), ttl=None, created_at=0.0):
    return GDPRMetadata(owner="alice", purposes=frozenset(purposes),
                        ttl=ttl, created_at=created_at)


class TestPolicyAdministration:
    def test_set_and_get(self):
        engine = PolicyEngine()
        policy = RetentionPolicy("billing", 86400.0)
        engine.set_policy(policy)
        assert engine.policy_for("billing") == policy

    def test_remove(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 1.0))
        assert engine.remove_policy("billing") is True
        assert engine.remove_policy("billing") is False

    def test_policies_sorted(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("zeta", 1.0))
        engine.set_policy(RetentionPolicy("alpha", 1.0))
        assert [p.purpose for p in engine.policies()] == ["alpha", "zeta"]

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            RetentionPolicy("x", 0.0)


class TestEffectiveRetention:
    def test_no_policy_no_ttl(self):
        assert PolicyEngine().effective_retention(meta()) is None

    def test_policy_bound_applies(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 100.0))
        assert engine.effective_retention(meta()) == 100.0

    def test_minimum_across_purposes(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 100.0))
        engine.set_policy(RetentionPolicy("ads", 10.0))
        assert engine.effective_retention(
            meta(purposes=("billing", "ads"))) == 10.0

    def test_declared_ttl_can_tighten(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 100.0))
        assert engine.effective_retention(meta(ttl=5.0)) == 5.0

    def test_default_retention_fallback(self):
        engine = PolicyEngine(default_retention=50.0)
        assert engine.effective_retention(
            meta(purposes=("unmapped",))) == 50.0


class TestValidation:
    def test_ttl_over_bound_rejected(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 10.0))
        with pytest.raises(RetentionViolationError):
            engine.validate(meta(ttl=100.0))

    def test_missing_ttl_under_policy_rejected(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 10.0))
        with pytest.raises(RetentionViolationError):
            engine.validate(meta(ttl=None))

    def test_compliant_ttl_passes(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 100.0))
        engine.validate(meta(ttl=50.0))

    def test_unmapped_purpose_unconstrained(self):
        PolicyEngine().validate(meta(purposes=("anything",), ttl=None))


class TestOverdueSweep:
    def test_overdue_detection(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 100.0))
        entries = [
            ("old", meta(created_at=0.0)),
            ("new", meta(created_at=500.0)),
        ]
        assert engine.overdue(entries, now=200.0) == ["old"]

    def test_unbounded_never_overdue(self):
        engine = PolicyEngine()
        assert engine.overdue([("k", meta())], now=1e12) == []

    def test_legal_hold_suspends_erasure(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 10.0))
        engine.place_legal_hold("held")
        entries = [("held", meta(created_at=0.0)),
                   ("free", meta(created_at=0.0))]
        assert engine.overdue(entries, now=100.0) == ["free"]

    def test_released_hold_resumes(self):
        engine = PolicyEngine()
        engine.set_policy(RetentionPolicy("billing", 10.0))
        engine.place_legal_hold("k")
        assert engine.release_legal_hold("k") is True
        assert engine.release_legal_hold("k") is False
        assert engine.overdue([("k", meta(created_at=0.0))],
                              now=100.0) == ["k"]

    def test_held_keys_listed(self):
        engine = PolicyEngine()
        engine.place_legal_hold("b")
        engine.place_legal_hold("a")
        assert engine.held_keys == ["a", "b"]
        assert engine.is_held("a")
