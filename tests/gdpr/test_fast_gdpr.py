"""Tests for the fast-GDPR mode: fused SET-with-expiry, write-behind
compliance maintenance, block-sealed audit wiring, and same-seed
determinism."""

import pytest

from repro.common.clock import SimClock
from repro.gdpr import (
    AuditChainMode,
    GDPRConfig,
    GDPRMetadata,
    GDPRStore,
)
from repro.cluster import ShardedGDPRStore
from repro.kvstore import KeyValueStore, StoreConfig
from repro.sqlstore import RelationalStore, SqlConfig


def make_fast_store(clock=None, **overrides):
    clock = clock if clock is not None else SimClock()
    kv = KeyValueStore(StoreConfig(appendonly=True, aof_log_reads=True,
                                   expiry_strategy="fullscan"),
                       clock=clock)
    config = GDPRConfig(fast_gdpr=True, audit_block_size=4,
                        writebehind_interval=0.5, **overrides)
    return GDPRStore(kv=kv, config=config), clock


def meta(owner="alice", purposes=("billing",), **kwargs):
    return GDPRMetadata(owner=owner, purposes=frozenset(purposes),
                        **kwargs)


class TestFastPath:
    def test_roundtrip(self):
        store, _ = make_fast_store()
        store.put("k", b"value", meta())
        record = store.get("k", purpose="billing")
        assert record.value == b"value"
        assert record.metadata.owner == "alice"

    def test_audit_runs_in_block_mode(self):
        store, _ = make_fast_store()
        assert store.audit.chain_mode is AuditChainMode.BLOCK

    def test_ttl_applied_inline_via_fused_set(self):
        # The KV engine speaks SET..PXAT: the deadline lands in the same
        # command as the value, nothing waits on the write-behind flush.
        store, _ = make_fast_store()
        store.put("k", b"v", meta(ttl=100.0))
        assert store._writebehind.pending == 1
        assert store.kv.execute("PTTL", "k") > 0

    def test_fused_set_expires(self):
        store, clock = make_fast_store()
        store.put("k", b"v", meta(ttl=10.0))
        clock.advance(11.0)
        store.tick()
        with pytest.raises(KeyError):
            store.get("k")

    def test_fused_set_writes_one_aof_record(self):
        store, _ = make_fast_store()
        before = store.kv.aof_log.appends
        store.put("k", b"v", meta(ttl=100.0))
        assert store.kv.aof_log.appends == before + 1

    def test_writebehind_flushes_on_timer(self):
        store, clock = make_fast_store()
        store.put("k", b"v", meta(ttl=100.0))
        assert store._writebehind.pending == 1
        clock.run_until_idle(deadline=2.0)
        assert store._writebehind.pending == 0
        assert store.locations.locations_of("k")

    def test_delete_before_flush_discards_pending(self):
        store, _ = make_fast_store()
        store.put("k", b"v", meta(ttl=100.0))
        store.delete("k")
        assert store._writebehind.pending == 0
        store._writebehind.flush()      # nothing to resurrect
        assert store.kv.execute("EXISTS", "k") == 0

    def test_rewrite_coalesces(self):
        store, _ = make_fast_store()
        for i in range(5):
            store.put("hot", str(i).encode(), meta(ttl=100.0))
        assert store._writebehind.pending == 1
        assert store._writebehind.coalesced == 4

    def test_keys_of_subject_sees_unflushed_writes(self):
        store, _ = make_fast_store()
        store.put("k1", b"v", meta())
        store.put("k2", b"v", meta())
        assert store.keys_of_subject("alice") == ["k1", "k2"]

    def test_flush_compliance_closes_window(self):
        store, _ = make_fast_store()
        for i in range(3):
            store.put(f"k{i}", b"v", meta(ttl=100.0))
        assert store.audit.at_risk_records() > 0
        store.flush_compliance()
        assert store._writebehind.pending == 0
        assert store.audit.at_risk_records() == 0
        assert store.audit.verify_durable() == store.audit.record_count

    def test_erasure_still_works(self):
        from repro.gdpr.rights import right_to_erasure
        store, _ = make_fast_store()
        store.put("k1", b"v", meta())
        store.put("k2", b"v", meta(owner="bob"))
        receipt = right_to_erasure(store, "alice")
        assert receipt.keys_erased == ["k1"]
        with pytest.raises(KeyError):
            store.get("k1")
        assert store.get("k2").value == b"v"


class TestFastPathRelational:
    def make_store(self):
        clock = SimClock()
        kv = RelationalStore(SqlConfig(wal_enabled=True), clock=clock)
        config = GDPRConfig(fast_gdpr=True, audit_block_size=4,
                            writebehind_interval=0.5)
        return GDPRStore(kv=kv, config=config), clock

    def test_ttl_deferred_until_flush(self):
        # No fused SET on the relational engine: the deadline arrives
        # with the write-behind flush, bounded by the interval.
        store, _ = self.make_store()
        store.put("k", b"v", meta(ttl=100.0))
        store._writebehind.flush()
        assert store.kv.execute("PTTL", "k") > 0

    def test_native_owner_index_current_after_flush(self):
        store, _ = self.make_store()
        store.put("k1", b"v", meta())
        # keys_of_subject flushes the write-behind set first, so the
        # engine's owner column answers correctly.
        assert store.keys_of_subject("alice") == ["k1"]


class TestShardedFastGDPR:
    def test_fast_knob_propagates(self):
        cluster = ShardedGDPRStore(num_shards=2, fast_gdpr=True)
        for shard in cluster.shards:
            assert shard.config.fast_gdpr
            assert shard.audit.chain_mode is AuditChainMode.BLOCK

    def test_verify_audit_chains_block_mode(self):
        cluster = ShardedGDPRStore(num_shards=2, fast_gdpr=True)
        for i in range(10):
            cluster.put(f"k{i}", b"v", meta(owner=f"s{i % 3}"))
        cluster.flush_compliance()
        verified = cluster.verify_audit_chains()
        assert sum(verified.values()) >= 10


class TestDeterminism:
    def _run_once(self):
        store, clock = make_fast_store()
        for i in range(20):
            store.put(f"k{i}", b"v" * 10, meta(owner=f"s{i % 4}",
                                               ttl=100.0))
            if i % 3 == 0:
                store.get(f"k{i}")
        clock.run_until_idle(deadline=5.0)
        store.flush_compliance()
        return store.audit.log.read_all(), clock.now()

    def test_same_seed_runs_byte_identical(self):
        bytes_a, now_a = self._run_once()
        bytes_b, now_b = self._run_once()
        assert bytes_a == bytes_b
        assert now_a == now_b

    def test_backend_cell_reruns_identical(self):
        from repro.bench.backends import run_backend_cell
        a = run_backend_cell("redislike", "fast-gdpr", 40, 100)
        b = run_backend_cell("redislike", "fast-gdpr", 40, 100)
        assert a.throughput == b.throughput
