"""Tests for the tamper-evident audit log."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import AuditError
from repro.device.append_log import AppendLog
from repro.device.latency import INTEL_750_SSD
from repro.gdpr.audit import AuditDurability, AuditLog, AuditRecord


def make_log(durability=AuditDurability.SYNC, batch_interval=1.0,
             latency=None):
    clock = SimClock()
    backing = AppendLog(clock=clock,
                        latency=latency if latency else
                        INTEL_750_SSD.scaled(0))
    return AuditLog(log=backing, clock=clock, durability=durability,
                    batch_interval=batch_interval), clock


class TestAppend:
    def test_sequence_numbers(self):
        log, _ = make_log()
        a = log.append("p", "get", key="k1")
        b = log.append("p", "get", key="k2")
        assert (a.seq, b.seq) == (0, 1)
        assert log.record_count == 2

    def test_record_fields(self):
        log, clock = make_log()
        clock.advance(5.0)
        record = log.append("worker", "put", key="k", subject="alice",
                            purpose="billing", outcome="ok", detail="d")
        assert record.principal == "worker"
        assert record.subject == "alice"
        assert record.timestamp >= 5.0

    def test_line_roundtrip(self):
        log, _ = make_log()
        record = log.append("p", "get", key="k", subject="s")
        parsed = AuditRecord.from_line(record.to_line().strip())
        assert parsed == record

    def test_parse_durable_bytes(self):
        log, _ = make_log()
        log.append("p", "get")
        log.append("p", "put")
        records = AuditLog.parse(log.log.read_durable())
        assert len(records) == 2

    def test_corrupt_line_raises(self):
        with pytest.raises(AuditError):
            AuditRecord.from_line(b"not json at all")


class TestChainVerification:
    def test_valid_chain_verifies(self):
        log, _ = make_log()
        for i in range(10):
            log.append("p", "get", key=f"k{i}")
        assert AuditLog.verify_chain(log.records()) == 10

    def test_empty_chain(self):
        assert AuditLog.verify_chain([]) == 0

    def test_edited_record_detected(self):
        import dataclasses
        log, _ = make_log()
        for i in range(5):
            log.append("p", "get", key=f"k{i}")
        records = log.records()
        records[2] = dataclasses.replace(records[2], key="FORGED")
        with pytest.raises(AuditError):
            AuditLog.verify_chain(records)

    def test_removed_record_detected(self):
        log, _ = make_log()
        for i in range(5):
            log.append("p", "get", key=f"k{i}")
        records = log.records()
        del records[2]
        with pytest.raises(AuditError):
            AuditLog.verify_chain(records)

    def test_reordered_records_detected(self):
        log, _ = make_log()
        for i in range(5):
            log.append("p", "get", key=f"k{i}")
        records = log.records()
        records[1], records[2] = records[2], records[1]
        with pytest.raises(AuditError):
            AuditLog.verify_chain(records)

    def test_truncated_prefix_ok_suffix_missing(self):
        # Truncating the *end* is detectable only by count, but the prefix
        # itself still verifies -- hence the seq check for gaps.
        log, _ = make_log()
        for i in range(5):
            log.append("p", "get")
        assert AuditLog.verify_chain(log.records()[:3]) == 3

    def test_verify_durable(self):
        log, _ = make_log()
        log.append("p", "get")
        assert log.verify_durable() == 1


class TestDurability:
    def test_sync_durable_immediately(self):
        log, _ = make_log(AuditDurability.SYNC)
        log.append("p", "get")
        assert log.at_risk_records() == 0

    def test_async_leaves_records_at_risk(self):
        log, _ = make_log(AuditDurability.ASYNC)
        log.append("p", "get")
        assert log.at_risk_records() == 1

    def test_batch_commits_after_interval(self):
        log, clock = make_log(AuditDurability.BATCH, batch_interval=1.0)
        log.append("p", "get")
        assert log.at_risk_records() == 1
        clock.advance(1.5)
        log.tick(clock.now())
        assert log.at_risk_records() == 0

    def test_batch_window_bounds_exposure(self):
        log, clock = make_log(AuditDurability.BATCH, batch_interval=10.0)
        for i in range(5):
            clock.advance(1.0)
            log.append("p", "get", key=f"k{i}")
            log.tick(clock.now())
        assert 0 < log.at_risk_records() <= 5

    def test_sync_charges_fsync_cost(self):
        clock = SimClock()
        backing = AppendLog(clock=clock, latency=INTEL_750_SSD)
        log = AuditLog(log=backing, clock=clock,
                       durability=AuditDurability.SYNC)
        before = clock.now()
        log.append("p", "get")
        assert clock.now() - before >= INTEL_750_SSD.fsync

    def test_batch_amortizes_fsync(self):
        sync_log, sync_clock = make_log(AuditDurability.SYNC,
                                        latency=INTEL_750_SSD)
        batch_log, batch_clock = make_log(AuditDurability.BATCH,
                                          latency=INTEL_750_SSD)
        for i in range(50):
            sync_log.append("p", "get")
            batch_log.append("p", "get")
        assert batch_clock.now() < sync_clock.now() / 5


class TestQueries:
    def test_records_for_subject(self):
        log, _ = make_log()
        log.append("p", "get", subject="alice")
        log.append("p", "get", subject="bob")
        log.append("p", "put", subject="alice")
        assert len(log.records_for_subject("alice")) == 2

    def test_records_between(self):
        log, clock = make_log()
        log.append("p", "one")
        clock.advance(10)
        log.append("p", "two")
        clock.advance(10)
        log.append("p", "three")
        window = log.records_between(5.0, 15.0)
        assert [r.operation for r in window] == ["two"]
