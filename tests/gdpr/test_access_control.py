"""Tests for the default-deny access controller."""

import pytest

from repro.common.errors import AccessDeniedError
from repro.gdpr.access_control import (
    AccessController,
    Operation,
    Principal,
)
from repro.gdpr.metadata import GDPRMetadata

META = GDPRMetadata(owner="alice", purposes=frozenset({"billing"}))


class TestDefaultDeny:
    def test_unknown_principal_denied(self):
        acl = AccessController()
        worker = Principal("worker")
        decision = acl.decide(worker, Operation.READ, META, None, 0.0)
        assert not decision.allowed

    def test_check_raises(self):
        acl = AccessController()
        with pytest.raises(AccessDeniedError):
            acl.check(Principal("worker"), Operation.READ, META, None, 0.0)

    def test_denials_counted(self):
        acl = AccessController()
        acl.decide(Principal("w"), Operation.READ, META, None, 0.0)
        assert acl.denials == 1
        assert acl.decisions == 1


class TestBypass:
    def test_controller_allowed_everything(self):
        acl = AccessController()
        controller = Principal.controller()
        for op in Operation:
            assert acl.decide(controller, op, META, None, 0.0).allowed

    def test_subject_self_access(self):
        acl = AccessController()
        alice = Principal.subject("alice")
        assert acl.decide(alice, Operation.READ, META, None, 0.0).allowed
        assert acl.decide(alice, Operation.DELETE, META, None, 0.0).allowed
        assert acl.decide(alice, Operation.EXPORT, META, None, 0.0).allowed

    def test_subject_cannot_write_via_self_access(self):
        acl = AccessController()
        alice = Principal.subject("alice")
        assert not acl.decide(alice, Operation.WRITE, META, None,
                              0.0).allowed

    def test_subject_cannot_touch_others(self):
        acl = AccessController()
        bob = Principal.subject("bob")
        assert not acl.decide(bob, Operation.READ, META, None, 0.0).allowed


class TestGrants:
    def test_direct_grant(self):
        acl = AccessController()
        acl.grant("worker", Operation.READ)
        assert acl.decide(Principal("worker"), Operation.READ, META,
                          None, 0.0).allowed

    def test_grant_scoped_to_operation(self):
        acl = AccessController()
        acl.grant("worker", Operation.READ)
        assert not acl.decide(Principal("worker"), Operation.DELETE, META,
                              None, 0.0).allowed

    def test_role_grant(self):
        acl = AccessController()
        acl.grant_role("analyst", Operation.READ)
        analyst = Principal("dave", roles=frozenset({"analyst"}))
        outsider = Principal("eve")
        assert acl.decide(analyst, Operation.READ, META, None, 0.0).allowed
        assert not acl.decide(outsider, Operation.READ, META, None,
                              0.0).allowed

    def test_purpose_scoped_grant(self):
        acl = AccessController()
        acl.grant("worker", Operation.READ, purpose="analytics")
        worker = Principal("worker")
        assert acl.decide(worker, Operation.READ, META, "analytics",
                          0.0).allowed
        assert not acl.decide(worker, Operation.READ, META, "marketing",
                              0.0).allowed
        assert not acl.decide(worker, Operation.READ, META, None,
                              0.0).allowed

    def test_unscoped_grant_matches_any_purpose(self):
        acl = AccessController()
        acl.grant("worker", Operation.READ)
        assert acl.decide(Principal("worker"), Operation.READ, META,
                          "anything", 0.0).allowed

    def test_time_boxed_grant(self):
        acl = AccessController()
        acl.grant("worker", Operation.READ, expires_at=100.0)
        worker = Principal("worker")
        assert acl.decide(worker, Operation.READ, META, None, 99.0).allowed
        assert not acl.decide(worker, Operation.READ, META, None,
                              101.0).allowed

    def test_revoke(self):
        acl = AccessController()
        grant = acl.grant("worker", Operation.READ)
        assert acl.revoke(grant) is True
        assert not acl.decide(Principal("worker"), Operation.READ, META,
                              None, 0.0).allowed
        assert acl.revoke(grant) is False

    def test_revoke_all_for(self):
        acl = AccessController()
        acl.grant("worker", Operation.READ)
        acl.grant("worker", Operation.WRITE)
        acl.grant("other", Operation.READ)
        assert acl.revoke_all_for("worker") == 2
        assert acl.grant_count == 1

    def test_prune_expired(self):
        acl = AccessController()
        acl.grant("a", Operation.READ, expires_at=10.0)
        acl.grant("b", Operation.READ)
        assert acl.prune_expired(now=20.0) == 1
        assert acl.grant_count == 1

    def test_grants_for(self):
        acl = AccessController()
        acl.grant("worker", Operation.READ)
        assert len(acl.grants_for("worker")) == 1
        assert acl.grants_for("ghost") == []
