"""Tests for the compliance spectrum and Table 1 assessment."""

from repro.common.clock import SimClock
from repro.gdpr import (
    AuditDurability,
    Capability,
    FeatureProfile,
    FeatureSupport,
    GDPRConfig,
    GDPRStore,
    ResponseTime,
    StorageFeature,
    assess,
    gdpr_store_profile,
    redis_baseline_profile,
    render_table1,
)
from repro.gdpr.articles import ALL_FEATURES, TABLE1
from repro.kvstore import KeyValueStore, StoreConfig


class TestArticlesRegistry:
    def test_thirteen_rows(self):
        assert len(TABLE1) == 13

    def test_six_features(self):
        assert len(ALL_FEATURES) == 6

    def test_article17_maps_to_deletion(self):
        art17 = next(a for a in TABLE1 if a.number == "17")
        assert art17.features == (StorageFeature.TIMELY_DELETION,)

    def test_accountability_needs_all(self):
        art52 = next(a for a in TABLE1 if a.name == "Accountability")
        assert art52.needs_all_features

    def test_breach_articles_need_monitoring(self):
        row = next(a for a in TABLE1 if a.number == "33,34")
        assert StorageFeature.MONITORING in row.features


class TestBaselineProfile:
    def test_matches_paper_characterization(self):
        profile = redis_baseline_profile()
        assert profile.get(
            StorageFeature.MONITORING).capability is Capability.FULL
        assert profile.get(
            StorageFeature.INDEXING).capability is Capability.FULL
        assert profile.get(
            StorageFeature.LOCATION).capability is Capability.FULL
        assert profile.get(StorageFeature.TIMELY_DELETION
                           ).capability is Capability.PARTIAL
        assert profile.get(StorageFeature.ACCESS_CONTROL
                           ).capability is Capability.NONE
        assert profile.get(
            StorageFeature.ENCRYPTION).capability is Capability.NONE

    def test_baseline_not_strict(self):
        assert not redis_baseline_profile().strict

    def test_baseline_fails_security_articles(self):
        assessment = assess(redis_baseline_profile())
        art25 = next(v for v in assessment.verdicts
                     if v.article.number == "25")
        assert not art25.compliant
        assert "access control" in art25.missing
        assert "encryption" in art25.missing


class TestAssessment:
    def test_weakest_link_rule(self):
        profile = FeatureProfile(name="partial", support={
            feature: FeatureSupport(Capability.FULL,
                                    ResponseTime.REAL_TIME)
            for feature in ALL_FEATURES
        })
        profile.support[StorageFeature.ENCRYPTION] = FeatureSupport(
            Capability.PARTIAL, ResponseTime.REAL_TIME)
        assessment = assess(profile)
        art32 = next(v for v in assessment.verdicts
                     if v.article.number == "32")
        assert art32.capability is Capability.PARTIAL

    def test_fully_supported_profile_is_strict(self):
        profile = FeatureProfile(name="ideal", support={
            feature: FeatureSupport(Capability.FULL,
                                    ResponseTime.REAL_TIME)
            for feature in ALL_FEATURES
        })
        assessment = assess(profile)
        assert assessment.strict
        assert assessment.articles_strict == 13
        assert assessment.articles_compliant == 13

    def test_empty_profile_fails_everything(self):
        assessment = assess(FeatureProfile(name="nothing"))
        assert assessment.articles_compliant == 0

    def test_eventual_response_breaks_strictness(self):
        profile = FeatureProfile(name="slow", support={
            feature: FeatureSupport(Capability.FULL,
                                    ResponseTime.EVENTUAL)
            for feature in ALL_FEATURES
        })
        assessment = assess(profile)
        assert assessment.articles_compliant == 13
        assert assessment.articles_strict == 0


class TestDerivedProfiles:
    def make_store(self, appendfsync="always", expiry="indexed",
                   durability=AuditDurability.SYNC, encrypt=True):
        kv = KeyValueStore(
            StoreConfig(appendonly=True, appendfsync=appendfsync,
                        aof_log_reads=True, expiry_strategy=expiry),
            clock=SimClock())
        return GDPRStore(kv=kv, config=GDPRConfig(
            encrypt_at_rest=encrypt, audit_durability=durability))

    def test_strict_store_assesses_strict(self):
        profile = gdpr_store_profile(self.make_store())
        assert assess(profile).strict

    def test_lazy_expiry_demotes_deletion_to_eventual(self):
        profile = gdpr_store_profile(self.make_store(expiry="lazy"))
        support = profile.get(StorageFeature.TIMELY_DELETION)
        assert support.response is ResponseTime.EVENTUAL
        assert not assess(profile).strict

    def test_batched_audit_demotes_monitoring(self):
        profile = gdpr_store_profile(
            self.make_store(durability=AuditDurability.BATCH))
        assert profile.get(StorageFeature.MONITORING
                           ).response is ResponseTime.EVENTUAL

    def test_no_tls_demotes_encryption(self):
        profile = gdpr_store_profile(self.make_store(),
                                     tls_enabled=False)
        assert profile.get(StorageFeature.ENCRYPTION
                           ).capability is Capability.PARTIAL


class TestRendering:
    def test_plain_table_has_all_rows(self):
        text = render_table1()
        assert "Right to be forgotten" in text
        assert "Timely Deletion" in text
        assert len(text.splitlines()) == 15  # header + rule + 13 rows

    def test_comparison_columns(self):
        text = render_table1([redis_baseline_profile()])
        assert "redis-4.0-unmodified" in text
        assert "none/" in text  # encryption rows show the gap
