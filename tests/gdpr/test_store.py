"""Tests for the GDPRStore facade."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    AccessDeniedError,
    LocationViolationError,
    PurposeViolationError,
    UnknownSubjectError,
)
from repro.gdpr import (
    AuditDurability,
    GDPRConfig,
    GDPRMetadata,
    GDPRStore,
    Operation,
    Principal,
)
from repro.kvstore import KeyValueStore, StoreConfig


def make_store(clock=None, kv_config=None, **gdpr_kwargs):
    clock = clock if clock is not None else SimClock()
    kv_config = kv_config if kv_config is not None else StoreConfig(
        appendonly=True, aof_log_reads=True, expiry_strategy="fullscan")
    kv = KeyValueStore(kv_config, clock=clock)
    return GDPRStore(kv=kv, config=GDPRConfig(**gdpr_kwargs)), clock


def meta(owner="alice", purposes=("billing",), **kwargs):
    return GDPRMetadata(owner=owner, purposes=frozenset(purposes),
                        **kwargs)


class TestPutGet:
    def test_roundtrip(self):
        store, _ = make_store()
        store.put("k", b"value", meta())
        record = store.get("k", purpose="billing")
        assert record.value == b"value"
        assert record.metadata.owner == "alice"

    def test_get_without_purpose(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        assert store.get("k").value == b"v"

    def test_get_missing_key(self):
        store, _ = make_store()
        with pytest.raises(KeyError):
            store.get("missing")

    def test_purpose_not_declared_rejected(self):
        store, _ = make_store()
        store.put("k", b"v", meta(purposes=("billing",)))
        with pytest.raises(PurposeViolationError):
            store.get("k", purpose="marketing")

    def test_put_requires_declared_purpose(self):
        store, _ = make_store()
        with pytest.raises(PurposeViolationError):
            store.put("k", b"v", meta(purposes=()))

    def test_put_without_purpose_allowed_when_configured(self):
        store, _ = make_store(require_purpose=False)
        store.put("k", b"v", meta(purposes=()))
        assert store.get("k").value == b"v"

    def test_created_at_stamped(self):
        store, clock = make_store()
        clock.advance(42.0)
        store.put("k", b"v", meta())
        assert store.get("k").metadata.created_at == pytest.approx(42.0)

    def test_default_ttl_applied(self):
        store, _ = make_store(default_ttl=600.0)
        store.put("k", b"v", meta())
        assert store.get("k").metadata.ttl == 600.0

    def test_values_encrypted_at_rest(self):
        store, _ = make_store()
        store.put("k", b"SECRET-MARKER", meta())
        raw = store.kv.execute("GET", "k")
        assert b"SECRET-MARKER" not in raw

    def test_plaintext_mode(self):
        store, _ = make_store(encrypt_at_rest=False)
        store.put("k", b"SECRET-MARKER", meta())
        raw = store.kv.execute("GET", "k")
        assert b"SECRET-MARKER" in raw


class TestAccessControl:
    def test_unknown_principal_denied_read(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        with pytest.raises(AccessDeniedError):
            store.get("k", principal=Principal("stranger"))

    def test_denied_access_audited(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        with pytest.raises(AccessDeniedError):
            store.get("k", principal=Principal("stranger"))
        denied = [r for r in store.audit.records()
                  if r.outcome == "denied"]
        assert len(denied) == 1
        assert denied[0].principal == "stranger"

    def test_granted_principal_allowed(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        store.access.grant("worker", Operation.READ, purpose="billing")
        record = store.get("k", principal=Principal("worker"),
                           purpose="billing")
        assert record.value == b"v"

    def test_subject_reads_own_data(self):
        store, _ = make_store()
        store.put("k", b"v", meta(owner="alice"))
        record = store.get("k", principal=Principal.subject("alice"))
        assert record.value == b"v"

    def test_subject_cannot_read_others(self):
        store, _ = make_store()
        store.put("k", b"v", meta(owner="alice"))
        with pytest.raises(AccessDeniedError):
            store.get("k", principal=Principal.subject("bob"))

    def test_write_denied_for_unknown(self):
        store, _ = make_store()
        with pytest.raises(AccessDeniedError):
            store.put("k", b"v", meta(), principal=Principal("stranger"))


class TestDelete:
    def test_delete_removes(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        assert store.delete("k") is True
        with pytest.raises(KeyError):
            store.get("k")

    def test_delete_missing(self):
        store, _ = make_store()
        assert store.delete("missing") is False

    def test_delete_updates_index(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        store.delete("k")
        assert store.keys_of_subject("alice") == []

    def test_delete_records_erasure_event(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        store.delete("k")
        assert len(store.erasure_events) == 1
        event = store.erasure_events[0]
        assert event.subject == "alice"
        assert event.reason == "del"


class TestTTLIntegration:
    def test_ttl_becomes_store_expiry(self):
        store, _ = make_store()
        store.put("k", b"v", meta(ttl=100.0))
        assert 99 <= store.kv.execute("TTL", "k") <= 100

    def test_expired_record_erased_by_cron(self):
        store, clock = make_store()
        store.put("k", b"v", meta(ttl=10.0))
        clock.advance(11)
        store.tick()
        with pytest.raises(KeyError):
            store.get("k")
        assert len(store.erasure_events) == 1
        assert store.erasure_events[0].reason == "active-expire"

    def test_erasure_lateness_tracked(self):
        store, clock = make_store()
        store.put("k", b"v", meta(ttl=10.0))
        clock.advance(25)
        store.tick()
        event = store.erasure_events[0]
        assert event.lateness == pytest.approx(15.0, abs=1.0)

    def test_erasure_report(self):
        store, clock = make_store()
        store.put("a", b"v", meta(ttl=10.0))
        store.put("b", b"v", meta(owner="bob", ttl=10.0))
        clock.advance(12)
        store.tick()
        report = store.erasure_report()
        assert report["events"] == 2.0
        assert report["with_deadline"] == 2.0
        assert report["max_lateness"] >= 0.0

    def test_system_erasure_audited(self):
        store, clock = make_store()
        store.put("k", b"v", meta(ttl=5.0))
        clock.advance(6)
        store.tick()
        ops = [r.operation for r in store.audit.records()]
        assert "expire-erase" in ops


class TestGroupAccess:
    def test_process_for_purpose(self):
        store, _ = make_store()
        store.put("k1", b"1", meta(purposes=("ads", "billing")))
        store.put("k2", b"2", meta(owner="bob", purposes=("billing",)))
        records = store.process_for_purpose("billing")
        assert sorted(r.key for r in records) == ["k1", "k2"]
        assert [r.key for r in store.process_for_purpose("ads")] == ["k1"]

    def test_keys_of_subject(self):
        store, _ = make_store()
        store.put("k1", b"1", meta())
        store.put("k2", b"2", meta(owner="bob"))
        assert store.keys_of_subject("alice") == ["k1"]

    def test_require_subject(self):
        store, _ = make_store()
        with pytest.raises(UnknownSubjectError):
            store.require_subject("ghost")


class TestLocationEnforcement:
    def test_put_blocked_in_disallowed_region(self):
        store, _ = make_store(region="us-east")
        with pytest.raises(LocationViolationError):
            store.put("k", b"v", meta())

    def test_put_allowed_when_whitelisted(self):
        store, _ = make_store(region="us-east")
        store.put("k", b"v", meta(allowed_regions=frozenset({"us-east"})))
        assert store.locations.locations_of("k") == ["us-east"]

    def test_location_tracked_and_cleared(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        assert store.locations.locations_of("k") == ["eu-west"]
        store.delete("k")
        assert store.locations.locations_of("k") == []


class TestUpdateMetadata:
    def test_update_reindexes(self):
        store, _ = make_store()
        store.put("k", b"v", meta(purposes=("ads",)))
        new_meta = store.get("k").metadata.with_objection("ads")
        store.update_metadata("k", new_meta)
        assert store.index.keys_for_purpose("ads") == []
        with pytest.raises(PurposeViolationError):
            store.get("k", purpose="ads")

    def test_update_preserves_value(self):
        store, _ = make_store()
        store.put("k", b"original", meta())
        store.update_metadata("k", meta(purposes=("billing", "new")))
        assert store.get("k").value == b"original"


class TestRebuildIndexes:
    def test_rebuild_from_keyspace(self):
        store, _ = make_store()
        store.put("k1", b"1", meta())
        store.put("k2", b"2", meta(owner="bob"))
        store.index.clear()
        assert store.keys_of_subject("alice") == []
        count = store.rebuild_indexes()
        assert count == 2
        assert store.keys_of_subject("alice") == ["k1"]
        assert store.keys_of_subject("bob") == ["k2"]

    def test_rebuild_plaintext_mode(self):
        store, _ = make_store(encrypt_at_rest=False)
        store.put("k1", b"1", meta())
        store.index.clear()
        assert store.rebuild_indexes() == 1

    def test_rebuild_skips_crypto_erased(self):
        store, _ = make_store()
        store.put("k1", b"1", meta())
        store.keystore.erase_key("alice")
        store.index.clear()
        assert store.rebuild_indexes() == 0


class TestAudit:
    def test_every_interaction_audited(self):
        store, _ = make_store()
        store.put("k", b"v", meta())
        store.get("k")
        store.delete("k")
        ops = [r.operation for r in store.audit.records()]
        assert ops.count("put") == 1
        assert ops.count("get") == 1
        assert ops.count("delete") == 1

    def test_pseudonymized_audit(self):
        store, _ = make_store(pseudonymize_audit=True)
        store.put("k", b"v", meta())
        record = store.audit.records()[0]
        assert record.subject != "alice"
        assert store.pseudonymizer.reidentify(record.subject) == "alice"
