"""Property-based tests over the tiered keyspace: hot-only equivalence
under random op/demote interleavings, bloom soundness, measured FP rate,
and no-resurrection of erased subjects across crashes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimClock
from repro.crypto.keystore import KeyStore
from repro.device.append_log import AppendLog
from repro.kvstore.store import KeyValueStore, StoreConfig
from repro.tiering import TieredEngine, TieringConfig
from repro.tiering.bloom import BloomFilter
from repro.tiering.segment import ColdInput, ColdSegmentStore

KEYS = [b"k0", b"k1", b"k2", b"k3", b"k4"]
VALUES = [b"v0", b"v1", b"v2"]

tier_ops = st.lists(
    st.one_of(
        st.tuples(st.just("SET"), st.sampled_from(KEYS),
                  st.sampled_from(VALUES)),
        st.tuples(st.just("GET"), st.sampled_from(KEYS)),
        st.tuples(st.just("DEL"), st.sampled_from(KEYS)),
        st.tuples(st.just("EXPIRE"), st.sampled_from(KEYS),
                  st.integers(1, 50)),
        st.tuples(st.just("advance"), st.integers(1, 30)),
        st.tuples(st.just("demote"),),
        st.tuples(st.just("tick"),),
    ),
    max_size=40)


def _make_tiered(clock):
    # appendfsync=always: the crash properties assert exact state
    # preservation, which needs every hot command durable (everysec
    # legitimately loses its fsync window).
    inner = KeyValueStore(
        StoreConfig(appendonly=True, appendfsync="always"),
        clock=clock, aof_log=AppendLog(clock=clock))
    return TieredEngine(inner, tiering=TieringConfig(
        auto_demote=False, segment_max_records=3))


def _drive(engine, ops, tiered):
    replies = []
    for op in ops:
        if op[0] == "advance":
            engine.clock.advance(op[1])
        elif op[0] == "demote":
            if tiered:
                engine.demote_keys(engine.inner.live_keys(0))
        elif op[0] == "tick":
            engine.tick()
        else:
            replies.append(engine.execute(*op))
    return replies


@given(tier_ops)
@settings(max_examples=50, deadline=None)
def test_tiered_equals_hot_only_under_random_ops(ops):
    """Any op sequence with demotions interleaved at arbitrary points
    observes exactly what a hot-only engine observes."""
    hot = KeyValueStore(StoreConfig(appendonly=True,
                                    appendfsync="always"),
                        clock=SimClock())
    tiered = _make_tiered(SimClock())
    hot_replies = _drive(hot, ops, tiered=False)
    tiered_replies = _drive(tiered, ops, tiered=True)
    assert tiered_replies == hot_replies
    hot_final = sorted((r.key, r.value, r.expire_at)
                       for r in hot.scan_records())
    tiered_final = sorted((r.key, r.value, r.expire_at)
                          for r in tiered.scan_records())
    assert tiered_final == hot_final
    assert tiered.execute("DBSIZE") == hot.execute("DBSIZE")


@given(tier_ops)
@settings(max_examples=30, deadline=None)
def test_crash_recovery_preserves_tiered_state(ops):
    """AOF replay plus cold-device recovery reconstruct the pre-crash
    keyspace: nothing hot is lost, nothing deleted resurrects."""
    clock = SimClock()
    engine = _make_tiered(clock)
    _drive(engine, ops, tiered=True)
    before = sorted((r.key, r.value) for r in engine.scan_records())
    # Crash: rebuild a fresh hot engine from the AOF bytes and a fresh
    # cold index from the cold device bytes.
    engine.aof_log.crash(power_loss=True)
    engine.cold.device.crash(power_loss=True)
    recovered_inner = KeyValueStore(StoreConfig(appendonly=True),
                                    clock=clock,
                                    aof_log=AppendLog(clock=clock))
    recovered = TieredEngine(recovered_inner,
                             device=engine.cold.device,
                             tiering=engine.tiering)
    recovered.replay_aof(engine.aof_log.read_all())
    after = sorted((r.key, r.value) for r in recovered.scan_records())
    assert after == before


@given(st.sets(st.binary(min_size=1, max_size=12), min_size=1,
               max_size=40),
       st.integers(1, 5))
@settings(max_examples=50, deadline=None)
def test_sealed_keys_never_bloom_false_negative(keys, per_segment):
    """A sealed, untombstoned key is always bloom-visible."""
    store = ColdSegmentStore(device=AppendLog(clock=SimClock()))
    ordered = sorted(keys)
    for start in range(0, len(ordered), per_segment):
        batch = ordered[start:start + per_segment]
        store.seal([ColdInput(k, b"v", None, None) for k in batch],
                   sealed_at=0.0)
    for key in ordered:
        assert store.may_contain(key)
        assert store.lookup(key) is not None


def test_bloom_fp_rate_stays_under_configured_bound():
    """At full capacity the measured FP rate stays below the configured
    bound (the sizing targets half the bound as headroom)."""
    for fp_rate in (0.01, 0.05):
        bloom = BloomFilter.for_capacity(2000, fp_rate)
        bloom.update(b"member-%d" % i for i in range(2000))
        trials = 50_000
        hits = sum(1 for i in range(trials)
                   if b"absent-%d" % i in bloom)
        assert hits / trials < fp_rate


erasure_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 5),
                  st.sampled_from(["alice", "bob"])),
        st.tuples(st.just("demote"),),
        st.tuples(st.just("get"), st.integers(0, 5)),
        st.tuples(st.just("crash"),),
    ),
    max_size=25)


@given(erasure_ops)
@settings(max_examples=30, deadline=None)
def test_erased_subject_never_readable_from_any_tier(ops):
    """After Art. 17 reaches the engine (hot DELs + cold subject marker
    + keystore erasure), no interleaving of demotions, promotions, and
    crashes makes any of the subject's values readable again."""
    clock = SimClock()
    keystore = KeyStore()
    engine = _make_tiered(clock)
    engine.attach_keystore(keystore)
    owners = {}

    def run(engine, op):
        if op[0] == "put":
            key, owner = f"r:{op[1]}", op[2]
            engine.execute("SET", key, b"secret-" + owner.encode())
            engine.annotate_metadata(key, owner, [])
            owners[key.encode()] = owner
        elif op[0] == "demote":
            engine.demote_keys(engine.inner.live_keys(0))
        elif op[0] == "get":
            engine.execute("GET", f"r:{op[1]}")
        elif op[0] == "crash":
            engine.aof_log.crash(power_loss=True)
            engine.cold.device.crash(power_loss=True)
            inner = KeyValueStore(
                StoreConfig(appendonly=True, appendfsync="always"),
                clock=clock, aof_log=AppendLog(clock=clock))
            replacement = TieredEngine(inner, device=engine.cold.device,
                                       tiering=engine.tiering,
                                       keystore=keystore)
            replacement.replay_aof(engine.aof_log.read_all())
            for key, owner in owners.items():
                replacement.annotate_metadata(key.decode(), owner, [])
            return replacement
        return engine

    for op in ops:
        engine = run(engine, op)
    # Erase alice: the GDPR facade's sequence, at engine level.
    alice_keys = [k for k, o in owners.items() if o == "alice"]
    for key in alice_keys:
        engine.execute("DEL", key)
    engine.erase_subject_cold("alice")
    keystore.erase_key("alice")
    # No interleaving of crash/demote/promote brings anything back.
    for op in ops + [("crash",), ("demote",), ("crash",)]:
        if op[0] == "put":
            continue                      # no new writes post-erasure
        engine = run(engine, op)
    for key in alice_keys:
        assert engine.execute("GET", key) is None, key
        assert not engine.has_live_key(key)
    assert engine.cold_keys_of_subject("alice") == []
    assert all(b"secret-alice" != r.value for r in engine.scan_records())
