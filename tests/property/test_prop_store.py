"""Property-based tests over store-level invariants: AOF replay
equivalence, index consistency, and expiry-strategy agreement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimClock
from repro.gdpr import GDPRConfig, GDPRMetadata, GDPRStore
from repro.kvstore import KeyValueStore, StoreConfig

KEYS = [b"k0", b"k1", b"k2", b"k3"]
VALUES = [b"v0", b"v1", b"v2"]

kv_ops = st.lists(
    st.one_of(
        st.tuples(st.just("SET"), st.sampled_from(KEYS),
                  st.sampled_from(VALUES)),
        st.tuples(st.just("DEL"), st.sampled_from(KEYS)),
        st.tuples(st.just("APPEND"), st.sampled_from(KEYS),
                  st.sampled_from(VALUES)),
        st.tuples(st.just("HSET"), st.sampled_from(KEYS),
                  st.sampled_from(VALUES), st.sampled_from(VALUES)),
        st.tuples(st.just("EXPIRE"), st.sampled_from(KEYS),
                  st.integers(1, 1000)),
    ),
    max_size=30)


def state_of(store):
    db = store.databases[0]
    return {key: db.get_value(key) for key in sorted(db.keys())}


@given(kv_ops)
@settings(max_examples=40, deadline=None)
def test_aof_replay_reaches_identical_state(ops):
    """Replaying the AOF reconstructs exactly the pre-crash dataset."""
    clock = SimClock()
    store = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
    for op in ops:
        try:
            store.execute(*op)
        except Exception:
            pass  # type conflicts (HSET on string) are fine to skip
    replayed = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
    replayed.replay_aof(store.aof_log.read_all())
    assert state_of(replayed) == state_of(store)
    # Expiry deadlines match too (propagated as absolute PEXPIREAT).
    assert {k: round(v, 3) for k, v in
            store.databases[0].expires.items()} == \
        {k: round(v, 3) for k, v in
         replayed.databases[0].expires.items()}


@given(kv_ops)
@settings(max_examples=40, deadline=None)
def test_rewrite_preserves_state(ops):
    """BGREWRITEAOF never changes the dataset it compacts."""
    store = KeyValueStore(StoreConfig(appendonly=True))
    for op in ops:
        try:
            store.execute(*op)
        except Exception:
            pass
    before = state_of(store)
    store.rewrite_aof()
    replayed = KeyValueStore(StoreConfig(appendonly=True),
                             clock=store.clock)
    replayed.replay_aof(store.aof_log.read_all())
    assert state_of(replayed) == before


gdpr_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(["a", "b", "c"]),
                  st.sampled_from(["alice", "bob"]),
                  st.frozensets(st.sampled_from(["billing", "ads"]),
                                min_size=1)),
        st.tuples(st.just("delete"), st.sampled_from(["a", "b", "c"])),
    ),
    max_size=25)


@given(gdpr_ops)
@settings(max_examples=30, deadline=None)
def test_gdpr_index_matches_keyspace(ops):
    """The owner index always agrees with live keyspace contents."""
    store = GDPRStore(
        kv=KeyValueStore(StoreConfig(appendonly=True)),
        config=GDPRConfig(encrypt_at_rest=False))
    model = {}
    for op in ops:
        if op[0] == "put":
            _, key, owner, purposes = op
            store.put(key, b"v", GDPRMetadata(owner=owner,
                                              purposes=purposes))
            model[key] = owner
        else:
            _, key = op
            store.delete(key)
            model.pop(key, None)
    for owner in ("alice", "bob"):
        expected = sorted(k for k, o in model.items() if o == owner)
        assert store.keys_of_subject(owner) == expected
    # Every indexed key is readable; every unindexed key is gone.
    for key in ("a", "b", "c"):
        if key in model:
            assert store.get(key).metadata.owner == model[key]
        else:
            try:
                store.get(key)
                assert False, f"{key} should be gone"
            except KeyError:
                pass


@given(st.integers(10, 300), st.floats(0.05, 0.9),
       st.sampled_from(["fullscan", "indexed"]))
@settings(max_examples=20, deadline=None)
def test_immediate_strategies_erase_everything_first_cycle(
        total, fraction, strategy):
    """Both fixed strategies erase all expired keys in one cron pass."""
    store = KeyValueStore(StoreConfig(expiry_strategy=strategy))
    db = store.databases[0]
    now = store.clock.now()
    expired = int(total * fraction)
    for i in range(total):
        key = f"k{i}".encode()
        db.set_value(key, b"v")
        deadline = now - 1 if i < expired else now + 1000
        store.set_key_expiry(db, key, deadline)
    assert store.cron() == expired
    assert len(db) == total - expired
