"""Property: replicas converge to exactly the primary's state."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimClock
from repro.kvstore import KeyValueStore, ReplicationManager, StoreConfig

KEYS = [b"a", b"b", b"c"]
VALS = [b"1", b"2"]

ops = st.lists(
    st.one_of(
        st.tuples(st.just("SET"), st.sampled_from(KEYS),
                  st.sampled_from(VALS)),
        st.tuples(st.just("DEL"), st.sampled_from(KEYS)),
        st.tuples(st.just("APPEND"), st.sampled_from(KEYS),
                  st.sampled_from(VALS)),
        st.tuples(st.just("INCR"), st.just(b"counter")),
        st.tuples(st.just("EXPIRE"), st.sampled_from(KEYS),
                  st.integers(1, 100)),
        st.tuples(st.just("SADD"), st.just(b"set"),
                  st.sampled_from(VALS)),
        st.tuples(st.just("HSET"), st.just(b"hash"),
                  st.sampled_from(KEYS), st.sampled_from(VALS)),
    ),
    max_size=40)


def state_of(store):
    db = store.databases[0]
    return ({key: db.get_value(key) for key in sorted(db.keys())},
            {k: round(v, 6) for k, v in db.expires.items()})


@given(ops, st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_replica_converges_to_primary(op_list, delay):
    clock = SimClock()
    primary = KeyValueStore(StoreConfig(), clock=clock)
    manager = ReplicationManager(primary)
    link = manager.add_replica("r", delay=delay)
    for op in op_list:
        try:
            primary.execute(*op)
        except Exception:
            pass  # type conflicts are legitimate no-ops
    clock.advance(delay + 0.001)
    manager.pump()
    assert state_of(link.replica) == state_of(primary)


@given(ops)
@settings(max_examples=25, deadline=None)
def test_two_replicas_identical(op_list):
    clock = SimClock()
    primary = KeyValueStore(StoreConfig(), clock=clock)
    manager = ReplicationManager(primary)
    a = manager.add_replica("a", delay=0.0)
    b = manager.add_replica("b", delay=0.5)
    for op in op_list:
        try:
            primary.execute(*op)
        except Exception:
            pass
    clock.advance(1.0)
    manager.pump()
    assert state_of(a.replica) == state_of(b.replica)
