"""Property-based tests (hypothesis) over the core invariants."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import fnv1a_64
from repro.common.histogram import LatencyHistogram
from repro.common.resp import decode_all, encode, encode_command
from repro.crypto.cipher import KEY_SIZE, AuthenticatedCipher, StreamCipher
from repro.gdpr.audit import AuditLog
from repro.gdpr.metadata import GDPRMetadata, pack_envelope, unpack_envelope
from repro.kvstore.datatypes import ZSet

# -- strategies -------------------------------------------------------------------

keys32 = st.binary(min_size=KEY_SIZE, max_size=KEY_SIZE)
payloads = st.binary(max_size=2048)
identifiers = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1, max_size=16)


# -- RESP codec ---------------------------------------------------------------------

resp_scalars = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.binary(max_size=512),
    st.none(),
)
resp_values = st.recursive(
    resp_scalars,
    lambda children: st.lists(children, max_size=8),
    max_leaves=25)


@given(resp_values)
def test_resp_roundtrip(value):
    assert decode_all(encode(value)) == [value]


@given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                max_size=8))
def test_resp_command_roundtrip(args):
    decoded = decode_all(encode_command(*args))
    assert decoded == [args]


@given(st.lists(resp_values, max_size=6), st.integers(1, 7))
def test_resp_incremental_decode_any_chunking(values, chunk):
    from repro.common.resp import RespDecoder

    blob = b"".join(encode(v) for v in values)
    decoder = RespDecoder()
    out = []
    for i in range(0, len(blob), chunk):
        decoder.feed(blob[i:i + chunk])
        out.extend(decoder.drain())
    assert out == values


# -- crypto -----------------------------------------------------------------------


@given(keys32, payloads, st.binary(max_size=64))
def test_seal_open_roundtrip(key, plaintext, aad):
    cipher = AuthenticatedCipher(key)
    assert cipher.open(cipher.seal(plaintext, aad=aad), aad=aad) == \
        plaintext


@given(keys32, payloads, st.integers(0, 5000))
@settings(max_examples=30)
def test_tampering_always_detected(key, plaintext, position):
    import pytest

    from repro.common.errors import IntegrityError

    cipher = AuthenticatedCipher(key)
    token = bytearray(cipher.seal(plaintext))
    token[position % len(token)] ^= 0x5A
    with pytest.raises(IntegrityError):
        cipher.open(bytes(token))


@given(keys32, st.binary(min_size=16, max_size=16), payloads)
def test_stream_cipher_involution(key, nonce, data):
    cipher = StreamCipher(key)
    assert cipher.transform(cipher.transform(data, nonce), nonce) == data


# -- metadata envelope ---------------------------------------------------------------


metadata_strategy = st.builds(
    GDPRMetadata,
    owner=identifiers,
    purposes=st.frozensets(identifiers, max_size=4),
    objections=st.just(frozenset()),
    ttl=st.one_of(st.none(), st.floats(min_value=0.001, max_value=1e9,
                                       allow_nan=False)),
    origin=identifiers,
    shared_with=st.frozensets(identifiers, max_size=3),
    allowed_regions=st.frozensets(identifiers, max_size=3),
    created_at=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    decision_making=st.booleans(),
)


@given(metadata_strategy, payloads)
def test_envelope_roundtrip(metadata, value):
    recovered_meta, recovered_value = unpack_envelope(
        pack_envelope(metadata, value))
    assert recovered_meta == metadata
    assert recovered_value == value


# -- audit chain ---------------------------------------------------------------------


@given(st.lists(st.tuples(identifiers, identifiers), min_size=1,
                max_size=20))
def test_audit_chain_always_verifies(operations):
    log = AuditLog()
    for principal, op in operations:
        log.append(principal, op, key="k")
    assert AuditLog.verify_chain(log.records()) == len(operations)


@given(st.lists(st.tuples(identifiers, identifiers), min_size=2,
                max_size=10),
       st.integers(0, 9), st.data())
@settings(max_examples=30)
def test_audit_edit_always_detected(operations, index, data):
    import dataclasses

    import pytest

    from repro.common.errors import AuditError

    log = AuditLog()
    for principal, op in operations:
        log.append(principal, op)
    records = log.records()
    victim = index % len(records)
    records[victim] = dataclasses.replace(records[victim],
                                          principal="FORGED")
    with pytest.raises(AuditError):
        AuditLog.verify_chain(records)


# -- ZSet vs reference model -----------------------------------------------------------


@given(st.lists(st.tuples(st.sampled_from([b"a", b"b", b"c", b"d", b"e"]),
                          st.one_of(st.floats(-100, 100,
                                              allow_nan=False),
                                    st.none())),
                max_size=40))
def test_zset_matches_reference_model(ops):
    zset = ZSet()
    model = {}
    for member, score in ops:
        if score is None:
            zset.remove(member)
            model.pop(member, None)
        else:
            zset.add(member, score)
            model[member] = score
    assert len(zset) == len(model)
    expected = [m for _, m in sorted(
        ((s, m) for m, s in model.items()))]
    assert zset.range_by_score(float("-inf"), float("inf")) == expected
    for member, score in model.items():
        assert zset.score(member) == score


# -- histogram --------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=1e-9, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=200))
def test_histogram_percentile_bounds(samples):
    hist = LatencyHistogram(relative_error=0.01)
    hist.record_many(samples)
    p50 = hist.percentile(50)
    assert hist.min() * 0.97 <= p50 <= hist.max() * 1.03
    assert hist.percentile(100) >= max(samples) * 0.97
    assert hist.count == len(samples)


# -- fnv ----------------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_fnv_stays_in_64_bits(value):
    assert 0 <= fnv1a_64(value) < 2**64
