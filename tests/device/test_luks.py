"""Tests for the LUKS-style encrypted volume."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import CryptoError
from repro.device.block_device import SimulatedBlockDevice
from repro.device.latency import ZERO
from repro.device.luks import SECTOR_SIZE, LuksVolume


def make_volume(capacity=1 << 16, passphrase=b"secret"):
    device = SimulatedBlockDevice(capacity, latency=ZERO)
    return LuksVolume(device, passphrase, kdf_iterations=10), device


class TestIO:
    def test_roundtrip(self):
        volume, _ = make_volume()
        volume.write(100, b"personal data")
        assert volume.read(100, 13) == b"personal data"

    def test_cross_sector_write(self):
        volume, _ = make_volume()
        payload = b"z" * (SECTOR_SIZE * 2 + 37)
        volume.write(SECTOR_SIZE - 10, payload)
        assert volume.read(SECTOR_SIZE - 10, len(payload)) == payload

    def test_read_modify_write_preserves_neighbors(self):
        volume, _ = make_volume()
        volume.write(0, b"A" * SECTOR_SIZE)
        volume.write(10, b"BBB")
        assert volume.read(0, 10) == b"A" * 10
        assert volume.read(10, 3) == b"BBB"
        assert volume.read(13, 10) == b"A" * 10

    def test_underlying_device_holds_ciphertext(self):
        volume, device = make_volume()
        volume.write(0, b"PLAINTEXT-MARKER")
        raw = device.read(0, SECTOR_SIZE)
        assert b"PLAINTEXT-MARKER" not in raw

    def test_empty_write_and_read(self):
        volume, _ = make_volume()
        volume.write(0, b"")
        assert volume.read(0, 0) == b""

    def test_capacity_exposed(self):
        volume, device = make_volume()
        assert volume.capacity == device.capacity

    def test_crypto_charges_time(self):
        clock = SimClock()
        device = SimulatedBlockDevice(1 << 16, clock=clock, latency=ZERO)
        volume = LuksVolume(device, b"p", kdf_iterations=10)
        volume.write(0, b"x" * SECTOR_SIZE)
        assert clock.now() > 0.0


class TestKeySlots:
    def test_lock_blocks_io(self):
        volume, _ = make_volume()
        volume.write(0, b"data")
        volume.lock()
        assert not volume.unlocked
        with pytest.raises(CryptoError):
            volume.read(0, 4)
        with pytest.raises(CryptoError):
            volume.write(0, b"x")

    def test_unlock_restores_access(self):
        volume, _ = make_volume(passphrase=b"secret")
        volume.write(0, b"data")
        volume.lock()
        volume.unlock(b"secret")
        assert volume.read(0, 4) == b"data"

    def test_wrong_passphrase_rejected(self):
        volume, _ = make_volume(passphrase=b"secret")
        volume.lock()
        with pytest.raises(CryptoError):
            volume.unlock(b"wrong")

    def test_second_keyslot(self):
        volume, _ = make_volume(passphrase=b"first")
        volume.write(0, b"data")
        volume.add_keyslot(b"second")
        assert volume.keyslot_count == 2
        volume.lock()
        volume.unlock(b"second")
        assert volume.read(0, 4) == b"data"

    def test_revoke_keyslot(self):
        volume, _ = make_volume(passphrase=b"first")
        slot = volume.add_keyslot(b"second")
        volume.revoke_keyslot(slot)
        volume.lock()
        with pytest.raises(CryptoError):
            volume.unlock(b"second")
        volume.unlock(b"first")

    def test_cannot_revoke_last_slot(self):
        volume, _ = make_volume()
        with pytest.raises(CryptoError):
            volume.revoke_keyslot(0)

    def test_revoke_unknown_slot(self):
        volume, _ = make_volume()
        with pytest.raises(CryptoError):
            volume.revoke_keyslot(42)

    def test_add_slot_while_locked_rejected(self):
        volume, _ = make_volume()
        volume.lock()
        with pytest.raises(CryptoError):
            volume.add_keyslot(b"new")

    def test_shred_is_crypto_erasure(self):
        volume, _ = make_volume(passphrase=b"secret")
        volume.write(0, b"sensitive")
        volume.shred()
        assert volume.keyslot_count == 0
        with pytest.raises(CryptoError):
            volume.unlock(b"secret")
