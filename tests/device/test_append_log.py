"""Tests for the append-only log's durability frontiers."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DeviceIOError
from repro.device.append_log import AppendLog
from repro.device.block_device import FaultInjector
from repro.device.latency import INTEL_750_SSD


class TestFrontiers:
    def test_append_is_buffered(self):
        log = AppendLog()
        log.append(b"record1")
        assert log.total_length == 7
        assert log.cached_length == 0
        assert log.durable_length == 0

    def test_flush_advances_cache(self):
        log = AppendLog()
        log.append(b"record1")
        moved = log.flush()
        assert moved == 7
        assert log.cached_length == 7
        assert log.durable_length == 0

    def test_fsync_advances_durable(self):
        log = AppendLog()
        log.append(b"r")
        log.flush()
        log.fsync()
        assert log.durable_length == 1

    def test_invariant_ordering(self):
        log = AppendLog()
        log.append(b"aaa")
        log.flush()
        log.append(b"bbb")
        assert log.durable_length <= log.cached_length <= log.total_length

    def test_flush_empty_returns_zero(self):
        log = AppendLog()
        assert log.flush() == 0

    def test_pending_counters(self):
        log = AppendLog()
        log.append(b"abcd")
        assert log.unflushed_bytes == 4
        log.flush()
        assert log.unflushed_bytes == 0
        assert log.unsynced_bytes == 4
        log.fsync()
        assert log.unsynced_bytes == 0


class TestCrash:
    def test_power_loss_keeps_only_durable(self):
        log = AppendLog()
        log.append(b"AAAA")
        log.flush_and_fsync()
        log.append(b"BBBB")
        log.flush()
        log.append(b"CCCC")
        log.crash(power_loss=True)
        assert log.read_all() == b"AAAA"

    def test_process_crash_keeps_page_cache(self):
        log = AppendLog()
        log.append(b"AAAA")
        log.flush_and_fsync()
        log.append(b"BBBB")
        log.flush()
        log.append(b"CCCC")
        log.crash(power_loss=False)
        assert log.read_all() == b"AAAABBBB"

    def test_views(self):
        log = AppendLog()
        log.append(b"AAAA")
        log.flush_and_fsync()
        log.append(b"BBBB")
        log.flush()
        log.append(b"CCCC")
        assert log.read_all() == b"AAAABBBBCCCC"
        assert log.read_cached() == b"AAAABBBB"
        assert log.read_durable() == b"AAAA"

    def test_corrupt_tail(self):
        log = AppendLog()
        log.append(b"ABCDEFGH")
        log.corrupt_tail(2)
        assert log.read_all()[:6] == b"ABCDEF"
        assert log.read_all()[6:] != b"GH"

    def test_corrupt_tail_bounds(self):
        log = AppendLog()
        log.append(b"AB")
        with pytest.raises(DeviceIOError):
            log.corrupt_tail(5)
        with pytest.raises(DeviceIOError):
            log.corrupt_tail(0)


class TestTimingAndReplace:
    def test_fsync_charges_device_cost(self):
        clock = SimClock()
        log = AppendLog(clock=clock, latency=INTEL_750_SSD)
        log.append(b"x")
        log.flush()
        before = clock.now()
        log.fsync()
        assert clock.now() - before == pytest.approx(INTEL_750_SSD.fsync)

    def test_append_free_flush_charged(self):
        clock = SimClock()
        log = AppendLog(clock=clock, latency=INTEL_750_SSD)
        log.append(b"x" * 100)
        assert clock.now() == 0.0
        log.flush()
        assert clock.now() == pytest.approx(
            INTEL_750_SSD.write_cost(100))

    def test_replace_is_durable(self):
        log = AppendLog()
        log.append(b"old-old-old")
        log.flush_and_fsync()
        log.replace(b"new")
        log.crash(power_loss=True)
        assert log.read_all() == b"new"
        assert log.durable_length == 3

    def test_fault_injection_on_flush(self):
        faults = FaultInjector()
        log = AppendLog(faults=faults)
        log.append(b"x")
        faults.fail_after(0)
        with pytest.raises(DeviceIOError):
            log.flush()
        # Data stays in the application buffer, retry succeeds.
        assert log.flush() == 1

    def test_counters(self):
        log = AppendLog()
        log.append(b"a")
        log.append(b"b")
        log.flush_and_fsync()
        assert log.appends == 2
        assert log.syscalls == 1
        assert log.fsyncs == 1
