"""Tests for latency models."""

import pytest

from repro.device.latency import (
    HDD,
    INTEL_750_SSD,
    NVM,
    PRESETS,
    ZERO,
    LatencyModel,
)


class TestCosts:
    def test_write_cost_includes_per_byte(self):
        assert INTEL_750_SSD.write_cost(1000) == pytest.approx(
            INTEL_750_SSD.write_syscall + 1000 * INTEL_750_SSD.per_byte_write)

    def test_read_cost(self):
        assert HDD.read_cost(0) == HDD.read_syscall

    def test_zero_model_is_free(self):
        assert ZERO.write_cost(1 << 20) == 0.0
        assert ZERO.read_cost(1 << 20) == 0.0
        assert ZERO.fsync == 0.0

    def test_scaled(self):
        double = INTEL_750_SSD.scaled(2.0)
        assert double.fsync == pytest.approx(2 * INTEL_750_SSD.fsync)
        assert double.write_syscall == pytest.approx(
            2 * INTEL_750_SSD.write_syscall)

    def test_scaled_name(self):
        assert INTEL_750_SSD.scaled(2.0, name="fast").name == "fast"
        assert "x2" in INTEL_750_SSD.scaled(2.0).name


class TestPresetOrdering:
    def test_fsync_ordering_matches_technology(self):
        # Section 5.1: NVM persistence barriers are far cheaper than SSD
        # fsync, which is far cheaper than a disk rotation.
        assert NVM.fsync < INTEL_750_SSD.fsync < HDD.fsync

    def test_nvm_fsync_is_microseconds(self):
        assert NVM.fsync < 10e-6

    def test_hdd_fsync_is_milliseconds(self):
        assert HDD.fsync >= 1e-3

    def test_presets_registry(self):
        assert PRESETS["intel-750-ssd"] is INTEL_750_SSD
        assert set(PRESETS) == {"intel-750-ssd", "hdd-7200rpm",
                                "nvm-3dxpoint", "zero"}

    def test_model_frozen(self):
        with pytest.raises(AttributeError):
            INTEL_750_SSD.fsync = 0.0  # type: ignore[misc]
