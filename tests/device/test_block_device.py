"""Tests for the simulated block device and fault injection."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DeviceFullError, DeviceIOError
from repro.device.block_device import FaultInjector, SimulatedBlockDevice
from repro.device.latency import INTEL_750_SSD, ZERO


class TestBasicIO:
    def test_write_read_roundtrip(self):
        dev = SimulatedBlockDevice(1024)
        dev.write(10, b"hello")
        assert dev.read(10, 5) == b"hello"

    def test_unwritten_reads_zero(self):
        dev = SimulatedBlockDevice(64)
        assert dev.read(0, 4) == b"\x00" * 4

    def test_overwrite(self):
        dev = SimulatedBlockDevice(64)
        dev.write(0, b"aaaa")
        dev.write(2, b"bb")
        assert dev.read(0, 4) == b"aabb"

    def test_write_beyond_capacity(self):
        dev = SimulatedBlockDevice(8)
        with pytest.raises(DeviceFullError):
            dev.write(5, b"toolong")

    def test_read_beyond_capacity(self):
        dev = SimulatedBlockDevice(8)
        with pytest.raises(DeviceIOError):
            dev.read(5, 10)

    def test_negative_offset(self):
        dev = SimulatedBlockDevice(8)
        with pytest.raises(DeviceFullError):
            dev.write(-1, b"x")

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SimulatedBlockDevice(0)

    def test_counters(self):
        dev = SimulatedBlockDevice(64)
        dev.write(0, b"abcd")
        dev.read(0, 2)
        dev.flush()
        counters = dev.snapshot_counters()
        assert counters["writes"] == 1
        assert counters["reads"] == 1
        assert counters["flushes"] == 1
        assert counters["bytes_written"] == 4
        assert counters["bytes_read"] == 2


class TestDurability:
    def test_crash_loses_unflushed(self):
        dev = SimulatedBlockDevice(64)
        dev.write(0, b"data")
        dev.crash()
        assert dev.read(0, 4) == b"\x00" * 4

    def test_flush_makes_durable(self):
        dev = SimulatedBlockDevice(64)
        dev.write(0, b"data")
        dev.flush()
        dev.crash()
        assert dev.read(0, 4) == b"data"

    def test_partial_durability(self):
        dev = SimulatedBlockDevice(64)
        dev.write(0, b"aaaa")
        dev.flush()
        dev.write(0, b"bbbb")
        assert dev.durable_read(0, 4) == b"aaaa"
        dev.crash()
        assert dev.read(0, 4) == b"aaaa"

    def test_durable_read_bounds(self):
        dev = SimulatedBlockDevice(8)
        with pytest.raises(DeviceIOError):
            dev.durable_read(0, 100)


class TestLatencyAccounting:
    def test_write_charges_time(self):
        clock = SimClock()
        dev = SimulatedBlockDevice(1024, clock=clock,
                                   latency=INTEL_750_SSD)
        dev.write(0, b"x" * 100)
        expected = INTEL_750_SSD.write_cost(100)
        assert clock.now() == pytest.approx(expected)

    def test_flush_charges_fsync(self):
        clock = SimClock()
        dev = SimulatedBlockDevice(1024, clock=clock,
                                   latency=INTEL_750_SSD)
        dev.flush()
        assert clock.now() == pytest.approx(INTEL_750_SSD.fsync)

    def test_zero_model_free(self):
        clock = SimClock()
        dev = SimulatedBlockDevice(1024, clock=clock, latency=ZERO)
        dev.write(0, b"x" * 100)
        dev.flush()
        assert clock.now() == 0.0


class TestFaultInjection:
    def test_countdown_fault(self):
        faults = FaultInjector()
        faults.fail_after(1)
        dev = SimulatedBlockDevice(64, faults=faults)
        dev.write(0, b"ok")
        with pytest.raises(DeviceIOError):
            dev.write(0, b"boom")
        dev.write(0, b"recovered")  # one-shot

    def test_immediate_fault(self):
        faults = FaultInjector()
        faults.fail_after(0)
        dev = SimulatedBlockDevice(64, faults=faults)
        with pytest.raises(DeviceIOError):
            dev.write(0, b"x")

    def test_failed_write_leaves_data_untouched(self):
        faults = FaultInjector()
        dev = SimulatedBlockDevice(64, faults=faults)
        dev.write(0, b"good")
        faults.fail_after(0)
        with pytest.raises(DeviceIOError):
            dev.write(0, b"bad!")
        assert dev.read(0, 4) == b"good"

    def test_probabilistic_deterministic_by_seed(self):
        outcomes = []
        for _ in range(2):
            faults = FaultInjector(probability=0.5, seed=99)
            results = []
            for _ in range(20):
                try:
                    faults.check()
                    results.append(True)
                except DeviceIOError:
                    results.append(False)
            outcomes.append(results)
        assert outcomes[0] == outcomes[1]
        assert not all(outcomes[0])

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            FaultInjector(probability=1.5)

    def test_negative_countdown(self):
        with pytest.raises(ValueError):
            FaultInjector().fail_after(-1)
