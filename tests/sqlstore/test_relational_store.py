"""Relational-engine specifics: plan cache, B-tree costs, ordered
scans, metadata columns, WAL checkpointing, vacuum."""

import pytest

from repro.common.clock import SimClock
from repro.device.append_log import AppendLog
from repro.sqlstore import RelationalStore, SqlConfig, btree_depth
from repro.ycsb.adapters import SqlAdapter


def make_store(clock=None, **overrides):
    clock = clock if clock is not None else SimClock()
    config = SqlConfig(**overrides)
    return RelationalStore(config, clock=clock,
                           wal_log=AppendLog(clock=clock))


def test_plan_cache_charges_parse_once():
    store = make_store(statement_parse_cost=100e-6,
                      statement_plan_cost=50e-6,
                      statement_cpu_cost=10e-6)
    clock = store.clock
    start = clock.now()
    store.execute("SET", "a", "1")
    first = clock.now() - start
    start = clock.now()
    store.execute("SET", "b", "2")
    second = clock.now() - start
    # First SET paid parse+plan (150us) + exec; the second only exec.
    assert first - second == pytest.approx(150e-6)
    assert store.plans.misses >= 1
    assert store.plans.hits >= 1


def test_btree_depth_grows_logarithmically():
    assert btree_depth(1, 128) == 1
    assert btree_depth(100, 128) == 2
    assert btree_depth(10_000, 128) == 3
    assert btree_depth(1_000_000, 128) == 4


def test_point_lookup_cost_grows_with_table_size():
    small = make_store(index_node_cost=1e-6, btree_fanout=4)
    big = make_store(index_node_cost=1e-6, btree_fanout=4)
    small.execute("SET", "k0", "v")
    for number in range(300):
        big.execute("SET", f"k{number}", "v")

    def read_cost(store, key):
        start = store.clock.now()
        store.execute("GET", key)
        return store.clock.now() - start

    assert read_cost(big, "k0") > read_cost(small, "k0")


def test_range_scan_is_ordered_and_respects_limit():
    store = make_store()
    for number in (3, 1, 4, 1, 5, 9, 2, 6):
        store.execute("SET", f"user{number}", b"x")
    assert store.execute("RANGE", "user2", 3) == \
        [b"user2", b"user3", b"user4"]
    # Expired rows drop out of the window.
    store.execute("EXPIRE", "user3", 1)
    store.clock.advance(2)
    assert store.execute("RANGE", "user2", 3) == \
        [b"user2", b"user4", b"user5"]


def test_sql_adapter_scan_needs_no_shadow_index():
    store = make_store()
    adapter = SqlAdapter(store)
    for number in range(10):
        adapter.insert(f"user{number:02d}", {"f0": b"v"})
    window = adapter.scan("user03", 4)
    assert len(window) == 4
    # No auxiliary key was created for scan support.
    assert store.key_count() == 10


def test_metadata_columns_and_owner_index():
    store = make_store()
    store.execute("SET", "u1", "x")
    store.execute("SET", "u2", "y")
    store.annotate_metadata("u1", "alice", {"service", "ads"})
    store.annotate_metadata("u2", "bob", {"service"})
    assert store.keys_of_owner("alice") == ["u1"]
    assert store.table.get(b"u1").purposes == "ads,service"
    # Re-annotation moves the row between owner buckets.
    store.annotate_metadata("u1", "bob", {"service"})
    assert store.keys_of_owner("alice") == []
    assert store.keys_of_owner("bob") == ["u1", "u2"]
    # Deleting the row cleans the index.
    store.execute("DEL", "u1")
    assert store.keys_of_owner("bob") == ["u2"]


def test_metadata_columns_replicate_and_replay():
    store = make_store()
    store.execute("SET", "u1", "x")
    store.annotate_metadata("u1", "alice", {"service"})
    replica = store.spawn_replica()
    replica.replay_aof(store.aof_log.read_all())
    assert replica.keys_of_owner("alice") == ["u1"]
    # And survive a checkpointed (compacted) WAL too.
    store.rewrite_aof()
    replica2 = store.spawn_replica()
    replica2.replay_aof(store.aof_log.read_all())
    assert replica2.keys_of_owner("alice") == ["u1"]


def test_snapshot_preserves_metadata_columns():
    store = make_store()
    store.execute("SET", "u1", "x")
    store.annotate_metadata("u1", "alice", {"service"})
    replica = store.spawn_replica()
    replica.load_snapshot(store.save_snapshot())
    assert replica.keys_of_owner("alice") == ["u1"]


def test_vacuum_reclaims_due_rows_in_one_sweep():
    store = make_store()
    for number in range(5):
        store.execute("SET", f"k{number}", "v")
        store.execute("EXPIRE", f"k{number}", 1)
    store.execute("SET", "keeper", "v")
    store.clock.advance(2)
    reclaimed = store.vacuum()
    assert reclaimed == 5
    assert store.vacuum_runs == 1
    assert store.key_count() == 1
    assert store.stats.expired_keys == 5


def test_wal_fsync_everysec_batches_durability():
    clock = SimClock()
    store = make_store(clock=clock, wal_fsync="everysec")
    store.execute("SET", "a", "1")
    assert store.aof_log.unsynced_bytes > 0    # flushed, not yet durable
    clock.advance(1.1)
    store.tick()
    assert store.aof_log.unsynced_bytes == 0


def test_periodic_checkpoint_bounds_deleted_data():
    clock = SimClock()
    store = make_store(clock=clock, checkpoint_interval=5.0)
    store.execute("SET", "gone", "x")
    store.execute("DEL", "gone")
    from repro.kvstore.aof import contains_key
    assert contains_key(store.aof_log.read_all(), b"gone")
    clock.advance(6)
    store.tick()
    assert store.rewrites_completed == 1
    assert not contains_key(store.aof_log.read_all(), b"gone")


def test_crash_replay_from_durable_wal_only():
    clock = SimClock()
    store = make_store(clock=clock, wal_fsync="always")
    store.execute("SET", "a", "1")
    store.execute("HSET", "b", "f", "2")
    store.aof_log.crash(power_loss=True)
    recovered = make_store()
    recovered.replay_aof(store.aof_log.read_durable())
    assert recovered.execute("GET", "a") == b"1"
    assert recovered.execute("HGET", "b", "f") == b"2"


def test_single_database_discipline():
    from repro.common.resp import RespError

    store = make_store()
    with pytest.raises(RespError):
        store.execute("SELECT", 1)
    session = store.session(db_index=3)
    with pytest.raises(RespError):
        store.execute("SET", "k", "v", session=session)


def test_unknown_statement_rejected():
    from repro.common.resp import RespError

    store = make_store()
    with pytest.raises(RespError, match="unknown command"):
        store.execute("ZADD", "z", 1, "m")
