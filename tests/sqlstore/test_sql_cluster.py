"""The relational engine under the full stack: RESP cluster, slot
migration, GDPR rights fan-out, replication groups, and the open-loop
driver -- the "same GDPR, cluster, and YCSB stack" half of the
multi-backend claim."""

import pytest

from repro.cluster import (
    ShardedGDPRStore,
    SlotMigrator,
    build_cluster,
    slot_for_key,
)
from repro.common.clock import Clock, SimClock
from repro.gdpr.metadata import GDPRMetadata
from repro.sqlstore import RelationalStore, SqlConfig
from repro.ycsb.openloop import OpenLoopRunner
from repro.ycsb.workloads import WORKLOAD_B


def sql_factory(index: int, clock: Clock) -> RelationalStore:
    return RelationalStore(SqlConfig(seed=index), clock=clock)


def meta(owner: str) -> GDPRMetadata:
    return GDPRMetadata(owner=owner, purposes=frozenset({"service"}))


def test_resp_cluster_over_relational_shards():
    cluster = build_cluster(3, store_factory=sql_factory)
    for number in range(40):
        cluster.call("SET", f"user{number}", f"v{number}")
    assert cluster.call("GET", "user7") == b"v7"
    assert cluster.call("DBSIZE") == 40
    pipeline = cluster.pipeline()
    for number in range(8):
        pipeline.call("GET", f"user{number}")
    replies = pipeline.execute()
    assert replies[3] == b"v3"
    assert sum(cluster.keyspace_sizes()) == 40


def test_slot_migration_between_relational_shards():
    cluster = build_cluster(2, store_factory=sql_factory)
    keys = [f"user{number}" for number in range(30)]
    for key in keys:
        cluster.call("SET", key, "payload")
    source_slots = [slot for slot in
                    {slot_for_key(key) for key in keys}
                    if cluster.slots.shard_of_slot(slot) == 0]
    slot = source_slots[0]
    migrator = SlotMigrator(cluster, slot, 1)
    receipt = migrator.run(batch_size=4)
    assert receipt.keys_moved
    for key in receipt.keys_moved:
        assert cluster.call("GET", key) == b"payload"
        assert cluster.nodes[1].store.has_live_key(key.encode())
        assert not cluster.nodes[0].store.has_live_key(key.encode())


def test_sharded_gdpr_rights_over_relational_shards():
    store = ShardedGDPRStore(num_shards=3, kv_factory=sql_factory)
    for number in range(24):
        owner = "alice" if number % 3 == 0 else f"other{number % 5}"
        store.put(f"user:{number}", b"pii", meta(owner))
    holders = store.shards_of_subject("alice")
    assert len(holders) >= 2          # the subject spans shards
    report = store.access_report("alice")
    assert len(report.records) == 8
    export = store.export_subject("alice")
    assert b"user:0" in export
    receipt = store.erase_subject("alice")
    assert len(receipt.keys_erased) == 8
    assert receipt.crypto_erased
    assert not store.subject_exists("alice")
    store.verify_audit_chains()
    # The relational shards answered subject lookups from their native
    # owner index (metadata columns), not the sidecar.
    assert all(shard.kv.supports_metadata_columns
               for shard in store.shards)


def test_sharded_gdpr_recovery_from_wal():
    store = ShardedGDPRStore(num_shards=2, kv_factory=sql_factory)
    for number in range(12):
        store.put(f"user:{number}", b"pii", meta(f"owner{number % 3}"))
    victim = store.shards_of_subject("owner0")[0]
    keys_before = sorted(store.shards[victim].index.keys())
    replayed = store.recover_shard(victim)
    assert replayed > 0
    assert sorted(store.shards[victim].index.keys()) == keys_before
    assert store.shards[victim].kv.engine_name == "relational"


def test_replication_groups_over_relational_shards():
    store = ShardedGDPRStore(num_shards=2, kv_factory=sql_factory)
    store.attach_replication(replicas_per_shard=2, delay=0.002)
    store.put("user:1", b"pii", meta("alice"))
    store.clock.advance(0.01)
    store.replication.pump()
    group = store.replication.group_of(store.shard_for("user:1"))
    assert all(link.replica.engine_name == "relational"
               for link in group.links)
    keys = store.keys_of_subject("alice")
    store.erase_subject("alice")
    horizon = store.subject_erasure_horizon(keys, step=0.0005)
    assert horizon is not None and horizon <= 0.004


def test_open_loop_driver_over_relational_shards():
    cluster = build_cluster(2, store_factory=sql_factory,
                            event_driven=True)
    spec = WORKLOAD_B.scaled(record_count=40, operation_count=120)
    runner = OpenLoopRunner(cluster, spec, clients=4,
                            arrival_rate=20_000.0, seed=7)
    runner.preload()
    report = runner.run(120)
    assert report.completed == 120
    assert report.failures == 0
    assert report.throughput > 0


def test_event_cluster_determinism_over_relational_shards():
    def run_once():
        cluster = build_cluster(2, store_factory=sql_factory,
                                event_driven=True)
        spec = WORKLOAD_B.scaled(record_count=30, operation_count=90)
        runner = OpenLoopRunner(cluster, spec, clients=3,
                                arrival_rate=15_000.0, seed=11)
        runner.preload()
        return runner.run(90).summary()

    assert run_once() == run_once()
