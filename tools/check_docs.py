#!/usr/bin/env python3
"""Guard the docs against drifting from the repo's ground truth.

Checks, against ROADMAP.md's canonical tier-1 verify command:

1. README.md must quote the canonical verify command verbatim inside a
   code fence (the quickstart must never teach a stale gate);
2. any fenced code line in README.md or docs/*.md that *looks like* the
   verify command (sets PYTHONPATH and invokes pytest without selecting
   a subpath) must match it exactly -- no paraphrased variants;
3. every docs file README.md links to must exist, and every doc must be
   reachable from README.md (no orphaned docs);
4. load-bearing sections stay present: docs/architecture.md must keep
   its "Execution model" and "Replication" sections (closed-loop vs
   open-loop, and the erasure-horizon/replica-handoff contract, are
   what the ycsb/bench layers are written against), and
   docs/benchmarks.md must keep its `replication` reading guide and
   mention every scenario the bench CLI registers (the EXPERIMENTS
   keys parsed out of src/repro/bench/__main__.py).

Run from the repository root (CI does), or pass the root as argv[1].
Exits non-zero listing each violation.
"""

from __future__ import annotations

import pathlib
import re
import sys

VERIFY_RE = re.compile(r"\*\*Tier-1 verify:\*\*\s*`([^`]+)`")
FENCE_RE = re.compile(r"^```")
LINK_RE = re.compile(r"\]\((docs/[A-Za-z0-9_.-]+\.md)\)")

# Sections/mentions a doc must keep (drift check 4).  Each entry:
# doc path -> list of (required substring, why it is load-bearing).
REQUIRED_DOC_CONTENT = {
    "docs/architecture.md": [
        ("## Execution model",
         "the closed-loop vs open-loop contract the ycsb/bench layers "
         "are written against"),
        ("## Replication",
         "the erasure-horizon / replica-handoff contract the cluster "
         "and bench layers are written against"),
        ("## Storage engines",
         "the StorageEngine contract (write/deletion taps, keyspace "
         "views, durability hooks) every upper layer is written "
         "against, and the two backends implementing it"),
        ("## Audit",
         "the sealed-block chain + write-behind indexing contract and "
         "the visibility-window trade-off the fast-GDPR mode is "
         "written against"),
        ("## Tiered storage",
         "the demote/promote indistinguishability contract, the "
         "seal-before-remove crash contract, and the archive-reaching "
         "crypto-erasure the tiering tests and bench are written "
         "against"),
        ("## Multi-core shards & autoscaling",
         "the dispatch rules, stop-the-world barrier semantics for the "
         "GDPR fan-out, the batching controller, and the autoscaler "
         "ladder the workers/autoscale layers are written against"),
        ("### Skew-aware placement",
         "the placement-table / rebalance-trigger / split-read "
         "invariants the skew-aware scheduling layer is written "
         "against"),
        ("## Multi-tenancy",
         "the namespace / admission-gate / per-tenant-policy / "
         "metering contract the tenancy layer and cluster boundary "
         "are written against"),
    ],
    "docs/benchmarks.md": [
        ("### Reading the `replication` output",
         "the erasure-horizon columns need a reading guide or the "
         "compliance claim is unverifiable"),
        ("### Reading the `backends` output",
         "the per-feature overhead table needs a reading guide or the "
         "paper's Redis-vs-Postgres headline is unverifiable"),
        ("### Reading the `fast-gdpr` row",
         "the fast-GDPR column needs a reading guide or the "
         "throughput-vs-visibility-window trade-off is unverifiable"),
        ("concurrency_hockey_stick.txt",
         "the committed latency-vs-offered-load artifact must stay "
         "documented and regenerable"),
        ("### Reading the `tiering` output",
         "the footprint/promote/erasure columns need a reading guide "
         "or the tiered-storage claims are unverifiable"),
        ("tiering.txt",
         "the tiered-vs-hot-only artifact must stay documented and "
         "regenerable"),
        ("### Reading `concurrency_workers.txt`",
         "the workers-vs-ceiling artifact needs a reading guide or the "
         "multi-core knee claim is unverifiable"),
        ("concurrency_workers.txt",
         "the committed workers-vs-ceiling artifact must stay "
         "documented and regenerable"),
        ("### Reading `concurrency_workers_skew.txt`",
         "the skew table needs a reading guide or the placed-vs-static "
         "zipfian knee claim is unverifiable"),
        ("concurrency_workers_skew.txt",
         "the committed skew-vs-placement artifact must stay "
         "documented and regenerable"),
        ("### Reading the `tenancy` output",
         "the admitted/throttled/p99 columns need a reading guide or "
         "the noisy-neighbour isolation claim is unverifiable"),
        ("tenancy.txt",
         "the committed quota-enforcement artifact must stay "
         "documented and regenerable"),
    ],
}

# The bench CLI's experiment registry; every key must be documented in
# docs/benchmarks.md (parsed textually so this script stays stdlib-only
# and runnable without PYTHONPATH).
EXPERIMENTS_RE = re.compile(r"^EXPERIMENTS\s*=\s*\{(.*?)\}", re.S | re.M)
EXPERIMENT_KEY_RE = re.compile(r'"([a-z0-9_]+)"\s*:')


def bench_scenarios(root: pathlib.Path) -> list:
    """The scenario names the bench CLI registers (empty if the module
    moved -- the structure check below flags that)."""
    path = root / "src" / "repro" / "bench" / "__main__.py"
    if not path.exists():
        return []
    match = EXPERIMENTS_RE.search(path.read_text())
    if match is None:
        return []
    return EXPERIMENT_KEY_RE.findall(match.group(1))


def canonical_verify_command(root: pathlib.Path) -> str:
    text = (root / "ROADMAP.md").read_text()
    match = VERIFY_RE.search(text)
    if match is None:
        raise SystemExit("ROADMAP.md no longer declares a "
                         "'**Tier-1 verify:** `...`' command")
    return match.group(1).strip()


def fenced_lines(text: str):
    """Lines inside ``` fences, with their 1-based line numbers."""
    inside = False
    for number, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            inside = not inside
            continue
        if inside:
            yield number, line.strip()


def looks_like_verify(line: str) -> bool:
    """A fence line presenting *the* tier-1 gate: a pytest invocation
    over the whole tree (no explicit test path) with PYTHONPATH set."""
    if "pytest" not in line or "PYTHONPATH" not in line:
        return False
    tail = line.split("pytest", 1)[1]
    return not any(part.startswith(("tests", "benchmarks"))
                   for part in tail.split())


def check(root: pathlib.Path) -> list:
    violations = []
    verify = canonical_verify_command(root)
    readme = root / "README.md"
    docs = sorted((root / "docs").glob("*.md"))
    if not readme.exists():
        return [f"{readme} is missing"]

    readme_text = readme.read_text()
    if verify not in readme_text:
        violations.append(
            "README.md does not quote the canonical tier-1 verify "
            f"command from ROADMAP.md: `{verify}`")

    for path in [readme, *docs]:
        for number, line in fenced_lines(path.read_text()):
            if looks_like_verify(line) and line != verify:
                violations.append(
                    f"{path.relative_to(root)}:{number}: verify-like "
                    f"command drifted from ROADMAP.md:\n"
                    f"    found:     {line}\n"
                    f"    canonical: {verify}")

    requirements = {rel: list(needs)
                    for rel, needs in REQUIRED_DOC_CONTENT.items()}
    requirements.setdefault("docs/benchmarks.md", []).extend(
        (f"`{name}`", "a scenario the bench CLI registers")
        for name in bench_scenarios(root))
    for rel, needs in requirements.items():
        path = root / rel
        if not path.exists():
            violations.append(f"{rel} is missing")
            continue
        text = path.read_text()
        for needle, why in needs:
            if needle not in text:
                violations.append(
                    f"{rel} lost required content {needle!r} ({why})")

    linked = set(LINK_RE.findall(readme_text))
    for target in sorted(linked):
        if not (root / target).exists():
            violations.append(f"README.md links to missing {target}")
    for path in docs:
        rel = f"docs/{path.name}"
        if rel not in linked:
            violations.append(
                f"{rel} is not linked from README.md (orphaned doc)")
    return violations


def main(argv) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 \
        else pathlib.Path(__file__).resolve().parent.parent
    violations = check(root)
    if violations:
        print("docs check FAILED:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("docs check passed: verify command in sync, "
          "all docs linked and present")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
