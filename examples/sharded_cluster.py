#!/usr/bin/env python3
"""Sharded cluster quickstart: hash-slot routing, pipelining, GDPR fan-out.

Run with::

    python examples/sharded_cluster.py

Shows the three things the cluster layer adds: keys spread over shards by
CRC16 hash slot, pipelined batches that pay the simulated network once per
round trip instead of once per request, and subject rights (Art. 15/17)
fanned out across every shard while one crypto-erasure voids them all.
"""

import json
import os

from repro.cluster import (
    ShardedGDPRStore,
    SlotMigrator,
    build_cluster,
    slot_for_key,
)
from repro.gdpr import GDPRMetadata

RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "200"))


def main() -> None:
    # 1. A 4-shard cluster over simulated channels.  Every key hashes to
    #    one of 16384 slots; each shard owns a contiguous slot range.
    cluster = build_cluster(4)
    for number in range(RECORDS):
        cluster.call("SET", f"user:{number}", f"payload-{number}")
    print(f"{RECORDS} keys over 4 shards: "
          f"sizes={cluster.keyspace_sizes()}")
    print(f"  'user:0' -> slot {slot_for_key('user:0')} "
          f"-> shard {cluster.shard_for('user:0')}")

    # 2. Pipelining: the same workload in depth-8 batches finishes far
    #    sooner on the simulated clock, because each round trip carries
    #    eight requests instead of one.
    def write_all(depth):
        fresh = build_cluster(4)
        for start in range(0, RECORDS, depth):
            pipeline = fresh.pipeline()
            for number in range(start, min(start + depth, RECORDS)):
                pipeline.call("SET", f"user:{number}", "v")
            pipeline.execute()
        return fresh.clock.now()

    t1, t8 = write_all(1), write_all(8)
    print(f"\n{RECORDS} writes, depth 1: {t1 * 1e3:.3f} ms simulated")
    print(f"{RECORDS} writes, depth 8: {t8 * 1e3:.3f} ms simulated "
          f"({t1 / t8:.1f}x faster)")

    # 3. GDPR across shards: per-shard audit chains and AOFs, one shared
    #    keystore.  Subject rights see the union of every shard.
    store = ShardedGDPRStore(num_shards=4)
    for number in range(24):
        owner = "alice" if number % 2 == 0 else "bob"
        store.put(f"rec:{number}", f"value-{number}".encode(),
                  GDPRMetadata(owner=owner,
                               purposes=frozenset({"service"})))
    report = store.access_report("alice")
    print(f"\nArt. 15 for alice: {len(report.records)} records from "
          f"shards {store.shards_of_subject('alice')}")
    document = json.loads(store.export_subject("alice", "json"))
    print(f"Art. 20 export: {len(document['records'])} rows")

    receipt = store.erase_subject("alice")
    print(f"Art. 17 erasure: {len(receipt.keys_erased)} keys over "
          f"{len(receipt.shards_touched)} shards, "
          f"crypto-erased={receipt.crypto_erased}, "
          f"residual in AOF: {receipt.residual_in_aof}")
    verified = store.verify_audit_chains()
    print(f"audit chains verified per shard: {verified}")

    # 4. Live resharding: migrate one slot's data to another shard while
    #    the client keeps working.  The client discovers the topology
    #    change through MOVED/ASK redirects -- no restart, no data loss.
    slot = slot_for_key("user:0")
    source = cluster.slots.shard_of_slot(slot)
    target = (source + 1) % 4
    migrator = SlotMigrator(cluster, slot, target)
    migrator.step(1)                     # copy begins...
    cluster.call("GET", "user:0")        # ...traffic keeps flowing
    moved = migrator.run()               # drain + atomic ownership flip
    print(f"\nslot {slot}: shard {source} -> {target}, "
          f"{len(moved.keys_moved)} keys / {moved.bytes_moved} bytes "
          "moved live")
    assert cluster.call("GET", "user:0") == b"payload-0"  # MOVED followed
    print(f"client followed {cluster.moved_redirects} MOVED / "
          f"{cluster.ask_redirects} ASK redirects")


if __name__ == "__main__":
    main()
