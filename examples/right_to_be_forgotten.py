#!/usr/bin/env python3
"""Art. 17 (right to be forgotten), end to end.

Shows the paper's section 4.3 problem and both mitigations:

1. After DEL, the key's data still sits in the append-only file.
2. Crypto-erasure (destroying the subject's data key) voids the bytes
   even where they persist.
3. AOF compaction removes them outright.

Run with::

    python examples/right_to_be_forgotten.py
"""

from repro import GDPRConfig, GDPRMetadata, GDPRStore, SimClock
from repro.gdpr import right_to_erasure
from repro.kvstore import KeyValueStore, StoreConfig, contains_key


def main() -> None:
    clock = SimClock()
    kv = KeyValueStore(
        StoreConfig(appendonly=True, aof_log_reads=True,
                    expiry_strategy="indexed"),
        clock=clock)
    store = GDPRStore(kv=kv, config=GDPRConfig(compact_on_erasure=True))

    # Alice accumulates personal data across several keys.
    for i, payload in enumerate((b"profile", b"orders", b"messages")):
        store.put(f"alice:{i}", payload,
                  GDPRMetadata(owner="alice",
                               purposes=frozenset({"service"})))
    store.put("bob:0", b"bob-data",
              GDPRMetadata(owner="bob", purposes=frozenset({"service"})))
    print(f"alice's keys: {store.keys_of_subject('alice')}")

    # The section 4.3 observation: even after a DEL, the AOF still
    # mentions the key until compaction.
    store.delete("alice:2")
    aof = kv.aof_log.read_all()
    print(f"after DEL, 'alice:2' still in AOF: "
          f"{contains_key(aof, b'alice:2')}")

    # Alice invokes the right to be forgotten.
    receipt = right_to_erasure(store, "alice")
    print(f"erased keys:        {receipt.keys_erased}")
    print(f"crypto-erased:      {receipt.crypto_erased}")
    print(f"log compacted:      {receipt.log_compacted}")
    print(f"residual in AOF:    {receipt.residual_in_aof}")
    print(f"erasure duration:   {receipt.duration * 1e3:.3f} ms "
          "(simulated)")

    # Nothing of Alice remains reachable; Bob is untouched.
    print(f"alice's keys now:   {store.keys_of_subject('alice')}")
    print(f"bob's data intact:  {store.get('bob:0').value.decode()}")

    # Even a restored backup of the wrapped key material cannot bring
    # Alice's data back -- her key id is tombstoned.
    try:
        store.keystore.get_key("alice")
    except Exception as exc:
        print(f"key recovery blocked: {type(exc).__name__}")

    # And the erasure itself is on the audit record.
    erase_ops = [r for r in store.audit.records()
                 if r.operation == "erase-subject"]
    print(f"audited erasures:   {len(erase_ops)} "
          f"({erase_ops[0].detail})")


if __name__ == "__main__":
    main()
