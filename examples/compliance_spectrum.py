#!/usr/bin/env python3
"""The compliance spectrum (paper section 3.2) made concrete.

Builds three systems -- unmodified Redis-alike, an *eventually* compliant
GDPR store, and a *strictly* compliant one -- assesses each against the 13
storage-relevant GDPR articles of Table 1, and measures what each level of
compliance costs on YCSB-A.

Run with::

    python examples/compliance_spectrum.py
"""

from repro import SimClock
from repro.bench.ablation import gdpr_slowdown
from repro.bench.table1 import eventual_gdpr_store, strict_gdpr_store
from repro.gdpr import (
    assess,
    gdpr_store_profile,
    redis_baseline_profile,
    render_table1,
)


def main() -> None:
    baseline = redis_baseline_profile()
    eventual = gdpr_store_profile(eventual_gdpr_store(),
                                  name="gdpr-eventual")
    strict = gdpr_store_profile(strict_gdpr_store(), name="gdpr-strict")

    print("Table 1 with per-system verdicts "
          "(capability/response-time):\n")
    print(render_table1([baseline, eventual, strict]))
    print()

    for profile in (baseline, eventual, strict):
        assessment = assess(profile)
        print(f"{profile.name:22s} compliant articles: "
              f"{assessment.articles_compliant:2d}/13   "
              f"strict articles: {assessment.articles_strict:2d}/13   "
              f"STRICT={assessment.strict}")

    print("\nWhat strictness costs (YCSB-A, simulated time):")
    results = gdpr_slowdown(record_count=200, operation_count=600)
    print(f"  unmodified store:      "
          f"{results['unmodified']:>10,.0f} ops/s")
    print(f"  fsync-always logging:  "
          f"{results['aof-always']:>10,.0f} ops/s "
          f"({results['paper_20x_slowdown']:.1f}x slower -- the paper's "
          "20x headline)")
    print(f"  full strict GDPR stack:"
          f"{results['gdpr-strict']:>10,.0f} ops/s "
          f"({results['slowdown_x']:.1f}x slower)")


if __name__ == "__main__":
    main()
