#!/usr/bin/env python3
"""Drive YCSB against the GDPR store, the paper's Figure 1 in miniature.

Runs workload A against three deployments and prints the throughput table
plus the timely-deletion comparison of Figure 2 at a small scale.

Run with::

    python examples/ycsb_gdpr_benchmark.py
"""

from repro.bench.figure1 import run_fsync_comparison
from repro.bench.figure2 import figure2_table, run_figure2
from repro.bench.micro import measure_channel_bandwidth
from repro.bench.reporting import render_table


def main() -> None:
    print("YCSB-A throughput across the paper's configurations")
    print("(simulated time; ratios are what the paper reports)\n")
    throughputs = run_fsync_comparison(record_count=300,
                                       operation_count=1000)
    base = throughputs["unmodified"]
    rows = [[name, f"{tp:,.0f}", f"{tp / base:.1%}"]
            for name, tp in throughputs.items()]
    print(render_table(["config", "ops/s", "vs unmodified"], rows))
    always = throughputs["aof-always"]
    everysec = throughputs["aof-everysec"]
    print(f"\nstrict sync logging slowdown: {base / always:.1f}x "
          "(paper: ~20x)")
    print(f"everysec recovery:            {everysec / always:.1f}x "
          "(paper: ~6x)\n")

    print("TLS proxy bandwidth (paper: 44 -> 4.9 Gb/s):")
    for path, gbps in measure_channel_bandwidth().items():
        print(f"  {path:8s} {gbps:5.1f} Gb/s")

    print("\nFigure 2 (small sweep): erasure delay of expired keys")
    results = run_figure2(sizes=(1_000, 2_000, 4_000),
                          strategies=("lazy", "fullscan"))
    print(figure2_table(results))
    print("\n(lazy = Redis 4.0 probabilistic expiry; fullscan = the "
          "paper's modification)")


if __name__ == "__main__":
    main()
