#!/usr/bin/env python3
"""Art. 33/34 breach notification from the audit trail.

A storage-side incident-response drill: personal data of several subjects
is exfiltrated through an over-privileged service account; the audit log
reconstructs the blast radius and the controller notifies the authority
inside the 72-hour window.

Run with::

    python examples/breach_notification.py
"""

from repro import GDPRMetadata, GDPRStore, Principal, SimClock
from repro.gdpr import BreachNotifier, Operation
from repro.kvstore import KeyValueStore, StoreConfig


def main() -> None:
    clock = SimClock()
    kv = KeyValueStore(StoreConfig(appendonly=True, aof_log_reads=True),
                       clock=clock)
    store = GDPRStore(kv=kv)

    # Normal operation: records for a handful of subjects.
    subjects = ["alice", "bob", "carol", "dave"]
    for subject in subjects:
        store.put(f"{subject}:profile", f"pii-of-{subject}".encode(),
                  GDPRMetadata(owner=subject,
                               purposes=frozenset({"service"})))
    clock.advance(3600.0)

    # The incident: a compromised analytics account reads three subjects'
    # records over a twenty-minute window.
    store.access.grant("analytics-svc", Operation.READ)
    attacker = Principal("analytics-svc")
    window_start = clock.now()
    for victim in ("alice", "bob", "carol"):
        store.get(f"{victim}:profile", principal=attacker)
        clock.advance(400.0)
    window_end = clock.now()

    # It also probes a key it cannot reach (denied, but still audited).
    try:
        store.delete("dave:profile", principal=attacker)
    except Exception:
        pass

    # Forensics: reconstruct the breach from the audit trail.
    clock.advance(7200.0)  # discovered two hours later
    notifier = BreachNotifier(store.audit)
    report = notifier.detect(window_start, window_end)
    print(f"breach id:          {report.breach_id}")
    print(f"affected subjects:  {report.affected_subjects}")
    print(f"affected keys:      {report.affected_keys}")
    print(f"ops in window:      {report.operations_in_window} "
          f"(denied: {report.denied_in_window})")
    print(f"high risk (Art 34): {report.high_risk}")

    # Notify the supervisory authority within 72 hours of detection.
    clock.advance(24 * 3600.0)  # one day of incident response
    met = notifier.notify_authority(report)
    print(f"authority notified within 72h: {met}")

    # High risk -> the subjects themselves are notified too.
    notified = notifier.notify_subjects(report)
    print(f"subjects notified:  {notified}")

    # The evidence package is tamper-evident: verify the chain.
    from repro.gdpr import AuditLog
    verified = AuditLog.verify_chain(store.audit.records())
    print(f"audit chain verified: {verified} records")


if __name__ == "__main__":
    main()
