#!/usr/bin/env python3
"""Art. 20 (data portability) and Art. 46 (residency) together.

Alice exports her data and has it transmitted directly to a second
controller; a transfer to a non-adequate region is blocked unless her
records explicitly whitelist it.

Run with::

    python examples/data_portability.py
"""

from repro import GDPRConfig, GDPRMetadata, GDPRStore, SimClock
from repro.common.errors import LocationViolationError
from repro.gdpr import right_to_portability
from repro.gdpr.rights import transfer_subject
from repro.kvstore import KeyValueStore, StoreConfig


def build_store(node_id: str, region: str) -> GDPRStore:
    kv = KeyValueStore(StoreConfig(appendonly=True), clock=SimClock())
    return GDPRStore(kv=kv, config=GDPRConfig(node_id=node_id,
                                              region=region))


def main() -> None:
    source = build_store("controller-a", "eu-west")
    source.put("alice:profile", b'{"plan": "premium"}',
               GDPRMetadata(owner="alice",
                            purposes=frozenset({"service"})))
    source.put("alice:history", b'["2026-01", "2026-02"]',
               GDPRMetadata(owner="alice",
                            purposes=frozenset({"service"})))

    # 1. Export in a commonly used format.
    export_json = right_to_portability(source, "alice", fmt="json")
    print("JSON export:")
    print(export_json.decode())
    print()
    print("CSV export:")
    print(right_to_portability(source, "alice", fmt="csv").decode())

    # 2. Direct transmission to another controller (EU -> EU: fine).
    target_eu = build_store("controller-b", "eu-central")
    moved = transfer_subject(source, target_eu, "alice")
    print(f"transferred {moved} records to controller-b (eu-central)")
    print(f"controller-b now holds: "
          f"{target_eu.keys_of_subject('alice')}")
    print(f"source records now note the recipient: "
          f"{sorted(source.get('alice:profile').metadata.shared_with)}")

    # 3. A transfer to a region without an adequacy decision is blocked
    #    (Art. 46) because Alice's records do not whitelist it.
    target_us = build_store("controller-us", "us-east")
    try:
        transfer_subject(source, target_us, "alice")
    except LocationViolationError as exc:
        print(f"\nUS transfer blocked: {exc}")


if __name__ == "__main__":
    main()
