#!/usr/bin/env python3
"""Erasure depth: replicas and backups (paper section 2.1).

Art. 17 requires erasure "including all its replicas and backups".  This
example shows both halves:

* a DEL on the primary leaves the data readable on a lagging replica
  until replication catches up (the erasure horizon);
* a pre-erasure backup cannot resurrect a crypto-erased subject, and
  reconciliation reports which backup generations still carry ciphertext.

Run with::

    python examples/replicas_and_backups.py
"""

from repro import GDPRConfig, GDPRMetadata, GDPRStore, SimClock
from repro.cluster import ShardedGDPRStore
from repro.gdpr import BackupManager, right_to_erasure
from repro.kvstore import KeyValueStore, ReplicationManager, StoreConfig


def main() -> None:
    clock = SimClock()

    # --- replicas -------------------------------------------------------------
    primary = KeyValueStore(StoreConfig(), clock=clock)
    replication = ReplicationManager(primary)
    replication.add_replica("eu-replica", delay=0.002)
    replication.add_replica("dr-site", delay=0.250)  # cross-region DR

    primary.execute("SET", "pii:alice", "sensitive")
    clock.advance(1.0)
    replication.pump()

    primary.execute("DEL", "pii:alice")
    print("after DEL on primary:")
    print(f"  visible anywhere?  "
          f"{replication.key_visible_anywhere(b'pii:alice')}")
    horizon = replication.erasure_horizon(b"pii:alice", step=0.01)
    print(f"  erasure horizon:   {horizon * 1e3:.0f} ms "
          "(bounded by the DR site's 250 ms lag)")
    print(f"  visible anywhere?  "
          f"{replication.key_visible_anywhere(b'pii:alice')}")

    # --- backups --------------------------------------------------------------
    kv = KeyValueStore(StoreConfig(appendonly=True), clock=clock)
    store = GDPRStore(kv=kv, config=GDPRConfig())
    store.put("alice:rec", b"personal",
              GDPRMetadata(owner="alice", purposes=frozenset({"svc"})))
    store.put("bob:rec", b"bob-stuff",
              GDPRMetadata(owner="bob", purposes=frozenset({"svc"})))

    backups = BackupManager(store, max_generations=5)
    backups.take_backup("nightly-1")

    receipt = right_to_erasure(store, "alice")
    print(f"\nerased {len(receipt.keys_erased)} keys for alice "
          f"(crypto_erased={receipt.crypto_erased})")

    report = backups.reconcile_erasure("alice", receipt.keys_erased,
                                       rewrite=False)
    print(f"backup generations still holding ciphertext: "
          f"{report.mentioning} (crypto-voided: {report.crypto_voided})")

    restored = backups.restore("nightly-1")
    print(f"restore of pre-erasure backup: alice keys = "
          f"{restored.keys_of_subject('alice')} (unrecoverable), "
          f"bob intact = {restored.get('bob:rec').value.decode()!r}")

    # Physical scrubbing, if policy demands it:
    report = backups.reconcile_erasure("alice", receipt.keys_erased,
                                       rewrite=True)
    print(f"after rewrite: residual generations = "
          f"{report.residual_generations}")

    # --- cluster-wide: every shard gets replicas ------------------------------
    sharded = ShardedGDPRStore(num_shards=2)
    sharded.attach_replication(replicas_per_shard=2,
                               delays=[0.002, 0.250],
                               pump_interval=0.001)
    for i in range(8):
        sharded.put(f"user:{i}", b"pii",
                    GDPRMetadata(owner="carol" if i % 2 == 0 else "dan",
                                 purposes=frozenset({"svc"})))
    sharded.clock.advance(0.5)   # daemon pump events converge replicas

    keys = sharded.keys_of_subject("carol")
    sharded.erase_subject("carol")
    horizon = sharded.subject_erasure_horizon(keys, step=0.01)
    print(f"\ncluster erasure of carol ({len(keys)} keys, "
          f"{sharded.num_shards} shards x 2 replicas): last copy gone "
          f"after {horizon * 1e3:.0f} ms (the DR replicas' 250 ms lag)")


if __name__ == "__main__":
    main()
