#!/usr/bin/env python3
"""Quickstart: store, read, and manage personal data under GDPR rules.

Run with::

    python examples/quickstart.py
"""

from repro import GDPRMetadata, GDPRStore, Principal
from repro.gdpr import Operation


def main() -> None:
    # A GDPRStore with defaults: encryption at rest, synchronous audit
    # logging, EU residency, purpose enforcement.
    store = GDPRStore()

    # 1. Store personal data.  Every record names its data subject, its
    #    whitelisted processing purposes, and (optionally) a retention
    #    period in seconds.
    store.put(
        "user:alice:profile",
        b'{"name": "Alice", "email": "alice@example.eu"}',
        GDPRMetadata(owner="alice",
                     purposes=frozenset({"account", "billing"}),
                     ttl=30 * 86400.0))
    print("stored alice's profile")

    # 2. Read it back -- as the controller, for a declared purpose.
    record = store.get("user:alice:profile", purpose="billing")
    print(f"read {record.key}: {record.value.decode()}")
    print(f"  owner={record.metadata.owner} "
          f"purposes={sorted(record.metadata.purposes)}")

    # 3. Access control is default-deny.  A new service gets a grant
    #    scoped to one purpose before it can read anything.
    billing_service = Principal("billing-service")
    store.access.grant("billing-service", Operation.READ,
                       purpose="billing")
    record = store.get("user:alice:profile", principal=billing_service,
                       purpose="billing")
    print(f"billing-service read {len(record.value)} bytes")

    # ...but reading for an undeclared purpose fails.
    try:
        store.get("user:alice:profile", principal=billing_service,
                  purpose="marketing")
    except Exception as exc:
        print(f"marketing read blocked: {type(exc).__name__}")

    # 4. The data subject can always see their own data (Art. 15).
    alice = Principal.subject("alice")
    record = store.get("user:alice:profile", principal=alice)
    print(f"alice self-read ok ({len(record.value)} bytes)")

    # 5. Everything above was audited in a tamper-evident log.
    print(f"audit trail: {store.audit.record_count} records, "
          f"verified={store.audit.verify_durable()}")


if __name__ == "__main__":
    main()
