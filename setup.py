"""Setup shim.

The offline environment lacks the ``wheel`` package that PEP 660 editable
installs require, so this project keeps a classic ``setup.py`` and omits the
``[build-system]`` table from pyproject.toml: ``pip install -e .`` then uses
the legacy ``setup.py develop`` path, which works offline.  All metadata
lives in pyproject.toml's ``[project]`` table.
"""

from setuptools import setup

setup()
