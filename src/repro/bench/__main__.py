"""Regenerate every paper artifact from the command line.

Usage::

    python -m repro.bench                 # everything, default scale
    python -m repro.bench figure1 table1  # a subset
    python -m repro.bench --records 1000 --ops 5000 figure1
    python -m repro.bench --full figure2  # the 1k..128k sweep + 1M point
"""

from __future__ import annotations

import argparse
import sys

from .backends import (
    FEATURE_ORDER as BACKEND_FEATURES,
    backends_table,
    headline_comparison,
    run_backends,
)
from .ablation import (
    audit_batch_sweep,
    device_sweep,
    encryption_split,
    fsync_policy_sweep,
    gdpr_slowdown,
)
from .figure1 import figure1_table, run_figure1, run_fsync_comparison
from .figure2 import figure2_table, measure_erasure_delay, run_figure2
from .micro import (
    compare_logging_mechanisms,
    deleted_data_persistence,
    measure_channel_bandwidth,
)
from .reporting import render_table
from .scaling import (
    autoscale_table,
    concurrency_table,
    erasure_fanout,
    replicated_erasure_fanout,
    replication_table,
    resharding_table,
    run_autoscale_demo,
    run_concurrency,
    run_replication,
    run_resharding_sweep,
    run_scaling,
    run_workers,
    run_workers_skew,
    scaling_table,
    workers_ceiling_summary,
    workers_skew_summary,
    workers_skew_table,
    workers_table,
)
from .table1 import build_comparison_text, headline_statistics
from .tenancy import run_tenancy, tenancy_table
from .tiering import footprint_reduction, run_tiering, tiering_table


def _print_header(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def run_table1(args: argparse.Namespace) -> None:
    _print_header("Table 1 -- GDPR articles -> storage features "
                  "(+ compliance verdicts)")
    print(build_comparison_text())
    stats = headline_statistics()
    print(f"\nstorage-related articles: "
          f"{stats['storage_related_articles']}/"
          f"{stats['total_articles']} "
          f"({stats['storage_share']:.1%})")


def run_fig1(args: argparse.Namespace) -> None:
    _print_header("Figure 1 -- YCSB throughput "
                  "(unmodified / AOF w/ sync / LUKS+TLS)")
    results = run_figure1(record_count=args.records,
                          operation_count=args.ops)
    print(figure1_table(results))
    print("\nsection 4.1 fsync comparison:")
    throughputs = run_fsync_comparison(args.records, args.ops)
    base = throughputs["unmodified"]
    print(render_table(["config", "ops/s", "fraction"],
                       [[k, round(v, 1), round(v / base, 3)]
                        for k, v in throughputs.items()]))


def run_fig2(args: argparse.Namespace) -> None:
    _print_header("Figure 2 -- erasure delay of expired keys")
    sizes = ((1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000,
              128_000) if args.full
             else (1_000, 2_000, 4_000, 8_000))
    print(figure2_table(run_figure2(sizes=sizes)))
    if args.full:
        point = measure_erasure_delay(1_000_000, "fullscan")
        print(f"\nfullscan @ 1M keys: {point.erase_seconds:.3f} s "
              "(paper: sub-second)")


def run_micro(args: argparse.Namespace) -> None:
    _print_header("Micro-benchmarks (sections 4.1-4.3)")
    print("logging mechanisms (YCSB-A ops/s):")
    print(render_table(["mechanism", "ops/s"],
                       [[k, round(v, 1)] for k, v in
                        compare_logging_mechanisms(
                            args.records, args.ops).items()]))
    print("\nchannel bandwidth (Gb/s):")
    print(render_table(["path", "Gb/s"],
                       [[k, round(v, 2)] for k, v in
                        measure_channel_bandwidth().items()]))
    probe = deleted_data_persistence()
    print(f"\ndeleted key in AOF after DEL: {probe.in_aof_after_delete}; "
          f"purged after {probe.seconds_until_purged:.0f} s "
          "(hourly rewrite)")


def run_ablations(args: argparse.Namespace) -> None:
    _print_header("Ablations")
    print("fsync policies (YCSB-A ops/s):")
    print(render_table(["policy", "ops/s"],
                       [[k, round(v, 1)] for k, v in
                        fsync_policy_sweep(args.records,
                                           args.ops).items()]))
    print("\naudit batch interval:")
    rows = audit_batch_sweep(record_count=args.records // 2,
                             operation_count=args.ops // 2)
    print(render_table(
        ["interval_s", "ops/s", "at_risk", "worst_case"],
        [[r["interval_s"], round(r["throughput"], 1),
          int(r["records_at_risk"]), int(r["worst_case_exposure"])]
         for r in rows]))
    print("\ndevice classes at fsync-always:")
    print(render_table(["device", "ops/s"],
                       [[k, round(v, 1)] for k, v in
                        device_sweep(args.records, args.ops).items()]))
    print("\nencryption split:")
    print(render_table(["config", "ops/s"],
                       [[k, round(v, 1)] for k, v in
                        encryption_split(args.records,
                                         args.ops).items()]))
    print("\nheadline slowdowns:")
    results = gdpr_slowdown(args.records // 2, args.ops // 2)
    print(render_table(["metric", "value"],
                       [[k, round(v, 2)] for k, v in results.items()]))


def run_scaling_cmd(args: argparse.Namespace) -> None:
    _print_header("Scaling -- shards x pipeline depth, GDPR on/off")
    shard_counts = (1, 2, 4, 8) if args.full else (1, 2, 4)
    cells = run_scaling(shard_counts=shard_counts, depths=(1, 8),
                        record_count=args.records,
                        operation_count=args.ops)
    print(scaling_table(cells))
    print("\ncross-shard Art. 17 erasure fan-out:")
    rows = erasure_fanout(shard_counts=shard_counts,
                          subject_keys=max(20, args.records // 5))
    print(render_table(
        ["shards", "keys_erased", "shards_touched", "erase_ms",
         "residual"],
        [[int(r["shards"]), int(r["keys_erased"]),
          int(r["shards_touched"]), round(r["erase_seconds"] * 1e3, 3),
          bool(r["residual_in_aof"])] for r in rows]))


def run_resharding_cmd(args: argparse.Namespace) -> None:
    _print_header("Resharding -- live slot migration under load")
    results = run_resharding_sweep(record_count=args.records,
                                   operation_count=args.ops)
    print(resharding_table(results))
    print("\n'drag' = fraction of steady-state throughput kept while "
          "slots migrate;\n'moved'/'ask' = redirects the client followed "
          "to track the topology.")


def run_concurrency_cmd(args: argparse.Namespace) -> None:
    _print_header("Concurrency -- open-loop clients x arrival rate on "
                  "event-loop shards")
    shard_counts = ((1, 2, 4) if args.full else (1, 2)) \
        if args.shards is None else (args.shards,)
    client_counts = ((1, 2, 4, 8, 16) if args.full else (1, 4, 16)) \
        if args.clients is None else (args.clients,)
    cells = run_concurrency(shard_counts=shard_counts,
                            client_counts=client_counts,
                            record_count=args.records,
                            operation_count=args.ops)
    print(concurrency_table(cells))
    print("\n'p99 queue' = open-loop queueing delay (admission to "
          "dispatch); 'p99 svc' = dispatch\nto reply, server-side "
          "queueing included.  Past the service-time ceiling the\n"
          "backlog -- not throughput -- absorbs extra offered load.")


def run_workers_cmd(args: argparse.Namespace) -> None:
    _print_header("Workers -- multi-core shards: the hockey stick per "
                  "worker count, plus the autoscale demo")
    core_counts = ((1, 2, 4, 8) if args.full else (1, 2, 4)) \
        if args.cores is None else (args.cores,)
    sweeps = run_workers(core_counts=core_counts,
                         adaptive_batch=args.adaptive_batch,
                         record_count=min(args.records, 100),
                         operation_count=min(args.ops, 400))
    print(workers_table(sweeps))
    print()
    print(workers_ceiling_summary(sweeps))
    print("\nSame open-loop YCSB-B stream, one curve per worker count; "
          "slots partition\nacross cores, so the zipfian-hot core "
          "saturates first and the knee scales\nsublinearly -- like a "
          "real partitioned shard.")
    print("\nautoscale demo -- the queueing-delay EWMA triggers a live "
          "worker raise, then a\nspill of half the slots to a spare "
          "shard, while the stream keeps arriving:")
    print(autoscale_table(run_autoscale_demo()))


def run_workers_skew_cmd(args: argparse.Namespace) -> None:
    _print_header("Workers skew -- zipfian vs uniform knees, static "
                  "slot%K vs skew-aware placement")
    core_counts = ((1, 2, 4, 8) if args.full else (1, 2, 4)) \
        if args.cores is None else (args.cores,)
    sweeps = run_workers_skew(core_counts=core_counts,
                              record_count=min(args.records, 44),
                              operation_count=min(args.ops, 400))
    print(workers_skew_table(sweeps))
    print()
    print(workers_skew_summary(sweeps))
    print("\nTheta-0.99 zipfian over few keys piles most requests onto "
          "one slot%K\npartition: the static knee stalls near the "
          "single-core ceiling while siblings\nidle (see the per-core "
          "q99 spread).  'place on' rows let the pool's\nrebalancer "
          "re-home hot slots (greedy LPT) and read-split the hottest "
          "one, so\nthe zipfian knee climbs back toward the uniform "
          "control curve.")


def run_replication_cmd(args: argparse.Namespace) -> None:
    _print_header("Replication -- per-shard replica groups, erasure "
                  "horizon across every copy")
    shard_counts = ((1, 2, 4) if args.full else (1, 2)) \
        if args.shards is None else (args.shards,)
    replica_counts = (1, 2) if args.replicas is None \
        else (args.replicas,)
    cells = run_replication(shard_counts=shard_counts,
                            replica_counts=replica_counts,
                            record_count=args.records,
                            operation_count=args.ops)
    print(replication_table(cells))
    print("\n'hz pXX' = erasure horizon: simulated ms from a DEL on the "
          "primary until the key\nis invisible on every primary and "
          "every replica of every shard; 'stale frac' =\nfraction of a "
          "replica-read sample that raced an in-flight write.")
    print("\nArt. 17 erasure through replicas (timer-pumped, "
          "shared keystore):")
    rows = replicated_erasure_fanout(
        shard_counts=shard_counts,
        replicas=2 if args.replicas is None else args.replicas,
        subject_keys=max(20, args.records // 5))
    print(render_table(
        ["shards", "total replicas", "keys_erased", "erase_ms",
         "horizon_ms", "crypto"],
        [[int(r["shards"]), int(r["total_replicas"]),
          int(r["keys_erased"]),
          round(r["erase_seconds"] * 1e3, 3),
          round(r["horizon_seconds"] * 1e3, 3),
          bool(r["crypto_erased"])] for r in rows]))


def run_backends_cmd(args: argparse.Namespace) -> None:
    _print_header("Backends -- Redis-like vs relational engine, "
                  "per-GDPR-feature overhead")
    features = BACKEND_FEATURES
    if args.features:
        features = tuple(f.strip() for f in args.features.split(",")
                         if f.strip())
        unknown = [f for f in features if f not in BACKEND_FEATURES]
        if unknown:
            raise SystemExit(
                f"unknown backend feature(s) {unknown}; "
                f"choose from {list(BACKEND_FEATURES)}")
    cells = run_backends(record_count=args.records,
                         operation_count=args.ops,
                         features=features)
    print(backends_table(cells))
    if "baseline" not in features:
        return
    headline = headline_comparison(cells)
    print("\nheadline (full GDPR stack vs each engine's own baseline):")
    have_full = "full-gdpr" in features
    have_fast = "fast-gdpr" in features
    header = ["engine", "baseline ops/s"]
    if have_full:
        header += ["full-gdpr ops/s", "slowdown"]
    if have_fast:
        header += ["fast-gdpr ops/s", "fast slowdown"]
    rows = []
    for engine in ("redislike", "relational"):
        row = [engine, round(headline[f"{engine}_baseline_ops"], 1)]
        if have_full:
            row += [round(headline[f"{engine}_full_gdpr_ops"], 1),
                    f"{headline[f'{engine}_slowdown_x']:.2f}x"]
        if have_fast:
            row += [round(headline[f"{engine}_fast_gdpr_ops"], 1),
                    f"{headline[f'{engine}_fast_slowdown_x']:.2f}x"]
        rows.append(row)
    print(render_table(header, rows))
    print("\nSame YCSB-A stream over both engines.  'of baseline' is "
          "each row's throughput\nas a fraction of its own engine's "
          "baseline (the paper's per-feature overhead\nview); the "
          "relational engine starts slower but pays a smaller relative\n"
          "penalty for full compliance, because its baseline already "
          "carries WAL costs.\n'fast-gdpr' is the same full stack with "
          "block-sealed audit + write-behind\nindexing -- the recovered "
          "throughput prices the bounded visibility window.")


def run_tiering_cmd(args: argparse.Namespace) -> None:
    _print_header("Tiering -- hot/cold archive: footprint, promote "
                  "cost, archive-reaching erasure")
    cells = run_tiering(record_count=args.records,
                        operation_count=args.ops)
    print(tiering_table(cells))
    kept = footprint_reduction(cells)
    fractions = ", ".join(f"{frac:.2f}: {ratio:.0%}"
                          for frac, ratio in sorted(kept.items(),
                                                    reverse=True))
    print(f"\nresident hot footprint kept (tiered / hot-only): "
          f"{fractions}")
    print("Rows pair a hot-only store against the tiered store on the "
          "same seeded\nstream.  'cold_rd_us' is a read that faults in "
          "from the archive (promote);\n'erase_ms' is a full Art. 17 "
          "request on a subject whose records span both\ntiers -- DELs, "
          "durable cold tombstones, the fsynced subject marker, and\n"
          "the crypto-erasure.  At hot fraction 1.0 the tiers are "
          "indistinguishable.")


def run_tenancy_cmd(args: argparse.Namespace) -> None:
    _print_header("Tenancy -- noisy-neighbour quotas, tenant "
                  "isolation, audit-chained metering")
    result = run_tenancy(record_count=args.records,
                         operation_count=args.ops)
    print(tenancy_table(result))
    print("\nThe quiet tenant's stream is identical in both phases; "
          "the contended run\nadds a neighbour offering 4x its ops/s "
          "quota.  The admission gate throttles\nthe excess with "
          "QUOTAEXCEEDED before the engine sees it, so the noisy\n"
          "tenant's admitted rate pins to its quota and the quiet "
          "tenant's p99 barely\nmoves.  Every interval's per-tenant "
          "usage delta is sealed into a block-mode\naudit chain and "
          "re-verified after the run -- the throttle counts double as\n"
          "tamper-evident billing records.")


EXPERIMENTS = {
    "table1": run_table1,
    "figure1": run_fig1,
    "figure2": run_fig2,
    "micro": run_micro,
    "ablations": run_ablations,
    "scaling": run_scaling_cmd,
    "resharding": run_resharding_cmd,
    "concurrency": run_concurrency_cmd,
    "workers": run_workers_cmd,
    "workers_skew": run_workers_skew_cmd,
    "replication": run_replication_cmd,
    "backends": run_backends_cmd,
    "tiering": run_tiering_cmd,
    "tenancy": run_tenancy_cmd,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*EXPERIMENTS, []],
                        help="subset to run (default: all)")
    parser.add_argument("--records", type=int, default=300,
                        help="YCSB records per phase")
    parser.add_argument("--ops", type=int, default=800,
                        help="YCSB operations per phase")
    parser.add_argument("--full", action="store_true",
                        help="full Figure 2 sweep (slow)")
    parser.add_argument("--shards", type=int, default=None,
                        help="pin the concurrency sweep to one shard "
                             "count")
    parser.add_argument("--clients", type=int, default=None,
                        help="pin the concurrency sweep to one client "
                             "count")
    parser.add_argument("--cores", type=int, default=None,
                        help="pin the workers sweep to one worker count "
                             "per shard")
    parser.add_argument("--adaptive-batch", action="store_true",
                        help="enable the per-worker adaptive batching "
                             "controller in the workers sweep")
    parser.add_argument("--replicas", type=int, default=None,
                        help="pin the replication sweep to one replica "
                             "count per shard")
    parser.add_argument("--features", type=str, default=None,
                        help="comma-separated backend feature rows for "
                             "the backends experiment (default: all)")
    args = parser.parse_args(argv)
    selected = args.experiments or list(EXPERIMENTS)
    for name in selected:
        EXPERIMENTS[name](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
