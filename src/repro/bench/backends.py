"""Backends scenario: the paper's Redis-vs-PostgreSQL comparison.

The headline experiment of the paper runs the *same* GDPR feature set
over two storage systems and asks what compliance costs each.  With the
storage-engine interface in place this is now reproducible end-to-end:
identical YCSB-A mixes (same seed, same operation stream) run over the
Redis-like engine and the relational engine, first raw, then with each
GDPR feature enabled on its own, then with the full stack -- the
per-feature overhead table the paper presents.

Feature rows, per engine:

* ``baseline`` -- the raw engine through its native YCSB binding (no
  durable logging on the KV store; WAL on for the relational engine,
  which is durable by design -- that asymmetry *is* the comparison);
* ``+logging`` -- the engine's own monitoring configuration: AOF with
  read logging (everysec) on the KV store, statement logging of reads
  on the relational WAL (the paper's "turns every read into a read
  followed by a write");
* ``+metadata`` -- the GDPR facade alone: metadata envelopes and
  indexing, access-control checks, purpose bookkeeping (on the
  relational engine this includes the indexed-column updates); the
  remaining feature rows sit on top of this;
* ``+ttl`` -- timely deletion: every record carries a retention TTL
  (expiry bookkeeping + the active sweep / vacuum);
* ``+audit`` -- synchronous hash-chained audit of every interaction on
  an SSD-latency log (strict real-time compliance);
* ``+encrypt`` -- per-subject envelope encryption (ciphertext
  inflation through the durable log's per-byte costs);
* ``full-gdpr`` -- all of the above at once;
* ``fast-gdpr`` -- the same full feature set re-engineered for the hot
  path: audit records seal into hash-chained *blocks* (one group-commit
  fsync per block instead of per record), value + retention deadline
  fuse into a single engine command where the engine supports it, and
  metadata/location bookkeeping goes write-behind.  Same compliance
  guarantees, bounded visibility window -- the row quantifies what the
  paper's "batch the monitoring logs" suggestion buys.

The GDPR feature rows run through the same :class:`GDPRStore` facade on
both engines; on the relational engine each put additionally updates
the row's indexed metadata columns (the paper's schema change), which
is part of the honest cost.  Same seed => identical numbers, byte for
byte -- the CI smoke diffs two runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..common.clock import SimClock
from ..device.append_log import AppendLog
from ..device.latency import INTEL_750_SSD, ZERO
from ..engine.base import StorageEngine
from ..gdpr.audit import AuditDurability, AuditLog
from ..gdpr.store import GDPRConfig, GDPRStore
from ..kvstore.store import KeyValueStore, StoreConfig
from ..sqlstore import RelationalStore, SqlConfig
from ..ycsb.adapters import GDPRAdapter, KVAdapter, SqlAdapter
from ..ycsb.runner import WorkloadRunner
from ..ycsb.workloads import WORKLOAD_A
from .calibration import (
    AOF_RECORD_BASE_COST,
    AOF_RECORD_PER_BYTE,
    BASE_COMMAND_CPU,
)
from .reporting import render_table

# Relational cost calibration, sized against BASE_COMMAND_CPU (25 us per
# KV command): the relational executor pays a fixed per-statement
# overhead plus index/row work, so its baseline lands a few times below
# the KV baseline -- the same ballpark gap the paper's YCSB numbers show
# between stock Redis and stock PostgreSQL.  Parse+plan are charged once
# per statement shape (prepared-statement cache).
SQL_STATEMENT_CPU = 45e-6
SQL_PARSE_COST = 120e-6
SQL_PLAN_COST = 60e-6
SQL_INDEX_NODE_COST = 2e-6
SQL_ROW_BASE_COST = 6e-6
SQL_ROW_PER_BYTE = 8e-9

ENGINE_ORDER = ("redislike", "relational")
FEATURE_ORDER = ("baseline", "+logging", "+metadata", "+ttl", "+audit",
                 "+encrypt", "full-gdpr", "fast-gdpr")
RETENTION_TTL = 3600.0
FAST_AUDIT_BLOCK_SIZE = 64


@dataclass
class BackendCell:
    """One (engine, feature) point of the comparison."""

    engine: str
    feature: str
    throughput: float       # YCSB-A run-phase ops per simulated second


def _kv_engine(clock: SimClock, logging: bool, seed: int) -> KeyValueStore:
    if not logging:
        return KeyValueStore(
            StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, seed=seed),
            clock=clock)
    return KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, appendonly=True,
                    appendfsync="everysec", aof_log_reads=True,
                    aof_record_base_cost=AOF_RECORD_BASE_COST,
                    aof_record_per_byte_cost=AOF_RECORD_PER_BYTE,
                    seed=seed),
        clock=clock, aof_log=AppendLog(clock=clock,
                                       latency=INTEL_750_SSD))


def _sql_engine(clock: SimClock, logging: bool,
                seed: int) -> RelationalStore:
    config = SqlConfig(
        wal_enabled=True, wal_fsync="everysec", wal_log_reads=logging,
        wal_record_base_cost=AOF_RECORD_BASE_COST,
        wal_record_per_byte_cost=AOF_RECORD_PER_BYTE,
        statement_cpu_cost=SQL_STATEMENT_CPU,
        statement_parse_cost=SQL_PARSE_COST,
        statement_plan_cost=SQL_PLAN_COST,
        index_node_cost=SQL_INDEX_NODE_COST,
        row_base_cost=SQL_ROW_BASE_COST,
        row_per_byte_cost=SQL_ROW_PER_BYTE,
        seed=seed)
    return RelationalStore(config, clock=clock,
                           wal_log=AppendLog(clock=clock,
                                             latency=INTEL_750_SSD))


def _make_engine(name: str, clock: SimClock, logging: bool,
                 seed: int) -> StorageEngine:
    if name == "redislike":
        return _kv_engine(clock, logging, seed)
    if name == "relational":
        return _sql_engine(clock, logging, seed)
    raise ValueError(f"unknown engine {name!r}")


def _raw_adapter(engine: StorageEngine):
    if isinstance(engine, RelationalStore):
        return SqlAdapter(engine)
    # No scan index: workload A never scans, and the shadow sorted set
    # would bill a KV-only cost the relational side does not pay.
    return KVAdapter(engine, maintain_scan_index=False)


def _gdpr_adapter(engine: StorageEngine, clock: SimClock,
                  ttl: Optional[float], audit_sync: bool,
                  encrypt: bool, fast: bool = False) -> GDPRAdapter:
    """The GDPR layer with exactly one (or all) feature(s) charged.

    Features not under test still run -- the facade always indexes,
    checks access, and appends audit records -- but at zero configured
    cost, so each row isolates one feature's price, the way the paper
    enables features one at a time.  ``fast`` runs the full feature set
    (TTL + audit + encryption on the same SSD-latency audit device as
    ``+audit``) through the fast-GDPR path: block-sealed audit chain,
    fused SET-with-expiry, write-behind bookkeeping.
    """
    if fast:
        audit = AuditLog(log=AppendLog(clock=clock,
                                       latency=INTEL_750_SSD),
                         clock=clock,
                         durability=AuditDurability.BATCH,
                         batch_interval=1.0, record_cpu_cost=5e-6,
                         chain_mode="block",
                         block_size=FAST_AUDIT_BLOCK_SIZE)
        store = GDPRStore(
            kv=engine,
            config=GDPRConfig(encrypt_at_rest=encrypt,
                              audit_durability=AuditDurability.BATCH,
                              compact_on_erasure=False,
                              fast_gdpr=True,
                              audit_block_size=FAST_AUDIT_BLOCK_SIZE),
            audit=audit)
        return GDPRAdapter(store, ttl=ttl)
    if audit_sync:
        audit = AuditLog(log=AppendLog(clock=clock,
                                       latency=INTEL_750_SSD),
                         clock=clock, durability=AuditDurability.SYNC,
                         record_cpu_cost=5e-6)
        durability = AuditDurability.SYNC
    else:
        audit = AuditLog(log=AppendLog(clock=clock, latency=ZERO),
                         clock=clock, durability=AuditDurability.ASYNC)
        durability = AuditDurability.ASYNC
    store = GDPRStore(
        kv=engine,
        config=GDPRConfig(encrypt_at_rest=encrypt,
                          audit_durability=durability,
                          compact_on_erasure=False),
        audit=audit)
    return GDPRAdapter(store, ttl=ttl)


def run_backend_cell(engine_name: str, feature: str,
                     record_count: int = 300, operation_count: int = 800,
                     seed: int = 42) -> BackendCell:
    """Load then run YCSB-A for one (engine, feature) point."""
    clock = SimClock()
    if feature == "baseline":
        engine = _make_engine(engine_name, clock, logging=False, seed=0)
        adapter = _raw_adapter(engine)
    elif feature == "+logging":
        engine = _make_engine(engine_name, clock, logging=True, seed=0)
        adapter = _raw_adapter(engine)
    else:
        engine = _make_engine(engine_name, clock, logging=True, seed=0)
        adapter = _gdpr_adapter(
            engine, clock,
            ttl=RETENTION_TTL
            if feature in ("+ttl", "full-gdpr", "fast-gdpr") else None,
            audit_sync=feature in ("+audit", "full-gdpr"),
            encrypt=feature in ("+encrypt", "full-gdpr", "fast-gdpr"),
            fast=feature == "fast-gdpr")
    spec = WORKLOAD_A.scaled(record_count=record_count,
                             operation_count=operation_count)
    runner = WorkloadRunner(adapter, spec, clock, seed=seed)
    runner.load()
    report = runner.run(operation_count)
    return BackendCell(engine=engine_name, feature=feature,
                       throughput=report.throughput)


def run_backends(record_count: int = 300, operation_count: int = 800,
                 seed: int = 42,
                 engines: Sequence[str] = ENGINE_ORDER,
                 features: Sequence[str] = FEATURE_ORDER
                 ) -> List[BackendCell]:
    """The full matrix: engines x GDPR features, identical YCSB mixes."""
    return [run_backend_cell(engine, feature, record_count,
                             operation_count, seed=seed)
            for engine in engines
            for feature in features]


def backends_table(cells: Sequence[BackendCell]) -> str:
    """Render the per-feature overhead table (the paper's presentation:
    each row's cost as a fraction of its engine's own baseline)."""
    baselines: Dict[str, float] = {}
    for cell in cells:
        if cell.feature == "baseline":
            baselines[cell.engine] = cell.throughput
    rows = []
    for cell in cells:
        base = baselines.get(cell.engine, 0.0)
        fraction = cell.throughput / base if base > 0 else 0.0
        slowdown = base / cell.throughput if cell.throughput > 0 else 0.0
        rows.append([
            cell.engine, cell.feature, round(cell.throughput, 1),
            f"{fraction:.2f}", f"{slowdown:.2f}x",
        ])
    return render_table(
        ["engine", "feature", "ops/s", "of baseline", "slowdown"], rows)


def headline_comparison(cells: Sequence[BackendCell]) -> Dict[str, float]:
    """The paper's takeaway numbers: each engine's full-GDPR slowdown.

    The KV store starts faster but pays more for compliance (it gains
    durable logging it never had); the relational engine starts slower
    but already pays WAL costs, so its *relative* penalty is smaller --
    the asymmetry the paper reports between Redis and PostgreSQL.
    """
    tput: Dict[str, Dict[str, float]] = {}
    for cell in cells:
        tput.setdefault(cell.engine, {})[cell.feature] = cell.throughput
    out: Dict[str, float] = {}
    for engine, features in tput.items():
        base = features.get("baseline", 0.0)
        full = features.get("full-gdpr", 0.0)
        out[f"{engine}_baseline_ops"] = base
        out[f"{engine}_full_gdpr_ops"] = full
        out[f"{engine}_slowdown_x"] = base / full if full > 0 else 0.0
        fast = features.get("fast-gdpr")
        if fast is not None:
            out[f"{engine}_fast_gdpr_ops"] = fast
            out[f"{engine}_fast_slowdown_x"] = \
                base / fast if fast > 0 else 0.0
    return out
