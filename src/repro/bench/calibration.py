"""Calibrated simulated-time constants and system factories.

Every constant below has a physical derivation; together they make the
simulated stack land near the paper's absolute numbers so that its *ratios*
(5%, 30%, 6x, 20x) emerge from mechanism:

``BASE_COMMAND_CPU`` (25 us)
    Server-side CPU per command.  With the raw-channel round trip
    (2 x 10 us one-way) this puts the unmodified store at ~22 kops/s --
    the paper's Figure 1 baseline on a quad-core Xeon 2.8 GHz.

``RAW_ONE_WAY_LATENCY`` (10 us)
    Loopback/ToR one-way latency between YCSB and the store.

``AOF_RECORD_BASE_COST`` (75 us) and ``AOF_RECORD_PER_BYTE`` (30 ns/B)
    End-to-end cost of pushing one record down the AOF pipeline:
    serialization, write(2), kernel copy, filesystem journal interference,
    and amortized bio-thread fsync stalls.  Calibrated against the paper's
    measured everysec point (throughput ~30% of baseline when every
    interaction, reads included, is logged).  Given this anchor, the
    *always* policy lands at ~5% purely because each op additionally pays
    the device fsync (INTEL_750_SSD.fsync = 0.8 ms), and intermediate
    batch intervals interpolate -- those ratios are emergent.

TLS/proxy constants live in :mod:`repro.net` (bandwidth 44 -> 4.9 Gb/s and
2 x 30 us proxy traversals are the paper's own measurements); LUKS crypto
throughput lives in :mod:`repro.device.luks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..common.clock import SimClock
from ..device.append_log import AppendLog
from ..device.block_device import SimulatedBlockDevice
from ..device.latency import INTEL_750_SSD, LatencyModel
from ..device.luks import LuksVolume
from ..kvstore.server import StoreClient, connect_plain, connect_tls
from ..kvstore.store import KeyValueStore, StoreConfig
from ..net.channel import Channel, RAW_BANDWIDTH_BPS
from ..net.tls import stunnel_channel
from ..ycsb.adapters import ClientAdapter, KVAdapter, StorageAdapter

BASE_COMMAND_CPU = 25e-6
RAW_ONE_WAY_LATENCY = 10e-6
AOF_RECORD_BASE_COST = 75e-6
AOF_RECORD_PER_BYTE = 30e-9

TLS_PSK = b"repro-figure1-psk"


@dataclass
class SystemUnderTest:
    """A configured stack plus the handles benchmarks need."""

    name: str
    clock: SimClock
    store: KeyValueStore
    adapter: StorageAdapter
    client: Optional[StoreClient] = None
    channel: Optional[Channel] = None
    luks: Optional[LuksVolume] = None

    def maybe_snapshot_to_luks(self) -> int:
        """Model periodic BGSAVE onto the encrypted volume.

        Returns bytes written; 0 when the config has no LUKS volume.  In
        the paper's LUKS+TLS configuration Redis persists via its default
        snapshotting onto the dm-crypt device; the per-byte crypto cost is
        charged here.
        """
        if self.luks is None:
            return 0
        data = self.store.save_snapshot()
        if len(data) > self.luks.capacity:
            return 0
        self.luks.write(0, data)
        self.luks.flush()
        return len(data)


def make_unmodified(clock: Optional[SimClock] = None,
                    seed: int = 0) -> SystemUnderTest:
    """Baseline: no AOF, plaintext channel -- Figure 1 'Unmodified'."""
    clock = clock if clock is not None else SimClock()
    store = KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, seed=seed),
        clock=clock)
    channel = Channel(clock=clock, bandwidth_bps=RAW_BANDWIDTH_BPS,
                      latency=RAW_ONE_WAY_LATENCY)
    client = connect_plain(store, channel)
    return SystemUnderTest(name="unmodified", clock=clock, store=store,
                           adapter=ClientAdapter(client), client=client,
                           channel=channel)


def make_aof_sync(clock: Optional[SimClock] = None,
                  appendfsync: str = "everysec",
                  log_reads: bool = True,
                  device: LatencyModel = INTEL_750_SSD,
                  seed: int = 0) -> SystemUnderTest:
    """Figure 1 'AOF w/ sync': every interaction logged to the AOF.

    ``appendfsync='always'`` is the strict real-time configuration the
    text reports at ~5% of baseline; ``'everysec'`` is the plotted ~30%.
    """
    clock = clock if clock is not None else SimClock()
    aof_log = AppendLog(clock=clock, latency=device)
    store = KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU,
                    appendonly=True, appendfsync=appendfsync,
                    aof_log_reads=log_reads,
                    aof_record_base_cost=AOF_RECORD_BASE_COST,
                    aof_record_per_byte_cost=AOF_RECORD_PER_BYTE,
                    seed=seed),
        clock=clock, aof_log=aof_log)
    channel = Channel(clock=clock, bandwidth_bps=RAW_BANDWIDTH_BPS,
                      latency=RAW_ONE_WAY_LATENCY)
    client = connect_plain(store, channel)
    name = f"aof-{appendfsync}" + ("" if log_reads else "-writesonly")
    return SystemUnderTest(name=name, clock=clock, store=store,
                           adapter=ClientAdapter(client), client=client,
                           channel=channel)


def make_luks_tls(clock: Optional[SimClock] = None,
                  volume_mb: int = 64,
                  seed: int = 0) -> SystemUnderTest:
    """Figure 1 'LUKS + TLS': encrypted at rest and in transit.

    The wire goes through the stunnel-characterized channel (bandwidth
    collapsed to 4.9 Gb/s, two proxy traversals per message) with the
    TLS record layer on both ends; persistence lands on a LUKS volume.
    """
    clock = clock if clock is not None else SimClock()
    store = KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, seed=seed),
        clock=clock)
    device = SimulatedBlockDevice(volume_mb << 20, clock=clock,
                                  latency=INTEL_750_SSD)
    luks = LuksVolume(device, b"figure1-passphrase")
    channel = stunnel_channel(clock, latency=RAW_ONE_WAY_LATENCY)
    client = connect_tls(store, channel, TLS_PSK, clock=clock)
    return SystemUnderTest(name="luks+tls", clock=clock, store=store,
                           adapter=ClientAdapter(client), client=client,
                           channel=channel, luks=luks)


def make_inprocess(clock: Optional[SimClock] = None,
                   config: Optional[StoreConfig] = None,
                   seed: int = 0) -> SystemUnderTest:
    """A store driven in-process (no network) -- for micro-benchmarks."""
    clock = clock if clock is not None else SimClock()
    if config is None:
        config = StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, seed=seed)
    store = KeyValueStore(config, clock=clock)
    return SystemUnderTest(name="inprocess", clock=clock, store=store,
                           adapter=KVAdapter(store))


FIGURE1_CONFIGS: Tuple[str, ...] = ("unmodified", "aof-everysec",
                                    "luks+tls")


def make_figure1_system(config: str,
                        clock: Optional[SimClock] = None,
                        seed: int = 0) -> SystemUnderTest:
    if config == "unmodified":
        return make_unmodified(clock, seed=seed)
    if config in ("aof-everysec", "aof w/ sync"):
        return make_aof_sync(clock, appendfsync="everysec", seed=seed)
    if config == "aof-always":
        return make_aof_sync(clock, appendfsync="always", seed=seed)
    if config == "luks+tls":
        return make_luks_tls(clock, seed=seed)
    raise ValueError(f"unknown Figure 1 configuration {config!r}")
