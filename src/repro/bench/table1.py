"""Table 1 regeneration and compliance-assessment comparisons."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..common.clock import SimClock
from ..gdpr.articles import (
    ALL_FEATURES,
    GDPR_STORAGE_RELATED_ARTICLES,
    GDPR_TOTAL_ARTICLES,
    TABLE1,
    feature_demand,
)
from ..gdpr.audit import AuditDurability
from ..gdpr.compliance import (
    ComplianceAssessment,
    assess,
    gdpr_store_profile,
    redis_baseline_profile,
    render_table1,
)
from ..gdpr.store import GDPRConfig, GDPRStore
from ..kvstore.store import KeyValueStore, StoreConfig


def build_table1_text() -> str:
    """The table exactly as the paper prints it (no verdict columns)."""
    return render_table1()


def build_comparison_text() -> str:
    """Table 1 with verdicts for baseline Redis vs the GDPR store."""
    store = strict_gdpr_store()
    return render_table1([redis_baseline_profile(),
                          gdpr_store_profile(store)])


def strict_gdpr_store() -> GDPRStore:
    """A GDPR store configured for strict compliance (all features,
    real-time everywhere)."""
    clock = SimClock()
    kv = KeyValueStore(
        StoreConfig(appendonly=True, appendfsync="always",
                    aof_log_reads=True, expiry_strategy="indexed"),
        clock=clock)
    return GDPRStore(kv=kv, config=GDPRConfig(
        encrypt_at_rest=True, audit_durability=AuditDurability.SYNC))


def eventual_gdpr_store() -> GDPRStore:
    """A GDPR store at the eventual end of the spectrum."""
    clock = SimClock()
    kv = KeyValueStore(
        StoreConfig(appendonly=True, appendfsync="everysec",
                    aof_log_reads=True, expiry_strategy="lazy"),
        clock=clock)
    return GDPRStore(kv=kv, config=GDPRConfig(
        encrypt_at_rest=True, audit_durability=AuditDurability.BATCH))


def assessments() -> Dict[str, ComplianceAssessment]:
    return {
        "redis-baseline": assess(redis_baseline_profile()),
        "gdpr-strict": assess(gdpr_store_profile(strict_gdpr_store())),
        "gdpr-eventual": assess(gdpr_store_profile(eventual_gdpr_store())),
    }


def headline_statistics() -> Dict[str, object]:
    """The paper's motivating numbers, derived from the registry."""
    demand = feature_demand()
    return {
        "storage_related_articles": GDPR_STORAGE_RELATED_ARTICLES,
        "total_articles": GDPR_TOTAL_ARTICLES,
        "storage_share": GDPR_STORAGE_RELATED_ARTICLES
        / GDPR_TOTAL_ARTICLES,
        "table1_rows": len(TABLE1),
        "features": len(ALL_FEATURES),
        "most_demanded_feature": max(
            demand, key=lambda f: demand[f]).value,
        "feature_demand": {f.value: n for f, n in demand.items()},
    }
