"""Tiering scenario: what the cold archive buys (and costs).

The paper keeps every record hot; this scenario quantifies the tiered
alternative.  One GDPR dataset (every record personal data, per-subject
encryption) is loaded, then accessed in windows that touch only a *hot
fraction* of the keys -- round-robin, so the hot set never goes idle --
while the idle scan demotes the rest into sealed, compressed,
per-subject-encrypted cold segments on an SSD-latency device.  Each
(mode, hot-fraction) cell runs the identical seeded access stream over
a hot-only store and over the tiered store and reports:

* **throughput** of the access windows (simulated ops/s, idle windows
  excluded) -- the price of promote-on-read misses;
* **resident hot footprint** (keys and bytes in the hot engine) vs the
  archive's residency (compressed segments + blooms) and its device
  bytes -- the capacity the archive frees;
* **time-to-full-erasure** for one data subject whose records span both
  tiers: keyspace DELs, durable cold tombstones, the fsynced
  subject-erasure marker, and the crypto-erasure -- Art. 17 reaching
  the archive, timed.

Same seed => identical numbers, byte for byte; CI diffs two runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..common.clock import SimClock
from ..crypto.cipher import seeded_entropy
from ..device.append_log import AppendLog
from ..device.latency import INTEL_750_SSD
from ..engine.base import StorageEngine
from ..gdpr.metadata import GDPRMetadata
from ..gdpr.rights import right_to_erasure
from ..gdpr.store import GDPRConfig, GDPRStore
from ..kvstore.store import KeyValueStore, StoreConfig
from ..tiering import TieredEngine, TieringConfig
from .calibration import (
    AOF_RECORD_BASE_COST,
    AOF_RECORD_PER_BYTE,
    BASE_COMMAND_CPU,
)
from .reporting import render_table

HOT_FRACTIONS = (1.0, 0.5, 0.25)
VALUE_BYTES = 256
ACCESS_WINDOWS = 4
WINDOW_IDLE_SECONDS = 45.0
DEMOTE_IDLE_AFTER = 60.0
DEMOTE_INTERVAL = 30.0
SEGMENT_MAX_RECORDS = 32
PROBE_COLD_READS = 8
ERASURE_SUBJECT = "subject-0"


@dataclass
class TieringCell:
    """One (mode, hot-fraction) point of the comparison."""

    mode: str                 # "hot-only" or "tiered"
    hot_fraction: float
    throughput: float         # access-window ops per simulated second
    hot_keys: int
    hot_bytes: int
    cold_keys: int
    cold_resident_bytes: int
    cold_device_bytes: int
    demotions: int
    promotions: int
    cold_read_seconds: float  # avg probe read; promote cost when tiered
    erase_seconds: float      # Art. 17, one subject, both tiers
    keys_erased: int
    cold_segments_voided: int


def _hot_engine(clock: SimClock) -> KeyValueStore:
    return KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, appendonly=True,
                    appendfsync="everysec", aof_log_reads=False,
                    aof_record_base_cost=AOF_RECORD_BASE_COST,
                    aof_record_per_byte_cost=AOF_RECORD_PER_BYTE,
                    seed=0),
        clock=clock, aof_log=AppendLog(clock=clock,
                                       latency=INTEL_750_SSD))


def _make_engine(mode: str, clock: SimClock) -> StorageEngine:
    engine: StorageEngine = _hot_engine(clock)
    if mode == "tiered":
        engine = TieredEngine(
            engine,
            device=AppendLog(clock=clock, latency=INTEL_750_SSD,
                             name="cold.seg"),
            tiering=TieringConfig(
                demote_idle_after=DEMOTE_IDLE_AFTER,
                demote_interval=DEMOTE_INTERVAL,
                segment_max_records=SEGMENT_MAX_RECORDS))
    return engine


def _hot_footprint(engine: StorageEngine) -> Dict[str, int]:
    if isinstance(engine, TieredEngine):
        return engine.memory_footprint()
    hot_keys = 0
    hot_bytes = 0
    for record in engine.scan_records(0):
        hot_keys += 1
        hot_bytes += len(record.key)
        if isinstance(record.value, bytes):
            hot_bytes += len(record.value)
    return {"hot_keys": hot_keys, "hot_bytes": hot_bytes,
            "cold_keys": 0, "cold_resident_bytes": 0,
            "cold_device_bytes": 0}


def run_tiering_cell(mode: str, hot_fraction: float,
                     record_count: int = 300,
                     operation_count: int = 800,
                     seed: int = 42) -> TieringCell:
    """Load, access in windows, then erase one cross-tier subject."""
    # Seeded nonces/keys: the reported byte counts include zlib over
    # ciphertext, so entropy must be reproducible for the CI
    # byte-identical re-run check to hold.
    with seeded_entropy(seed):
        return _run_cell(mode, hot_fraction, record_count,
                         operation_count, seed)


def _run_cell(mode: str, hot_fraction: float, record_count: int,
              operation_count: int, seed: int) -> TieringCell:
    clock = SimClock()
    engine = _make_engine(mode, clock)
    store = GDPRStore(kv=engine,
                      config=GDPRConfig(encrypt_at_rest=True,
                                        compact_on_erasure=False))
    rng = random.Random(seed)
    subjects = max(4, record_count // 8)
    keys = [f"user{i:06d}" for i in range(record_count)]

    def metadata(index: int) -> GDPRMetadata:
        return GDPRMetadata(owner=f"subject-{index % subjects}",
                            purposes=frozenset({"service"}))

    for index, key in enumerate(keys):
        store.put(key, bytes(rng.getrandbits(8)
                             for _ in range(VALUE_BYTES)),
                  metadata(index))

    # Access windows: round-robin over the hot prefix, then an idle gap
    # in which the demotion scan runs.  Each window covers the *whole*
    # hot set at least once (window_ops >= hot_count), so only the cold
    # remainder ever goes idle -- at hot fraction 1.0 the tiered store
    # must demote nothing.
    hot_count = max(1, int(round(record_count * hot_fraction)))
    hot_keys_list = keys[:hot_count]
    window_ops = max(operation_count // ACCESS_WINDOWS, hot_count)
    operations = 0
    active_seconds = 0.0
    for _ in range(ACCESS_WINDOWS):
        started = clock.now()
        for position in range(window_ops):
            key = hot_keys_list[position % hot_count]
            index = int(key[4:])
            if rng.random() < 0.5:
                store.get(key)
            else:
                store.put(key, bytes(rng.getrandbits(8)
                                     for _ in range(VALUE_BYTES)),
                          metadata(index))
            operations += 1
        active_seconds += clock.now() - started
        clock.advance(WINDOW_IDLE_SECONDS)
        store.tick()

    footprint = _hot_footprint(engine)

    # Cold-read probe: touch a few keys from the idle remainder (if
    # any) -- in the tiered store these fault in from the archive, so
    # the per-read cost is the promote-on-read price.
    probe_keys = keys[hot_count:][:PROBE_COLD_READS] or keys[:1]
    probe_started = clock.now()
    for key in probe_keys:
        store.get(key)
    probe_seconds = (clock.now() - probe_started) / len(probe_keys)

    # Art. 17 on a subject whose records span both tiers (its keys are
    # strided across the keyspace, so at hot fractions < 1 some were
    # demoted): time from request to receipt, archive included.
    receipt = right_to_erasure(store, ERASURE_SUBJECT)
    return TieringCell(
        mode=mode, hot_fraction=hot_fraction,
        throughput=operations / active_seconds if active_seconds else 0.0,
        hot_keys=footprint["hot_keys"],
        hot_bytes=footprint["hot_bytes"],
        cold_keys=footprint["cold_keys"],
        cold_resident_bytes=footprint["cold_resident_bytes"],
        cold_device_bytes=footprint["cold_device_bytes"],
        demotions=getattr(engine, "demotions", 0),
        promotions=getattr(engine, "promotions", 0),
        cold_read_seconds=probe_seconds,
        erase_seconds=receipt.duration,
        keys_erased=len(receipt.keys_erased),
        cold_segments_voided=receipt.cold_segments_voided)


def run_tiering(record_count: int = 300, operation_count: int = 800,
                seed: int = 42,
                hot_fractions: Sequence[float] = HOT_FRACTIONS
                ) -> List[TieringCell]:
    """The full matrix: {hot-only, tiered} x hot fractions, identical
    seeded access streams."""
    return [run_tiering_cell(mode, fraction, record_count,
                             operation_count, seed=seed)
            for fraction in hot_fractions
            for mode in ("hot-only", "tiered")]


def tiering_table(cells: Sequence[TieringCell]) -> str:
    rows = []
    for cell in cells:
        rows.append([
            cell.mode, f"{cell.hot_fraction:.2f}",
            round(cell.throughput, 1),
            cell.hot_keys, cell.hot_bytes,
            cell.cold_keys, cell.cold_resident_bytes,
            cell.cold_device_bytes,
            cell.demotions, cell.promotions,
            round(cell.cold_read_seconds * 1e6, 2),
            round(cell.erase_seconds * 1e3, 3),
            cell.keys_erased, cell.cold_segments_voided,
        ])
    return render_table(
        ["mode", "hot_frac", "ops/s", "hot keys", "hot bytes",
         "cold keys", "cold ram", "cold dev", "demoted", "promoted",
         "cold_rd_us", "erase_ms", "erased", "segs voided"], rows)


def footprint_reduction(cells: Sequence[TieringCell]
                        ) -> Dict[float, float]:
    """Per hot fraction: tiered hot bytes as a fraction of hot-only hot
    bytes (the headline 'resident footprint kept' number)."""
    hot_only: Dict[float, int] = {}
    tiered: Dict[float, int] = {}
    for cell in cells:
        target = hot_only if cell.mode == "hot-only" else tiered
        target[cell.hot_fraction] = cell.hot_bytes
    return {fraction: (tiered[fraction] / hot_only[fraction]
                       if hot_only.get(fraction) else 0.0)
            for fraction in tiered}
