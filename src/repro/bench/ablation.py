"""Ablation studies over the design choices DESIGN.md calls out.

These go beyond the paper's plotted data to map the spectrum it argues
for in prose:

* :func:`fsync_policy_sweep` -- the real-time <-> eventual compliance axis
  for storage-level logging (always / everysec / no).
* :func:`audit_batch_sweep` -- the same axis for the GDPR audit log:
  batch interval vs throughput vs records at risk.
* :func:`device_sweep` -- strict (fsync-always) logging across HDD / SSD /
  NVM, quantifying section 5.1's claim that NVM makes strict compliance
  affordable.
* :func:`encryption_split` -- LUKS-only vs TLS-only vs both, confirming
  the paper's observation that TLS dominates the encryption overhead.
* :func:`gdpr_slowdown` -- the headline: strict real-time compliance
  (every feature on, synchronous audit) vs the unmodified baseline (~20x).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..common.clock import SimClock
from ..device.append_log import AppendLog
from ..device.latency import HDD, INTEL_750_SSD, NVM, LatencyModel
from ..gdpr.audit import AuditDurability, AuditLog
from ..gdpr.store import GDPRConfig, GDPRStore
from ..kvstore.store import KeyValueStore, StoreConfig
from ..net.channel import Channel, RAW_BANDWIDTH_BPS
from ..net.tls import stunnel_channel
from ..kvstore.server import connect_plain, connect_tls
from ..ycsb.adapters import ClientAdapter, GDPRAdapter
from ..ycsb.runner import WorkloadRunner
from ..ycsb.workloads import CORE_WORKLOADS
from .calibration import (
    AOF_RECORD_BASE_COST,
    AOF_RECORD_PER_BYTE,
    BASE_COMMAND_CPU,
    RAW_ONE_WAY_LATENCY,
    TLS_PSK,
    make_aof_sync,
    make_unmodified,
)


def _ycsb_a_throughput(adapter, clock, record_count: int,
                       operation_count: int) -> float:
    spec = CORE_WORKLOADS["A"].scaled(record_count=record_count,
                                      operation_count=operation_count)
    runner = WorkloadRunner(adapter, spec, clock, seed=11)
    runner.load()
    return runner.run(operation_count).throughput


def fsync_policy_sweep(record_count: int = 300,
                       operation_count: int = 1000) -> Dict[str, float]:
    """Throughput per appendfsync policy (plus the no-AOF baseline)."""
    results = {"no-aof": _system_throughput(make_unmodified(),
                                            record_count, operation_count)}
    for policy in ("no", "everysec", "always"):
        system = make_aof_sync(appendfsync=policy)
        results[f"appendfsync={policy}"] = _system_throughput(
            system, record_count, operation_count)
    return results


def _system_throughput(system, record_count: int,
                       operation_count: int) -> float:
    return _ycsb_a_throughput(system.adapter, system.clock, record_count,
                              operation_count)


def audit_batch_sweep(intervals: Tuple[float, ...] = (0.0, 0.1, 1.0, 10.0),
                      record_count: int = 200,
                      operation_count: int = 600
                      ) -> List[Dict[str, float]]:
    """GDPR audit log: batch interval vs throughput vs exposure.

    Interval 0 = synchronous (strict real-time compliance); larger
    intervals trade durability exposure (records a crash would lose) for
    throughput -- the paper's "batch, say, once every second" knob.
    """
    rows = []
    for interval in intervals:
        clock = SimClock()
        kv = KeyValueStore(
            StoreConfig(command_cpu_cost=BASE_COMMAND_CPU),
            clock=clock)
        durability = (AuditDurability.SYNC if interval == 0.0
                      else AuditDurability.BATCH)
        audit = AuditLog(
            log=AppendLog(clock=clock, latency=INTEL_750_SSD),
            clock=clock, durability=durability, batch_interval=interval,
            record_cpu_cost=5e-6)
        store = GDPRStore(
            kv=kv,
            config=GDPRConfig(encrypt_at_rest=False,
                              audit_durability=durability,
                              audit_batch_interval=interval),
            audit=audit)
        adapter = GDPRAdapter(store)
        throughput = _ycsb_a_throughput(adapter, clock, record_count,
                                        operation_count)
        rows.append({
            "interval_s": interval,
            "throughput": throughput,
            "records_at_risk": float(audit.at_risk_records()),
            # The paper's exposure metric ("one second worth of logs"):
            # a crash loses up to one batch window of audit records.
            "worst_case_exposure": (0.0 if interval == 0.0
                                    else interval * throughput),
        })
    return rows


def device_sweep(record_count: int = 300, operation_count: int = 800
                 ) -> Dict[str, float]:
    """Strict logging (fsync always) across device classes.

    Section 5.1: synchronous logging to SSD/HDD is ruinous; NVM-class
    persistence barriers make strict compliance affordable.
    """
    results = {}
    for device in (HDD, INTEL_750_SSD, NVM):
        system = make_aof_sync(appendfsync="always", device=device)
        results[device.name] = _system_throughput(system, record_count,
                                                  operation_count)
    return results


def encryption_split(record_count: int = 300, operation_count: int = 800
                     ) -> Dict[str, float]:
    """Plaintext vs TLS-only vs LUKS-only vs both.

    The LUKS-only configuration routes the store's AOF through a device
    charged with the LUKS per-byte crypto cost; the TLS-only one proxies
    the wire.  Expectation (paper section 4.2): TLS dominates.
    """
    from ..device.luks import CRYPTO_COST_PER_BYTE

    results: Dict[str, float] = {}

    results["plaintext"] = _system_throughput(
        make_unmodified(), record_count, operation_count)

    # TLS only.
    clock = SimClock()
    store = KeyValueStore(StoreConfig(command_cpu_cost=BASE_COMMAND_CPU),
                          clock=clock)
    channel = stunnel_channel(clock, latency=RAW_ONE_WAY_LATENCY)
    client = connect_tls(store, channel, TLS_PSK, clock=clock)
    results["tls-only"] = _ycsb_a_throughput(
        ClientAdapter(client), clock, record_count, operation_count)

    # LUKS only: plaintext wire; persistence pays the crypto per byte.
    clock = SimClock()
    luks_device = LatencyModel(
        name="ssd+luks",
        write_syscall=INTEL_750_SSD.write_syscall,
        read_syscall=INTEL_750_SSD.read_syscall,
        fsync=INTEL_750_SSD.fsync,
        per_byte_write=INTEL_750_SSD.per_byte_write + CRYPTO_COST_PER_BYTE,
        per_byte_read=INTEL_750_SSD.per_byte_read + CRYPTO_COST_PER_BYTE)
    store = KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, appendonly=True,
                    appendfsync="everysec"),
        clock=clock, aof_log=AppendLog(clock=clock, latency=luks_device))
    channel = Channel(clock=clock, bandwidth_bps=RAW_BANDWIDTH_BPS,
                      latency=RAW_ONE_WAY_LATENCY)
    client = connect_plain(store, channel)
    results["luks-only"] = _ycsb_a_throughput(
        ClientAdapter(client), clock, record_count, operation_count)

    # Both.
    clock = SimClock()
    store = KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, appendonly=True,
                    appendfsync="everysec"),
        clock=clock, aof_log=AppendLog(clock=clock, latency=luks_device))
    channel = stunnel_channel(clock, latency=RAW_ONE_WAY_LATENCY)
    client = connect_tls(store, channel, TLS_PSK, clock=clock)
    results["luks+tls"] = _ycsb_a_throughput(
        ClientAdapter(client), clock, record_count, operation_count)
    return results


def erasure_propagation(delays: Tuple[float, ...] = (0.001, 0.01, 0.1, 1.0)
                        ) -> List[Dict[str, float]]:
    """Art. 17 across replicas: erasure horizon vs replication delay.

    A DEL on the primary is not GDPR erasure until every replica has
    applied it; the horizon is bounded below by the slowest replica's
    one-way delay.  (Paper section 2.1: erasure must cover "all its
    replicas and backups".)
    """
    from ..kvstore.replication import ReplicationManager

    rows = []
    for delay in delays:
        clock = SimClock()
        primary = KeyValueStore(StoreConfig(), clock=clock)
        manager = ReplicationManager(primary)
        manager.add_replica("near", delay=0.0005)
        manager.add_replica("far", delay=delay)
        primary.execute("SET", "pii", "x")
        clock.advance(delay * 2 + 1.0)
        manager.pump()
        primary.execute("DEL", "pii")
        horizon = manager.erasure_horizon(b"pii", step=delay / 20 + 1e-5)
        rows.append({"replica_delay_s": delay,
                     "erasure_horizon_s": horizon
                     if horizon is not None else float("inf")})
    return rows


def gdpr_slowdown(record_count: int = 200,
                  operation_count: int = 600) -> Dict[str, float]:
    """The headline number and beyond.

    The paper's 20x is "logging every user request synchronously", i.e.
    the AOF-fsync-always store (``paper_20x_slowdown`` below).  The
    ``gdpr-strict`` row goes further: the *full* strict stack --
    synchronous hash-chained audit of every interaction, per-subject
    encryption, ACL checks, and metadata indexing on top of fsync-always
    AOF -- which is costlier still (two durability barriers per op).
    """
    results = {"unmodified": _system_throughput(
        make_unmodified(), record_count, operation_count)}
    results["aof-always"] = _system_throughput(
        make_aof_sync(appendfsync="always"), record_count,
        operation_count)
    results["paper_20x_slowdown"] = (results["unmodified"]
                                     / max(results["aof-always"], 1e-9))

    clock = SimClock()
    kv = KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, appendonly=True,
                    appendfsync="always", aof_log_reads=True,
                    aof_record_base_cost=AOF_RECORD_BASE_COST,
                    aof_record_per_byte_cost=AOF_RECORD_PER_BYTE),
        clock=clock, aof_log=AppendLog(clock=clock, latency=INTEL_750_SSD))
    audit = AuditLog(log=AppendLog(clock=clock, latency=INTEL_750_SSD),
                     clock=clock, durability=AuditDurability.SYNC,
                     record_cpu_cost=5e-6)
    store = GDPRStore(kv=kv,
                      config=GDPRConfig(
                          encrypt_at_rest=True,
                          audit_durability=AuditDurability.SYNC),
                      audit=audit)
    results["gdpr-strict"] = _ycsb_a_throughput(
        GDPRAdapter(store), clock, record_count, operation_count)

    results["slowdown_x"] = (results["unmodified"]
                             / max(results["gdpr-strict"], 1e-9))
    return results
