"""Scaling scenario: throughput vs shard count x pipeline depth, GDPR on/off.

The paper's closing argument is that GDPR-compliant storage must be
*engineered to scale*; this scenario quantifies the two levers the cluster
layer adds:

* **Pipelining** amortizes the per-round-trip channel latency over many
  requests (depth-8 pays the wire once where depth-1 pays it eight times);
* **Sharding** splits the per-command CPU and -- far more importantly for
  the GDPR configuration -- the AOF logging cost across shards that run
  concurrently, which is how a cluster claws back the paper's ~5x
  compliance slowdown.

``GDPR on`` shards run the paper's compliant configuration (AOF enabled
with read logging at everysec, the calibrated record costs from
:mod:`repro.bench.calibration`); ``off`` shards run unmodified.  The
companion :func:`erasure_fanout` measures how cross-shard Art. 17 erasure
(fan-out DELs + one shared-keystore crypto-erasure + per-shard AOF
compaction) scales with shard count.

:func:`run_resharding` adds the operational cost the related work says
dominates real deployments: the throughput a live workload keeps *while*
slots migrate between shards (DUMP/RESTORE transfers charged to the
inter-shard link, clients absorbing MOVED/ASK redirects), versus steady
state before and after the topology change.

:func:`run_replication` closes the loop on the paper's "including all
its replicas and backups" requirement: every shard carries delayed
replicas, foreground throughput is measured against the primaries, and
each erased key's cluster-wide **erasure horizon** (seconds until no
primary and no replica serves it) is reported as percentiles, with a
stale-read sample quantifying what reading from replicas would risk.

:func:`run_concurrency` is the event core's scenario: an **open-loop**
YCSB-B stream admitted at a configured arrival rate across M concurrent
simulated clients against event-loop shards.  Unlike the closed-loop
sweep above, offered load is independent of completions, so the numbers
show what closed loops structurally cannot: throughput climbing with
client count until the shard's service-time ceiling, and p99 *queueing*
delay (admission-to-dispatch wait, reported separately from service
time) exploding once the offered rate crosses that ceiling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..cluster import (
    Autoscaler,
    AutoscaleConfig,
    ClusterClient,
    ShardedGDPRStore,
    SlotMap,
    SlotMigrator,
    build_cluster,
    slot_for_key,
)
from ..common.clock import Clock
from ..device.append_log import AppendLog
from ..device.latency import INTEL_750_SSD
from ..gdpr.metadata import GDPRMetadata
from ..kvstore.store import KeyValueStore, StoreConfig
from ..ycsb.distributions import ScrambledZipfianGenerator
from ..ycsb.generator import build_key_name
from ..ycsb.openloop import OpenLoopRunner
from ..ycsb.workloads import WORKLOAD_B
from .calibration import (
    AOF_RECORD_BASE_COST,
    AOF_RECORD_PER_BYTE,
    BASE_COMMAND_CPU,
    RAW_ONE_WAY_LATENCY,
)
from .reporting import render_table

VALUE_SIZE = 100
READ_FRACTION = 0.95   # YCSB-B's read-mostly mix


@dataclass
class ScalingCell:
    """One (shards, depth, gdpr) point of the sweep."""

    shards: int
    depth: int
    gdpr: bool
    throughput: float       # ops per simulated second (run phase)
    load_throughput: float  # inserts per simulated second (load phase)


def _store_factory(gdpr: bool):
    def make(index: int, clock: Clock) -> KeyValueStore:
        if not gdpr:
            return KeyValueStore(
                StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, seed=index),
                clock=clock)
        return KeyValueStore(
            StoreConfig(command_cpu_cost=BASE_COMMAND_CPU,
                        appendonly=True, appendfsync="everysec",
                        aof_log_reads=True,
                        aof_record_base_cost=AOF_RECORD_BASE_COST,
                        aof_record_per_byte_cost=AOF_RECORD_PER_BYTE,
                        seed=index),
            clock=clock, aof_log=AppendLog(clock=clock,
                                           latency=INTEL_750_SSD))
    return make


def _request_mix(keys: Sequence[str], value: bytes, count: int,
                 seed: int) -> List[tuple]:
    """YCSB-B-shaped request stream over ``keys`` (zipfian, 95% reads)."""
    rng = random.Random(seed)
    chooser = ScrambledZipfianGenerator(0, len(keys) - 1,
                                        rng=random.Random(seed + 1))
    requests = []
    for _ in range(count):
        key = keys[min(chooser.next_value(), len(keys) - 1)]
        if rng.random() < READ_FRACTION:
            requests.append(("GET", key))
        else:
            requests.append(("SET", key, value))
    return requests


def _pipelined_phase(cluster: ClusterClient, requests: Sequence[tuple],
                     depth: int) -> float:
    """Issue ``requests`` in depth-sized pipelined batches; ops/s."""
    start = cluster.clock.now()
    for offset in range(0, len(requests), depth):
        pipeline = cluster.pipeline()
        for args in requests[offset:offset + depth]:
            pipeline.call(*args)
        pipeline.execute()
    elapsed = cluster.clock.now() - start
    return len(requests) / elapsed if elapsed > 0 else 0.0


def run_cell(shards: int, depth: int, gdpr: bool,
             record_count: int = 300, operation_count: int = 800,
             seed: int = 42) -> ScalingCell:
    """Load then run one configuration point.

    The client models a pipelined closed-loop driver (redis-benchmark
    ``-P``): it keeps ``depth`` requests in flight per round trip.
    """
    cluster = build_cluster(shards, store_factory=_store_factory(gdpr),
                            latency=RAW_ONE_WAY_LATENCY)
    rng = random.Random(seed)
    value = bytes(rng.randrange(32, 127) for _ in range(VALUE_SIZE))
    keys = [build_key_name(number) for number in range(record_count)]
    load_tput = _pipelined_phase(
        cluster, [("SET", key, value) for key in keys], depth)
    run_tput = _pipelined_phase(
        cluster, _request_mix(keys, value, operation_count, seed), depth)
    return ScalingCell(shards=shards, depth=depth, gdpr=gdpr,
                       throughput=run_tput, load_throughput=load_tput)


def run_scaling(shard_counts: Sequence[int] = (1, 2, 4),
                depths: Sequence[int] = (1, 8),
                record_count: int = 300, operation_count: int = 800,
                seed: int = 42) -> List[ScalingCell]:
    """The full sweep: shard counts x pipeline depths x GDPR on/off."""
    return [run_cell(shards, depth, gdpr, record_count, operation_count,
                     seed=seed)
            for gdpr in (False, True)
            for shards in shard_counts
            for depth in depths]


def scaling_table(cells: Sequence[ScalingCell]) -> str:
    """Render the sweep; speedup is vs the 1-shard depth-1 cell of the
    same GDPR setting (the single-node, unpipelined baseline)."""
    baselines: Dict[bool, float] = {}
    for cell in cells:
        if cell.shards == 1 and cell.depth == 1:
            baselines[cell.gdpr] = cell.throughput
    rows = []
    for cell in cells:
        base = baselines.get(cell.gdpr, 0.0)
        rows.append([
            cell.shards, cell.depth, "on" if cell.gdpr else "off",
            round(cell.throughput, 1),
            f"{cell.throughput / base:.2f}x" if base > 0 else "-",
        ])
    return render_table(["shards", "depth", "gdpr", "ops/s", "speedup"],
                        rows)


@dataclass
class ReshardingResult:
    """Throughput around a live resharding, one GDPR setting."""

    gdpr: bool
    steady_before: float    # ops/s, no migration in flight
    during: float           # ops/s while slots migrate under the load
    steady_after: float     # ops/s after the last ownership flip
    slots_moved: int
    keys_moved: int
    bytes_moved: int
    moved_redirects: int
    ask_redirects: int

    @property
    def drag(self) -> float:
        """Fraction of steady-state throughput kept during migration."""
        if self.steady_before <= 0:
            return 0.0
        return self.during / self.steady_before


def run_resharding(shards: int = 2, depth: int = 8, gdpr: bool = False,
                   record_count: int = 300, operation_count: int = 900,
                   migrate_fraction: float = 1.0,
                   migrate_batch: int = 4,
                   seed: int = 42) -> ReshardingResult:
    """Measure the paper's missing number: throughput *during* a live
    resharding versus steady state.

    The classic scale-out event: a cluster of ``shards`` serving a
    pipelined workload grows by one empty shard, and a share of every
    existing shard's populated slots (``migrate_fraction`` of an even
    rebalance) migrates into it **while the workload keeps running** --
    ``SlotMigrator`` steps interleaved with pipelined batches, the client
    discovering each ownership flip through MOVED/ASK redirects.  Reports
    steady-state throughput before, during, and after.
    """
    slot_map = SlotMap.even(shards)
    cluster = build_cluster(shards + 1, slot_map=slot_map,
                            store_factory=_store_factory(gdpr),
                            latency=RAW_ONE_WAY_LATENCY)
    rng = random.Random(seed)
    value = bytes(rng.randrange(32, 127) for _ in range(VALUE_SIZE))
    keys = [build_key_name(number) for number in range(record_count)]
    _pipelined_phase(cluster, [("SET", key, value) for key in keys],
                     depth)
    third = max(depth, operation_count // 3)
    steady_before = _pipelined_phase(
        cluster, _request_mix(keys, value, third, seed + 2), depth)

    # An even rebalance hands the new shard 1/(shards+1) of each existing
    # shard's populated slots; migrate_fraction scales that share.
    target = cluster.slots.add_shard()
    to_move: List[int] = []
    for shard in range(shards):
        populated = sorted({slot_for_key(key) for key in keys
                            if cluster.slots.shard_of_slot(
                                slot_for_key(key)) == shard})
        share = int(len(populated) * migrate_fraction / (shards + 1))
        to_move.extend(populated[:max(1, share)])
    moved_before = cluster.moved_redirects
    asked_before = cluster.ask_redirects
    requests = _request_mix(keys, value, third, seed + 3)
    offset = 0
    keys_moved = bytes_moved = 0
    start = cluster.clock.now()
    for slot in to_move:
        migrator = SlotMigrator(cluster, slot, target)
        while migrator.keys_pending:
            migrator.step(migrate_batch)
            batch = requests[offset:offset + depth]
            offset += depth
            if batch:
                pipeline = cluster.pipeline()
                for args in batch:
                    pipeline.call(*args)
                pipeline.execute()
        receipt = migrator.finish()
        keys_moved += len(receipt.keys_moved)
        bytes_moved += receipt.bytes_moved
    while offset < len(requests):
        pipeline = cluster.pipeline()
        for args in requests[offset:offset + depth]:
            pipeline.call(*args)
        offset += depth
        pipeline.execute()
    # The last flips charged the source/target clocks; bill that tail to
    # the migration phase, not to the steady-state run that follows.
    cluster.sync()
    elapsed = cluster.clock.now() - start
    during = len(requests) / elapsed if elapsed > 0 else 0.0

    steady_after = _pipelined_phase(
        cluster, _request_mix(keys, value, third, seed + 4), depth)
    return ReshardingResult(
        gdpr=gdpr, steady_before=steady_before, during=during,
        steady_after=steady_after, slots_moved=len(to_move),
        keys_moved=keys_moved, bytes_moved=bytes_moved,
        moved_redirects=cluster.moved_redirects - moved_before,
        ask_redirects=cluster.ask_redirects - asked_before)


def run_resharding_sweep(record_count: int = 300,
                         operation_count: int = 900,
                         seed: int = 42) -> List[ReshardingResult]:
    """The resharding scenario for both GDPR settings."""
    return [run_resharding(gdpr=gdpr, record_count=record_count,
                           operation_count=operation_count, seed=seed)
            for gdpr in (False, True)]


def resharding_table(results: Sequence[ReshardingResult]) -> str:
    rows = []
    for result in results:
        rows.append([
            "on" if result.gdpr else "off",
            round(result.steady_before, 1),
            round(result.during, 1),
            round(result.steady_after, 1),
            f"{result.drag:.2f}x",
            result.slots_moved,
            result.keys_moved,
            result.bytes_moved,
            result.moved_redirects,
            result.ask_redirects,
        ])
    return render_table(
        ["gdpr", "steady ops/s", "during ops/s", "after ops/s", "drag",
         "slots", "keys", "bytes", "moved", "ask"],
        rows)


@dataclass
class ConcurrencyCell:
    """One (shards, clients, arrival rate, gdpr) point of the open-loop
    sweep."""

    shards: int
    clients: int
    arrival_rate: float
    gdpr: bool
    throughput: float        # completions per simulated second
    p50_queue: float         # seconds an op waited for a free client
    p99_queue: float
    p99_service: float       # dispatch-to-reply, server queue included
    admitted: int
    completed: int
    max_backlog: int


def run_concurrency_cell(shards: int, clients: int, arrival_rate: float,
                         gdpr: bool, record_count: int = 100,
                         operation_count: int = 400,
                         seed: int = 42) -> ConcurrencyCell:
    """One open-loop point: an event-driven cluster of ``shards``
    event-loop servers, ``clients`` concurrent simulated clients, and a
    YCSB-B stream admitted at ``arrival_rate`` ops/s."""
    cluster = build_cluster(shards, store_factory=_store_factory(gdpr),
                            latency=RAW_ONE_WAY_LATENCY,
                            event_driven=True)
    spec = WORKLOAD_B.scaled(record_count=record_count,
                             operation_count=operation_count)
    runner = OpenLoopRunner(cluster, spec, clients=clients,
                            arrival_rate=arrival_rate, seed=seed)
    runner.preload()
    report = runner.run(operation_count)
    return ConcurrencyCell(
        shards=shards, clients=clients, arrival_rate=arrival_rate,
        gdpr=gdpr, throughput=report.throughput,
        p50_queue=report.queue_delay.percentile(50),
        p99_queue=report.queue_delay.percentile(99),
        p99_service=report.service_time.percentile(99),
        admitted=report.admitted, completed=report.completed,
        max_backlog=report.max_backlog)


def run_concurrency(shard_counts: Sequence[int] = (1, 2),
                    client_counts: Sequence[int] = (1, 4, 16),
                    arrival_rates: Sequence[float] = (20_000.0, 60_000.0),
                    record_count: int = 100,
                    operation_count: int = 400,
                    seed: int = 42) -> List[ConcurrencyCell]:
    """The full sweep: shards x clients x arrival rate x GDPR on/off.

    On one shard, throughput rises with client count until the shard's
    service-time ceiling (more clients only lengthen the queue after
    that); an arrival rate past the ceiling shows p99 queueing delay
    growing with the backlog -- the saturation behaviour the paper's
    scaling argument is about, now measurable because admission is
    decoupled from completion.
    """
    return [run_concurrency_cell(shards, clients, rate, gdpr,
                                 record_count=record_count,
                                 operation_count=operation_count,
                                 seed=seed)
            for gdpr in (False, True)
            for shards in shard_counts
            for clients in client_counts
            for rate in arrival_rates]


def concurrency_table(cells: Sequence[ConcurrencyCell]) -> str:
    rows = []
    for cell in cells:
        rows.append([
            cell.shards, cell.clients, int(cell.arrival_rate),
            "on" if cell.gdpr else "off",
            round(cell.throughput, 1),
            round(cell.p50_queue * 1e6, 1),
            round(cell.p99_queue * 1e6, 1),
            round(cell.p99_service * 1e6, 1),
            cell.max_backlog,
        ])
    return render_table(
        ["shards", "clients", "offered/s", "gdpr", "ops/s",
         "p50 queue us", "p99 queue us", "p99 svc us", "backlog"],
        rows)


DEFAULT_HOCKEY_RATES = (5_000.0, 10_000.0, 20_000.0, 30_000.0, 36_000.0,
                        40_000.0, 48_000.0, 60_000.0)


def latency_vs_load(rates: Sequence[float] = DEFAULT_HOCKEY_RATES,
                    shards: int = 1, clients: int = 8,
                    gdpr: bool = False, record_count: int = 100,
                    operation_count: int = 400,
                    cores: Optional[int] = None,
                    adaptive_batch: bool = False,
                    dispatch_overhead: float = 0.0,
                    request_distribution: Optional[str] = None,
                    placement: bool = False,
                    seed: int = 42) -> List[Dict[str, float]]:
    """The classic open-loop "hockey stick": end-to-end latency vs
    offered load.

    Each point admits the same YCSB-B stream at a different arrival
    rate against a fresh event-driven cluster.  Below the service-time
    ceiling (~1 / per-command cost per shard) latency is flat -- wire
    plus service; past it the backlog grows for as long as admission
    continues and p99 latency bends sharply upward.  Offered load is
    independent of completions, so the curve shows the knee a
    closed-loop driver structurally cannot produce.

    ``cores`` adds the multi-core axis: each shard dispatches to that
    many simulated cores behind its event loop (``cores=None`` keeps
    the single-loop legacy path byte-for-byte), ``adaptive_batch``
    turns the per-worker batching controller on, and
    ``dispatch_overhead`` charges a fixed cost per dispatch so batching
    has something to amortize.

    ``request_distribution`` overrides the workload's key popularity
    ("zipfian" / "uniform" / "latest"; ``None`` keeps YCSB-B's default
    zipfian), and ``placement=True`` turns on the pools' skew-aware
    slot placement -- the default ``False`` keeps the static
    ``slot % K`` partition and its results byte-for-byte.
    """
    rows = []
    for rate in rates:
        cluster = build_cluster(shards, store_factory=_store_factory(gdpr),
                                latency=RAW_ONE_WAY_LATENCY,
                                event_driven=True, workers=cores,
                                adaptive_batch=adaptive_batch,
                                dispatch_overhead=dispatch_overhead,
                                placement=True if placement else None)
        spec = WORKLOAD_B.scaled(record_count=record_count,
                                 operation_count=operation_count)
        if request_distribution is not None:
            spec = replace(spec,
                           request_distribution=request_distribution)
        runner = OpenLoopRunner(cluster, spec, clients=clients,
                                arrival_rate=rate, seed=seed)
        runner.preload()
        report = runner.run(operation_count)
        row = {
            "offered": rate,
            "completed_per_s": report.throughput,
            "p50_latency": report.latency.percentile(50),
            "p99_latency": report.latency.percentile(99),
            "max_backlog": float(report.max_backlog),
        }
        if cores is not None:
            pools = [node.pool for node in cluster.nodes
                     if node.pool is not None]
            row["worker_q99"] = tuple(
                worker["p99_queue_delay"]
                for pool in pools for worker in pool.worker_rows())
            row["rebalances"] = sum(
                len(pool.rebalances) for pool in pools)
            row["splits"] = sum(
                len(event.split_slots)
                for pool in pools for event in pool.rebalances)
        rows.append(row)
    return rows


def hockey_stick_table(rows: Sequence[Dict[str, float]]) -> str:
    """Render the latency-vs-offered-load curve (the bench_results
    artifact)."""
    return render_table(
        ["offered/s", "ops/s", "p50 latency us", "p99 latency us",
         "backlog"],
        [[int(row["offered"]), round(row["completed_per_s"], 1),
          round(row["p50_latency"] * 1e6, 1),
          round(row["p99_latency"] * 1e6, 1),
          int(row["max_backlog"])] for row in rows])


DEFAULT_WORKER_RATES = (20_000.0, 40_000.0, 60_000.0, 80_000.0,
                        120_000.0, 160_000.0)
KNEE_P99_CEILING = 1e-3     # "saturated" = p99 latency past 1 ms


@dataclass
class WorkerSweep:
    """The hockey stick for one worker count."""

    cores: int
    adaptive_batch: bool
    rows: List[Dict[str, float]]

    @property
    def knee(self) -> float:
        """Highest offered rate the shard absorbed with p99 latency
        still under :data:`KNEE_P99_CEILING` (0.0 if none did)."""
        good = [row["offered"] for row in self.rows
                if row["p99_latency"] <= KNEE_P99_CEILING]
        return max(good) if good else 0.0


def run_workers(core_counts: Sequence[int] = (1, 2, 4),
                rates: Sequence[float] = DEFAULT_WORKER_RATES,
                clients: int = 32, adaptive_batch: bool = True,
                dispatch_overhead: float = 0.0,
                record_count: int = 100, operation_count: int = 400,
                seed: int = 42) -> List[WorkerSweep]:
    """Workers-vs-ceiling: rerun the hockey stick per worker count.

    Same YCSB-B stream, same arrival rates, one curve per ``cores``
    value; the artifact to read is where each curve's knee sits.  One
    simulated core saturates at ~1/``BASE_COMMAND_CPU`` = 40k ops/s;
    every added core raises the ceiling by the share of slots it owns
    (zipfian-skewed, so the hottest core saturates first -- the knee
    scales sublinearly, exactly like a real partitioned shard).
    """
    return [WorkerSweep(cores=cores, adaptive_batch=adaptive_batch,
                        rows=latency_vs_load(
                            rates=rates, clients=clients,
                            record_count=record_count,
                            operation_count=operation_count,
                            cores=cores, adaptive_batch=adaptive_batch,
                            dispatch_overhead=dispatch_overhead,
                            seed=seed))
            for cores in core_counts]


def _per_core_q99(row: Dict[str, float]) -> str:
    """Render a sweep row's per-worker queue-delay p99s (us) as a
    compact ``a/b/...`` cell -- the column that makes skew imbalance
    visible per core instead of hiding inside the pool-wide EWMA."""
    delays = row.get("worker_q99")
    if not delays:
        return "-"
    return "/".join(f"{delay * 1e6:.1f}" for delay in delays)


def workers_table(sweeps: Sequence[WorkerSweep]) -> str:
    """Render all per-core hockey sticks into one table."""
    rows = []
    for sweep in sweeps:
        for row in sweep.rows:
            rows.append([
                sweep.cores, "on" if sweep.adaptive_batch else "off",
                int(row["offered"]), round(row["completed_per_s"], 1),
                round(row["p50_latency"] * 1e6, 1),
                round(row["p99_latency"] * 1e6, 1),
                int(row["max_backlog"]),
                _per_core_q99(row),
            ])
    return render_table(
        ["cores", "batch", "offered/s", "ops/s", "p50 latency us",
         "p99 latency us", "backlog", "q99 queue us/core"], rows)


def workers_ceiling_summary(sweeps: Sequence[WorkerSweep]) -> str:
    """The headline numbers: each worker count's knee, vs single-loop."""
    base = next((sweep.knee for sweep in sweeps if sweep.cores == 1),
                0.0)
    lines = [f"saturation knee (highest offered rate with p99 <= "
             f"{KNEE_P99_CEILING * 1e3:.1f} ms):"]
    for sweep in sweeps:
        scale = (f"{sweep.knee / base:.1f}x single-loop"
                 if base > 0 else "-")
        lines.append(f"  cores={sweep.cores}: "
                     f"{int(sweep.knee):>7} ops/s  ({scale})")
    return "\n".join(lines)


SKEW_RECORD_COUNT = 44   # few enough keys that theta-0.99 zipfian
#                          piles >50% of requests onto one 4-core
#                          partition -- the skew the placement layer
#                          exists to fix


@dataclass
class SkewSweep:
    """One (cores, distribution, placement) hockey stick of the skew
    sweep."""

    cores: int
    distribution: str        # "zipfian" | "uniform"
    placement: bool
    rows: List[Dict[str, float]]

    @property
    def knee(self) -> float:
        """Same saturation knee as :class:`WorkerSweep`."""
        good = [row["offered"] for row in self.rows
                if row["p99_latency"] <= KNEE_P99_CEILING]
        return max(good) if good else 0.0

    @property
    def rebalances(self) -> int:
        """Rebalance events fired across every rate of the sweep."""
        return sum(int(row.get("rebalances", 0)) for row in self.rows)

    @property
    def splits(self) -> int:
        """Hot slots read-split across every rate of the sweep."""
        return sum(int(row.get("splits", 0)) for row in self.rows)


def run_workers_skew(core_counts: Sequence[int] = (1, 2, 4),
                     rates: Sequence[float] = DEFAULT_WORKER_RATES,
                     clients: int = 32, adaptive_batch: bool = True,
                     record_count: int = SKEW_RECORD_COUNT,
                     operation_count: int = 400,
                     seed: int = 42) -> List[SkewSweep]:
    """The skew axis: zipfian vs uniform knees, static vs placed.

    Three curves per worker count over the same arrival rates:

    * **zipfian / static** -- theta-0.99 key popularity over the fixed
      ``slot % K`` partition.  One hot slot pins one core while its
      siblings idle, so the knee barely moves past the single-core
      ceiling;
    * **zipfian / placed** -- same stream with skew-aware placement on:
      the pool's :class:`~repro.cluster.workers.Rebalancer` re-homes
      hot slots (greedy LPT) and read-splits the hottest one, pushing
      the knee back toward the uniform curve;
    * **uniform / static** -- the no-skew control the placed zipfian
      curve should approach.
    """
    sweeps = []
    for cores in core_counts:
        for distribution, placement in (("zipfian", False),
                                        ("zipfian", True),
                                        ("uniform", False)):
            sweeps.append(SkewSweep(
                cores=cores, distribution=distribution,
                placement=placement,
                rows=latency_vs_load(
                    rates=rates, clients=clients,
                    record_count=record_count,
                    operation_count=operation_count,
                    cores=cores, adaptive_batch=adaptive_batch,
                    request_distribution=distribution,
                    placement=placement, seed=seed)))
    return sweeps


def workers_skew_table(sweeps: Sequence[SkewSweep]) -> str:
    """Render the skew sweep: every curve, with per-core q99 and the
    rebalance/split activity that produced it."""
    rows = []
    for sweep in sweeps:
        for row in sweep.rows:
            rows.append([
                sweep.cores, sweep.distribution,
                "on" if sweep.placement else "off",
                int(row["offered"]), round(row["completed_per_s"], 1),
                round(row["p99_latency"] * 1e6, 1),
                int(row["max_backlog"]),
                _per_core_q99(row),
                int(row.get("rebalances", 0)),
                int(row.get("splits", 0)),
            ])
    return render_table(
        ["cores", "dist", "place", "offered/s", "ops/s",
         "p99 latency us", "backlog", "q99 queue us/core", "rebal",
         "split"], rows)


def workers_skew_summary(sweeps: Sequence[SkewSweep]) -> str:
    """Headline: per-core-count knees by axis, the placed/static
    zipfian ratio, and total rebalancer activity."""
    lines = [f"saturation knee (highest offered rate with p99 <= "
             f"{KNEE_P99_CEILING * 1e3:.1f} ms):"]
    core_counts = sorted({sweep.cores for sweep in sweeps})
    by_axis = {(sweep.cores, sweep.distribution, sweep.placement): sweep
               for sweep in sweeps}
    for cores in core_counts:
        static = by_axis.get((cores, "zipfian", False))
        placed = by_axis.get((cores, "zipfian", True))
        uniform = by_axis.get((cores, "uniform", False))
        parts = []
        if static is not None:
            parts.append(f"zipf static {int(static.knee):>7}")
        if placed is not None:
            parts.append(f"zipf placed {int(placed.knee):>7}")
        if uniform is not None:
            parts.append(f"uniform {int(uniform.knee):>7}")
        lines.append(f"  cores={cores}: " + "  ".join(parts))
        if (static is not None and placed is not None
                and static.knee > 0):
            lines.append(f"    placed/static zipfian ratio: "
                         f"{placed.knee / static.knee:.2f}x")
    fired = sum(sweep.rebalances for sweep in sweeps)
    split = sum(sweep.splits for sweep in sweeps)
    lines.append(f"rebalances fired: {fired} (slots read-split: "
                 f"{split})")
    return "\n".join(lines)


@dataclass
class AutoscalePhase:
    """One constant-rate phase of the autoscale demo."""

    phase: int
    offered: float
    completed_per_s: float
    p99_latency: float       # end-to-end, seconds
    queue_ewma: float        # hottest pool's queueing-delay EWMA at end
    total_workers: int       # across all serving shards
    shards_serving: int      # shards owning populated slots
    actions: str             # autoscale actions taken during the phase


def run_autoscale_demo(rates: Sequence[float] = (30_000.0, 90_000.0,
                                                 90_000.0, 90_000.0,
                                                 90_000.0, 90_000.0),
                       ops_per_phase: int = 400, clients: int = 32,
                       max_workers: int = 2, record_count: int = 100,
                       seed: int = 42) -> List[AutoscalePhase]:
    """Close the loop: the autoscaler reacts to the hockey stick live.

    One serving shard (1 worker) plus one pre-built spare; an open-loop
    YCSB-B stream ramps from comfortable to ~2.2x the single-core
    ceiling and *stays there*.  The :class:`Autoscaler` daemon watches
    the pools' queueing-delay EWMAs and climbs its ladder while the
    runner keeps offering load: first a live ``add_worker()`` on the
    hot shard, then -- still hot at ``max_workers`` -- one scale-out
    that flips half the populated slots to the spare shard through
    event-driven :class:`SlotMigrator` streams interleaved with the
    workload.  The per-phase rows show p99 blowing past the knee and
    then recovering as each rung lands.
    """
    cluster = build_cluster(2, slot_map=SlotMap.even(1),
                            store_factory=_store_factory(False),
                            latency=RAW_ONE_WAY_LATENCY,
                            event_driven=True, workers=1)
    keys = [build_key_name(number) for number in range(record_count)]

    def spill(_scaler: Autoscaler, _target: int) -> str:
        new_shard = cluster.slots.add_shard()
        populated = sorted({slot_for_key(key) for key in keys
                            if cluster.slots.shard_of_slot(
                                slot_for_key(key)) == 0})
        moving = populated[::2]      # every other slot: an even split
        for slot in moving:
            SlotMigrator(cluster, slot, new_shard).run_as_events(
                cluster.clock, batch_size=8, interval=2e-4)
        return f"spill {len(moving)} slots -> shard {new_shard}"

    pools = [node.pool for node in cluster.nodes]
    scaler = Autoscaler(
        cluster.clock, pools,
        AutoscaleConfig(interval=1e-3, high_delay=300e-6,
                        max_workers=max_workers, cooldown=3e-3,
                        max_scale_outs=1),
        scale_out=spill)
    spec = WORKLOAD_B.scaled(record_count=record_count,
                             operation_count=ops_per_phase * len(rates))
    runner = OpenLoopRunner(cluster, spec, clients=clients,
                            arrival_rate=rates[0], seed=seed)
    runner.preload()
    scaler.start()
    phases = []
    for number, rate in enumerate(rates, start=1):
        runner.set_arrival_rate(rate)
        events_before = len(scaler.events)
        report = runner.run(ops_per_phase)
        taken = [event.action for event in scaler.events[events_before:]]
        serving = {cluster.slots.shard_of_slot(slot_for_key(key))
                   for key in keys}
        phases.append(AutoscalePhase(
            phase=number, offered=rate,
            completed_per_s=report.throughput,
            p99_latency=report.latency.percentile(99),
            queue_ewma=max(pool.queueing_delay_ewma() for pool in pools),
            total_workers=sum(pool.num_workers for pool in pools),
            shards_serving=len(serving),
            actions=",".join(taken) if taken else "-"))
    scaler.stop()
    return phases


def autoscale_table(phases: Sequence[AutoscalePhase]) -> str:
    return render_table(
        ["phase", "offered/s", "ops/s", "p99 latency us", "ewma us",
         "workers", "shards", "actions"],
        [[row.phase, int(row.offered), round(row.completed_per_s, 1),
          round(row.p99_latency * 1e6, 1),
          round(row.queue_ewma * 1e6, 1), row.total_workers,
          row.shards_serving, row.actions] for row in phases])


@dataclass
class ReplicationCell:
    """One (shards, replicas, delay, gdpr) point of the replication
    sweep."""

    shards: int
    replicas: int
    delay: float            # one-way replication delay (seconds)
    gdpr: bool
    throughput: float       # ops/s of the primary-side YCSB-B mix
    replica_reads: int      # sampled reads served from replicas
    stale_reads: int        # ...that raced an in-flight write
    horizons: int           # erasure horizons measured
    horizon_p50: float      # seconds until a DELed key left every copy
    horizon_p99: float
    horizon_max: float


def _percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending, non-empty sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * int(pct) // 100))  # ceil
    return sorted_values[min(rank, len(sorted_values)) - 1]


def run_replication_cell(shards: int, replicas: int, delay: float,
                         gdpr: bool, record_count: int = 300,
                         operation_count: int = 800,
                         erase_count: int = 16,
                         seed: int = 42) -> ReplicationCell:
    """One replication point: a cluster of ``shards``, each carrying
    ``replicas`` replicas behind a ``delay``-second stream.

    Three measurements per cell:

    * **throughput** of a depth-8 pipelined YCSB-B mix against the
      primaries (the replication fan-out itself is the only new cost);
    * a **stale-read sample**: reads routed to replicas immediately
      after the mix, counting how many raced the in-flight backlog;
    * **erasure horizons**: ``erase_count`` keys are DELed one at a time
      and the cluster-wide horizon -- simulated seconds until the key is
      invisible on every primary *and* replica -- is measured for each,
      reported as percentiles (the paper's "including all its replicas"
      requirement, quantified).
    """
    cluster = build_cluster(shards, store_factory=_store_factory(gdpr),
                            latency=RAW_ONE_WAY_LATENCY)
    # Timer pumps on the per-shard clocks: replicas apply continuously
    # as shard time advances, so the stale-read sample reflects the
    # delay window rather than an ever-growing backlog.
    replication = cluster.attach_replication(replicas_per_shard=replicas,
                                             delay=delay,
                                             pump_interval=delay / 4)
    rng = random.Random(seed)
    value = bytes(rng.randrange(32, 127) for _ in range(VALUE_SIZE))
    keys = [build_key_name(number) for number in range(record_count)]
    _pipelined_phase(cluster, [("SET", key, value) for key in keys], 8)
    throughput = _pipelined_phase(
        cluster, _request_mix(keys, value, operation_count, seed), 8)

    # Stale-read sample: replicas still hold in-flight backlog from the
    # mix, so some of these reads observe pre-write state.
    sample = keys[::max(1, len(keys) // 32)]
    reads_before = cluster.replica_reads
    stale_before = cluster.stale_replica_reads
    for key in sample:
        cluster.call("GET", key, prefer_replica=True)

    # Let replication converge, then measure per-key erasure horizons.
    cluster.sync()
    cluster.clock.advance(2 * delay)
    for node in cluster.nodes:
        node.clock.sleep_until(cluster.clock.now())
    replication.pump()
    step = max(delay / 8, 1e-4)
    horizons = []
    for key in keys[::max(1, len(keys) // erase_count)][:erase_count]:
        cluster.call("DEL", key)
        horizon = replication.erasure_horizon(
            key.encode("utf-8"), step=step, max_wait=10.0 + 4 * delay)
        if horizon is not None:
            horizons.append(horizon)
    horizons.sort()
    return ReplicationCell(
        shards=shards, replicas=replicas, delay=delay, gdpr=gdpr,
        throughput=throughput,
        replica_reads=cluster.replica_reads - reads_before,
        stale_reads=cluster.stale_replica_reads - stale_before,
        horizons=len(horizons),
        horizon_p50=_percentile(horizons, 50),
        horizon_p99=_percentile(horizons, 99),
        horizon_max=horizons[-1] if horizons else 0.0)


def run_replication(shard_counts: Sequence[int] = (1, 2),
                    replica_counts: Sequence[int] = (1, 2),
                    delays: Sequence[float] = (0.001, 0.010),
                    record_count: int = 300, operation_count: int = 800,
                    seed: int = 42) -> List[ReplicationCell]:
    """The full sweep: shards x replicas x replication delay x GDPR
    on/off.  Throughput shows what the fan-out costs the primaries;
    the horizon percentiles show what the *delay* costs compliance --
    erasure is only complete when the slowest replica catches up.
    """
    return [run_replication_cell(shards, replicas, delay, gdpr,
                                 record_count=record_count,
                                 operation_count=operation_count,
                                 seed=seed)
            for gdpr in (False, True)
            for shards in shard_counts
            for replicas in replica_counts
            for delay in delays]


def replication_table(cells: Sequence[ReplicationCell]) -> str:
    rows = []
    for cell in cells:
        stale = (cell.stale_reads / cell.replica_reads
                 if cell.replica_reads else 0.0)
        rows.append([
            cell.shards, cell.replicas,
            round(cell.delay * 1e3, 3),
            "on" if cell.gdpr else "off",
            round(cell.throughput, 1),
            f"{stale:.2f}",
            round(cell.horizon_p50 * 1e3, 3),
            round(cell.horizon_p99 * 1e3, 3),
            round(cell.horizon_max * 1e3, 3),
        ])
    return render_table(
        ["shards", "replicas", "delay ms", "gdpr", "ops/s",
         "stale frac", "hz p50 ms", "hz p99 ms", "hz max ms"],
        rows)


def replicated_erasure_fanout(shard_counts: Sequence[int] = (1, 2, 4),
                              replicas: int = 2, delay: float = 0.020,
                              subject_keys: int = 40,
                              seed: int = 7) -> List[Dict[str, float]]:
    """Art. 17 through replicas: erase one subject across every shard of
    a replicated :class:`ShardedGDPRStore` and report how long until the
    last replica stopped serving the last key.

    Replica pumps run as daemon timer events on the store's scheduler
    (``pump_interval = delay / 4``), so the horizon is measured the same
    way an event-driven deployment would observe it.
    """
    rows = []
    for shards in shard_counts:
        store = ShardedGDPRStore(num_shards=shards,
                                 kv_factory=_store_factory(gdpr=True))
        store.attach_replication(replicas_per_shard=replicas,
                                 delay=delay, pump_interval=delay / 4)
        rng = random.Random(seed)
        for number in range(subject_keys):
            owner = "alice" if number % 2 == 0 else f"other-{number % 7}"
            store.put(f"user:{number}", bytes(rng.randrange(97, 123)
                                              for _ in range(32)),
                      GDPRMetadata(owner=owner,
                                   purposes=frozenset({"service"})))
        store.clock.advance(2 * delay)   # replicas converge on the load
        keys = store.keys_of_subject("alice")
        receipt = store.erase_subject("alice")
        horizon = store.subject_erasure_horizon(keys, step=delay / 10)
        rows.append({
            "shards": float(shards),
            "total_replicas": float(replicas * shards),
            "keys_erased": float(len(receipt.keys_erased)),
            "erase_seconds": receipt.duration,
            "horizon_seconds": horizon if horizon is not None else -1.0,
            "crypto_erased": float(receipt.crypto_erased),
        })
    return rows


def erasure_fanout(shard_counts: Sequence[int] = (1, 2, 4),
                   subject_keys: int = 60,
                   seed: int = 7) -> List[Dict[str, float]]:
    """Simulated cost of a cross-shard Art. 17 erasure per shard count.

    One data subject's records spread over every shard; the erasure fans
    out DELs and AOF compaction per shard while a single crypto-erasure
    voids all shards at once.
    """
    rows = []
    for shards in shard_counts:
        # Shards run the same compliant configuration the throughput
        # sweep's GDPR-on rows use.
        store = ShardedGDPRStore(num_shards=shards,
                                 kv_factory=_store_factory(gdpr=True))
        rng = random.Random(seed)
        for number in range(subject_keys):
            owner = "alice" if number % 2 == 0 else f"other-{number % 7}"
            store.put(f"user:{number}", bytes(rng.randrange(97, 123)
                                              for _ in range(32)),
                      GDPRMetadata(owner=owner,
                                   purposes=frozenset({"service"})))
        receipt = store.erase_subject("alice")
        rows.append({
            "shards": float(shards),
            "keys_erased": float(len(receipt.keys_erased)),
            "shards_touched": float(len(receipt.shards_touched)),
            "erase_seconds": receipt.duration,
            "residual_in_aof": float(receipt.residual_in_aof),
        })
    return rows
