"""Scaling scenario: throughput vs shard count x pipeline depth, GDPR on/off.

The paper's closing argument is that GDPR-compliant storage must be
*engineered to scale*; this scenario quantifies the two levers the cluster
layer adds:

* **Pipelining** amortizes the per-round-trip channel latency over many
  requests (depth-8 pays the wire once where depth-1 pays it eight times);
* **Sharding** splits the per-command CPU and -- far more importantly for
  the GDPR configuration -- the AOF logging cost across shards that run
  concurrently, which is how a cluster claws back the paper's ~5x
  compliance slowdown.

``GDPR on`` shards run the paper's compliant configuration (AOF enabled
with read logging at everysec, the calibrated record costs from
:mod:`repro.bench.calibration`); ``off`` shards run unmodified.  The
companion :func:`erasure_fanout` measures how cross-shard Art. 17 erasure
(fan-out DELs + one shared-keystore crypto-erasure + per-shard AOF
compaction) scales with shard count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cluster import ClusterClient, ShardedGDPRStore, build_cluster
from ..common.clock import Clock
from ..device.append_log import AppendLog
from ..device.latency import INTEL_750_SSD
from ..gdpr.metadata import GDPRMetadata
from ..kvstore.store import KeyValueStore, StoreConfig
from ..ycsb.distributions import ScrambledZipfianGenerator
from ..ycsb.generator import build_key_name
from .calibration import (
    AOF_RECORD_BASE_COST,
    AOF_RECORD_PER_BYTE,
    BASE_COMMAND_CPU,
    RAW_ONE_WAY_LATENCY,
)
from .reporting import render_table

VALUE_SIZE = 100
READ_FRACTION = 0.95   # YCSB-B's read-mostly mix


@dataclass
class ScalingCell:
    """One (shards, depth, gdpr) point of the sweep."""

    shards: int
    depth: int
    gdpr: bool
    throughput: float       # ops per simulated second (run phase)
    load_throughput: float  # inserts per simulated second (load phase)


def _store_factory(gdpr: bool):
    def make(index: int, clock: Clock) -> KeyValueStore:
        if not gdpr:
            return KeyValueStore(
                StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, seed=index),
                clock=clock)
        return KeyValueStore(
            StoreConfig(command_cpu_cost=BASE_COMMAND_CPU,
                        appendonly=True, appendfsync="everysec",
                        aof_log_reads=True,
                        aof_record_base_cost=AOF_RECORD_BASE_COST,
                        aof_record_per_byte_cost=AOF_RECORD_PER_BYTE,
                        seed=index),
            clock=clock, aof_log=AppendLog(clock=clock,
                                           latency=INTEL_750_SSD))
    return make


def _pipelined_phase(cluster: ClusterClient, requests: Sequence[tuple],
                     depth: int) -> float:
    """Issue ``requests`` in depth-sized pipelined batches; ops/s."""
    start = cluster.clock.now()
    for offset in range(0, len(requests), depth):
        pipeline = cluster.pipeline()
        for args in requests[offset:offset + depth]:
            pipeline.call(*args)
        pipeline.execute()
    elapsed = cluster.clock.now() - start
    return len(requests) / elapsed if elapsed > 0 else 0.0


def run_cell(shards: int, depth: int, gdpr: bool,
             record_count: int = 300, operation_count: int = 800,
             seed: int = 42) -> ScalingCell:
    """Load then run one configuration point.

    The client models a pipelined closed-loop driver (redis-benchmark
    ``-P``): it keeps ``depth`` requests in flight per round trip.
    """
    cluster = build_cluster(shards, store_factory=_store_factory(gdpr),
                            latency=RAW_ONE_WAY_LATENCY)
    rng = random.Random(seed)
    value = bytes(rng.randrange(32, 127) for _ in range(VALUE_SIZE))
    keys = [build_key_name(number) for number in range(record_count)]
    load_tput = _pipelined_phase(
        cluster, [("SET", key, value) for key in keys], depth)
    chooser = ScrambledZipfianGenerator(0, record_count - 1,
                                        rng=random.Random(seed + 1))
    requests = []
    for _ in range(operation_count):
        key = keys[min(chooser.next_value(), record_count - 1)]
        if rng.random() < READ_FRACTION:
            requests.append(("GET", key))
        else:
            requests.append(("SET", key, value))
    run_tput = _pipelined_phase(cluster, requests, depth)
    return ScalingCell(shards=shards, depth=depth, gdpr=gdpr,
                       throughput=run_tput, load_throughput=load_tput)


def run_scaling(shard_counts: Sequence[int] = (1, 2, 4),
                depths: Sequence[int] = (1, 8),
                record_count: int = 300, operation_count: int = 800,
                seed: int = 42) -> List[ScalingCell]:
    """The full sweep: shard counts x pipeline depths x GDPR on/off."""
    return [run_cell(shards, depth, gdpr, record_count, operation_count,
                     seed=seed)
            for gdpr in (False, True)
            for shards in shard_counts
            for depth in depths]


def scaling_table(cells: Sequence[ScalingCell]) -> str:
    """Render the sweep; speedup is vs the 1-shard depth-1 cell of the
    same GDPR setting (the single-node, unpipelined baseline)."""
    baselines: Dict[bool, float] = {}
    for cell in cells:
        if cell.shards == 1 and cell.depth == 1:
            baselines[cell.gdpr] = cell.throughput
    rows = []
    for cell in cells:
        base = baselines.get(cell.gdpr, 0.0)
        rows.append([
            cell.shards, cell.depth, "on" if cell.gdpr else "off",
            round(cell.throughput, 1),
            f"{cell.throughput / base:.2f}x" if base > 0 else "-",
        ])
    return render_table(["shards", "depth", "gdpr", "ops/s", "speedup"],
                        rows)


def erasure_fanout(shard_counts: Sequence[int] = (1, 2, 4),
                   subject_keys: int = 60,
                   seed: int = 7) -> List[Dict[str, float]]:
    """Simulated cost of a cross-shard Art. 17 erasure per shard count.

    One data subject's records spread over every shard; the erasure fans
    out DELs and AOF compaction per shard while a single crypto-erasure
    voids all shards at once.
    """
    rows = []
    for shards in shard_counts:
        # Shards run the same compliant configuration the throughput
        # sweep's GDPR-on rows use.
        store = ShardedGDPRStore(num_shards=shards,
                                 kv_factory=_store_factory(gdpr=True))
        rng = random.Random(seed)
        for number in range(subject_keys):
            owner = "alice" if number % 2 == 0 else f"other-{number % 7}"
            store.put(f"user:{number}", bytes(rng.randrange(97, 123)
                                              for _ in range(32)),
                      GDPRMetadata(owner=owner,
                                   purposes=frozenset({"service"})))
        receipt = store.erase_subject("alice")
        rows.append({
            "shards": float(shards),
            "keys_erased": float(len(receipt.keys_erased)),
            "shards_touched": float(len(receipt.shards_touched)),
            "erase_seconds": receipt.duration,
            "residual_in_aof": float(receipt.residual_in_aof),
        })
    return rows
