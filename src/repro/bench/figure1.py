"""Figure 1: YCSB throughput under the three configurations.

Reproduces the paper's main performance figure: throughput across
Load-A, A, B, C, D, Load-E, E, F for *Unmodified*, *AOF w/ sync*
(``appendfsync everysec`` with read logging, the plotted configuration),
and *LUKS + TLS*.  The companion text claims -- fsync-always at ~5% of
baseline and the 6x recovery at everysec -- are covered by
:func:`run_fsync_comparison` (also used by the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ycsb.runner import RunReport, WorkloadRunner
from ..ycsb.workloads import CORE_WORKLOADS
from .calibration import FIGURE1_CONFIGS, SystemUnderTest, make_figure1_system
from .reporting import render_table

# The figure's x axis: (label, workload, phase) in plotted order.  A/B/C/D
# share the A dataset; E and F run on the E dataset, matching YCSB's
# recommended sequence and the figure's ordering.
PHASE_PLAN = (
    ("Load-A", "A", "load"),
    ("A", "A", "run"),
    ("B", "B", "run"),
    ("C", "C", "run"),
    ("D", "D", "run"),
    ("Load-E", "E", "load"),
    ("E", "E", "run"),
    ("F", "F", "run"),
)

# The A-D dataset group never scans, so (as with the YCSB Redis binding
# when scans are disabled) its adapter skips the sorted-set scan index --
# otherwise every insert would pay a second round trip that the paper's
# Load-A bar does not show.
_SCAN_GROUPS = {"E"}


@dataclass
class Figure1Cell:
    phase: str
    config: str
    throughput: float
    report: RunReport


def run_config(config: str, record_count: int = 1000,
               operation_count: int = 2000,
               seed: int = 42) -> List[Figure1Cell]:
    """Run all eight phases for one configuration (fresh store per
    dataset group, as YCSB reloads between A-D and E)."""
    cells: List[Figure1Cell] = []
    system: Optional[SystemUnderTest] = None
    runner: Optional[WorkloadRunner] = None
    for label, workload_name, phase in PHASE_PLAN:
        spec = CORE_WORKLOADS[workload_name].scaled(
            record_count=record_count, operation_count=operation_count)
        if phase == "load":
            system = make_figure1_system(config, seed=seed)
            system.adapter.maintain_scan_index = \
                workload_name in _SCAN_GROUPS
            runner = WorkloadRunner(system.adapter, spec, system.clock,
                                    seed=seed)
            report = runner.load()
        else:
            assert system is not None and runner is not None
            # A fresh runner picks up this workload's mix and request
            # distribution while inheriting the loaded dataset's insert
            # counter (so D/E inserts extend, not overwrite).
            runner = WorkloadRunner(system.adapter, spec, system.clock,
                                    seed=seed,
                                    insert_counter=runner.insert_counter)
            report = runner.run(operation_count)
        system.maybe_snapshot_to_luks()
        cells.append(Figure1Cell(phase=label, config=config,
                                 throughput=report.throughput,
                                 report=report))
    return cells


def run_figure1(configs: Sequence[str] = FIGURE1_CONFIGS,
                record_count: int = 1000, operation_count: int = 2000,
                seed: int = 42) -> Dict[str, List[Figure1Cell]]:
    """The full figure: every configuration across every phase."""
    return {config: run_config(config, record_count, operation_count, seed)
            for config in configs}


def figure1_table(results: Dict[str, List[Figure1Cell]]) -> str:
    """Render the figure as the table of throughputs it plots."""
    configs = list(results)
    phases = [cell.phase for cell in results[configs[0]]]
    headers = ["phase"] + configs + ["aof/unmod", "tls/unmod"]
    rows = []
    for index, phase in enumerate(phases):
        row: List[object] = [phase]
        values = {}
        for config in configs:
            cell = results[config][index]
            values[config] = cell.throughput
            row.append(round(cell.throughput, 1))
        base = values.get("unmodified", 0.0)
        for key in ("aof-everysec", "luks+tls"):
            if base > 0 and key in values:
                row.append(f"{values[key] / base:.2f}")
            else:
                row.append("-")
        rows.append(row)
    return render_table(headers, rows)


def run_fsync_comparison(record_count: int = 500,
                         operation_count: int = 1500,
                         seed: int = 42) -> Dict[str, float]:
    """The paper's section 4.1 numbers: throughput on YCSB-A for
    unmodified vs fsync-always vs fsync-everysec.

    Expected shape: always ~5% of unmodified; everysec ~6x better than
    always (~30% of unmodified).
    """
    throughputs: Dict[str, float] = {}
    for config in ("unmodified", "aof-always", "aof-everysec"):
        system = make_figure1_system(config, seed=seed)
        spec = CORE_WORKLOADS["A"].scaled(record_count=record_count,
                                          operation_count=operation_count)
        runner = WorkloadRunner(system.adapter, spec, system.clock,
                                seed=seed)
        runner.load()
        report = runner.run(operation_count)
        throughputs[config] = report.throughput
    return throughputs
