"""Plain-text rendering of benchmark tables and series."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a separator under the header."""
    text_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        text_rows.append([_fmt(cell) for cell in row])
    widths = [max(len(row[col]) for row in text_rows)
              for col in range(len(headers))]
    lines = []
    for index, row in enumerate(text_rows):
        lines.append("  ".join(cell.ljust(widths[col])
                               for col, cell in enumerate(row)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4g}"
    return str(cell)


def render_series(title: str, pairs: Iterable[Sequence[object]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A labelled two-column series (one figure line)."""
    lines = [title]
    lines.append(render_table([x_label, y_label], pairs))
    return "\n".join(lines)


def normalize(values: Sequence[float], baseline: float) -> List[float]:
    """Express values as fractions of a baseline (figure annotations)."""
    if baseline == 0:
        return [0.0 for _ in values]
    return [v / baseline for v in values]
