"""Micro-benchmarks for the paper's section 4.1-4.3 supporting claims.

* :func:`compare_logging_mechanisms` -- MONITOR vs slowlog vs AOF as audit
  mechanisms (section 4.1's microbenchmark that picked AOF).
* :func:`measure_channel_bandwidth` / :func:`run_tls_overhead` -- the
  stunnel proxies' bandwidth collapse and its YCSB impact (section 4.2).
* :func:`deleted_data_persistence` -- deleted keys lingering in the AOF
  until compaction, and the periodic-rewrite bound (section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common.clock import SimClock
from ..device.append_log import AppendLog
from ..device.latency import INTEL_750_SSD
from ..kvstore.aof import contains_key
from ..kvstore.store import KeyValueStore, StoreConfig
from ..net.channel import Channel, RAW_BANDWIDTH_BPS, loopback
from ..net.tls import establish_session_pair, stunnel_channel
from ..ycsb.adapters import KVAdapter
from ..ycsb.runner import WorkloadRunner
from ..ycsb.workloads import CORE_WORKLOADS
from .calibration import (
    AOF_RECORD_BASE_COST,
    AOF_RECORD_PER_BYTE,
    BASE_COMMAND_CPU,
    make_figure1_system,
)


# -- section 4.1: logging mechanism comparison -------------------------------------


def _run_workload_a(store: KeyValueStore, clock: SimClock,
                    record_count: int, operation_count: int) -> float:
    spec = CORE_WORKLOADS["A"].scaled(record_count=record_count,
                                      operation_count=operation_count)
    runner = WorkloadRunner(KVAdapter(store), spec, clock, seed=7)
    runner.load()
    return runner.run(operation_count).throughput


def compare_logging_mechanisms(record_count: int = 300,
                               operation_count: int = 1000
                               ) -> Dict[str, float]:
    """Throughput on YCSB-A under each candidate audit mechanism.

    Expected ordering (the paper's finding): AOF piggybacking beats both
    MONITOR (per-record formatting + a network stream that itself needs
    encryption) and slowlog-with-threshold-0 (per-record ring bookkeeping
    *on top of* whatever durable logging is still required -- slowlog
    entries are in-memory only, so it cannot replace the AOF).
    """
    results: Dict[str, float] = {}

    # Baseline: no logging at all.
    clock = SimClock()
    store = KeyValueStore(StoreConfig(command_cpu_cost=BASE_COMMAND_CPU),
                          clock=clock)
    results["none"] = _run_workload_a(store, clock, record_count,
                                      operation_count)

    # AOF with read logging (the mechanism the paper selected).
    clock = SimClock()
    store = KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, appendonly=True,
                    appendfsync="everysec", aof_log_reads=True,
                    aof_record_base_cost=AOF_RECORD_BASE_COST,
                    aof_record_per_byte_cost=AOF_RECORD_PER_BYTE),
        clock=clock,
        aof_log=AppendLog(clock=clock, latency=INTEL_750_SSD))
    results["aof"] = _run_workload_a(store, clock, record_count,
                                     operation_count)

    # MONITOR: stream every command to a subscriber over its own channel,
    # which must itself be TLS-protected (the paper's objection).
    clock = SimClock()
    store = KeyValueStore(StoreConfig(command_cpu_cost=BASE_COMMAND_CPU),
                          clock=clock)
    monitor_channel = stunnel_channel(clock)
    collector, auditor = establish_session_pair(monitor_channel,
                                                b"monitor-psk", clock=clock)
    store.monitor.attach(collector.send)
    results["monitor"] = _run_workload_a(store, clock, record_count,
                                         operation_count)
    auditor.recv_all()

    # Slowlog at threshold 0: ring bookkeeping per command, plus the AOF
    # still running for durability (slowlog alone is not an audit trail).
    clock = SimClock()
    store = KeyValueStore(
        StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, appendonly=True,
                    appendfsync="everysec", aof_log_reads=True,
                    aof_record_base_cost=AOF_RECORD_BASE_COST,
                    aof_record_per_byte_cost=AOF_RECORD_PER_BYTE,
                    slowlog_threshold=0.0, slowlog_max_len=1024),
        clock=clock,
        aof_log=AppendLog(clock=clock, latency=INTEL_750_SSD))
    store.slowlog.record_cost = 2e-6
    # Charge the ring bookkeeping explicitly (the Slowlog object records
    # without a clock; model its CPU as extra per-command cost).
    store.config.command_cpu_cost = BASE_COMMAND_CPU + 4e-6
    results["slowlog+aof"] = _run_workload_a(store, clock, record_count,
                                             operation_count)
    return results


# -- section 4.2: TLS / stunnel ---------------------------------------------------------


def measure_channel_bandwidth(message_bytes: int = 1 << 20,
                              messages: int = 32
                              ) -> Dict[str, float]:
    """Effective bulk bandwidth (Gb/s) of the raw vs proxied channel.

    Reproduces the paper's iperf-style observation: 44 Gb/s raw vs
    4.9 Gb/s through the stunnel proxies.
    """
    results = {}
    for name, channel in (("raw", loopback(SimClock())),
                          ("stunnel", stunnel_channel(SimClock()))):
        sender, receiver = channel.endpoints()
        clock = channel.clock
        start = clock.now()
        payload = b"\x00" * message_bytes
        for _ in range(messages):
            sender.send(payload)
            receiver.recv()
        elapsed = clock.now() - start
        total_bits = message_bytes * messages * 8
        results[name] = total_bits / elapsed / 1e9
    return results


def run_tls_overhead(record_count: int = 300,
                     operation_count: int = 1000) -> Dict[str, float]:
    """YCSB-A throughput: plaintext channel vs the full TLS deployment."""
    out = {}
    for config in ("unmodified", "luks+tls"):
        system = make_figure1_system(config)
        spec = CORE_WORKLOADS["A"].scaled(record_count=record_count,
                                          operation_count=operation_count)
        runner = WorkloadRunner(system.adapter, spec, system.clock, seed=7)
        runner.load()
        out[config] = runner.run(operation_count).throughput
    return out


# -- section 4.3: deleted data persisting in the AOF ---------------------------------------


@dataclass
class PersistenceProbe:
    deleted_key: bytes
    in_aof_after_delete: bool
    in_aof_after_rewrite: bool
    seconds_until_purged: Optional[float]


def deleted_data_persistence(rewrite_interval: float = 3600.0
                             ) -> PersistenceProbe:
    """Delete a key, then watch the AOF until compaction purges it.

    With an hourly rewrite policy the purge is bounded by one hour --
    the paper's suggested eventual-compliance configuration.
    """
    clock = SimClock()
    store = KeyValueStore(
        StoreConfig(appendonly=True, appendfsync="everysec",
                    aof_rewrite_interval=rewrite_interval),
        clock=clock)
    key = b"subject:doomed"
    store.execute("SET", key, b"personal-data")
    store.execute("DEL", key)
    aof = store.aof_log.read_all()
    after_delete = contains_key(aof, key)
    deleted_at = clock.now()
    purged_at: Optional[float] = None
    # Walk simulated time until the periodic rewrite fires.
    step = max(rewrite_interval / 64.0, 1.0)
    for _ in range(200):
        clock.advance(step)
        store.tick()
        if not contains_key(store.aof_log.read_all(), key):
            purged_at = clock.now()
            break
    after_rewrite = contains_key(store.aof_log.read_all(), key)
    return PersistenceProbe(
        deleted_key=key,
        in_aof_after_delete=after_delete,
        in_aof_after_rewrite=after_rewrite,
        seconds_until_purged=(None if purged_at is None
                              else purged_at - deleted_at))


def rewrite_cost_curve(key_counts: Tuple[int, ...] = (100, 2000, 40_000),
                       value_size: int = 500
                       ) -> List[Tuple[int, float]]:
    """Simulated cost of BGREWRITEAOF vs live dataset size (the reason
    Redis does not compact on every delete).

    The rewrite pays one fsync (constant) plus per-byte media cost, so
    the curve flattens at tiny datasets and grows linearly past the
    point where data volume dominates the barrier.
    """
    points = []
    for count in key_counts:
        clock = SimClock()
        store = KeyValueStore(
            StoreConfig(appendonly=True),
            clock=clock,
            aof_log=AppendLog(clock=clock, latency=INTEL_750_SSD))
        db = store.databases[0]
        for i in range(count):
            db.set_value(f"k{i}".encode(), b"v" * value_size)
        start = clock.now()
        store.rewrite_aof()
        points.append((count, clock.now() - start))
    return points
