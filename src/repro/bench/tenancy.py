"""Tenancy scenario: quota isolation under a noisy neighbour.

Two tenants share one event-driven cluster.  The *quiet* tenant runs a
steady YCSB-A stream inside its rate; the *noisy* tenant offers several
times its ops/s quota, so the admission gate throttles the excess with
``QUOTAEXCEEDED`` before the engine sees it.  The scenario reports, per
stream:

* what the gate **admitted** vs **throttled** (the noisy tenant's
  admitted rate converges on its quota -- the cap holds);
* the quiet tenant's **p99 latency**, next to a solo baseline run of the
  same stream on an idle cluster -- quota enforcement is the isolation
  mechanism, so the neighbour's pressure must not leak into the quiet
  tenant's tail;
* the **metering chain**: per-tenant usage reports sealed into the
  block-mode audit log and re-verified, so the throttle counts above are
  also billing-grade evidence.

Same seed => identical numbers, byte for byte; CI diffs two runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..common.clock import SimClock
from ..cluster import build_cluster
from ..kvstore import KeyValueStore, StoreConfig
from ..tenancy import (
    MeteringPipeline,
    TenantGate,
    TenantQuota,
    TenantRegistry,
)
from ..ycsb.openloop import OpenLoopReport, OpenLoopRunner
from ..ycsb.workloads import WorkloadSpec
from .calibration import BASE_COMMAND_CPU
from .reporting import render_table

SHARDS = 2
CLIENTS = 4
SEED = 42

QUIET_RATE = 2_000.0            # offered, well inside capacity
NOISY_QUOTA = 3_000.0           # ops/s the noisy tenant paid for
NOISY_BURST = 50.0              # modest burst: the cap binds quickly
NOISY_OFFERED = 4 * NOISY_QUOTA  # pressure: 4x over quota


@dataclass
class TenantStream:
    """One tenant's view of a run."""

    tenant: str
    phase: str                  # "solo" or "contended"
    offered_rate: float
    completed: int
    throttled: int
    admitted_rate: float        # ops the engine actually served, per sec
    p99_ms: float


@dataclass
class TenancyResult:
    streams: List[TenantStream]
    metering_reports: int       # usage-reports sealed on the chain
    metering_verified: int      # chain members re-verified after the run
    usage: Dict[str, Dict[str, int]]   # tenant -> summed report deltas


def _registry() -> TenantRegistry:
    registry = TenantRegistry()
    registry.register("quiet")          # no quota: inside its rate
    registry.register("noisy", quota=TenantQuota(
        ops_per_sec=NOISY_QUOTA, burst=NOISY_BURST))
    return registry


def _make_cluster():
    clock = SimClock()
    gate = TenantGate(_registry(), clock)

    def store_factory(index, node_clock):
        return KeyValueStore(
            StoreConfig(command_cpu_cost=BASE_COMMAND_CPU, seed=index),
            clock=node_clock)

    cluster = build_cluster(SHARDS, store_factory=store_factory,
                            clock=clock, event_driven=True,
                            tenant_gate=gate)
    return cluster, gate, clock


def _spec(name: str, record_count: int, operation_count: int,
          scale: float = 1.0) -> WorkloadSpec:
    return WorkloadSpec(name=name, read_proportion=0.5,
                        update_proportion=0.5,
                        record_count=record_count,
                        operation_count=max(1, int(
                            operation_count * scale)))


def _stream(tenant: str, phase: str, offered: float,
            report: OpenLoopReport) -> TenantStream:
    served = report.completed - report.throttled
    rate = served / report.sim_elapsed if report.sim_elapsed > 0 else 0.0
    return TenantStream(
        tenant=tenant, phase=phase, offered_rate=offered,
        completed=report.completed, throttled=report.throttled,
        admitted_rate=rate,
        p99_ms=report.latency.percentile(99) * 1e3)


def run_tenancy(record_count: int = 300,
                operation_count: int = 800) -> TenancyResult:
    """The two-phase comparison: quiet tenant solo, then both."""
    # Phase A -- the quiet tenant alone on an idle cluster.
    cluster, _, _ = _make_cluster()
    solo = OpenLoopRunner(
        cluster, _spec("quiet-mix", record_count, operation_count),
        clients=CLIENTS, arrival_rate=QUIET_RATE, seed=SEED,
        tenant="quiet").run()

    # Phase B -- same quiet stream, now next to the noisy neighbour.
    # Both runners share the clock: begin() both, drain, finish() both.
    cluster, gate, clock = _make_cluster()
    pipeline = MeteringPipeline(gate, clock=clock, interval=0.1)
    quiet_runner = OpenLoopRunner(
        cluster, _spec("quiet-mix", record_count, operation_count),
        clients=CLIENTS, arrival_rate=QUIET_RATE, seed=SEED,
        tenant="quiet")
    noisy_runner = OpenLoopRunner(
        cluster,
        _spec("noisy-mix", record_count, operation_count,
              scale=NOISY_OFFERED / QUIET_RATE),
        clients=CLIENTS, arrival_rate=NOISY_OFFERED, seed=SEED + 1,
        tenant="noisy")
    quiet_runner.begin()
    noisy_runner.begin()
    clock.run_until_idle()
    quiet = quiet_runner.finish()
    noisy = noisy_runner.finish()
    pipeline.flush()
    pipeline.stop_timer()

    usage = {tenant: pipeline.totals_of(tenant)
             for tenant in ("quiet", "noisy")}
    return TenancyResult(
        streams=[
            _stream("quiet", "solo", QUIET_RATE, solo),
            _stream("quiet", "contended", QUIET_RATE, quiet),
            _stream("noisy", "contended", NOISY_OFFERED, noisy),
        ],
        metering_reports=len(pipeline.reports),
        metering_verified=pipeline.verify(),
        usage=usage)


def tenancy_table(result: TenancyResult) -> str:
    header = ["tenant", "phase", "offered/s", "completed", "throttled",
              "admitted/s", "p99_ms"]
    rows = [[s.tenant, s.phase, int(s.offered_rate), s.completed,
             s.throttled, round(s.admitted_rate, 1), round(s.p99_ms, 3)]
            for s in result.streams]
    lines = [render_table(header, rows)]
    noisy = next(s for s in result.streams if s.tenant == "noisy")
    quiet_solo = next(s for s in result.streams
                      if (s.tenant, s.phase) == ("quiet", "solo"))
    quiet_both = next(s for s in result.streams
                      if (s.tenant, s.phase) == ("quiet", "contended"))
    lines.append("")
    lines.append(f"noisy admitted rate vs quota: "
                 f"{noisy.admitted_rate:.1f} / {NOISY_QUOTA:.0f} ops/s "
                 f"({noisy.admitted_rate / NOISY_QUOTA:.0%})")
    ratio = (quiet_both.p99_ms / quiet_solo.p99_ms
             if quiet_solo.p99_ms > 0 else float("inf"))
    lines.append(f"quiet p99 contended vs solo: "
                 f"{quiet_both.p99_ms:.3f} ms / "
                 f"{quiet_solo.p99_ms:.3f} ms ({ratio:.2f}x)")
    lines.append(f"metering: {result.metering_reports} usage-reports "
                 f"sealed, {result.metering_verified} chain members "
                 f"verified")
    noisy_usage = result.usage["noisy"]
    lines.append(f"noisy tenant billed: {noisy_usage.get('ops', 0)} "
                 f"admitted ops, {noisy_usage.get('throttled', 0)} "
                 f"throttles on the chain")
    return "\n".join(lines)
