"""Figure 2: delay in erasing expired keys vs. database size.

The paper's experiment: populate the store so that 20% of keys expire in
5 minutes (short-term) and 80% in 5 days; once the 5 minutes elapse,
measure how long Redis takes to actually erase the short-term keys.

Under the faithful port of Redis 4.0's lazy probabilistic expiry the time
grows roughly linearly with total keys (the sampler deletes ~20 x
expired-fraction keys per 100 ms tick and the fraction decays), matching
the paper's 41 s at 1k keys -> ~3 h at 128k keys.  The paper's modified
full-scan expiry (and the indexed strategy from section 5.1) erase
everything within one cron tick: sub-second up to 1M keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.clock import SimClock
from ..kvstore.store import KeyValueStore, StoreConfig
from .reporting import render_table

SHORT_TTL = 300.0          # 5 minutes
LONG_TTL = 5 * 86400.0     # 5 days
SHORT_FRACTION = 0.2

# Paper's measured erasure delays (seconds) for the lazy strategy.
PAPER_LAZY_SECONDS = {
    1_000: 41.0, 2_000: 94.0, 4_000: 256.0, 8_000: 511.0,
    16_000: 1090.0, 32_000: 2228.0, 64_000: 4830.0, 128_000: 10728.0,
}

DEFAULT_SIZES = (1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000,
                 128_000)


@dataclass
class ErasureMeasurement:
    total_keys: int
    short_keys: int
    strategy: str
    erase_seconds: float      # last short-term key gone, after expiry
    cycles: int
    completed: bool           # False if the safety cap was hit


def populate_expiring(store: KeyValueStore, total_keys: int,
                      short_fraction: float = SHORT_FRACTION,
                      short_ttl: float = SHORT_TTL,
                      long_ttl: float = LONG_TTL) -> int:
    """Bulk-load ``total_keys`` with the paper's TTL mix.

    Uses the direct keyspace API (the loader fast-path) so benchmark time
    is spent measuring expiry, not command dispatch.  Returns the number
    of short-term keys.
    """
    db = store.databases[0]
    now = store.clock.now()
    short_keys = int(total_keys * short_fraction)
    for i in range(total_keys):
        key = f"key:{i:08d}".encode("ascii")
        db.set_value(key, b"x" * 8)
        ttl = short_ttl if i < short_keys else long_ttl
        store.set_key_expiry(db, key, now + ttl)
    return short_keys


def measure_erasure_delay(total_keys: int, strategy: str = "lazy",
                          hz: int = 10, seed: int = 0,
                          sim_cap: float = 86400.0,
                          short_fraction: float = SHORT_FRACTION,
                          short_ttl: float = SHORT_TTL,
                          long_ttl: float = LONG_TTL
                          ) -> ErasureMeasurement:
    """One point of Figure 2.

    Runs the cron loop in simulated time until every short-term key is
    erased (or ``sim_cap`` simulated seconds pass) and reports the delay
    beyond the expiry instant.
    """
    clock = SimClock()
    store = KeyValueStore(
        StoreConfig(expiry_strategy=strategy, hz=hz, seed=seed),
        clock=clock)
    short_keys = populate_expiring(store, total_keys, short_fraction,
                                   short_ttl, long_ttl)
    last_erasure: List[float] = [0.0]

    def listener(db_index: int, key: bytes, reason: str,
                 when: float) -> None:
        last_erasure[0] = when

    store.add_deletion_listener(listener)
    # Jump to the expiry boundary; nothing can expire before it.
    clock.advance(short_ttl + 1e-3)
    expiry_instant = short_ttl
    tick = 1.0 / hz
    cycles = 0
    completed = True
    while store.stats.expired_keys < short_keys:
        if clock.now() - expiry_instant > sim_cap:
            completed = False
            break
        store.cron(clock.now())
        cycles += 1
        if store.stats.expired_keys >= short_keys:
            break
        clock.advance(tick)
    erase_seconds = (last_erasure[0] - expiry_instant if completed
                     else clock.now() - expiry_instant)
    return ErasureMeasurement(
        total_keys=total_keys, short_keys=short_keys, strategy=strategy,
        erase_seconds=erase_seconds, cycles=cycles, completed=completed)


def run_figure2(sizes: Sequence[int] = DEFAULT_SIZES,
                strategies: Sequence[str] = ("lazy", "fullscan"),
                seed: int = 0
                ) -> Dict[str, List[ErasureMeasurement]]:
    """The full figure: erasure delay per size, per strategy."""
    return {
        strategy: [measure_erasure_delay(size, strategy=strategy,
                                         seed=seed)
                   for size in sizes]
        for strategy in strategies
    }


def figure2_table(results: Dict[str, List[ErasureMeasurement]]) -> str:
    strategies = list(results)
    sizes = [m.total_keys for m in results[strategies[0]]]
    headers = (["total_keys", "expired_keys"]
               + [f"{s}_erase_s" for s in strategies]
               + ["paper_lazy_s"])
    rows = []
    for index, size in enumerate(sizes):
        row: List[object] = [size, results[strategies[0]][index].short_keys]
        for strategy in strategies:
            row.append(round(results[strategy][index].erase_seconds, 3))
        row.append(PAPER_LAZY_SECONDS.get(size, "-"))
        rows.append(row)
    return render_table(headers, rows)


def doubling_ratios(measurements: List[ErasureMeasurement]
                    ) -> List[Tuple[int, float]]:
    """Erase-time growth factor per size doubling (paper shape: ~2x)."""
    out = []
    for previous, current in zip(measurements, measurements[1:]):
        if previous.erase_seconds > 0:
            out.append((current.total_keys,
                        current.erase_seconds / previous.erase_seconds))
    return out
