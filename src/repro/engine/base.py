"""The storage-engine interface every upper layer programs against.

The paper's central experiment runs the *same* GDPR feature set over two
different storage systems -- a Redis-like key-value store and PostgreSQL
-- and compares what compliance costs each.  Making that comparison
reproducible end-to-end means the GDPR layer, the RESP servers, the
cluster (sharding, migration, replication), and the YCSB adapters must
not care which engine they sit on.  :class:`StorageEngine` is that seam.

An engine owns a keyspace and speaks the command vocabulary (``execute``
takes Redis-shaped argv; the relational engine translates each command
into a prepared SQL statement internally).  Around the commands, the
interface pins down the observation and durability seams the stack is
built on:

* **Write-stream taps** (:meth:`add_write_listener`) -- the effective,
  post-translation write stream (expirations travel as DELs, relative
  TTLs as absolute PEXPIREAT).  Replication links and slot migrators
  subscribe here.
* **Deletion taps** (:meth:`add_deletion_listener`) -- every key removal
  with its reason (``del`` / ``lazy-expire`` / ``active-expire``).  The
  GDPR layer timestamps erasures off this; migrators cascade deletes.
* **Keyspace views** (:meth:`live_keys`, :meth:`has_live_key`,
  :meth:`scan_records`, :meth:`key_count`) -- expiry-aware reads of the
  keyspace that never mutate it.  Slot-aware servers, migrators, and the
  GDPR index rebuild use these instead of poking engine internals.
* **Durability hooks** (:attr:`aof_log`, :meth:`replay_aof`,
  :meth:`rewrite_aof`, snapshots) -- one name for "the engine's durable
  command log" whether it is a Redis AOF or a relational WAL, so erasure
  residual checks and crash recovery work identically on both.
* **Replica spawning** (:meth:`spawn_replica`) -- a fresh, zero-cost
  same-engine store for replication defaults, so a relational primary
  gets relational replicas without the replication layer knowing.
* **Metadata-column hooks** (:meth:`annotate_metadata`,
  :meth:`keys_of_owner`) -- the paper's schema split: the relational
  engine stores GDPR metadata as extra *indexed columns* and can answer
  owner queries natively; the key-value engine keeps the sidecar
  metadata index, so the base implementations are no-ops.

Costs stay engine-specific: each engine charges its own CPU, device,
and log costs to the clock it was built on, which is what makes the
``backends`` bench scenario's per-feature comparison meaningful.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Type,
)

DeletionListener = Callable[[int, bytes, str, float], None]
# (db_index, translated argv) for every effective write -- the stream a
# replica applies.  Commands arrive post-translation (PEXPIREAT, DELs
# for expirations) so replicas converge deterministically.
WriteListener = Callable[[int, List[bytes]], None]


class StoredRecord(NamedTuple):
    """One live keyspace entry, as :meth:`StorageEngine.scan_records`
    yields it: the key, the engine-native value, and the absolute expiry
    deadline (seconds on the engine's clock), if any."""

    key: bytes
    value: Any
    expire_at: Optional[float]


class EngineStats:
    """Counters every engine maintains (the INFO-style view)."""

    def __init__(self) -> None:
        self.commands_processed = 0
        self.expired_keys = 0
        self.deleted_keys = 0
        self.keyspace_hits = 0
        self.keyspace_misses = 0


class StorageEngine:
    """Abstract base for storage backends.

    Subclasses must provide the attributes ``clock``, ``config``,
    ``stats``, ``monitor``, and ``aof_log`` (the durable command log, or
    None when durability is off) in addition to the abstract methods
    below.  Listener management is implemented here so every engine
    shares one subscription semantics.
    """

    #: Registry name ("redislike", "relational", ...).
    engine_name: str = "abstract"

    #: True when the engine stores GDPR metadata as indexed columns
    #: (the relational schema approach); the GDPR layer then prefers
    #: :meth:`keys_of_owner` over its sidecar index for owner queries.
    supports_metadata_columns: bool = False

    #: True when the engine's SET accepts an absolute expiry option
    #: (``PXAT``), letting the GDPR layer fuse value + retention deadline
    #: into ONE command (and one AOF record) instead of SET + PEXPIREAT.
    supports_set_with_expiry: bool = False

    #: True when the engine is a tiering layer (a hot engine plus a cold
    #: segment archive presenting one keyspace).  The GDPR layer then
    #: attaches its keystore (so demoted values seal under per-subject
    #: keys), audits tier events, and extends Art. 17 to the archive via
    #: ``erase_subject_cold``.
    supports_tiering: bool = False

    def __init__(self) -> None:
        self.deletion_listeners: List[DeletionListener] = []
        self.write_listeners: List[WriteListener] = []

    # -- command surface ---------------------------------------------------

    def execute(self, *args: Any, session: Optional[Any] = None) -> Any:
        """Execute one command (Redis-shaped argv; str/bytes/int/float
        arguments are normalized to bytes)."""
        raise NotImplementedError

    def session(self, db_index: int = 0) -> Any:
        """A fresh client session (its own SELECTed database)."""
        raise NotImplementedError

    def tick(self) -> None:
        """Run due background work (expiry cycles, log fsync, vacuum)."""
        raise NotImplementedError

    # -- keyspace views (expiry-aware, never mutating) ---------------------

    def live_keys(self, db_index: int = 0) -> List[bytes]:
        """Every non-expired key, in the engine's natural order."""
        raise NotImplementedError

    def has_live_key(self, key: bytes, db_index: int = 0) -> bool:
        """Does the keyspace currently serve ``key``?  (No lazy-expire
        side effects: a pure visibility probe.)"""
        raise NotImplementedError

    def scan_records(self, db_index: int = 0) -> Iterator[StoredRecord]:
        """Iterate live records -- the restart/index-rebuild path."""
        raise NotImplementedError

    def key_count(self, db_index: int = 0) -> int:
        """Number of keys (expired-but-unreclaimed entries included,
        matching DBSIZE semantics on both engines)."""
        raise NotImplementedError

    # -- namespaced keyspace views (tenancy) -------------------------------
    #
    # Shared prefix-filtered views over the abstract keyspace: the
    # tenancy layer scopes KEYS/SCAN/DBSIZE and footprint audits to one
    # tenant's ``tenant/`` namespace through these, so every engine
    # (and the tiered wrapper) gets tenant-scoped views for free.
    # Engines with a sorted keyspace index may override with a range
    # scan.

    def live_keys_with_prefix(self, prefix: str,
                              db_index: int = 0) -> List[bytes]:
        """Every non-expired key inside ``prefix``'s namespace."""
        needle = prefix.encode("utf-8")
        return [key for key in self.live_keys(db_index)
                if key.startswith(needle)]

    def key_count_with_prefix(self, prefix: str, db_index: int = 0) -> int:
        """Live-key count inside ``prefix``'s namespace (the
        tenant-scoped DBSIZE)."""
        return len(self.live_keys_with_prefix(prefix, db_index))

    # -- durability --------------------------------------------------------

    def save_snapshot(self) -> bytes:
        """Point-in-time serialization of the whole keyspace."""
        raise NotImplementedError

    def load_snapshot(self, data: bytes) -> int:
        """Restore from snapshot bytes; returns records loaded."""
        raise NotImplementedError

    def replay_aof(self, data: Optional[bytes] = None,
                   tolerate_truncated_tail: bool = True) -> int:
        """Rebuild state from the durable command log (AOF or WAL)."""
        raise NotImplementedError

    def rewrite_aof(self) -> int:
        """Compact the durable command log to current live state
        (BGREWRITEAOF / WAL checkpoint); returns the new log size."""
        raise NotImplementedError

    # -- tiering hook ------------------------------------------------------

    def demote_remove(self, key: bytes, db_index: int = 0) -> bool:
        """Remove ``key`` from the keyspace on behalf of a tiering layer
        that has just sealed a durable cold copy.

        Contract (both engines implement it): the deletion tap fires
        with reason ``"demote"`` (so compliance layers keep their
        metadata -- a tier move is not an erasure), the durable log
        records a DEL (the record's durable home is now the cold
        device), and the effective-write stream stays **silent** --
        replicas keep serving their full copy.  Returns True when a
        record was removed."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support tier demotion")

    # -- replication -------------------------------------------------------

    def spawn_replica(self, clock: Optional[Any] = None) -> "StorageEngine":
        """A fresh same-engine store suitable as a replication target:
        zero configured costs (the replica's apply work must not slow
        the primary's timeline) and no durable log of its own."""
        raise NotImplementedError

    # -- GDPR metadata columns (relational schema hooks) -------------------

    def annotate_metadata(self, key: str, owner: str,
                          purposes: Iterable[str]) -> None:
        """Record GDPR metadata for ``key`` in engine-native storage.

        The relational engine implements this as an UPDATE of its
        indexed ``owner``/``purposes`` columns; key-value engines keep
        metadata in the sealed envelope plus the GDPR layer's sidecar
        index, so the default is a no-op."""

    def keys_of_owner(self, owner: str) -> Optional[List[str]]:
        """Keys whose metadata columns name ``owner``, or None when the
        engine has no native metadata index (caller falls back to the
        GDPR layer's sidecar)."""
        return None

    # -- listeners ---------------------------------------------------------

    def add_deletion_listener(self, listener: DeletionListener) -> None:
        """Subscribe to every key removal (reason: del / lazy-expire /
        active-expire).  The GDPR layer uses this to timestamp
        erasures."""
        self.deletion_listeners.append(listener)

    def remove_deletion_listener(self, listener: DeletionListener) -> None:
        """Unsubscribe a deletion listener (no-op if absent); slot
        migrators detach when their migration finishes."""
        if listener in self.deletion_listeners:
            self.deletion_listeners.remove(listener)

    def add_write_listener(self, listener: WriteListener) -> None:
        """Subscribe to the effective-write stream (replication feed)."""
        self.write_listeners.append(listener)

    def remove_write_listener(self, listener: WriteListener) -> None:
        """Unsubscribe a write listener (no-op if absent)."""
        if listener in self.write_listeners:
            self.write_listeners.remove(listener)

    def notify_deletion(self, db_index: int, key: bytes, reason: str,
                        when: float) -> None:
        for listener in self.deletion_listeners:
            listener(db_index, key, reason, when)

    def notify_write(self, db_index: int, argv: List[bytes]) -> None:
        for listener in self.write_listeners:
            listener(db_index, argv)


#: name -> engine class; the ``backends`` scenario and the conformance
#: suite iterate this.
ENGINES: Dict[str, Type[StorageEngine]] = {}


def register_engine(name: str, cls: Type[StorageEngine]) -> None:
    """Register an engine class under ``name`` (idempotent per class)."""
    existing = ENGINES.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"engine name {name!r} already registered "
                         f"to {existing.__name__}")
    ENGINES[name] = cls
