"""Pluggable storage engines behind one interface.

``repro.engine.base.StorageEngine`` is the contract; concrete engines:

* :class:`repro.kvstore.store.KeyValueStore` -- the Redis-like
  hash-table store (``engine_name="redislike"``);
* :class:`repro.sqlstore.engine.RelationalStore` -- the PostgreSQL-style
  relational backend (``engine_name="relational"``).

Importing the engine modules registers them in :data:`ENGINES`.
"""

from .base import (
    ENGINES,
    DeletionListener,
    EngineStats,
    StorageEngine,
    StoredRecord,
    WriteListener,
    register_engine,
)

__all__ = [
    "ENGINES",
    "DeletionListener",
    "EngineStats",
    "StorageEngine",
    "StoredRecord",
    "WriteListener",
    "register_engine",
]
