"""Cold segment store: batch-sealed, checksummed, compressed archives.

A :class:`ColdSegmentStore` is the archive half of the tiered keyspace.
It lives on one :class:`~repro.device.append_log.AppendLog` device and
speaks a framed, self-describing format so a store can be rebuilt from
device bytes alone after a crash:

``frame := magic(4) | u32 body_len | body | u32 crc32(body)``

Four frame kinds:

* ``CSG1`` -- a sealed segment: JSON header (entry count, payload CRC,
  sealing timestamp), the two serialized bloom filters (member keys,
  member subjects), then the zlib-compressed entry payload.  Values of
  entries with a known data subject are sealed under that subject's key
  from the shared :class:`~repro.crypto.keystore.KeyStore`, so
  crypto-erasure voids them in place -- no segment rewrite.
* ``CTB1`` -- a key tombstone, versioned by segment sequence: it kills
  copies of the key in segments up to ``up_to_seq`` but not copies
  sealed later (a key may be demoted again after a promote).
* ``CSB1`` -- a subject-erasure marker: every entry owned by the subject
  is dead in every segment, past and future (mirrors the keystore's
  tombstone-forever semantics).
* ``CCL1`` -- a clear marker (FLUSHDB/FLUSHALL reached the archive).

Durability discipline: sealing and deletion-like mutations end with a
``flush(); fsync()`` barrier *before* the caller removes hot copies, so
a crash at any point leaves the record in at least one tier and never
resurrects a deleted one.  A torn final frame (crash mid-seal) fails its
length or CRC check and is dropped at recovery.
"""

from __future__ import annotations

import heapq
import json
import struct
import zlib
from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from ..common.hashing import crc32_of
from ..device.append_log import AppendLog
from .bloom import BloomFilter

MAGIC_SEGMENT = b"CSG1"
MAGIC_TOMBSTONE = b"CTB1"
MAGIC_SUBJECT = b"CSB1"
MAGIC_CLEAR = b"CCL1"

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")

_FLAG_ENCRYPTED = 1
_FLAG_EXPIRE = 2
_FLAG_OWNER = 4

#: Decompressed segments kept around for repeat lookups (page cache).
_DECODE_CACHE_SEGMENTS = 4

#: AAD prefix binding a cold ciphertext to its key, so a sealed value
#: cannot be replayed under a different key name.
_COLD_AAD_PREFIX = b"cold:"


class ColdInput(NamedTuple):
    """One record handed to :meth:`ColdSegmentStore.seal`."""

    key: bytes
    value: bytes
    expire_at: Optional[float]
    owner: Optional[str]


class ColdEntry(NamedTuple):
    """One archived record, as stored inside a segment."""

    seq: int
    key: bytes
    stored: bytes            # ciphertext when encrypted, else plaintext
    encrypted: bool
    expire_at: Optional[float]
    owner: Optional[str]


class SegmentInfo(NamedTuple):
    """The in-RAM index entry for one sealed segment."""

    seq: int
    count: int
    sealed_at: float
    payload_crc: int
    compressed: bytes        # the resident (compressed) form
    key_bloom: BloomFilter
    subject_bloom: BloomFilter


def _pack_entries(entries: List[ColdEntry]) -> bytes:
    parts: List[bytes] = []
    for entry in entries:
        flags = 0
        if entry.encrypted:
            flags |= _FLAG_ENCRYPTED
        if entry.expire_at is not None:
            flags |= _FLAG_EXPIRE
        if entry.owner is not None:
            flags |= _FLAG_OWNER
        parts.append(_U32.pack(len(entry.key)))
        parts.append(entry.key)
        parts.append(bytes([flags]))
        if entry.expire_at is not None:
            parts.append(_F64.pack(entry.expire_at))
        if entry.owner is not None:
            owner = entry.owner.encode("utf-8")
            parts.append(_U32.pack(len(owner)))
            parts.append(owner)
        parts.append(_U32.pack(len(entry.stored)))
        parts.append(entry.stored)
    return b"".join(parts)


def _unpack_entries(seq: int, payload: bytes) -> List[ColdEntry]:
    entries: List[ColdEntry] = []
    pos = 0
    end = len(payload)
    while pos < end:
        (klen,) = _U32.unpack_from(payload, pos)
        pos += 4
        key = payload[pos:pos + klen]
        pos += klen
        flags = payload[pos]
        pos += 1
        expire_at = None
        if flags & _FLAG_EXPIRE:
            (expire_at,) = _F64.unpack_from(payload, pos)
            pos += 8
        owner = None
        if flags & _FLAG_OWNER:
            (olen,) = _U32.unpack_from(payload, pos)
            pos += 4
            owner = payload[pos:pos + olen].decode("utf-8")
            pos += olen
        (vlen,) = _U32.unpack_from(payload, pos)
        pos += 4
        stored = payload[pos:pos + vlen]
        pos += vlen
        entries.append(ColdEntry(seq, key, stored,
                                 bool(flags & _FLAG_ENCRYPTED),
                                 expire_at, owner))
    return entries


class ColdSegmentStore:
    """The archive tier on one append-only device.

    The resident state is deliberately small: per segment the compressed
    bytes plus two bloom filters, a global expiry heap for TTL'd cold
    entries, and the tombstone maps.  There is NO exact key index --
    membership is answered bloom-first, decompressing only candidate
    segments (counted in :attr:`bloom_false_positives` when the
    candidate misses).
    """

    def __init__(self, device: Optional[AppendLog] = None,
                 keystore: Optional[object] = None,
                 fp_rate: float = 0.01,
                 compress_level: int = 6) -> None:
        self.device = device if device is not None else AppendLog(name="cold.seg")
        self.keystore = keystore
        self.fp_rate = fp_rate
        self.compress_level = compress_level
        self._segments: "OrderedDict[int, SegmentInfo]" = OrderedDict()
        self._next_seq = 0
        # key -> highest segment seq whose copies are dead.
        self._dead_upto: Dict[bytes, int] = {}
        # The durably-persisted subset of the above: a non-durable
        # tombstone (promote eviction, shadow eviction) may be lost to
        # power loss, so a later deletion-like mutation must be able to
        # re-issue it durably even though RAM already considers the key
        # dead.
        self._dead_durable: Dict[bytes, int] = {}
        self._erased_subjects: Set[str] = set()
        # (expire_at, seq, key) heap-ordered list for active cold expiry.
        self._expiry: List[Tuple[float, int, bytes]] = []
        # Decompressed-entry cache, seq -> {key: ColdEntry} (newest wins
        # inside one segment is irrelevant: keys are unique per segment).
        self._decode_cache: "OrderedDict[int, Dict[bytes, ColdEntry]]" = OrderedDict()
        # Counters (cold_stats surface).
        self.seals = 0
        self.sealed_entries = 0
        self.tombstones = 0
        self.subject_erasures = 0
        self.bloom_false_positives = 0
        self.decompressions = 0
        self.recovered_segments = 0
        self.torn_frames_dropped = 0
        if self.device.total_length:
            self._recover()

    # -- small helpers -------------------------------------------------------

    def attach_keystore(self, keystore: object) -> None:
        self.keystore = keystore

    def _frame(self, magic: bytes, body: bytes) -> bytes:
        return magic + _U32.pack(len(body)) + body + _U32.pack(crc32_of(body))

    def _append_frame(self, magic: bytes, body: bytes,
                      durable: bool = True) -> None:
        self.device.append(self._frame(magic, body))
        if durable:
            self.device.flush_and_fsync()
        else:
            self.device.flush()

    def _cache_entries(self, info: SegmentInfo) -> Dict[bytes, ColdEntry]:
        cached = self._decode_cache.get(info.seq)
        if cached is not None:
            self._decode_cache.move_to_end(info.seq)
            return cached
        # A cache miss is a media read of the compressed segment.
        self.device.clock.advance(
            self.device.latency.read_cost(len(info.compressed)))
        payload = zlib.decompress(info.compressed)
        if crc32_of(payload) != info.payload_crc:
            raise ValueError(
                f"cold segment {info.seq} payload checksum mismatch")
        self.decompressions += 1
        entries = {e.key: e for e in _unpack_entries(info.seq, payload)}
        self._decode_cache[info.seq] = entries
        while len(self._decode_cache) > _DECODE_CACHE_SEGMENTS:
            self._decode_cache.popitem(last=False)
        return entries

    def _entry_live(self, entry: ColdEntry) -> bool:
        if self._dead_upto.get(entry.key, -1) >= entry.seq:
            return False
        if entry.owner is not None and entry.owner in self._erased_subjects:
            return False
        return True

    # -- sealing -------------------------------------------------------------

    def seal(self, inputs: List[ColdInput], sealed_at: float) -> int:
        """Seal one segment from ``inputs``; returns its sequence number.

        Ends with a flush+fsync durability barrier: when this returns,
        the archived copies survive power loss, and the caller may drop
        the hot copies.
        """
        if not inputs:
            raise ValueError("cannot seal an empty segment")
        seq = self._next_seq
        entries: List[ColdEntry] = []
        for item in inputs:
            stored = item.value
            encrypted = False
            if item.owner is not None and self.keystore is not None:
                cipher = self.keystore.cipher_for(item.owner)
                stored = cipher.seal(item.value,
                                     aad=_COLD_AAD_PREFIX + item.key)
                encrypted = True
            entries.append(ColdEntry(seq, item.key, stored, encrypted,
                                     item.expire_at, item.owner))
        payload = _pack_entries(entries)
        compressed = zlib.compress(payload, self.compress_level)
        key_bloom = BloomFilter.for_capacity(len(entries), self.fp_rate)
        subject_bloom = BloomFilter.for_capacity(len(entries), self.fp_rate)
        for entry in entries:
            key_bloom.add(entry.key)
            if entry.owner is not None:
                subject_bloom.add(entry.owner.encode("utf-8"))
        header = json.dumps({
            "seq": seq,
            "count": len(entries),
            "payload_crc": crc32_of(payload),
            "sealed_at": sealed_at,
        }, sort_keys=True).encode("utf-8")
        kbloom = key_bloom.to_bytes()
        sbloom = subject_bloom.to_bytes()
        body = b"".join([
            _U32.pack(len(header)), header,
            _U32.pack(len(kbloom)), kbloom,
            _U32.pack(len(sbloom)), sbloom,
            compressed,
        ])
        self._append_frame(MAGIC_SEGMENT, body, durable=True)
        self._register_segment(SegmentInfo(seq, len(entries), sealed_at,
                                           crc32_of(payload), compressed,
                                           key_bloom, subject_bloom))
        self._next_seq = seq + 1
        self.seals += 1
        self.sealed_entries += len(entries)
        return seq

    def _register_segment(self, info: SegmentInfo) -> None:
        self._segments[info.seq] = info
        # Registration needs per-entry expiries; going through the decode
        # cache also leaves the freshly-sealed segment hot for the first
        # lookups.
        for entry in self._cache_entries(info).values():
            if entry.expire_at is not None:
                heapq.heappush(self._expiry,
                               (entry.expire_at, entry.seq, entry.key))

    # -- membership & lookup -------------------------------------------------

    def may_contain(self, key: bytes,
                    ignore_tombstones: bool = False) -> bool:
        """Bloom-only membership probe (no decompression).

        With ``ignore_tombstones`` the probe asks whether *any* archived
        copy may exist, dead or alive -- what a deletion needs to decide
        whether a durable tombstone is warranted (the RAM tombstone that
        killed the copy may itself not be durable).
        """
        dead_upto = -1 if ignore_tombstones \
            else self._dead_upto.get(key, -1)
        for seq in reversed(self._segments):
            if seq <= dead_upto:
                continue
            if key in self._segments[seq].key_bloom:
                return True
        return False

    def lookup(self, key: bytes) -> Optional[ColdEntry]:
        """Newest live copy of ``key``, or None.

        Bloom-first: only bloom-positive segments are decompressed, and
        a positive that turns out to hold no copy is counted in
        :attr:`bloom_false_positives`.
        """
        dead_upto = self._dead_upto.get(key, -1)
        for seq in reversed(self._segments):
            if seq <= dead_upto:
                break  # older segments are all dead for this key
            info = self._segments[seq]
            if key not in info.key_bloom:
                continue
            entry = self._cache_entries(info).get(key)
            if entry is None:
                self.bloom_false_positives += 1
                continue
            if not self._entry_live(entry):
                return None
            return entry
        return None

    def open_value(self, entry: ColdEntry) -> Optional[bytes]:
        """Recover the plaintext value, or None when crypto-erased or
        otherwise unreadable (an unreadable archive entry is, by
        construction, erased)."""
        if not self._entry_live(entry):
            return None
        if not entry.encrypted:
            return entry.stored
        if self.keystore is None or entry.owner is None:
            return None
        try:
            cipher = self.keystore.cipher_for(entry.owner, create=False)
            return cipher.open(entry.stored,
                               aad=_COLD_AAD_PREFIX + entry.key)
        except Exception:
            return None

    # -- enumeration ---------------------------------------------------------

    def live_entries(self, include_expired: bool,
                     now: Optional[float] = None) -> Dict[bytes, ColdEntry]:
        """Newest live entry per key (the exact cold keyspace).

        This is the bloom-index *fallback* path: it decompresses every
        segment, so it backs full-keyspace operations (KEYS, SCAN
        completion, ``scan_records``) rather than point reads.
        """
        result: Dict[bytes, ColdEntry] = {}
        for seq in reversed(self._segments):
            info = self._segments[seq]
            for key, entry in self._cache_entries(info).items():
                if key in result:
                    continue  # a newer segment already supplied this key
                if self._dead_upto.get(key, -1) >= seq:
                    continue
                if not self._entry_live(entry):
                    continue
                if (not include_expired and entry.expire_at is not None
                        and now is not None and entry.expire_at <= now):
                    continue
                result[key] = entry
        return result

    def live_count(self, include_expired: bool = True,
                   now: Optional[float] = None) -> int:
        return len(self.live_entries(include_expired, now))

    # -- deletion-like mutations ---------------------------------------------

    def tombstone_key(self, key: bytes, up_to_seq: Optional[int] = None,
                      durable: bool = True) -> None:
        """Kill copies of ``key`` in segments up to ``up_to_seq``
        (default: every segment sealed so far).

        A durable tombstone is written even when a non-durable one
        already covers the range -- power loss would revoke the
        non-durable frame, and deletions must not resurrect.
        """
        if up_to_seq is None:
            up_to_seq = self._next_seq - 1
        if durable:
            if self._dead_durable.get(key, -1) >= up_to_seq:
                return
        elif self._dead_upto.get(key, -1) >= up_to_seq:
            return
        self._dead_upto[key] = max(self._dead_upto.get(key, -1), up_to_seq)
        body = _U32.pack(len(key)) + key + _U64.pack(up_to_seq)
        self._append_frame(MAGIC_TOMBSTONE, body, durable=durable)
        if durable:
            self._dead_durable[key] = up_to_seq
        self.tombstones += 1

    def erase_subject(self, subject: str) -> List[int]:
        """Void every archived entry of ``subject``; returns the
        sequence numbers of the segments whose subject bloom matched
        (the segments the erasure 'reached').

        The marker frame is fsynced, so the erasure survives power loss
        independently of the keystore tombstone -- two layers against
        resurrection-by-restore.
        """
        encoded = subject.encode("utf-8")
        touched = [seq for seq, info in self._segments.items()
                   if encoded in info.subject_bloom]
        self._erased_subjects.add(subject)
        self._append_frame(MAGIC_SUBJECT,
                           _U32.pack(len(encoded)) + encoded, durable=True)
        self.subject_erasures += 1
        return touched

    def segments_of_subject(self, subject: str) -> List[int]:
        """Which sealed segments may hold ``subject`` -- answered from
        the per-subject blooms without decompressing anything."""
        encoded = subject.encode("utf-8")
        return [seq for seq, info in self._segments.items()
                if encoded in info.subject_bloom]

    def keys_of_subject(self, subject: str) -> List[bytes]:
        """Exact archived keys of ``subject`` (bloom-candidates first,
        then decompress only those segments)."""
        if subject in self._erased_subjects:
            return []
        keys: List[bytes] = []
        seen: Set[bytes] = set()
        for seq in self.segments_of_subject(subject):
            info = self._segments[seq]
            for key, entry in self._cache_entries(info).items():
                if entry.owner != subject or key in seen:
                    continue
                if not self._entry_live(entry):
                    continue
                # Shadowed by a newer copy with a different owner?
                newest = self.lookup(key)
                if newest is not None and newest.seq == seq:
                    keys.append(key)
                    seen.add(key)
        return sorted(keys)

    def clear(self) -> None:
        """Drop the whole archive (FLUSHDB/FLUSHALL reached cold)."""
        self._append_frame(MAGIC_CLEAR, b"", durable=True)
        self._reset_volatile()

    def _reset_volatile(self) -> None:
        self._segments.clear()
        self._dead_upto.clear()
        self._dead_durable.clear()
        self._expiry.clear()
        self._decode_cache.clear()
        # Erased subjects stay erased: the marker semantics mirror the
        # keystore's tombstone-forever rule.

    # -- expiry --------------------------------------------------------------

    def pop_expired(self, now: float) -> List[ColdEntry]:
        """Due, still-live cold entries (heap-ordered); the caller
        tombstones them and emits the deletion events."""
        due: List[ColdEntry] = []
        while self._expiry and self._expiry[0][0] <= now:
            _, seq, key = heapq.heappop(self._expiry)
            info = self._segments.get(seq)
            if info is None:
                continue
            entry = self._cache_entries(info).get(key)
            if entry is None or not self._entry_live(entry):
                continue
            newest = self.lookup(key)
            if newest is None or newest.seq != seq:
                continue  # a newer copy shadows this one
            due.append(entry)
        return due

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the in-RAM index from device bytes, dropping a torn
        tail (a crash mid-seal leaves an incomplete final frame)."""
        data = self.device.read_all()
        pos = 0
        end = len(data)
        while pos < end:
            if end - pos < 8:
                self.torn_frames_dropped += 1
                break
            magic = data[pos:pos + 4]
            (body_len,) = _U32.unpack_from(data, pos + 4)
            frame_end = pos + 8 + body_len + 4
            if magic not in (MAGIC_SEGMENT, MAGIC_TOMBSTONE,
                             MAGIC_SUBJECT, MAGIC_CLEAR):
                self.torn_frames_dropped += 1
                break
            if frame_end > end:
                self.torn_frames_dropped += 1
                break
            body = data[pos + 8:pos + 8 + body_len]
            (crc,) = _U32.unpack_from(data, pos + 8 + body_len)
            if crc32_of(body) != crc:
                self.torn_frames_dropped += 1
                break
            self._apply_frame(magic, body)
            pos = frame_end

    def _apply_frame(self, magic: bytes, body: bytes) -> None:
        if magic == MAGIC_SEGMENT:
            pos = 0
            (hlen,) = _U32.unpack_from(body, pos)
            pos += 4
            header = json.loads(body[pos:pos + hlen].decode("utf-8"))
            pos += hlen
            (klen,) = _U32.unpack_from(body, pos)
            pos += 4
            key_bloom = BloomFilter.from_bytes(body[pos:pos + klen])
            pos += klen
            (slen,) = _U32.unpack_from(body, pos)
            pos += 4
            subject_bloom = BloomFilter.from_bytes(body[pos:pos + slen])
            pos += slen
            compressed = body[pos:]
            info = SegmentInfo(int(header["seq"]), int(header["count"]),
                               float(header["sealed_at"]),
                               int(header["payload_crc"]), compressed,
                               key_bloom, subject_bloom)
            self._register_segment(info)
            self._next_seq = max(self._next_seq, info.seq + 1)
            self.recovered_segments += 1
        elif magic == MAGIC_TOMBSTONE:
            (klen,) = _U32.unpack_from(body, 0)
            key = body[4:4 + klen]
            (up_to,) = _U64.unpack_from(body, 4 + klen)
            if self._dead_upto.get(key, -1) < up_to:
                self._dead_upto[key] = up_to
            # Anything read back from the device is durable by now.
            if self._dead_durable.get(key, -1) < up_to:
                self._dead_durable[key] = up_to
        elif magic == MAGIC_SUBJECT:
            (slen,) = _U32.unpack_from(body, 0)
            self._erased_subjects.add(body[4:4 + slen].decode("utf-8"))
        elif magic == MAGIC_CLEAR:
            self._reset_volatile()

    # -- introspection -------------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def erased_subjects(self) -> Set[str]:
        return set(self._erased_subjects)

    def resident_bytes(self) -> int:
        """RAM the archive index keeps resident: compressed segments,
        blooms, tombstone maps, and the expiry heap."""
        total = 0
        for info in self._segments.values():
            total += len(info.compressed)
            total += len(info.key_bloom.to_bytes())
            total += len(info.subject_bloom.to_bytes())
        total += sum(len(k) + 8 for k in self._dead_upto)
        total += sum(len(k) + 16 for _, _, k in self._expiry)
        return total

    def stats(self) -> Dict[str, int]:
        return {
            "segments": self.segment_count,
            "seals": self.seals,
            "sealed_entries": self.sealed_entries,
            "tombstones": self.tombstones,
            "subject_erasures": self.subject_erasures,
            "bloom_false_positives": self.bloom_false_positives,
            "decompressions": self.decompressions,
            "recovered_segments": self.recovered_segments,
            "torn_frames_dropped": self.torn_frames_dropped,
        }
