"""Tiered hot/cold storage over the :class:`StorageEngine` seam.

The paper's erasure story is only as strong as its reach: Art. 17 must
void *every* copy, including compressed archives that are expensive to
rewrite.  This package adds the archive tier:

* :class:`~repro.tiering.bloom.BloomFilter` -- deterministic double-
  hashed bloom filters sized for a configured false-positive bound;
* :class:`~repro.tiering.segment.ColdSegmentStore` -- batch-sealed,
  checksummed, compressed segments on the device layer, each carrying a
  has-key bloom and a per-subject membership bloom so rights fan-out can
  answer "which cold segments hold this subject" without decompressing
  everything; member values are encrypted under per-subject keys from
  the shared :class:`~repro.crypto.keystore.KeyStore`, so one
  crypto-erasure voids the archive without rewriting segments;
* :class:`~repro.tiering.engine.TieredEngine` -- a
  :class:`~repro.engine.base.StorageEngine` wrapper presenting ONE
  keyspace: idle records demote out of the hot engine into cold
  segments, reads promote transparently, and every keyspace view
  (KEYS, SCAN, DBSIZE, ``scan_records``) merges both tiers.
"""

from .bloom import BloomFilter
from .segment import ColdEntry, ColdInput, ColdSegmentStore, SegmentInfo
from .engine import TieredEngine, TieringConfig

__all__ = [
    "BloomFilter",
    "ColdEntry",
    "ColdInput",
    "ColdSegmentStore",
    "SegmentInfo",
    "TieredEngine",
    "TieringConfig",
]
