"""TieredEngine: one keyspace over a hot engine and a cold archive.

The wrapper is itself a :class:`~repro.engine.base.StorageEngine`, so
every upper layer -- :class:`~repro.gdpr.store.GDPRStore`, the cluster,
replication, YCSB -- runs over a tiered keyspace unchanged:

* **Demotion.**  Records idle for ``demote_idle_after`` seconds leave
  the hot engine for a sealed cold segment.  The seal ends with an
  fsync *before* the hot copies are removed (via the engines'
  ``demote_remove`` hook, which logs a DEL to the hot AOF/WAL with
  deletion reason ``"demote"`` but keeps the effective-write stream
  silent -- replicas keep serving their full copy).  A crash between
  the two steps leaves the record in both tiers; the hot copy stays
  authoritative and the stale cold shadow is evicted lazily.
* **Promotion.**  Any keyed command first *surfaces* its key: a cold
  copy is decrypted, re-inserted hot (SET [+ absolute expiry]), and
  tombstoned cold, then the command runs against the hot engine --
  so results, types, TTLs, and errors are exactly the hot engine's.
  Membership is answered bloom-first; only candidate segments are
  decompressed.
* **One keyspace.**  KEYS / SCAN / DBSIZE / ``live_keys`` /
  ``scan_records`` / ``key_count`` merge both tiers; DEL, expiry
  (lazy and active), FLUSH, and snapshots reach cold copies with the
  same observable events (deletion reasons, write-stream DELs) as
  hot-only operation.
* **Erasure reaches the archive.**  Cold values of a known data
  subject are sealed under that subject's key from the shared
  :class:`~repro.crypto.keystore.KeyStore`; ``erase_subject_cold``
  records which segments the erasure voided (bloom-answered) and
  appends a durable subject marker, so Art. 17 voids the archive
  without rewriting a single segment.

Tiering applies to database 0 only (the database the GDPR, cluster,
and bench layers use); commands on other databases pass straight
through.  Only string (bytes) values demote; containers stay hot.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..device.append_log import AppendLog
from ..engine.base import StorageEngine, StoredRecord
from ..kvstore.commands import glob_match, normalize_args
from .segment import ColdEntry, ColdInput, ColdSegmentStore

#: (event, detail, subject) -- demote / promote / cold-erase; the GDPR
#: layer subscribes and turns these into audit records.
TierListener = Callable[[str, str, Optional[str]], None]


@dataclass
class TieringConfig:
    """Knobs of the hot/cold split."""

    demote_idle_after: float = 300.0   # seconds untouched before demotion
    demote_interval: float = 60.0      # how often the idle scan runs
    segment_max_records: int = 64      # records per sealed segment
    bloom_fp_rate: float = 0.01        # per-segment bloom FP bound
    compress_level: int = 6            # zlib level for sealed payloads
    auto_demote: bool = True           # run the idle scan from tick()


# Commands that never name a key in argv[1].
_NON_KEY_COMMANDS = frozenset([
    b"PING", b"ECHO", b"SELECT", b"CONFIG", b"INFO", b"SLOWLOG", b"TIME",
    b"SAVE", b"BGSAVE", b"BGREWRITEAOF", b"RANDOMKEY", b"SCAN", b"KEYS",
    b"DBSIZE", b"FLUSHALL", b"FLUSHDB", b"RANGE", b"VACUUM",
])

#: Unconditional full overwrites: the cold copy just dies, no promote.
_OVERWRITE_COMMANDS = frozenset([b"SETEX", b"PSETEX"])

#: Commands whose every argument after the name is a key to surface.
_MULTI_KEY_COMMANDS = frozenset([b"EXISTS", b"MGET"])


class TieredEngine(StorageEngine):
    """A hot :class:`StorageEngine` plus a :class:`ColdSegmentStore`,
    presented as one engine."""

    engine_name = "tiered"
    supports_tiering = True

    def __init__(self, inner: StorageEngine,
                 device: Optional[AppendLog] = None,
                 tiering: Optional[TieringConfig] = None,
                 keystore: Optional[object] = None) -> None:
        super().__init__()
        self._inner = inner
        self.tiering = tiering if tiering is not None else TieringConfig()
        if device is None:
            device = AppendLog(clock=inner.clock, name="cold.seg")
        self.cold = ColdSegmentStore(
            device=device, keystore=keystore,
            fp_rate=self.tiering.bloom_fp_rate,
            compress_level=self.tiering.compress_level)
        # key -> (owner, purposes): GDPR annotations survive the tier
        # round-trip -- sealing reads the owner (per-subject encryption),
        # promotion restores the metadata columns the hot re-insert
        # would otherwise lose.
        self._owners: Dict[bytes, Tuple[str, Tuple[str, ...]]] = {}
        self._last_touch: Dict[bytes, float] = {}
        self._last_demote_scan = inner.clock.now()
        self._in_cold_tick = False
        self._replaying = False
        self.promotions = 0
        self.demotions = 0
        self._tier_listeners: List[TierListener] = []
        #: Called before each demotion batch is selected; the GDPR layer
        #: points this at its write-behind flush so no deferred TTL /
        #: metadata work is pending on a record entering the archive.
        self.before_demote: Optional[Callable[[], None]] = None
        inner.add_write_listener(self.notify_write)
        inner.add_deletion_listener(self._on_inner_deletion)

    # -- delegated attributes ------------------------------------------------

    @property
    def inner(self) -> StorageEngine:
        return self._inner

    @property
    def clock(self):
        return self._inner.clock

    @property
    def config(self):
        return self._inner.config

    @property
    def stats(self):
        return self._inner.stats

    @property
    def monitor(self):
        return self._inner.monitor

    @property
    def aof_log(self):
        return self._inner.aof_log

    @property
    def supports_metadata_columns(self) -> bool:  # type: ignore[override]
        return self._inner.supports_metadata_columns

    @property
    def supports_set_with_expiry(self) -> bool:  # type: ignore[override]
        return self._inner.supports_set_with_expiry

    def session(self, db_index: int = 0) -> Any:
        return self._inner.session(db_index)

    def info_text(self) -> str:
        return self._inner.info_text()

    # -- tier listeners ------------------------------------------------------

    def add_tier_listener(self, listener: TierListener) -> None:
        self._tier_listeners.append(listener)

    def _tier_event(self, event: str, detail: str,
                    subject: Optional[str] = None) -> None:
        for listener in self._tier_listeners:
            listener(event, detail, subject)

    def attach_keystore(self, keystore: object) -> None:
        """Bind the per-subject keystore (the GDPR layer calls this so
        demoted values seal under their subject's key)."""
        self.cold.attach_keystore(keystore)

    # -- inner event forwarding ----------------------------------------------

    def _on_inner_deletion(self, db_index: int, key: bytes, reason: str,
                           when: float) -> None:
        if db_index == 0 and reason != "demote" and not self._replaying:
            # Any true hot removal (DEL, lazy/active expiry) must also
            # kill every archived copy of the key -- durably.  Even a
            # copy RAM already considers dead may only be covered by a
            # non-durable tombstone (promote eviction), which power loss
            # revokes; without a durable marker here, AOF replay (which
            # skips evictions) would resurrect the deleted key from the
            # archive.
            if self.cold.may_contain(key, ignore_tombstones=True):
                self.cold.tombstone_key(key, durable=True)
            self._owners.pop(key, None)
            self._last_touch.pop(key, None)
        self.notify_deletion(db_index, key, reason, when)

    # -- command surface -----------------------------------------------------

    def execute(self, *args: Any, session: Optional[Any] = None) -> Any:
        argv = normalize_args(args)
        if not argv:
            raise ValueError("empty command")
        if session is not None and getattr(session, "db_index", 0) != 0:
            return self._inner.execute(*argv, session=session)
        name = argv[0].upper()
        reply = self._execute_tiered(name, argv, session)
        self._cold_tick()
        return reply

    def _execute_tiered(self, name: bytes, argv: List[bytes],
                        session: Optional[Any]) -> Any:
        if name in (b"DEL", b"UNLINK"):
            return self._del_across_tiers(argv, session)
        if name == b"KEYS":
            return self._keys_merged(argv, session)
        if name == b"DBSIZE":
            return self._dbsize_merged(argv, session)
        if name == b"SCAN":
            return self._scan_merged(argv, session)
        if name in (b"FLUSHALL", b"FLUSHDB"):
            if self.cold.segment_count:
                self.cold.clear()
            self._owners.clear()
            self._last_touch.clear()
            return self._inner.execute(*argv, session=session)
        if name == b"RENAME" and len(argv) >= 3:
            self._surface(argv[1])
            self._evict_shadow(argv[2])
            self._touch(argv[1])
            self._touch(argv[2])
            return self._inner.execute(*argv, session=session)
        if name in _MULTI_KEY_COMMANDS:
            for key in argv[1:]:
                self._surface(key)
                self._touch(key)
            return self._inner.execute(*argv, session=session)
        if name == b"MSET":
            for key in argv[1::2]:
                self._evict_shadow(key)
                self._touch(key)
            return self._inner.execute(*argv, session=session)
        if name in _OVERWRITE_COMMANDS:
            self._evict_shadow(argv[1])
            self._touch(argv[1])
            return self._inner.execute(*argv, session=session)
        if name == b"SET" and len(argv) >= 3:
            conditional = any(argv[i].upper() in (b"NX", b"XX")
                              for i in range(3, len(argv)))
            if conditional:
                self._surface(argv[1])
            else:
                self._evict_shadow(argv[1])
            self._touch(argv[1])
            return self._inner.execute(*argv, session=session)
        if name not in _NON_KEY_COMMANDS and len(argv) >= 2:
            self._surface(argv[1])
            self._touch(argv[1])
            return self._inner.execute(*argv, session=session)
        return self._inner.execute(*argv, session=session)

    def _touch(self, key: bytes) -> None:
        self._last_touch[key] = self.clock.now()

    def _evict_shadow(self, key: bytes, durable: bool = False) -> None:
        """Silently drop a cold copy that is about to be overwritten or
        is shadowed by a live hot copy (no deletion event: the key stays
        logically alive)."""
        if self.cold.may_contain(key) and self.cold.lookup(key) is not None:
            self.cold.tombstone_key(key, durable=durable)

    def _surface(self, key: bytes) -> None:
        """Reconcile ``key`` before a command touches it: promote a live
        cold copy into the hot engine (or reclaim it if expired /
        crypto-erased), so the inner engine's answer is the tiered
        answer."""
        if not self.cold.may_contain(key):
            return
        if self._inner.has_live_key(key, 0):
            # Crash-window duplicate: hot is authoritative.
            self._evict_shadow(key)
            return
        entry = self.cold.lookup(key)
        if entry is None:
            return
        now = self.clock.now()
        if entry.expire_at is not None and entry.expire_at <= now:
            # Cold lazy expiry: same observable events as a hot lazy
            # expiration (deletion reason + write-stream DEL); the hot
            # AOF already holds the demotion DEL, and the cold tombstone
            # is the archive's durable record of the reclaim.
            self.cold.tombstone_key(key, durable=True)
            self.stats.expired_keys += 1
            self.notify_deletion(0, key, "lazy-expire", now)
            self.notify_write(0, [b"DEL", key])
            self._owners.pop(key, None)
            return
        value = self.cold.open_value(entry)
        if value is None:
            # Crypto-erased (or unreadable, which the archive treats as
            # erased): the copy is void; drop it silently.
            self.cold.tombstone_key(key, durable=True)
            return
        self._promote(entry, value)

    def _promote(self, entry: ColdEntry, value: bytes) -> None:
        key = entry.key
        if entry.expire_at is not None and self.supports_set_with_expiry:
            millis = str(int(entry.expire_at * 1000)).encode("ascii")
            self._inner.execute(b"SET", key, value, b"PXAT", millis)
        else:
            self._inner.execute(b"SET", key, value)
            if entry.expire_at is not None:
                millis = str(int(entry.expire_at * 1000)).encode("ascii")
                self._inner.execute(b"PEXPIREAT", key, millis)
        annotation = self._owners.get(key)
        owner = entry.owner if entry.owner is not None \
            else (annotation[0] if annotation else None)
        if owner is not None and self.supports_metadata_columns:
            purposes = annotation[1] \
                if annotation and annotation[0] == owner else ()
            self._inner.annotate_metadata(
                key.decode("utf-8", "replace"), owner, purposes)
        self.cold.tombstone_key(key, durable=False)
        self.promotions += 1
        self._tier_event("promote",
                         f"key {key.decode('utf-8', 'replace')} "
                         f"from segment {entry.seq}",
                         entry.owner)

    # -- cross-tier command implementations ----------------------------------

    def _del_across_tiers(self, argv: List[bytes],
                          session: Optional[Any]) -> int:
        # Identify cold-only victims BEFORE the hot deletes run (the
        # inner-deletion forwarder evicts crash-window shadows itself).
        cold_victims: List[bytes] = []
        seen = set()
        for key in argv[1:]:
            if key in seen:
                continue
            seen.add(key)
            if self._inner.has_live_key(key, 0):
                continue
            if self.cold.may_contain(key) \
                    and self.cold.lookup(key) is not None:
                cold_victims.append(key)
        removed = self._inner.execute(*argv, session=session)
        now = self.clock.now()
        for key in cold_victims:
            # Expired-but-unreclaimed copies count, matching the hot
            # engines' DEL semantics.
            self.cold.tombstone_key(key, durable=True)
            self.stats.deleted_keys += 1
            self.notify_deletion(0, key, "del", now)
            self.notify_write(0, [b"DEL", key])
            self._owners.pop(key, None)
            self._last_touch.pop(key, None)
            removed += 1
        return removed

    def _cold_live_keys(self, now: float) -> List[bytes]:
        """Cold keys a hot-only engine would report as live: not dead,
        not erased, not expired, and not shadowed by a hot copy."""
        entries = self.cold.live_entries(include_expired=False, now=now)
        return [key for key in entries
                if not self._inner.has_live_key(key, 0)]

    def _keys_merged(self, argv: List[bytes],
                     session: Optional[Any]) -> List[bytes]:
        reply = self._inner.execute(*argv, session=session)
        pattern = argv[1] if len(argv) > 1 else b"*"
        extras = [key for key in self._cold_live_keys(self.clock.now())
                  if glob_match(pattern, key)]
        return list(reply) + sorted(extras)

    def _dbsize_merged(self, argv: List[bytes],
                       session: Optional[Any]) -> int:
        reply = self._inner.execute(*argv, session=session)
        cold = self.cold.live_entries(include_expired=True)
        overlap = sum(1 for key in cold if self._inner.has_live_key(key, 0))
        return reply + len(cold) - overlap

    def _scan_merged(self, argv: List[bytes], session: Optional[Any]) -> Any:
        reply = self._inner.execute(*argv, session=session)
        cursor, keys = reply[0], list(reply[1])
        if cursor != b"0":
            return [cursor, keys]
        pattern = b"*"
        i = 2
        while i + 1 < len(argv):
            if argv[i].upper() == b"MATCH":
                pattern = argv[i + 1]
            i += 2
        extras = [key for key in self._cold_live_keys(self.clock.now())
                  if glob_match(pattern, key) and key not in keys]
        return [cursor, keys + sorted(extras)]

    # -- background work -----------------------------------------------------

    def tick(self) -> None:
        self._inner.tick()
        self._cold_tick()

    def _cold_tick(self) -> None:
        if self._in_cold_tick:
            return
        self._in_cold_tick = True
        try:
            now = self.clock.now()
            for entry in self.cold.pop_expired(now):
                self.cold.tombstone_key(entry.key, durable=True)
                self.stats.expired_keys += 1
                self.notify_deletion(0, entry.key, "active-expire", now)
                self.notify_write(0, [b"DEL", entry.key])
                self._owners.pop(entry.key, None)
            if self.tiering.auto_demote \
                    and now - self._last_demote_scan \
                    >= self.tiering.demote_interval:
                self._last_demote_scan = now
                self.demote_idle(now)
        finally:
            self._in_cold_tick = False

    # -- demotion ------------------------------------------------------------

    def demote_idle(self, now: Optional[float] = None) -> int:
        """Demote every string record untouched for
        ``demote_idle_after`` seconds; returns records demoted."""
        if now is None:
            now = self.clock.now()
        if self.before_demote is not None:
            self.before_demote()
        candidates: List[StoredRecord] = []
        for record in self._inner.scan_records(0):
            if not isinstance(record.value, bytes):
                continue  # containers stay hot
            if record.expire_at is not None and record.expire_at <= now:
                continue  # let hot expiry reclaim it
            touched = self._last_touch.get(record.key)
            if touched is None:
                # First sighting: start its idle clock now.
                self._last_touch[record.key] = now
                continue
            if now - touched >= self.tiering.demote_idle_after:
                candidates.append(record)
        candidates.sort(key=lambda r: r.key)
        step = max(1, self.tiering.segment_max_records)
        for start in range(0, len(candidates), step):
            self._demote_batch(candidates[start:start + step])
        return len(candidates)

    def demote_keys(self, keys: List[bytes]) -> int:
        """Explicitly demote specific keys (bench / test control path);
        returns records demoted."""
        targets = {k if isinstance(k, bytes) else str(k).encode("utf-8")
                   for k in keys}
        if self.before_demote is not None:
            self.before_demote()
        now = self.clock.now()
        records = [r for r in self._inner.scan_records(0)
                   if r.key in targets and isinstance(r.value, bytes)
                   and (r.expire_at is None or r.expire_at > now)]
        records.sort(key=lambda r: r.key)
        step = max(1, self.tiering.segment_max_records)
        for start in range(0, len(records), step):
            self._demote_batch(records[start:start + step])
        return len(records)

    def _demote_batch(self, records: List[StoredRecord]) -> None:
        if not records:
            return
        inputs = []
        for r in records:
            annotation = self._owners.get(r.key)
            inputs.append(ColdInput(r.key, r.value, r.expire_at,
                                    annotation[0] if annotation else None))
        seq = self.cold.seal(inputs, sealed_at=self.clock.now())
        # The seal above ended with an fsync: only now is it safe to
        # drop the hot copies.
        for record in records:
            self._inner.demote_remove(record.key, 0)
            self._last_touch.pop(record.key, None)
        self.demotions += len(records)
        self._tier_event("demote",
                         f"{len(records)} records -> segment {seq}")

    # -- archive-reaching erasure --------------------------------------------

    def erase_subject_cold(self, subject: str) -> int:
        """Void every archived copy of ``subject``'s records; returns
        the number of segments the erasure reached (bloom-answered,
        no decompression)."""
        touched = self.cold.erase_subject(subject)
        self._owners = {k: ann for k, ann in self._owners.items()
                        if ann[0] != subject}
        self._tier_event("cold-erase",
                         f"{len(touched)} segments voided", subject)
        return len(touched)

    def cold_segments_of_subject(self, subject: str) -> List[int]:
        return self.cold.segments_of_subject(subject)

    def cold_keys_of_subject(self, subject: str) -> List[bytes]:
        return self.cold.keys_of_subject(subject)

    # -- keyspace views ------------------------------------------------------

    def live_keys(self, db_index: int = 0) -> List[bytes]:
        hot = self._inner.live_keys(db_index)
        if db_index != 0:
            return hot
        return hot + sorted(self._cold_live_keys(self.clock.now()))

    def has_live_key(self, key: bytes, db_index: int = 0) -> bool:
        if self._inner.has_live_key(key, db_index):
            return True
        if db_index != 0:
            return False
        entry = self.cold.lookup(key)
        if entry is None:
            return False
        return entry.expire_at is None or entry.expire_at > self.clock.now()

    def scan_records(self, db_index: int = 0) -> Iterator[StoredRecord]:
        for record in self._inner.scan_records(db_index):
            yield record
        if db_index != 0:
            return
        now = self.clock.now()
        entries = self.cold.live_entries(include_expired=False, now=now)
        for key in sorted(entries):
            if self._inner.has_live_key(key, 0):
                continue
            value = self.cold.open_value(entries[key])
            if value is None:
                continue  # crypto-erased: stays unreachable
            yield StoredRecord(key, value, entries[key].expire_at)

    def key_count(self, db_index: int = 0) -> int:
        count = self._inner.key_count(db_index)
        if db_index != 0:
            return count
        cold = self.cold.live_entries(include_expired=True)
        overlap = sum(1 for key in cold if self._inner.has_live_key(key, 0))
        return count + len(cold) - overlap

    # -- durability ----------------------------------------------------------

    _SNAPSHOT_MAGIC = b"TIER1"

    def save_snapshot(self) -> bytes:
        inner_snap = self._inner.save_snapshot()
        parts = [self._SNAPSHOT_MAGIC,
                 struct.pack(">I", len(inner_snap)), inner_snap]
        entries: List[Tuple[bytes, bytes, Optional[float]]] = []
        for key, entry in sorted(
                self.cold.live_entries(include_expired=True).items()):
            if self._inner.has_live_key(key, 0):
                continue
            value = self.cold.open_value(entry)
            if value is None:
                continue  # crypto-erased copies never leave the archive
            entries.append((key, value, entry.expire_at))
        parts.append(struct.pack(">I", len(entries)))
        for key, value, expire_at in entries:
            parts.append(struct.pack(">I", len(key)))
            parts.append(key)
            parts.append(b"\x01" if expire_at is not None else b"\x00")
            if expire_at is not None:
                parts.append(struct.pack(">d", expire_at))
            parts.append(struct.pack(">I", len(value)))
            parts.append(value)
        return b"".join(parts)

    def load_snapshot(self, data: bytes) -> int:
        if not data.startswith(self._SNAPSHOT_MAGIC):
            # A plain hot-engine snapshot: load it and start cold-empty.
            if self.cold.segment_count:
                self.cold.clear()
            return self._inner.load_snapshot(data)
        pos = len(self._SNAPSHOT_MAGIC)
        (inner_len,) = struct.unpack_from(">I", data, pos)
        pos += 4
        count = self._inner.load_snapshot(data[pos:pos + inner_len])
        pos += inner_len
        if self.cold.segment_count:
            self.cold.clear()
        (n_cold,) = struct.unpack_from(">I", data, pos)
        pos += 4
        for _ in range(n_cold):
            (klen,) = struct.unpack_from(">I", data, pos)
            pos += 4
            key = data[pos:pos + klen]
            pos += klen
            has_expire = data[pos:pos + 1] == b"\x01"
            pos += 1
            expire_at = None
            if has_expire:
                (expire_at,) = struct.unpack_from(">d", data, pos)
                pos += 8
            (vlen,) = struct.unpack_from(">I", data, pos)
            pos += 4
            value = data[pos:pos + vlen]
            pos += vlen
            # Archived records re-enter hot; the idle scan will re-tier
            # them.  (Expiry travels as an absolute deadline.)
            self._inner.execute(b"SET", key, value)
            if expire_at is not None:
                millis = str(int(expire_at * 1000)).encode("ascii")
                self._inner.execute(b"PEXPIREAT", key, millis)
            count += 1
        return count

    def replay_aof(self, data: Optional[bytes] = None,
                   tolerate_truncated_tail: bool = True) -> int:
        # The hot AOF holds a plain DEL for every demotion; replaying it
        # must not evict the archived copies those DELs produced.  Every
        # *legitimate* cold kill (DEL, expiry, erasure) was persisted as
        # its own durable frame on the cold device at operation time, so
        # recovery needs no eviction from the replay stream at all.
        self._replaying = True
        try:
            return self._inner.replay_aof(
                data, tolerate_truncated_tail=tolerate_truncated_tail)
        finally:
            self._replaying = False

    def rewrite_aof(self) -> int:
        return self._inner.rewrite_aof()

    # -- replication ---------------------------------------------------------

    def spawn_replica(self, clock: Optional[Any] = None) -> "TieredEngine":
        inner_replica = self._inner.spawn_replica(clock)
        return TieredEngine(
            inner_replica,
            device=AppendLog(clock=inner_replica.clock, name="cold.seg"),
            tiering=replace(self.tiering, auto_demote=False),
            keystore=self.cold.keystore)

    # -- GDPR metadata hooks -------------------------------------------------

    def annotate_metadata(self, key: str, owner: str,
                          purposes: Any) -> None:
        key_bytes = key.encode("utf-8") if isinstance(key, str) else key
        self._owners[key_bytes] = (owner, tuple(purposes))
        if self._inner.has_live_key(key_bytes, 0):
            self._inner.annotate_metadata(key, owner, purposes)

    def keys_of_owner(self, owner: str) -> Optional[List[str]]:
        native = self._inner.keys_of_owner(owner)
        if native is None:
            # Sidecar-index engines: the GDPR layer's index keeps
            # demoted keys (demotion is a tier move, not an erasure),
            # so it remains the single source of truth.
            return None
        merged = set(native)
        for key in self.cold.keys_of_subject(owner):
            if not self._inner.has_live_key(key, 0):
                merged.add(key.decode("utf-8", "replace"))
        return sorted(merged)

    # -- introspection -------------------------------------------------------

    def memory_footprint(self) -> Dict[str, int]:
        """Resident bytes per tier -- the number the tiering bench
        compares against hot-only operation."""
        hot_bytes = 0
        hot_keys = 0
        for record in self._inner.scan_records(0):
            hot_keys += 1
            hot_bytes += len(record.key)
            if isinstance(record.value, bytes):
                hot_bytes += len(record.value)
        return {
            "hot_keys": hot_keys,
            "hot_bytes": hot_bytes,
            "cold_keys": self.cold.live_count(include_expired=True),
            "cold_resident_bytes": self.cold.resident_bytes(),
            "cold_device_bytes": self.cold.device.total_length,
        }

    def cold_stats(self) -> Dict[str, int]:
        stats = self.cold.stats()
        stats["promotions"] = self.promotions
        stats["demotions"] = self.demotions
        return stats
