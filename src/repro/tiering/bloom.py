"""Deterministic bloom filters for cold-segment membership.

Each sealed segment carries two of these: one over member *keys* (so
promote-on-read can skip segments without decompressing them) and one
over member *subjects* (so Art. 15/17 fan-out can answer "which cold
segments hold this subject" from RAM).  Hashing is double hashing
derived from SHA-256 -- fully deterministic across runs and platforms,
which the byte-identical bench re-runs in CI rely on.
"""

from __future__ import annotations

import math
import struct
from typing import Iterable

from ..common.hashing import sha256_bytes

_HEADER = struct.Struct(">III")  # bit count, hash count, added count


class BloomFilter:
    """A fixed-size bloom filter with ``k`` double-hashed probes.

    Sized via :meth:`for_capacity` the filter targets *half* the
    configured false-positive rate, leaving headroom so the measured
    rate stays under the configured bound even at full capacity (the
    property suite checks exactly this).
    """

    __slots__ = ("bit_count", "hash_count", "added", "_bits")

    def __init__(self, bit_count: int, hash_count: int) -> None:
        if bit_count <= 0:
            raise ValueError("bit_count must be positive")
        if hash_count <= 0:
            raise ValueError("hash_count must be positive")
        self.bit_count = bit_count
        self.hash_count = hash_count
        self.added = 0
        self._bits = bytearray((bit_count + 7) // 8)

    @classmethod
    def for_capacity(cls, capacity: int, fp_rate: float) -> "BloomFilter":
        """Size a filter for ``capacity`` items at <= ``fp_rate`` FPs."""
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        capacity = max(1, capacity)
        target = fp_rate / 2.0  # headroom: measured rate < configured bound
        ln2 = math.log(2.0)
        bit_count = max(8, math.ceil(-capacity * math.log(target) / (ln2 * ln2)))
        hash_count = max(1, round((bit_count / capacity) * ln2))
        return cls(bit_count, hash_count)

    def _probes(self, item: bytes) -> Iterable[int]:
        digest = sha256_bytes(item)
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1  # odd => full cycle
        for i in range(self.hash_count):
            yield (h1 + i * h2) % self.bit_count

    def add(self, item: bytes) -> None:
        for idx in self._probes(item):
            self._bits[idx >> 3] |= 1 << (idx & 7)
        self.added += 1

    def update(self, items: Iterable[bytes]) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: bytes) -> bool:
        return all(self._bits[idx >> 3] & (1 << (idx & 7)) for idx in self._probes(item))

    def may_contain(self, item: bytes) -> bool:
        return item in self

    def fill_ratio(self) -> float:
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.bit_count

    def to_bytes(self) -> bytes:
        return _HEADER.pack(self.bit_count, self.hash_count, self.added) + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        if len(data) < _HEADER.size:
            raise ValueError("truncated bloom filter")
        bit_count, hash_count, added = _HEADER.unpack_from(data, 0)
        bloom = cls(bit_count, hash_count)
        bits = data[_HEADER.size:]
        if len(bits) != len(bloom._bits):
            raise ValueError("bloom filter bit array length mismatch")
        bloom._bits[:] = bits
        bloom.added = added
        return bloom
