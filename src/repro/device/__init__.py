"""Simulated storage devices: latency models, block device, append log, LUKS."""

from .append_log import AppendLog
from .block_device import FaultInjector, SimulatedBlockDevice
from .latency import HDD, INTEL_750_SSD, NVM, PRESETS, ZERO, LatencyModel
from .luks import SECTOR_SIZE, LuksVolume

__all__ = [
    "AppendLog",
    "FaultInjector",
    "SimulatedBlockDevice",
    "LatencyModel",
    "INTEL_750_SSD",
    "HDD",
    "NVM",
    "ZERO",
    "PRESETS",
    "LuksVolume",
    "SECTOR_SIZE",
]
