"""Device latency models.

Each model charges simulated time for syscalls and data movement.  The
presets are calibrated against published device characteristics so the
benchmark harness reproduces the paper's *ratios* deterministically:

* ``INTEL_750_SSD`` approximates the paper's testbed drive (Intel 750
  NVMe).  The number that matters for the AOF experiments is the cost of a
  synchronous flush: an fsync on this class of device lands in the
  0.5--1 ms range once the filesystem journal is involved.  We use 0.8 ms.
* ``HDD`` (7.2k RPM) and ``NVM`` (3D XPoint-like) bound the design space;
  section 5.1 of the paper points at NVM as the way to make strict logging
  affordable, and the ablation benchmarks sweep across these models.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Costs, in seconds, charged by a device for each primitive."""

    name: str
    write_syscall: float      # fixed cost of a buffered write() syscall
    read_syscall: float       # fixed cost of a read() syscall
    fsync: float              # durability barrier (flush to media)
    per_byte_write: float     # marginal cost per byte written
    per_byte_read: float      # marginal cost per byte read

    def write_cost(self, nbytes: int) -> float:
        return self.write_syscall + nbytes * self.per_byte_write

    def read_cost(self, nbytes: int) -> float:
        return self.read_syscall + nbytes * self.per_byte_read

    def scaled(self, factor: float, name: str = None) -> "LatencyModel":
        """A copy with every cost multiplied by ``factor`` (for sweeps)."""
        return LatencyModel(
            name=name or f"{self.name}x{factor:g}",
            write_syscall=self.write_syscall * factor,
            read_syscall=self.read_syscall * factor,
            fsync=self.fsync * factor,
            per_byte_write=self.per_byte_write * factor,
            per_byte_read=self.per_byte_read * factor,
        )


# Buffered syscalls: ~2 us of kernel time; sequential media bandwidth:
# ~1 GB/s write for the Intel 750 => 1e-9 s/B.
INTEL_750_SSD = LatencyModel(
    name="intel-750-ssd",
    write_syscall=2e-6,
    read_syscall=2e-6,
    fsync=800e-6,
    per_byte_write=1e-9,
    per_byte_read=0.5e-9,
)

# 7.2k RPM disk: fsync pays ~half a rotation plus seek, ~8 ms.
HDD = LatencyModel(
    name="hdd-7200rpm",
    write_syscall=2e-6,
    read_syscall=2e-6,
    fsync=8e-3,
    per_byte_write=8e-9,
    per_byte_read=8e-9,
)

# Byte-addressable NVM (3D XPoint-like): persistence barrier ~2 us.
NVM = LatencyModel(
    name="nvm-3dxpoint",
    write_syscall=0.5e-6,
    read_syscall=0.3e-6,
    fsync=2e-6,
    per_byte_write=0.3e-9,
    per_byte_read=0.1e-9,
)

# A free device for tests that only exercise logic, never timing.
ZERO = LatencyModel(
    name="zero",
    write_syscall=0.0,
    read_syscall=0.0,
    fsync=0.0,
    per_byte_write=0.0,
    per_byte_read=0.0,
)

PRESETS = {model.name: model for model in (INTEL_750_SSD, HDD, NVM, ZERO)}
