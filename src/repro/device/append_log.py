"""Append-only log file abstraction with explicit durability states.

This models how Redis' AOF interacts with the OS: ``append`` places bytes in
the *application buffer* (free), ``flush`` issues the write() syscall moving
them to the *page cache* (cheap), and ``fsync`` makes them *durable*
(expensive).  The three-state split is exactly what makes the paper's
``appendfsync always`` vs ``everysec`` experiment behave the way it does, so
the log tracks each boundary and can crash at either.
"""

from __future__ import annotations

from typing import Optional

from ..common.clock import Clock, SimClock
from ..common.errors import DeviceIOError
from .block_device import FaultInjector
from .latency import ZERO, LatencyModel


class AppendLog:
    """An append-only byte log with buffer / page-cache / durable frontiers.

    Invariant: ``durable_length <= cached_length <= total_length``.
    """

    def __init__(self, clock: Optional[Clock] = None,
                 latency: LatencyModel = ZERO,
                 faults: Optional[FaultInjector] = None,
                 name: str = "appendonly.aof") -> None:
        self.clock = clock if clock is not None else SimClock()
        self.latency = latency
        self.faults = faults
        self.name = name
        self._data = bytearray()
        self._cached_length = 0
        self._durable_length = 0
        # Counters for benchmarks.
        self.appends = 0
        self.syscalls = 0
        self.fsyncs = 0

    # -- frontiers -----------------------------------------------------------

    @property
    def total_length(self) -> int:
        return len(self._data)

    @property
    def cached_length(self) -> int:
        return self._cached_length

    @property
    def durable_length(self) -> int:
        return self._durable_length

    @property
    def unflushed_bytes(self) -> int:
        return len(self._data) - self._cached_length

    @property
    def unsynced_bytes(self) -> int:
        return self._cached_length - self._durable_length

    # -- operations ----------------------------------------------------------

    def append(self, data: bytes) -> None:
        """Buffer bytes in the application buffer (no time charged)."""
        self._data.extend(data)
        self.appends += 1

    def flush(self) -> int:
        """write() the application buffer to the page cache.

        Returns the number of bytes moved.  Charges the write-syscall cost
        plus per-byte cost for the moved bytes.
        """
        pending = len(self._data) - self._cached_length
        if pending == 0:
            return 0
        if self.faults is not None:
            self.faults.check()
        self.clock.advance(self.latency.write_cost(pending))
        self._cached_length = len(self._data)
        self.syscalls += 1
        return pending

    def fsync(self) -> None:
        """Durability barrier over everything in the page cache."""
        self.clock.advance(self.latency.fsync)
        self._durable_length = self._cached_length
        self.fsyncs += 1

    def flush_and_fsync(self) -> None:
        self.flush()
        self.fsync()

    def replace(self, data: bytes) -> None:
        """Atomically replace the log contents (AOF rewrite rename step).

        Modelled as writing a new file and renaming over the old one, so
        the replacement is durable as a unit.
        """
        self.clock.advance(self.latency.write_cost(len(data)))
        self.clock.advance(self.latency.fsync)
        self._data = bytearray(data)
        self._cached_length = len(data)
        self._durable_length = len(data)
        self.syscalls += 1
        self.fsyncs += 1

    # -- reading & crashes -----------------------------------------------------

    def read_all(self) -> bytes:
        """Everything appended so far (the live file's logical view)."""
        return bytes(self._data)

    def read_durable(self) -> bytes:
        """What the file would contain after a power loss."""
        return bytes(self._data[:self._durable_length])

    def read_cached(self) -> bytes:
        """What the file contains according to the OS (survives a process
        crash but not power loss)."""
        return bytes(self._data[:self._cached_length])

    def crash(self, power_loss: bool = True) -> None:
        """Discard non-durable suffix (power loss) or just the application
        buffer (process crash)."""
        frontier = self._durable_length if power_loss else self._cached_length
        del self._data[frontier:]
        self._cached_length = min(self._cached_length, frontier)
        self._durable_length = min(self._durable_length, frontier)

    def corrupt_tail(self, nbytes: int) -> None:
        """Flip the final ``nbytes`` (torn-write injection for replay tests)."""
        if nbytes <= 0 or nbytes > len(self._data):
            raise DeviceIOError("corruption span outside file")
        for i in range(len(self._data) - nbytes, len(self._data)):
            self._data[i] ^= 0xFF
