"""LUKS-style encrypted volume over a simulated block device.

The paper uses LUKS (dm-crypt) for at-rest encryption.  The parts that
matter to a storage experiment are reproduced here:

* a **master volume key** encrypts every sector (length-preserving,
  sector-tweaked cipher, like dm-crypt's ESSIV mode);
* the master key is held only in RAM after unlock; on disk it exists only
  wrapped inside **key slots**, each protected by a passphrase run through
  PBKDF2 -- so passphrases can be added/revoked without re-encrypting data;
* every byte of I/O pays a per-byte crypto CPU cost on the volume's clock,
  which is precisely the overhead the paper's Figure 1 "LUKS + TLS" bars
  capture for the at-rest half.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.clock import Clock
from ..common.errors import CryptoError, DeviceIOError
from .block_device import SimulatedBlockDevice
from ..crypto.cipher import (
    KEY_SIZE,
    AuthenticatedCipher,
    SectorCipher,
    derive_key,
    random_bytes,
)

SECTOR_SIZE = 512

# Per-byte cost of the software cipher.  dm-crypt with AES-NI moves
# ~1-2 GB/s per core; we charge 0.7 ns/B (~1.4 GB/s).
CRYPTO_COST_PER_BYTE = 0.7e-9


class LuksVolume:
    """An encrypting wrapper presenting the same read/write/flush interface
    as :class:`SimulatedBlockDevice`."""

    def __init__(self, device: SimulatedBlockDevice,
                 passphrase: bytes,
                 kdf_iterations: int = 1000,
                 crypto_cost_per_byte: float = CRYPTO_COST_PER_BYTE) -> None:
        self._device = device
        self._clock: Clock = device.clock
        self._crypto_cost = crypto_cost_per_byte
        self._master_key = random_bytes(KEY_SIZE)
        self._kdf_iterations = kdf_iterations
        self._slots: Dict[int, tuple] = {}
        self._sector_cipher: Optional[SectorCipher] = SectorCipher(
            self._master_key)
        self.add_keyslot(passphrase)

    # -- key-slot management ---------------------------------------------------

    def add_keyslot(self, passphrase: bytes) -> int:
        """Wrap the master key under a new passphrase; returns slot index."""
        if self._master_key is None:
            raise CryptoError("volume is locked; unlock before adding slots")
        slot = 0
        while slot in self._slots:
            slot += 1
        salt = random_bytes(16)
        kek = derive_key(passphrase, salt, self._kdf_iterations)
        wrapped = AuthenticatedCipher(kek).seal(
            self._master_key, aad=b"luks-slot")
        self._slots[slot] = (salt, wrapped)
        return slot

    def revoke_keyslot(self, slot: int) -> None:
        if slot not in self._slots:
            raise CryptoError(f"no key slot {slot}")
        if len(self._slots) == 1:
            raise CryptoError("refusing to revoke the last key slot")
        del self._slots[slot]

    def lock(self) -> None:
        """Drop the in-RAM master key (volume unmount)."""
        self._master_key = None
        self._sector_cipher = None

    def unlock(self, passphrase: bytes) -> None:
        """Recover the master key via any key slot."""
        for salt, wrapped in self._slots.values():
            kek = derive_key(passphrase, salt, self._kdf_iterations)
            try:
                master = AuthenticatedCipher(kek).open(wrapped,
                                                       aad=b"luks-slot")
            except Exception:
                continue
            self._master_key = master
            self._sector_cipher = SectorCipher(master)
            return
        raise CryptoError("no key slot matches the passphrase")

    def shred(self) -> None:
        """Destroy every key slot: whole-volume crypto-erasure."""
        self._slots.clear()
        self.lock()

    @property
    def unlocked(self) -> bool:
        return self._sector_cipher is not None

    @property
    def keyslot_count(self) -> int:
        return len(self._slots)

    # -- I/O --------------------------------------------------------------------

    def _require_unlocked(self) -> SectorCipher:
        if self._sector_cipher is None:
            raise CryptoError("volume is locked")
        return self._sector_cipher

    def _charge_crypto(self, nbytes: int) -> None:
        self._clock.advance(nbytes * self._crypto_cost)

    def write(self, offset: int, data: bytes) -> None:
        """Read-modify-write the covered sectors through the cipher."""
        cipher = self._require_unlocked()
        if not data:
            return
        first = offset // SECTOR_SIZE
        last = (offset + len(data) - 1) // SECTOR_SIZE
        span_start = first * SECTOR_SIZE
        span_len = (last - first + 1) * SECTOR_SIZE
        if span_start + span_len > self._device.capacity:
            raise DeviceIOError("write exceeds volume capacity")
        raw = self._device.read(span_start, span_len)
        self._charge_crypto(span_len)
        plain = bytearray()
        for i in range(first, last + 1):
            sector = raw[(i - first) * SECTOR_SIZE:(i - first + 1) * SECTOR_SIZE]
            plain.extend(cipher.decrypt_sector(i, sector))
        inner = offset - span_start
        plain[inner:inner + len(data)] = data
        self._charge_crypto(span_len)
        enciphered = bytearray()
        for i in range(first, last + 1):
            sector = plain[(i - first) * SECTOR_SIZE:(i - first + 1) * SECTOR_SIZE]
            enciphered.extend(cipher.encrypt_sector(i, bytes(sector)))
        self._device.write(span_start, bytes(enciphered))

    def read(self, offset: int, length: int) -> bytes:
        cipher = self._require_unlocked()
        if length == 0:
            return b""
        first = offset // SECTOR_SIZE
        last = (offset + length - 1) // SECTOR_SIZE
        span_start = first * SECTOR_SIZE
        span_len = (last - first + 1) * SECTOR_SIZE
        raw = self._device.read(span_start, span_len)
        self._charge_crypto(span_len)
        plain = bytearray()
        for i in range(first, last + 1):
            sector = raw[(i - first) * SECTOR_SIZE:(i - first + 1) * SECTOR_SIZE]
            plain.extend(cipher.decrypt_sector(i, sector))
        inner = offset - span_start
        return bytes(plain[inner:inner + length])

    def flush(self) -> None:
        self._device.flush()

    @property
    def capacity(self) -> int:
        return self._device.capacity
