"""Simulated block devices with latency accounting and fault injection.

:class:`SimulatedBlockDevice` stores bytes in memory, charges simulated time
on a :class:`~repro.common.clock.Clock` according to a
:class:`~repro.device.latency.LatencyModel`, and distinguishes *written*
from *durable* state so crash tests can observe exactly what an fsync-less
workload would lose.
"""

from __future__ import annotations

import random
from typing import Optional

from ..common.clock import Clock, SimClock
from ..common.errors import DeviceFullError, DeviceIOError
from .latency import ZERO, LatencyModel


class FaultInjector:
    """Deterministic write-failure injection for durability tests.

    Two modes compose: an explicit countdown (``fail_after(n)`` fails the
    n-th subsequent write) and a seeded probability per write.
    """

    def __init__(self, probability: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self._probability = probability
        self._rng = random.Random(seed)
        self._countdown: Optional[int] = None

    def fail_after(self, writes: int) -> None:
        """Arm a one-shot failure ``writes`` writes from now (0 = next)."""
        if writes < 0:
            raise ValueError("writes must be >= 0")
        self._countdown = writes

    def check(self) -> None:
        """Raise DeviceIOError if a fault fires for this write."""
        if self._countdown is not None:
            if self._countdown == 0:
                self._countdown = None
                raise DeviceIOError("injected write failure (countdown)")
            self._countdown -= 1
        if self._probability and self._rng.random() < self._probability:
            raise DeviceIOError("injected write failure (probabilistic)")


class SimulatedBlockDevice:
    """A flat byte-addressable device.

    Writes land in the *volatile* image immediately; :meth:`flush` copies
    the volatile image to the *durable* image and charges the fsync cost.
    :meth:`crash` discards volatile state, modelling power loss.
    """

    def __init__(self, capacity: int, clock: Optional[Clock] = None,
                 latency: LatencyModel = ZERO,
                 faults: Optional[FaultInjector] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.clock = clock if clock is not None else SimClock()
        self.latency = latency
        self.faults = faults
        self._volatile = bytearray(capacity)
        self._durable = bytearray(capacity)
        # Counters exposed for benchmarks and assertions.
        self.writes = 0
        self.reads = 0
        self.flushes = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # -- primitives ----------------------------------------------------------

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` into the volatile image."""
        end = offset + len(data)
        if offset < 0 or end > self.capacity:
            raise DeviceFullError(
                f"write [{offset}, {end}) exceeds capacity {self.capacity}")
        if self.faults is not None:
            self.faults.check()
        self.clock.advance(self.latency.write_cost(len(data)))
        self._volatile[offset:end] = data
        self.writes += 1
        self.bytes_written += len(data)

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` from the volatile image."""
        end = offset + length
        if offset < 0 or length < 0 or end > self.capacity:
            raise DeviceIOError(
                f"read [{offset}, {end}) exceeds capacity {self.capacity}")
        self.clock.advance(self.latency.read_cost(length))
        self.reads += 1
        self.bytes_read += length
        return bytes(self._volatile[offset:end])

    def flush(self) -> None:
        """Durability barrier: persist all volatile writes (fsync)."""
        self.clock.advance(self.latency.fsync)
        self._durable[:] = self._volatile
        self.flushes += 1

    def crash(self) -> None:
        """Power loss: volatile image reverts to the last durable state."""
        self._volatile[:] = self._durable

    # -- inspection ----------------------------------------------------------

    def durable_read(self, offset: int, length: int) -> bytes:
        """Read from the durable image (what survives a crash)."""
        end = offset + length
        if offset < 0 or length < 0 or end > self.capacity:
            raise DeviceIOError(
                f"read [{offset}, {end}) exceeds capacity {self.capacity}")
        return bytes(self._durable[offset:end])

    def snapshot_counters(self) -> dict:
        return {
            "writes": self.writes,
            "reads": self.reads,
            "flushes": self.flushes,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
        }
