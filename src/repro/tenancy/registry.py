"""Tenant registry: the control plane's source of truth.

A *tenant* is a data controller renting a slice of the GDPR storage
service.  Each tenant owns a namespace (every key and every data-subject
id is qualified with a ``tenant/`` prefix), a compliance policy (the
per-tenant replacement for the store-wide :class:`~repro.gdpr.store.
GDPRConfig` knobs), and a quota (key count, byte budget, and an ops/s
token bucket enforced at the cluster server boundary).

The namespace scheme is a plain prefix, deliberately *not* a
``{hash tag}``: a hash tag would pin every key of a tenant to one hash
slot and defeat sharding.  A tenant's keys spread over the cluster like
anyone else's; the boundary is enforced by prefix checks and
prefix-filtered keyspace views, and the GDPR fan-out is bounded because
subjects are qualified the same way (tenant ``acme``'s subject ``alice``
is ``acme/alice`` everywhere: metadata owner, inverted indexes,
per-subject encryption keys -- so crypto-erasure of ``acme/alice`` can
never touch ``globex/alice``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.errors import UnknownTenantError

#: Separator between the tenant id and the tenant-local name.  Tenant ids
#: themselves must not contain it.
TENANT_SEP = "/"


def qualify_key(tenant: str, key: str) -> str:
    """The cluster-wide name of a tenant-local key."""
    return f"{tenant}{TENANT_SEP}{key}"


def qualify_subject(tenant: str, subject: str) -> str:
    """The cluster-wide id of a tenant-local data subject."""
    return f"{tenant}{TENANT_SEP}{subject}"


def key_prefix(tenant: str) -> str:
    return tenant + TENANT_SEP


def tenant_of(qualified: str) -> Optional[str]:
    """The tenant owning a qualified name (None for unqualified names)."""
    head, sep, _ = qualified.partition(TENANT_SEP)
    return head if sep else None


def local_name(tenant: str, qualified: str) -> str:
    """Strip ``tenant``'s prefix off a qualified name."""
    prefix = key_prefix(tenant)
    if not qualified.startswith(prefix):
        raise ValueError(f"{qualified!r} is not in tenant {tenant!r}")
    return qualified[len(prefix):]


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant compliance policy: the knobs that used to be global.

    ``None`` fields defer to the hosting store's :class:`~repro.gdpr.
    store.GDPRConfig`; a set field overrides it for this tenant's keys
    only.
    """

    region: Optional[str] = None          # residency pin (Art. 46)
    default_ttl: Optional[float] = None   # retention default (Art. 5.1e)
    audit_enabled: bool = True            # Art. 30 monitoring on/off
    fast_gdpr: bool = False               # amortized-compliance write path
    encryption_required: bool = True      # envelope encryption at rest


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource caps, enforced at the server boundary.

    ``None`` disables the corresponding cap.  ``burst`` is the token
    bucket's capacity; it defaults to one second's worth of tokens.
    """

    max_keys: Optional[int] = None
    max_bytes: Optional[int] = None
    ops_per_sec: Optional[float] = None
    burst: Optional[float] = None

    def bucket_capacity(self) -> Optional[float]:
        if self.ops_per_sec is None:
            return None
        return self.burst if self.burst is not None else self.ops_per_sec


class TokenBucket:
    """A deterministic token bucket driven by simulated-clock time.

    Refill is computed lazily from elapsed clock time, so behaviour is a
    pure function of the event timeline -- byte-identical across runs.
    """

    __slots__ = ("rate", "capacity", "tokens", "_last")

    def __init__(self, rate: float, capacity: float,
                 now: float = 0.0) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError("token bucket needs positive rate/capacity")
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self._last = now

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.capacity,
                              self.tokens + (now - self._last) * self.rate)
            self._last = now

    def try_take(self, now: float, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False means *throttle*."""
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


@dataclass
class _TenantEntry:
    policy: TenantPolicy = field(default_factory=TenantPolicy)
    quota: TenantQuota = field(default_factory=TenantQuota)


class TenantRegistry:
    """tenant id -> (:class:`TenantPolicy`, :class:`TenantQuota`)."""

    def __init__(self) -> None:
        self._tenants: Dict[str, _TenantEntry] = {}

    def register(self, tenant: str,
                 policy: Optional[TenantPolicy] = None,
                 quota: Optional[TenantQuota] = None) -> None:
        if TENANT_SEP in tenant or not tenant:
            raise ValueError(
                f"tenant id {tenant!r} must be non-empty and must not "
                f"contain {TENANT_SEP!r}")
        self._tenants[tenant] = _TenantEntry(
            policy=policy if policy is not None else TenantPolicy(),
            quota=quota if quota is not None else TenantQuota())

    def known(self, tenant: str) -> bool:
        return tenant in self._tenants

    def require(self, tenant: str) -> _TenantEntry:
        entry = self._tenants.get(tenant)
        if entry is None:
            raise UnknownTenantError(
                f"TENANTUNKNOWN no such tenant {tenant!r}")
        return entry

    def policy_of(self, tenant: str) -> TenantPolicy:
        return self.require(tenant).policy

    def quota_of(self, tenant: str) -> TenantQuota:
        return self.require(tenant).quota

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    # -- GDPR-layer integration (duck-typed policy resolver) ---------------

    def policy_for_key(self, key: str) -> Optional[TenantPolicy]:
        """The policy governing a (possibly qualified) key, or None for
        keys outside any registered tenant's namespace.  This is the
        resolver :class:`~repro.gdpr.store.GDPRStore` consults."""
        tenant = tenant_of(key)
        if tenant is None:
            return None
        entry = self._tenants.get(tenant)
        return entry.policy if entry is not None else None

    def any_fast_gdpr(self) -> bool:
        """True when some tenant opted into the amortized write path
        (the hosting store must build its write-behind machinery)."""
        return any(entry.policy.fast_gdpr
                   for entry in self._tenants.values())

    def items(self) -> List[Tuple[str, TenantPolicy, TenantQuota]]:
        return [(name, entry.policy, entry.quota)
                for name, entry in sorted(self._tenants.items())]
