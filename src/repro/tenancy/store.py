"""Tenant-scoped view over a GDPR store (single-node or sharded).

A :class:`TenantStore` gives one tenant the illusion of a private GDPR
store: keys, data subjects, and therefore every derived artifact
(inverted indexes, per-subject encryption keys, audit subjects, rights
fan-out) are qualified with the tenant's namespace prefix on the way in
and stripped on the way out.  Because the *subject* is qualified --
``acme``'s ``alice`` is ``acme/alice`` -- the GDPR machinery needs no
tenant awareness at all:

* Art. 15/20/21 iterate ``keys_of_subject("acme/alice")``, which can
  only ever name ``acme``'s records;
* Art. 17 crypto-erasure destroys the ``acme/alice`` data key in the
  shared keystore, voiding that tenant's ciphertexts on every shard,
  replica, AOF, and cold segment -- and nobody else's, because
  ``globex/alice`` seals under a different key.

The view wraps either a :class:`~repro.gdpr.store.GDPRStore` or a
:class:`~repro.cluster.sharded_store.ShardedGDPRStore`; rights calls
duck-type between the sharded store's fan-out methods and the
single-store rights functions.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..gdpr.access_control import Principal
from ..gdpr.metadata import GDPRMetadata, Record
from ..gdpr.rights import (
    right_of_access,
    right_to_erasure,
    right_to_object,
    right_to_portability,
)
from .registry import key_prefix, qualify_key, qualify_subject


class TenantStore:
    """One tenant's window onto a shared GDPR store."""

    def __init__(self, base, tenant: str) -> None:
        self.base = base
        self.tenant = tenant
        self._prefix = key_prefix(tenant)

    # -- namespace ---------------------------------------------------------

    def _key(self, key: str) -> str:
        return qualify_key(self.tenant, key)

    def _subject(self, subject: str) -> str:
        return qualify_subject(self.tenant, subject)

    def _qualify_metadata(self, metadata: GDPRMetadata) -> GDPRMetadata:
        if metadata.owner.startswith(self._prefix):
            return metadata
        return dataclasses.replace(
            metadata, owner=self._subject(metadata.owner))

    def _strip(self, qualified: str) -> str:
        if qualified.startswith(self._prefix):
            return qualified[len(self._prefix):]
        return qualified

    # -- data path ---------------------------------------------------------

    def put(self, key: str, value: bytes, metadata: GDPRMetadata,
            principal: Optional[Principal] = None,
            purpose: Optional[str] = None) -> None:
        metadata = self._qualify_metadata(metadata)
        if principal is None:
            self.base.put(self._key(key), value, metadata, purpose=purpose)
        else:
            self.base.put(self._key(key), value, metadata,
                          principal=principal, purpose=purpose)

    def get(self, key: str, principal: Optional[Principal] = None,
            purpose: Optional[str] = None) -> Record:
        if principal is None:
            record = self.base.get(self._key(key), purpose=purpose)
        else:
            record = self.base.get(self._key(key), principal=principal,
                                   purpose=purpose)
        return Record(key=self._strip(record.key), value=record.value,
                      metadata=record.metadata)

    def delete(self, key: str,
               principal: Optional[Principal] = None) -> bool:
        if principal is None:
            return self.base.delete(self._key(key))
        return self.base.delete(self._key(key), principal=principal)

    # -- keyspace ----------------------------------------------------------

    def keys(self) -> List[str]:
        """Tenant-local names of every live key (prefix-scoped KEYS)."""
        prefix = self._prefix
        engines = []
        if hasattr(self.base, "shards"):
            engines = [shard.kv for shard in self.base.shards]
        elif hasattr(self.base, "kv"):
            engines = [self.base.kv]
        names = set()
        for engine in engines:
            for key in engine.live_keys_with_prefix(prefix):
                names.add(key.decode("utf-8", "replace")[len(prefix):])
        return sorted(names)

    def key_count(self) -> int:
        return len(self.keys())

    def keys_of_subject(self, subject: str) -> List[str]:
        return sorted(self._strip(key) for key in
                      self.base.keys_of_subject(self._subject(subject)))

    def subject_exists(self, subject: str) -> bool:
        return self.base.subject_exists(self._subject(subject))

    # -- subject rights, tenant-bounded ------------------------------------

    def access_report(self, subject: str,
                      principal: Optional[Principal] = None):
        """Art. 15, bounded to this tenant's records of ``subject``."""
        qualified = self._subject(subject)
        if hasattr(self.base, "access_report"):
            return self.base.access_report(qualified, principal=principal)
        return right_of_access(self.base, qualified, principal=principal)

    def erase_subject(self, subject: str,
                      principal: Optional[Principal] = None,
                      compact_log: Optional[bool] = None):
        """Art. 17: erase *this tenant's* ``subject`` -- keyspace DELs,
        crypto-erasure of the tenant-qualified data key, archive
        tombstones -- leaving same-named subjects of other tenants
        untouched."""
        qualified = self._subject(subject)
        if hasattr(self.base, "erase_subject"):
            return self.base.erase_subject(qualified, principal=principal,
                                           compact_log=compact_log)
        return right_to_erasure(self.base, qualified, principal=principal,
                                compact_log=compact_log)

    def export_subject(self, subject: str, fmt: str = "json",
                       principal: Optional[Principal] = None) -> bytes:
        """Art. 20 over this tenant's records only."""
        qualified = self._subject(subject)
        if hasattr(self.base, "export_subject"):
            return self.base.export_subject(qualified, fmt=fmt,
                                            principal=principal)
        return right_to_portability(self.base, qualified, fmt=fmt,
                                    principal=principal)

    def object_to_purpose(self, subject: str, purpose: str,
                          principal: Optional[Principal] = None) -> int:
        """Art. 21 over this tenant's records only."""
        qualified = self._subject(subject)
        if hasattr(self.base, "object_to_purpose"):
            return self.base.object_to_purpose(qualified, purpose,
                                               principal=principal)
        return right_to_object(self.base, qualified, purpose,
                               principal=principal)
