"""Multi-tenant control plane: namespaces, policies, quotas, metering.

The tenancy layer turns the single GDPR store into a shared *service*:

* :mod:`~repro.tenancy.registry` -- tenant ids, per-tenant compliance
  policies (:class:`TenantPolicy`) and quotas (:class:`TenantQuota`),
  plus the ``tenant/`` namespace helpers;
* :mod:`~repro.tenancy.gate` -- admission control at the cluster server
  boundary (namespace checks, ops/s token buckets, footprint budgets)
  and live usage accounting off the engines' write/deletion streams;
* :mod:`~repro.tenancy.metering` -- periodic per-tenant usage reports
  sealed into a tamper-evident block audit chain;
* :mod:`~repro.tenancy.store` -- a per-tenant view over a (sharded)
  GDPR store that scopes keys, subjects, and every subject right to the
  tenant's namespace.
"""

from .gate import TenantGate, UsageCounters, WRITE_COMMANDS
from .metering import METERING_PRINCIPAL, MeteringPipeline
from .registry import (
    TENANT_SEP,
    TenantPolicy,
    TenantQuota,
    TenantRegistry,
    TokenBucket,
    key_prefix,
    local_name,
    qualify_key,
    qualify_subject,
    tenant_of,
)
from .store import TenantStore

__all__ = [
    "METERING_PRINCIPAL",
    "MeteringPipeline",
    "TENANT_SEP",
    "TenantGate",
    "TenantPolicy",
    "TenantQuota",
    "TenantRegistry",
    "TenantStore",
    "TokenBucket",
    "UsageCounters",
    "WRITE_COMMANDS",
    "key_prefix",
    "local_name",
    "qualify_key",
    "qualify_subject",
    "tenant_of",
]
