"""Usage metering: per-tenant reports sealed into an audit chain.

Billing evidence gets the same tamper-evidence treatment as compliance
evidence: every metering interval the pipeline diffs each tenant's
cumulative counters against the last report, serializes the delta (plus
live footprint gauges) into an :class:`~repro.gdpr.audit.AuditRecord`,
and seals the round into one block of a dedicated block-mode
:class:`~repro.gdpr.audit.AuditLog`.  A tenant disputing a bill -- or a
provider disputing a tenant's claim -- replays the chain:
``verify()`` recomputes every member digest and block hash, so an
edited, reordered, or truncated report history fails loudly.

The pipeline is usually driven by a daemon timer on the simulation
clock (like the audit group commit); ``flush()`` is the synchronous
end-of-run barrier.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..common.clock import Clock
from ..gdpr.audit import AuditChainMode, AuditLog, AuditRecord
from .gate import TenantGate

#: The principal metering records are appended under; consumers filter
#: the chain on it (usage reports share the evidence format, not the
#: data-path chain).
METERING_PRINCIPAL = "metering"


class MeteringPipeline:
    """Aggregate :class:`~repro.tenancy.gate.TenantGate` counters into
    periodic per-tenant reports on a sealed-block audit chain."""

    def __init__(self, gate: TenantGate, clock: Optional[Clock] = None,
                 interval: float = 1.0, log=None,
                 auto_timer: bool = True) -> None:
        self.gate = gate
        self.clock = clock if clock is not None else gate.clock
        self.interval = interval
        # One block per metering round: every flush is one chain update
        # and one group-commit, and verify_blocks covers the whole run.
        self.audit = AuditLog(
            log=log, clock=self.clock,
            chain_mode=AuditChainMode.BLOCK,
            block_size=1 << 30,  # rounds seal explicitly, never by size
            auto_timer=False)
        self.reports: List[Tuple[float, str, Dict[str, int]]] = []
        self._last: Dict[str, Dict[str, int]] = {}
        self._timer_handle = None
        if auto_timer:
            self._maybe_start_timer()

    def _maybe_start_timer(self) -> None:
        schedule = getattr(self.clock, "schedule_after", None)
        if schedule is None or self.interval <= 0:
            return

        def fire() -> None:
            self.flush()
            self._timer_handle = self.clock.schedule_after(
                self.interval, fire, label="metering-flush", daemon=True)

        self._timer_handle = schedule(self.interval, fire,
                                      label="metering-flush", daemon=True)

    def stop_timer(self) -> None:
        if self._timer_handle is not None:
            cancel = getattr(self._timer_handle, "cancel", None)
            if cancel is not None:
                cancel()
            self._timer_handle = None

    # -- reporting ---------------------------------------------------------

    def flush(self) -> int:
        """Emit one report per tenant with new activity and seal the
        round into a block.  Returns reports appended."""
        now = self.clock.now()
        appended = 0
        for tenant in self.gate.registry.tenants():
            cumulative = self.gate.counters_of(tenant).snapshot()
            previous = self._last.get(tenant)
            if previous == cumulative:
                continue
            if previous is None and not any(cumulative.values()):
                continue        # never-active tenant: no zero reports
            delta = {name: value - (previous or {}).get(name, 0)
                     for name, value in cumulative.items()}
            report = dict(delta)
            report["keys_held"] = self.gate.key_count(tenant)
            report["bytes_held"] = self.gate.bytes_used(tenant)
            self.audit.append(
                principal=METERING_PRINCIPAL, operation="usage-report",
                key=None, subject=tenant, outcome="ok",
                detail=json.dumps(report, sort_keys=True,
                                  separators=(",", ":")))
            self.reports.append((now, tenant, report))
            self._last[tenant] = cumulative
            appended += 1
        if appended:
            self.audit.seal_block()
        return appended

    # -- evidence ----------------------------------------------------------

    def verify(self) -> int:
        """Recompute the sealed-block chain over the durable metering
        log; returns member records verified, raises
        :class:`~repro.common.errors.AuditError` on tampering."""
        return AuditLog.verify_blocks(
            AuditLog.parse_blocks(self.audit.log.read_all()))

    def records_for(self, tenant: str) -> List[AuditRecord]:
        """A tenant's metering history, straight off the chain index."""
        return self.audit.records_for_subject(tenant)

    def totals_of(self, tenant: str) -> Dict[str, int]:
        """Sum of every sealed report's deltas for ``tenant`` (what a
        bill would be computed from)."""
        totals: Dict[str, int] = {}
        for _, name, report in self.reports:
            if name != tenant:
                continue
            for counter, value in report.items():
                if counter in ("keys_held", "bytes_held"):
                    totals[counter] = value     # gauges: last wins
                else:
                    totals[counter] = totals.get(counter, 0) + value
        return totals
