"""Tenant admission control at the server boundary.

One :class:`TenantGate` fronts a whole cluster: every
:class:`~repro.cluster.client.ClusterStoreServer` consults it before
executing a tenant-stamped request.  The gate enforces, in order:

1. **Namespace** -- every key the command touches must live inside the
   requesting tenant's prefix (``TENANTDENIED`` otherwise).  The check
   runs on the shard serving the request, so a malicious client cannot
   dodge it by routing creatively.
2. **Rate** -- a per-tenant token bucket over simulated clock time caps
   ops/s (``QUOTAEXCEEDED``).  Rejected requests never reach the engine,
   so a throttled tenant costs the shard only the admission check --
   that asymmetry is what protects well-behaved neighbours.
3. **Footprint** -- key-count and byte budgets checked against live
   usage before a write lands (``QUOTAEXCEEDED``).

Usage is tracked from the engines' *effective-write* and *deletion*
streams rather than the request path, so expirations, GDPR erasures,
migration cascades, and even direct ``store.execute`` writes (bench
preloads) keep the meters honest.  The same counters feed the
:class:`~repro.tenancy.metering.MeteringPipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.clock import Clock
from ..common.errors import QuotaExceededError, TenantAccessError
from .registry import TENANT_SEP, TenantRegistry, TokenBucket, tenant_of

#: Commands whose execution mutates the keyspace (admission applies the
#: footprint quotas; everything else is metered as a read).
WRITE_COMMANDS = {
    b"SET", b"SETNX", b"SETEX", b"PSETEX", b"MSET", b"APPEND", b"GETSET",
    b"DEL", b"UNLINK", b"RENAME", b"EXPIRE", b"PEXPIRE", b"EXPIREAT",
    b"PEXPIREAT", b"PERSIST", b"INCR", b"DECR", b"INCRBY", b"DECRBY",
    b"HSET", b"HDEL", b"LPUSH", b"RPUSH", b"LPOP", b"RPOP", b"SADD",
    b"SREM", b"RESTORE",
}


@dataclass
class UsageCounters:
    """Cumulative per-tenant traffic counters (monotonic)."""

    ops: int = 0
    read_ops: int = 0
    write_ops: int = 0
    bytes_in: int = 0
    throttled: int = 0
    denied: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"ops": self.ops, "read_ops": self.read_ops,
                "write_ops": self.write_ops, "bytes_in": self.bytes_in,
                "throttled": self.throttled, "denied": self.denied}


@dataclass
class _TenantUsage:
    """Live footprint: what the tenant is storing right now."""

    sizes: Dict[bytes, int] = field(default_factory=dict)
    bytes_used: int = 0
    counters: UsageCounters = field(default_factory=UsageCounters)


class TenantGate:
    """Admission control + usage accounting for one cluster."""

    def __init__(self, registry: TenantRegistry, clock: Clock) -> None:
        self.registry = registry
        self.clock = clock
        self._usage: Dict[str, _TenantUsage] = {}
        self._buckets: Dict[str, Optional[TokenBucket]] = {}

    # -- wiring ------------------------------------------------------------

    def watch_store(self, store) -> None:
        """Subscribe to a primary's write/deletion streams so footprint
        meters track every path a key can appear or vanish through."""
        store.add_write_listener(self._on_write)
        store.add_deletion_listener(self._on_deletion)

    # -- admission ---------------------------------------------------------

    def admit(self, tenant: str, name: bytes, argv: List[bytes],
              keys: List[bytes], now: float) -> None:
        """Gate one request; raises on namespace or quota violations.

        Raising here happens *before* the engine sees the command; the
        serve path converts the error to an unprefixed RESP error
        (``TENANTDENIED`` / ``QUOTAEXCEEDED`` / ``TENANTUNKNOWN``).
        """
        entry = self.registry.require(tenant)
        usage = self._usage_of(tenant)
        prefix = (tenant + TENANT_SEP).encode("utf-8")
        for key in keys:
            if not key.startswith(prefix):
                usage.counters.denied += 1
                raise TenantAccessError(
                    f"TENANTDENIED key {key.decode('utf-8', 'replace')!r}"
                    f" is outside tenant {tenant!r}")
        bucket = self._bucket_of(tenant, now)
        if bucket is not None and not bucket.try_take(now):
            usage.counters.throttled += 1
            raise QuotaExceededError(
                f"QUOTAEXCEEDED tenant {tenant!r} over its "
                f"{entry.quota.ops_per_sec:g} ops/s quota")
        is_write = name in WRITE_COMMANDS
        if is_write:
            self._check_footprint(tenant, entry.quota, usage, name, argv)
        usage.counters.ops += 1
        if is_write:
            usage.counters.write_ops += 1
        else:
            usage.counters.read_ops += 1
        usage.counters.bytes_in += sum(len(part) for part in argv)

    def _check_footprint(self, tenant: str, quota, usage: _TenantUsage,
                         name: bytes, argv: List[bytes]) -> None:
        """Reject a write that would blow the key/byte budget.  Only
        SET-shaped writes can grow the footprint; deletes always pass."""
        if name not in (b"SET", b"SETNX", b"SETEX", b"PSETEX", b"MSET",
                        b"APPEND", b"GETSET", b"RESTORE"):
            return
        if quota.max_keys is None and quota.max_bytes is None:
            return
        if name == b"MSET":
            writes = [(argv[i], argv[i + 1])
                      for i in range(1, len(argv) - 1, 2)]
        elif name in (b"SETEX", b"PSETEX") and len(argv) >= 4:
            writes = [(argv[1], argv[3])]
        else:
            writes = [(argv[1], argv[2])] if len(argv) >= 3 else []
        new_keys = sum(1 for key, _ in writes if key not in usage.sizes)
        if quota.max_keys is not None \
                and len(usage.sizes) + new_keys > quota.max_keys:
            usage.counters.denied += 1
            raise QuotaExceededError(
                f"QUOTAEXCEEDED tenant {tenant!r} at its "
                f"{quota.max_keys} key quota")
        if quota.max_bytes is not None:
            delta = sum(
                (len(value) if name == b"APPEND" else
                 len(value) - usage.sizes.get(key, 0))
                for key, value in writes)
            if usage.bytes_used + delta > quota.max_bytes:
                usage.counters.denied += 1
                raise QuotaExceededError(
                    f"QUOTAEXCEEDED tenant {tenant!r} over its "
                    f"{quota.max_bytes} byte quota")

    # -- usage tracking (engine listeners) ---------------------------------

    def _on_write(self, db_index: int, argv: List[bytes]) -> None:
        name = argv[0].upper()
        if name in (b"SET", b"SETNX") and len(argv) >= 3:
            self._record_stored(argv[1], len(argv[2]))
        elif name in (b"SETEX", b"PSETEX") and len(argv) >= 4:
            self._record_stored(argv[1], len(argv[3]))
        elif name == b"MSET":
            for i in range(1, len(argv) - 1, 2):
                self._record_stored(argv[i], len(argv[i + 1]))
        elif name == b"APPEND" and len(argv) >= 3:
            key = argv[1]
            tenant = tenant_of(key.decode("utf-8", "replace"))
            if tenant is not None and self.registry.known(tenant):
                usage = self._usage_of(tenant)
                usage.sizes[key] = usage.sizes.get(key, 0) + len(argv[2])
                usage.bytes_used += len(argv[2])
        elif name == b"RESTORE" and len(argv) >= 4:
            self._record_stored(argv[1], len(argv[3]))

    def _record_stored(self, key: bytes, size: int) -> None:
        tenant = tenant_of(key.decode("utf-8", "replace"))
        if tenant is None or not self.registry.known(tenant):
            return
        usage = self._usage_of(tenant)
        usage.bytes_used += size - usage.sizes.get(key, 0)
        usage.sizes[key] = size

    def _on_deletion(self, db_index: int, key: bytes, reason: str,
                     when: float) -> None:
        if reason == "demote":
            # A tier move, not an erasure: the record is still the
            # tenant's footprint (promote-on-read serves it back).
            return
        tenant = tenant_of(key.decode("utf-8", "replace"))
        if tenant is None:
            return
        usage = self._usage.get(tenant)
        if usage is None:
            return
        size = usage.sizes.pop(key, None)
        if size is not None:
            usage.bytes_used -= size

    # -- views -------------------------------------------------------------

    def _usage_of(self, tenant: str) -> _TenantUsage:
        usage = self._usage.get(tenant)
        if usage is None:
            usage = self._usage[tenant] = _TenantUsage()
        return usage

    def _bucket_of(self, tenant: str, now: float) -> Optional[TokenBucket]:
        if tenant not in self._buckets:
            quota = self.registry.quota_of(tenant)
            capacity = quota.bucket_capacity()
            self._buckets[tenant] = (
                TokenBucket(quota.ops_per_sec, capacity, now=now)
                if capacity is not None else None)
        return self._buckets[tenant]

    def counters_of(self, tenant: str) -> UsageCounters:
        return self._usage_of(tenant).counters

    def key_count(self, tenant: str) -> int:
        return len(self._usage_of(tenant).sizes)

    def bytes_used(self, tenant: str) -> int:
        return self._usage_of(tenant).bytes_used
