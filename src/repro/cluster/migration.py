"""Live slot migration: move a slot's *data* between shards, safely.

PR 1's :meth:`SlotMap.assign` reshards *routing* only -- keys already
written stay stranded on the old shard.  This module adds the Redis
Cluster-style data path: a migrator walks a slot's keys on the source
shard, ships each key's value (``DUMP`` payload or sealed GDPR envelope)
to the target, and **flips slot ownership atomically at the end**, while
the slot's :class:`~repro.cluster.slots.MigrationState` makes servers
answer ``ASK``/``MOVED`` so live clients never observe a torn keyspace.

Cross-shard invariants the migrators maintain:

* **The source stays authoritative until the flip.**  Copies on the
  importing target are shadows: reads and writes of existing keys keep
  hitting the source, and any source write *after* a key was copied
  re-queues it (rsync-style) so the target can never win with stale data.
* **Deletes cascade.**  A key deleted on the source mid-migration (an
  Art. 17 erasure, a DEL, an expiry) is immediately deleted from the
  target's shadow copy too -- ownership flip can never resurrect erased
  personal data.  Conversely a shadow copy deleted on the target is
  re-queued for copy while the source still holds it.
* **New keys are born on the target.**  A key created mid-migration in a
  migrating slot is ASK-redirected (cluster) or routed (GDPR store) to
  the importing target, so the source's key set only shrinks.
* **GDPR metadata travels with the ciphertext.**  The GDPR migrator ships
  the sealed envelope verbatim (the shared keystore makes it readable on
  any shard, and crypto-erasure still voids it everywhere), re-registers
  the key in the target's metadata index and location ledger, and appends
  ``migrate-in``/``migrate-out`` records to **both** shards' hash-chained
  audit logs -- the handoff itself is compliance evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from ..common.errors import MigrationError
from ..kvstore.aof import contains_key
from .client import command_keys
from .slots import SlotMap, slot_for_key

MIGRATOR_PRINCIPAL = "cluster-migrator"


@dataclass
class MigrationReceipt:
    """What a finished (or aborted) slot migration did, and what it cost."""

    slot: int
    source: int
    target: int
    started_at: float
    completed_at: float = 0.0
    keys_moved: List[str] = field(default_factory=list)
    bytes_moved: int = 0
    recopied: int = 0           # dirty re-copies forced by source writes
    aborted: bool = False
    residual_in_source_aof: bool = False
    replicas_synced: int = 0    # keys full-synced onto the destination's
                                # replicas at the ownership flip

    @property
    def duration(self) -> float:
        return self.completed_at - self.started_at


class _SlotMigrationBase:
    """Shared migration lifecycle: scan, copy, track dirt, flip, clean up.

    Subclasses provide the storage primitives (how to scan a slot, copy
    one key, delete a handed-off or rolled-back copy) and the listener
    wiring; the base class owns the state machine:

    ``begin`` (constructor) -> any number of ``step`` calls, interleaved
    with live traffic -> ``finish`` (drain + atomic ownership flip +
    source cleanup) or ``abort`` (target cleanup, ownership unchanged).
    """

    def __init__(self, slot_map: SlotMap, slot: int, target: int) -> None:
        self.slots = slot_map
        self.state = slot_map.begin_migration(slot, target)
        self.slot = slot
        self.source = self.state.source
        self.target = target
        self._pending: List = []
        self._pending_set: Set = set()
        self._moved: Set = set()
        self._bytes_moved = 0
        self._recopied = 0
        self._done = False
        # Re-entrancy guard: listener callbacks ignore mutations the
        # migrator itself performs (RESTORE's implicit delete, handoff
        # DELs at finish, rollback DELs at abort).
        self._suspended = False
        for key in self._scan_keys():
            self._enqueue(key)
        self.receipt = MigrationReceipt(
            slot=slot, source=self.source, target=target,
            started_at=self._now())
        self._attach()

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def keys_pending(self) -> int:
        return len(self._pending)

    @property
    def keys_moved(self) -> int:
        return len(self._moved)

    def _enqueue(self, key) -> None:
        if key not in self._pending_set:
            self._pending.append(key)
            self._pending_set.add(key)

    def _note_source_write(self, key) -> None:
        """A source key in this slot changed: (re-)queue it for copy."""
        if self._suspended or self._done:
            return
        if slot_for_key(key) != self.slot:
            return
        if key in self._moved:
            self._moved.discard(key)
            self._recopied += 1
        self._enqueue(key)

    def _note_source_delete(self, key) -> None:
        """Source copy died (erasure/DEL/expiry): kill the shadow too."""
        if self._suspended or self._done or key not in self._moved:
            return
        self._moved.discard(key)
        self._suspended = True
        try:
            self._cascade_delete_target(key)
        finally:
            self._suspended = False

    def _note_target_delete(self, key) -> None:
        """Shadow copy died on the target while the source still owns the
        key: re-queue so the slot flip does not lose it."""
        if self._suspended or self._done or key not in self._moved:
            return
        self._moved.discard(key)
        self._recopied += 1
        self._enqueue(key)

    # -- lifecycle ---------------------------------------------------------

    def step(self, max_keys: int = 1) -> int:
        """Copy up to ``max_keys`` pending keys to the target; returns how
        many were copied.  Call repeatedly, interleaved with live traffic,
        to spread migration cost over time."""
        if self._done:
            raise MigrationError(
                f"migration of slot {self.slot} already completed")
        copied = 0
        while self._pending and copied < max_keys:
            key = self._pending.pop(0)
            self._pending_set.discard(key)
            nbytes = self._copy_key(key)
            if nbytes is None:
                continue        # key vanished under us (erased/expired)
            self._moved.add(key)
            self._bytes_moved += nbytes
            copied += 1
        return copied

    def run(self, batch_size: int = 16) -> MigrationReceipt:
        """Drive the whole migration to completion in one call."""
        while self._pending:
            self.step(batch_size)
        return self.finish()

    def run_as_events(self, clock, batch_size: int = 16,
                      interval: float = 1e-4,
                      on_done: Optional[Callable[[MigrationReceipt],
                                                 None]] = None) -> None:
        """Drive this migration from scheduled events on ``clock``: one
        ``step(batch_size)`` per event, ``interval`` seconds apart, until
        drained, then ``finish()``.

        This is how migrations coexist with foreground traffic on the
        event core: each step is just another event interleaved with
        deliveries and loop ticks, and several migrators scheduled on one
        clock progress as interleaved event streams (the ``rebalance``
        path) instead of one slot monopolizing the timeline.
        """
        if not hasattr(clock, "schedule_after"):
            raise MigrationError(
                "event-driven migration needs a scheduling clock "
                "(SimClock)")

        def step_event() -> None:
            if self._done:
                return
            if self._pending:
                self.step(batch_size)
            if self._pending:
                clock.schedule_after(interval, step_event,
                                     label=f"migrate-{self.slot}")
            else:
                receipt = self.finish()
                if on_done is not None:
                    on_done(receipt)

        clock.schedule_after(interval, step_event,
                             label=f"migrate-{self.slot}")

    def finish(self) -> MigrationReceipt:
        """Drain stragglers, flip slot ownership atomically, then remove
        the handed-off copies from the source.

        With replication attached, the flip hands the replica set off
        too: the destination's replicas are full-synced from their (new
        owner) primary, so the moved slot is replicated the moment it
        starts serving; the source's replicas converge through the
        handoff DELs travelling their normal delayed streams.  (Like a
        real RDB-based resync, the full sync also fast-forwards the
        destination's unrelated in-flight stream -- replica lag on that
        shard snaps to zero at the flip.)
        """
        if self._done:
            raise MigrationError(
                f"migration of slot {self.slot} already completed")
        while self._pending:
            self.step(len(self._pending))
        self.slots.end_migration(self.slot)
        self._done = True
        self._suspended = True
        try:
            for key in sorted(self._moved):
                self._handoff_delete(key)
        finally:
            self._suspended = False
        self._detach()
        replication = self._replication()
        synced = 0
        if replication is not None:
            synced = replication.full_sync_shard(self.target)
        self._fill_receipt(aborted=False)
        self.receipt.replicas_synced = synced
        return self.receipt

    def abort(self) -> MigrationReceipt:
        """Cancel: delete the shadow copies from the target and bring
        home any key *born* on the target mid-migration (via ASKING);
        ownership never changed, so the source resumes exclusive service
        of the complete key set."""
        if self._done:
            raise MigrationError(
                f"migration of slot {self.slot} already completed")
        self.slots.abort_migration(self.slot)
        self._done = True
        self._suspended = True
        try:
            for key in self._scan_target_keys():
                if self._source_holds(key):
                    # A shadow copy (possibly stale: the source may have
                    # been written after the copy).  The source is
                    # authoritative -- just drop the shadow.
                    self._rollback_delete(key)
                else:
                    # Born on the target mid-migration (ASK-redirected
                    # new key).  Abandoning it would lose an
                    # acknowledged write: move it back.
                    self._move_back(key)
        finally:
            self._suspended = False
        self._detach()
        self._fill_receipt(aborted=True)
        return self.receipt

    def _fill_receipt(self, aborted: bool) -> None:
        self.receipt.completed_at = self._now()
        self.receipt.aborted = aborted
        self.receipt.keys_moved = sorted(
            self._key_name(key) for key in self._moved)
        self.receipt.bytes_moved = self._bytes_moved
        self.receipt.recopied = self._recopied
        self.receipt.residual_in_source_aof = self._source_aof_residual()

    # -- storage primitives (subclass responsibilities) --------------------

    def _scan_keys(self) -> List:
        raise NotImplementedError

    def _copy_key(self, key) -> Optional[int]:
        """Copy one key source->target; returns payload bytes shipped, or
        None if the key no longer exists on the source."""
        raise NotImplementedError

    def _cascade_delete_target(self, key) -> None:
        raise NotImplementedError

    def _handoff_delete(self, key) -> None:
        raise NotImplementedError

    def _rollback_delete(self, key) -> None:
        raise NotImplementedError

    def _scan_target_keys(self) -> List:
        """The target's keys in this slot (abort path: shadow copies to
        drop plus target-born keys to bring home)."""
        raise NotImplementedError

    def _source_holds(self, key) -> bool:
        """Does the source currently hold ``key``?  (Distinguishes a
        shadow copy from a target-born key during abort.)"""
        raise NotImplementedError

    def _move_back(self, key) -> None:
        """Return one target-born key to the source (abort path)."""
        raise NotImplementedError

    def _attach(self) -> None:
        raise NotImplementedError

    def _detach(self) -> None:
        raise NotImplementedError

    def _replication(self):
        """The cluster's :class:`ClusterReplication` registry, if one is
        attached (replication stays optional: None disables handoff)."""
        return None

    def _now(self) -> float:
        raise NotImplementedError

    def _source_aof_residual(self) -> bool:
        return False

    @staticmethod
    def _key_name(key) -> str:
        if isinstance(key, bytes):
            return key.decode("utf-8", "replace")
        return str(key)


class SlotMigrator(_SlotMigrationBase):
    """Live migration of one slot between two :class:`ClusterNode` shards.

    Keys travel as ``DUMP`` payloads restored with ``RESTORE ... REPLACE``
    (so re-copies of dirtied keys are idempotent), with TTLs carried as
    remaining milliseconds.  Each payload is charged to *both* shard
    clocks at the inter-node link's bandwidth and latency -- migration
    competes with foreground traffic for simulated time, which is exactly
    the "cost of compliance under cluster operations" the benchmarks
    measure.

    Concurrent :class:`~repro.cluster.client.ClusterClient` traffic keeps
    working throughout: the source serves keys it still holds, ASKs for
    keys that do not exist (new keys are created on the target via
    ``ASKING``), and after :meth:`finish` stale clients are MOVED to the
    new owner.
    """

    def __init__(self, cluster, slot: int, target: int) -> None:
        self._cluster = cluster
        source = cluster.slots.shard_of_slot(slot)
        if not 0 <= target < len(cluster.nodes):
            raise MigrationError(
                f"target shard {target} has no node in this cluster")
        self._source_node = cluster.nodes[source]
        self._target_node = cluster.nodes[target]
        super().__init__(cluster.slots, slot, target)

    # -- primitives --------------------------------------------------------

    def _scan_keys(self) -> List[bytes]:
        return sorted(key for key in self._source_node.store.live_keys(0)
                      if slot_for_key(key) == self.slot)

    def _sync_pair(self) -> None:
        """Source and target act in lockstep during a transfer."""
        now = max(self._source_node.clock.now(),
                  self._target_node.clock.now())
        self._source_node.clock.sleep_until(now)
        self._target_node.clock.sleep_until(now)

    def _charge_link(self, nbytes: int) -> None:
        """One source->target hop at the shard link's bandwidth/latency.
        Both ends are busy for the transfer; with a shared clock
        (``parallel=False``) that is one advance, not two."""
        channel = self._source_node.channel
        cost = channel.latency + nbytes / channel.bandwidth_bps
        self._sync_pair()
        self._source_node.clock.advance(cost)
        if self._target_node.clock is not self._source_node.clock:
            self._target_node.clock.advance(cost)

    def _copy_key(self, key: bytes) -> Optional[int]:
        self._suspended = True
        try:
            source = self._source_node.store
            payload = source.execute("DUMP", key)
            if payload is None:
                return None
            pttl = source.execute("PTTL", key)
            ttl_ms = pttl if pttl > 0 else 0
            self._charge_link(len(payload))
            self._target_node.store.execute(
                "RESTORE", key, ttl_ms, payload, "REPLACE")
            return len(payload)
        finally:
            self._suspended = False

    def _cascade_delete_target(self, key: bytes) -> None:
        self._target_node.store.execute("DEL", key)

    def _handoff_delete(self, key: bytes) -> None:
        self._source_node.store.execute("DEL", key)

    def _rollback_delete(self, key: bytes) -> None:
        self._target_node.store.execute("DEL", key)

    def _scan_target_keys(self) -> List[bytes]:
        return sorted(key for key in self._target_node.store.live_keys(0)
                      if slot_for_key(key) == self.slot)

    def _source_holds(self, key: bytes) -> bool:
        return self._source_node.store.has_live_key(key, 0)

    def _move_back(self, key: bytes) -> None:
        target = self._target_node.store
        payload = target.execute("DUMP", key)
        if payload is None:
            return
        pttl = target.execute("PTTL", key)
        self._charge_link(len(payload))
        self._source_node.store.execute(
            "RESTORE", key, pttl if pttl > 0 else 0, payload, "REPLACE")
        target.execute("DEL", key)

    # -- wiring ------------------------------------------------------------

    def _attach(self) -> None:
        self._source_node.store.add_write_listener(self._on_source_write)
        self._source_node.store.add_deletion_listener(
            self._on_source_delete)
        self._target_node.store.add_deletion_listener(
            self._on_target_delete)

    def _detach(self) -> None:
        self._source_node.store.remove_write_listener(
            self._on_source_write)
        self._source_node.store.remove_deletion_listener(
            self._on_source_delete)
        self._target_node.store.remove_deletion_listener(
            self._on_target_delete)

    def _on_source_write(self, db_index: int,
                         record: List[bytes]) -> None:
        for key in command_keys(record):
            self._note_source_write(key)

    def _on_source_delete(self, db_index: int, key: bytes,
                          reason: str, when: float) -> None:
        self._note_source_delete(key)

    def _on_target_delete(self, db_index: int, key: bytes,
                          reason: str, when: float) -> None:
        self._note_target_delete(key)

    def _replication(self):
        return getattr(self._cluster, "replication", None)

    def _now(self) -> float:
        return self._cluster.clock.now()

    def _source_aof_residual(self) -> bool:
        store = self._source_node.store
        if store.aof_log is None or not self._moved:
            return False
        data = store.aof_log.read_all()
        return any(contains_key(data, key) for key in self._moved)


class GDPRSlotMigrator(_SlotMigrationBase):
    """Slot migration across :class:`~repro.gdpr.store.GDPRStore` shards.

    Ships the *sealed envelope* (ciphertext) verbatim -- the cluster's
    shared keystore makes it readable on the target, and a crypto-erasure
    of the subject's key still voids every copy, including any bytes the
    source AOF retains until compaction (``residual_in_source_aof`` on the
    receipt reports exactly that, the paper's section 4.3 concern).

    Alongside each value the migrator moves the key's GDPR metadata
    (re-registered in the target's index, so subject-rights fan-out sees
    the shadow copy immediately), updates both location ledgers, and
    appends ``migrate-in`` / ``migrate-out`` / ``migrate-evict`` records
    to the per-shard hash-chained audit logs: the handoff is itself
    audited evidence on both machines.
    """

    def __init__(self, sharded_store, slot: int, target: int) -> None:
        self._store = sharded_store
        source = sharded_store.slots.shard_of_slot(slot)
        if not 0 <= target < sharded_store.num_shards:
            raise MigrationError(
                f"target shard {target} does not exist")
        self._source_shard = sharded_store.shards[source]
        self._target_shard = sharded_store.shards[target]
        super().__init__(sharded_store.slots, slot, target)
        self._audit_both("migrate-begin",
                         f"slot {slot}: shard-{self.source} -> "
                         f"shard-{self.target}")

    # -- primitives --------------------------------------------------------

    def _scan_keys(self) -> List[str]:
        return sorted(key for key in self._source_shard.index.keys()
                      if slot_for_key(key) == self.slot)

    def _copy_key(self, key: str) -> Optional[int]:
        source, target = self._source_shard, self._target_shard
        blob = source.kv.execute("GET", key)
        metadata = source.index.get_metadata(key)
        if blob is None or metadata is None:
            return None
        self._suspended = True
        try:
            target.kv.execute("SET", key, blob)
            deadline = metadata.expire_at()
            if deadline is not None:
                target.kv.execute("PEXPIREAT", key,
                                  int(deadline * 1000))
            target.index.add(key, metadata)
            target.kv.annotate_metadata(key, metadata.owner,
                                        metadata.purposes)
            target.locations.record_stored(key, target.config.region)
            target.audit.append(
                principal=MIGRATOR_PRINCIPAL, operation="migrate-in",
                key=key, subject=target._audit_name(metadata.owner),
                outcome="ok",
                detail=f"slot {self.slot} from "
                       f"{source.config.node_id}")
        finally:
            self._suspended = False
        return len(blob)

    def _cascade_delete_target(self, key: str) -> None:
        # Let the target's own deletion listener do the GDPR bookkeeping
        # (index removal, location ledger, erasure event): from the
        # target's point of view this *is* an erasure of personal data.
        target = self._target_shard
        target.kv.execute("DEL", key)
        target.audit.append(
            principal=MIGRATOR_PRINCIPAL, operation="migrate-evict",
            key=key, outcome="ok",
            detail=f"slot {self.slot}: source copy deleted "
                   "mid-migration")

    def _handoff_delete(self, key: str) -> None:
        # A handoff is not an erasure: the record lives on, on the new
        # owner.  Deregister from the index first so the deletion listener
        # records no erasure event, then remove the bytes.
        source = self._source_shard
        metadata = source.index.remove(key)
        source.locations.record_erased(key)
        source.kv.execute("DEL", key)
        source.audit.append(
            principal=MIGRATOR_PRINCIPAL, operation="migrate-out",
            key=key,
            subject=source._audit_name(metadata.owner)
            if metadata is not None else None,
            outcome="ok",
            detail=f"slot {self.slot} to "
                   f"{self._target_shard.config.node_id}")

    def _rollback_delete(self, key: str) -> None:
        target = self._target_shard
        target.index.remove(key)
        target.locations.record_erased(key)
        target.kv.execute("DEL", key)

    def _scan_target_keys(self) -> List[str]:
        return sorted(key for key in self._target_shard.index.keys()
                      if slot_for_key(key) == self.slot)

    def _source_holds(self, key: str) -> bool:
        return key in self._source_shard.index

    def _move_back(self, key: str) -> None:
        source, target = self._source_shard, self._target_shard
        blob = target.kv.execute("GET", key)
        metadata = target.index.get_metadata(key)
        if blob is None or metadata is None:
            return
        source.kv.execute("SET", key, blob)
        deadline = metadata.expire_at()
        if deadline is not None:
            source.kv.execute("PEXPIREAT", key, int(deadline * 1000))
        source.index.add(key, metadata)
        source.kv.annotate_metadata(key, metadata.owner,
                                    metadata.purposes)
        source.locations.record_stored(key, source.config.region)
        source.audit.append(
            principal=MIGRATOR_PRINCIPAL, operation="migrate-return",
            key=key, subject=source._audit_name(metadata.owner),
            outcome="ok",
            detail=f"slot {self.slot}: born on "
                   f"{target.config.node_id} during aborted migration")
        target.index.remove(key)
        target.locations.record_erased(key)
        target.kv.execute("DEL", key)

    # -- wiring ------------------------------------------------------------

    def _attach(self) -> None:
        self._source_shard.kv.add_write_listener(self._on_source_write)
        self._source_shard.kv.add_deletion_listener(
            self._on_source_delete)
        self._target_shard.kv.add_deletion_listener(
            self._on_target_delete)

    def _detach(self) -> None:
        self._source_shard.kv.remove_write_listener(
            self._on_source_write)
        self._source_shard.kv.remove_deletion_listener(
            self._on_source_delete)
        self._target_shard.kv.remove_deletion_listener(
            self._on_target_delete)

    def finish(self) -> MigrationReceipt:
        receipt = super().finish()
        self._audit_both("migrate-end",
                         f"slot {self.slot}: {len(receipt.keys_moved)} "
                         f"keys, {receipt.bytes_moved} bytes")
        return receipt

    def abort(self) -> MigrationReceipt:
        receipt = super().abort()
        self._audit_both("migrate-abort", f"slot {self.slot}")
        return receipt

    def _audit_both(self, operation: str, detail: str) -> None:
        for shard in (self._source_shard, self._target_shard):
            shard.audit.append(principal=MIGRATOR_PRINCIPAL,
                               operation=operation, outcome="ok",
                               detail=detail)

    def _on_source_write(self, db_index: int,
                         record: List[bytes]) -> None:
        for key in command_keys(record):
            self._note_source_write(key.decode("utf-8", "replace"))

    def _on_source_delete(self, db_index: int, key: bytes,
                          reason: str, when: float) -> None:
        self._note_source_delete(key.decode("utf-8", "replace"))

    def _on_target_delete(self, db_index: int, key: bytes,
                          reason: str, when: float) -> None:
        self._note_target_delete(key.decode("utf-8", "replace"))

    def _replication(self):
        return getattr(self._store, "replication", None)

    def _now(self) -> float:
        return self._store.clock.now()

    def _source_aof_residual(self) -> bool:
        kv = self._source_shard.kv
        if kv.aof_log is None or not self._moved:
            return False
        data = kv.aof_log.read_all()
        return any(contains_key(data, key.encode("utf-8"))
                   for key in self._moved)
