"""Per-shard replication groups: every shard gets delayed replicas.

The paper makes erasure "including all its replicas and backups" a
timeliness requirement (section 2.1), which turns replication lag into a
*compliance* property the cluster layer has to expose, not hide.  This
module attaches :class:`~repro.kvstore.replication.ReplicationLink`
replicas to every shard of a cluster and answers the compliance question
at cluster scope:

* :class:`ReplicatedShard` is one shard's replication group -- the
  primary :class:`~repro.engine.base.StorageEngine` plus N replicas,
  each behind its own configurable one-way delay.  On a scheduling clock
  the group pumps itself from recurring **daemon timer events**, so in
  event-driven mode replica lag is measurable on the same timeline the
  servers run on (and, like the expiry cron, the pump never keeps
  ``run_until_idle`` alive by itself).
* :class:`ClusterReplication` is the cluster-wide registry: one group
  per shard, a cluster-wide :meth:`~ClusterReplication.erasure_horizon`
  (simulated seconds until a deleted key is invisible on **every**
  primary *and* replica across **all** shards), and the slot-migration
  handoff hook (:meth:`~ClusterReplication.full_sync_shard`) migrators
  call so a moved slot arrives replicated on its destination.

Replication composes with the existing invariants rather than adding
new ones:

* **Erasure fans out through the write stream.**  A GDPR Art. 17 erasure
  (or any DEL/expiry) on a shard's primary propagates to its replicas as
  the same translated DELs replicas always apply; crypto-erasure through
  the shared keystore voids replica-held ciphertexts *immediately*, so
  the keyspace horizon measured here is the outer bound.
* **Migration hands off replica sets.**  While a slot migrates, every
  copy/cascade-delete the migrator performs on either primary enters
  that shard's write stream, so both replica sets track their primary
  mid-flight; at the ownership flip the migrator full-syncs the
  destination's replicas (draining their backlogs first -- the
  :meth:`~repro.kvstore.replication.ReplicationManager.full_sync`
  contract), so the moved slot is replicated on the new owner the moment
  it starts serving.
* **Stale reads are a knob, not an accident.**  The cluster client can
  route eligible single-slot reads to a random replica of the owning
  shard; :func:`queue_touches` is how it reports whether the replica's
  in-flight backlog could make that read stale.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..common.clock import Clock
from ..common.errors import ClusterError
from ..engine.base import StorageEngine
from ..kvstore.replication import ReplicationLink, ReplicationManager
from .client import command_keys

ReplicaFactory = Callable[[int], StorageEngine]


def _resolve_delays(num_replicas: int, delay: float,
                    delays: Optional[Sequence[float]]) -> List[float]:
    if delays is not None:
        if len(delays) != num_replicas:
            raise ClusterError(
                f"{len(delays)} delays given for {num_replicas} replicas")
        return list(delays)
    return [delay] * num_replicas


def queue_touches(link: ReplicationLink,
                  keys: Iterable[bytes]) -> bool:
    """Does the link's in-flight backlog mention any of ``keys``?

    The replica-routing client's staleness signal: a read served while a
    queued command targets the same key may return pre-write (or
    pre-erasure) state.
    """
    targets = {key if isinstance(key, bytes) else str(key).encode("utf-8")
               for key in keys}
    for _, argv in link.queued_commands():
        if targets.intersection(command_keys(argv)):
            return True
    return False


class ReplicatedShard:
    """One shard's replication group: a primary plus N delayed replicas.

    ``clock`` is the timeline delivery times are computed on (defaults
    to the primary's clock; event-driven clusters pass the shared
    scheduler).  Replicas default to plain stores on that clock; pass
    ``replica_factory`` to model heavier replicas (their own AOF, say).
    """

    def __init__(self, name: str, primary: StorageEngine,
                 num_replicas: int = 1, delay: float = 0.001,
                 delays: Optional[Sequence[float]] = None,
                 clock: Optional[Clock] = None,
                 replica_factory: Optional[ReplicaFactory] = None) -> None:
        self.name = name
        self.manager = ReplicationManager(primary, clock=clock)
        self.clock = self.manager.clock
        self.links: List[ReplicationLink] = []
        for index, link_delay in enumerate(
                _resolve_delays(num_replicas, delay, delays)):
            replica = (replica_factory(index)
                       if replica_factory is not None else None)
            self.links.append(self.manager.add_replica(
                f"{name}-replica-{index}", delay=link_delay,
                replica=replica))
        self._pump_handle = None
        self.pump_interval: Optional[float] = None
        self.replica_factory = replica_factory
        # Initial full resync (Redis' PSYNC on attach): anything the
        # primary held *before* the group existed predates the write
        # stream and would otherwise be missing from replicas forever.
        if self.links:
            self.full_sync_all()

    @property
    def primary(self) -> StorageEngine:
        return self.manager.primary

    @property
    def num_replicas(self) -> int:
        return len(self.links)

    # -- pumping -----------------------------------------------------------

    def pump(self) -> int:
        return self.manager.pump()

    def start_pump(self, interval: float = 1e-3) -> None:
        """Pump this group from recurring daemon timer events on the
        group's (scheduling) clock -- replication progresses with the
        event timeline instead of waiting for an explicit pump.
        Calling again with a different interval re-schedules at the new
        cadence."""
        clock = self.clock
        if not hasattr(clock, "schedule_after"):
            raise ClusterError(
                "timer-driven pumping needs a scheduling clock (SimClock)")
        if interval <= 0:
            raise ClusterError("pump interval must be positive")
        if self._pump_handle is not None and self._pump_handle.active:
            if interval == self.pump_interval:
                return
            self._pump_handle.cancel()

        def fire() -> None:
            self.manager.pump()
            self._pump_handle = clock.schedule_after(
                interval, fire, label=f"replication-pump-{self.name}",
                daemon=True)

        self.pump_interval = interval
        self._pump_handle = clock.schedule_after(
            interval, fire, label=f"replication-pump-{self.name}",
            daemon=True)

    def stop_pump(self) -> None:
        if self._pump_handle is not None:
            self._pump_handle.cancel()
            self._pump_handle = None

    # -- state -------------------------------------------------------------

    def max_lag(self) -> float:
        return self.manager.max_lag()

    def backlog(self) -> int:
        return sum(link.backlog for link in self.links)

    def key_visible(self, key: bytes, db_index: int = 0) -> bool:
        return self.manager.key_visible_anywhere(key, db_index=db_index)

    def full_sync_all(self) -> int:
        """Full-resync every replica from the primary's current snapshot
        (backlogs drained first); returns keys loaded across replicas."""
        return sum(self.manager.full_sync(link.name)
                   for link in self.links)

    def close(self) -> None:
        self.stop_pump()
        self.manager.close()


class ClusterReplication:
    """The cluster's replica topology: one :class:`ReplicatedShard` per
    shard, plus the cluster-scope compliance queries.

    ``clock`` is the cluster-wide timeline (`ShardedGDPRStore.clock`, or
    a :class:`~repro.cluster.client.ClusterClient`'s master clock);
    :meth:`erasure_horizon` advances it -- and keeps per-shard clocks in
    step when they differ -- until the key is gone everywhere.
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self.groups: Dict[int, ReplicatedShard] = {}
        self._closed = False

    # -- topology ----------------------------------------------------------

    @classmethod
    def attach(cls, clock: Clock,
               shards: Iterable[Tuple[int, StorageEngine,
                                      Optional[Clock]]],
               replicas_per_shard: int = 1, delay: float = 0.001,
               delays: Optional[Sequence[float]] = None,
               pump_interval: Optional[float] = None,
               replica_factory: Optional[ReplicaFactory] = None
               ) -> "ClusterReplication":
        """Build the whole topology in one call: one group per
        ``(index, primary, link_clock)`` entry (``link_clock`` None
        means the primary's own clock), uniform replica count and
        delays, pumps started if asked.  The single construction policy
        behind ``ShardedGDPRStore.attach_replication`` and
        ``ClusterClient.attach_replication``."""
        replication = cls(clock)
        for index, primary, link_clock in shards:
            replication.add_shard(index, primary,
                                  num_replicas=replicas_per_shard,
                                  delay=delay, delays=delays,
                                  name=f"shard-{index}",
                                  link_clock=link_clock,
                                  replica_factory=replica_factory)
        if pump_interval is not None:
            replication.start_pumps(pump_interval)
        return replication

    def add_shard(self, index: int, primary: StorageEngine,
                  num_replicas: int = 1, delay: float = 0.001,
                  delays: Optional[Sequence[float]] = None,
                  name: Optional[str] = None,
                  link_clock: Optional[Clock] = None,
                  replica_factory: Optional[ReplicaFactory] = None
                  ) -> ReplicatedShard:
        if index in self.groups:
            raise ClusterError(
                f"shard {index} already has a replication group")
        group = ReplicatedShard(
            name if name is not None else f"shard-{index}", primary,
            num_replicas=num_replicas, delay=delay, delays=delays,
            clock=link_clock, replica_factory=replica_factory)
        self.groups[index] = group
        return group

    def group_of(self, index: int) -> Optional[ReplicatedShard]:
        return self.groups.get(index)

    @property
    def num_replicas(self) -> int:
        return sum(group.num_replicas for group in self.groups.values())

    # -- pumping -----------------------------------------------------------

    def pump(self) -> int:
        return sum(group.pump() for group in self.groups.values())

    def start_pumps(self, interval: float = 1e-3) -> None:
        for group in self.groups.values():
            group.start_pump(interval)

    def stop_pumps(self) -> None:
        for group in self.groups.values():
            group.stop_pump()

    def max_lag(self) -> float:
        return max((group.max_lag() for group in self.groups.values()),
                   default=0.0)

    def backlog(self) -> int:
        return sum(group.backlog() for group in self.groups.values())

    def rebuild_shard(self, index: int,
                      primary: StorageEngine) -> ReplicatedShard:
        """Re-home shard ``index``'s replication group onto a new
        primary (the crash-recovery path: the recovered shard is a fresh
        store, so the old group's write-stream subscription is dead).
        Replica count, delays, the replica factory, and any running
        timer pump carry over; the new replicas start from a full
        sync."""
        old = self.groups.pop(index, None)
        if old is None:
            raise ClusterError(
                f"shard {index} has no replication group to rebuild")
        interval = (old.pump_interval
                    if old._pump_handle is not None
                    and old._pump_handle.active else None)
        delays = [link.delay for link in old.links]
        old.close()
        # add_shard's constructor performs the initial full resync, so
        # the rebuilt replicas already start from the new primary.
        group = self.add_shard(index, primary,
                               num_replicas=len(delays), delays=delays,
                               name=old.name, link_clock=old.clock,
                               replica_factory=old.replica_factory)
        if interval is not None:
            group.start_pump(interval)
        return group

    # -- migration handoff -------------------------------------------------

    def full_sync_shard(self, index: int) -> int:
        """Resync every replica of shard ``index`` from its primary.

        The slot-migration handoff: called by the migrators at the
        ownership flip so the moved slot is replicated on the
        destination from the first post-flip read.  A cluster without a
        group on that shard is a no-op (replication stays optional).
        """
        group = self.groups.get(index)
        if group is None:
            return 0
        return group.full_sync_all()

    # -- compliance queries ------------------------------------------------

    def key_visible_anywhere(self, key: Union[bytes, str],
                             db_index: int = 0) -> bool:
        """Is the key readable on any primary or any replica, on any
        shard?  (Keyspace visibility only: a crypto-erased ciphertext
        still counts until its DEL lands, which is exactly the paper's
        point about replicas.)"""
        if isinstance(key, str):
            key = key.encode("utf-8")
        return any(group.key_visible(key, db_index=db_index)
                   for group in self.groups.values())

    def _sync_group_clocks(self) -> None:
        now = self.clock.now()
        for group in self.groups.values():
            if group.clock is not self.clock:
                group.clock.sleep_until(now)

    def _key_pending(self, key: bytes, db_index: int) -> bool:
        """Still erasure-pending: visible somewhere, *or* mentioned by
        an in-flight queued command.  The backlog check matters -- a
        queued pre-deletion SET would otherwise resurrect the key on a
        replica after a visibility-only horizon had declared it gone."""
        if self.key_visible_anywhere(key, db_index=db_index):
            return True
        return any(queue_touches(link, (key,))
                   for group in self.groups.values()
                   for link in group.links)

    def erasure_horizon(self, key: Union[bytes, str], step: float = 1e-3,
                        max_wait: float = 60.0,
                        db_index: int = 0) -> Optional[float]:
        """Cluster-wide erasure horizon of one key: simulated seconds
        until it is invisible on every primary and every replica of
        every shard.  Call immediately after deleting it; None if
        ``max_wait`` elapses first."""
        return self.keys_erasure_horizon([key], step=step,
                                         max_wait=max_wait,
                                         db_index=db_index)

    def keys_erasure_horizon(self, keys: Iterable[Union[bytes, str]],
                             step: float = 1e-3, max_wait: float = 60.0,
                             db_index: int = 0) -> Optional[float]:
        """Erasure horizon of a key *set* (a data subject's keys across
        shards): time until the last copy of the last key disappears.

        Advances the cluster clock in ``step`` increments -- firing any
        scheduled pump events along the way -- and pumps explicitly, so
        the answer is identical whether or not timer pumps are running.
        A key counts as pending while it is visible anywhere *or* any
        link's backlog still carries a command touching it (an
        undelivered pre-deletion write must not let the horizon close
        early, only for the key to reappear when it lands).
        """
        pending = [key if isinstance(key, bytes)
                   else str(key).encode("utf-8") for key in keys]
        start = self.clock.now()
        while self.clock.now() - start <= max_wait:
            self._sync_group_clocks()
            self.pump()
            pending = [key for key in pending
                       if self._key_pending(key, db_index)]
            if not pending:
                return self.clock.now() - start
            self.clock.advance(step)
        return None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for group in self.groups.values():
            group.close()
