"""Cross-shard GDPR compliance: subject rights fanned out over shards.

A :class:`ShardedGDPRStore` partitions the keyspace over N independent
:class:`~repro.gdpr.store.GDPRStore` shards by hash slot.  Each shard keeps
its *own* hash-chained audit log and its own AOF -- compliance evidence
stays local to the shard that served the interaction, as it would across
real machines -- while one shared :class:`~repro.crypto.keystore.KeyStore`
holds the per-subject data keys, so a single crypto-erasure voids a
subject's ciphertexts on **every** shard at once (Art. 17's "including all
its replicas and backups", extended across the cluster).

Subject-rights operations (Art. 15 access, Art. 17 erasure, Art. 20
portability, Art. 21 objection) fan out to the shards holding the
subject's records and merge the per-shard results.

Cross-shard invariants:

* **Slot-routed data path.**  Every record lives on the shard owning its
  key's hash slot; related keys colocate via ``{hash tag}`` (the cluster
  client's CROSSSLOT rule applies one layer down, so anything written
  here is also servable from the RESP cluster without rehashing).
* **Audit chains are per shard.**  Evidence never crosses machines:
  rights fan-out appends to each holding shard's own chain, and a slot
  migration appends ``migrate-in``/``migrate-out`` records to *both*
  chains -- :meth:`verify_audit_chains` must pass on every shard
  independently after any topology change.
* **Erasure fans out to every copy.**  :meth:`erase_subject` touches the
  shards whose indexes know the subject -- during a live migration that
  includes the importing target's shadow copies -- and one shared-keystore
  crypto-erasure voids ciphertexts everywhere, including bytes a source
  AOF still holds from before the handoff.
* **Migration moves metadata with data.**  :meth:`migrate_slot` (or the
  steppable :meth:`begin_slot_migration`) ships sealed envelopes plus
  their GDPR metadata and flips slot ownership atomically; mid-flight,
  routing follows the source until the flip, except for keys the source
  no longer holds (newly created ones), which are born on the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..common.clock import Clock, SimClock
from ..common.errors import ClusterError, UnknownSubjectError
from ..crypto.keystore import KeyStore
from ..gdpr.access_control import Principal
from ..gdpr.metadata import GDPRMetadata, Record
from ..gdpr.rights import (
    AccessReport,
    ErasureReceipt,
    portability_rows,
    render_portability,
    right_of_access,
    right_to_erasure,
    right_to_object,
)
from ..device.append_log import AppendLog
from ..engine.base import StorageEngine
from ..gdpr.store import CONTROLLER, GDPRConfig, GDPRStore
from ..kvstore.store import KeyValueStore, StoreConfig
from ..tiering import TieredEngine, TieringConfig
from .migration import GDPRSlotMigrator, MigrationReceipt
from .replication import ClusterReplication
from .slots import SlotMap, slot_for_key

GDPRConfigFactory = Callable[[int], GDPRConfig]
# ``kv_factory`` may build *any* storage engine -- the Redis-like
# default below, or ``repro.sqlstore.RelationalStore`` for the paper's
# relational comparison; every shard facility (rights fan-out, slot
# migration, replication groups, AOF/WAL recovery) runs on the engine
# interface.
KVFactory = Callable[[int, Clock], StorageEngine]


@dataclass(frozen=True)
class ShardedErasureReceipt:
    """Art. 17 across the cluster: the union of per-shard receipts."""

    subject: str
    requested_at: float
    completed_at: float
    keys_erased: List[str]
    shards_touched: List[int]
    crypto_erased: bool
    residual_in_aof: bool
    per_shard: Dict[int, ErasureReceipt]

    @property
    def duration(self) -> float:
        return self.completed_at - self.requested_at


class ShardedGDPRStore:
    """N GDPR-compliant shards behind one hash-slot router."""

    def __init__(self, num_shards: int = 4,
                 clock: Optional[Clock] = None,
                 keystore: Optional[KeyStore] = None,
                 slot_map: Optional[SlotMap] = None,
                 config_factory: Optional[GDPRConfigFactory] = None,
                 kv_factory: Optional[KVFactory] = None,
                 fast_gdpr: bool = False,
                 tiering: Optional[TieringConfig] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.keystore = keystore if keystore is not None else KeyStore()
        self.slots = slot_map if slot_map is not None \
            else SlotMap.even(num_shards)
        if self.slots.num_shards > num_shards:
            raise ClusterError(
                f"slot map references shard {self.slots.num_shards - 1} "
                f"but only {num_shards} shards exist")
        if config_factory is None:
            def config_factory(index: int) -> GDPRConfig:
                return GDPRConfig(node_id=f"shard-{index}",
                                  fast_gdpr=fast_gdpr)
        if kv_factory is None:
            def kv_factory(index: int, kv_clock: Clock) -> StorageEngine:
                return KeyValueStore(
                    StoreConfig(appendonly=True, aof_log_reads=True),
                    clock=kv_clock)
        self._config_factory = config_factory
        self._kv_factory = kv_factory
        # When a tiering config is supplied, every shard's engine is
        # wrapped in a TieredEngine over its own cold device; the shared
        # keystore is attached by each shard's GDPRStore, so one
        # crypto-erasure voids archived ciphertexts on every shard.
        self.tiering = tiering
        self.shards: List[GDPRStore] = [
            GDPRStore(kv=self._build_engine(index),
                      config=config_factory(index),
                      keystore=self.keystore)
            for index in range(num_shards)]
        self.replication: Optional[ClusterReplication] = None
        self._tenant_policies = None

    def attach_tenant_policies(self, resolver) -> None:
        """Fan a per-tenant policy resolver out to every shard (and to
        shards added or recovered later)."""
        self._tenant_policies = resolver
        for shard in self.shards:
            shard.attach_tenant_policies(resolver)

    def _build_engine(self, index: int,
                      cold_device: Optional[AppendLog] = None
                      ) -> StorageEngine:
        kv = self._kv_factory(index, self.clock)
        if self.tiering is not None \
                and not getattr(kv, "supports_tiering", False):
            if cold_device is None:
                cold_device = AppendLog(clock=self.clock,
                                        name=f"shard-{index}.cold")
            kv = TieredEngine(kv, device=cold_device, tiering=self.tiering)
        return kv

    # -- routing -----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, key: str) -> int:
        """The shard serving ``key`` right now.

        Stable slots route to their owner.  A migrating slot routes to
        the (still-authoritative) source while it holds the key; a key
        the source does not hold -- newly created mid-migration, or
        already handed off -- lives on the importing target.  This is the
        in-process analogue of the RESP layer's ASK redirect.
        """
        slot = slot_for_key(key)
        owner = self.slots.shard_of_slot(slot)
        state = self.slots.migration_of(slot)
        if state is None:
            return owner
        if key in self.shards[state.source].index:
            return state.source
        return state.target

    def shard_of(self, key: str) -> GDPRStore:
        return self.shards[self.shard_for(key)]

    def shards_of_subject(self, subject: str) -> List[int]:
        """Shard indexes currently holding records of ``subject``."""
        return [index for index, shard in enumerate(self.shards)
                if shard.subject_exists(subject)]

    def _require_subject(self, subject: str) -> List[int]:
        holders = self.shards_of_subject(subject)
        if not holders:
            raise UnknownSubjectError(
                f"no records for data subject {subject!r} on any shard")
        return holders

    # -- data path (slot-routed) -------------------------------------------

    def put(self, key: str, value: bytes, metadata: GDPRMetadata,
            principal: Principal = CONTROLLER,
            purpose: Optional[str] = None) -> None:
        self.shard_of(key).put(key, value, metadata,
                               principal=principal, purpose=purpose)

    def get(self, key: str, principal: Principal = CONTROLLER,
            purpose: Optional[str] = None) -> Record:
        return self.shard_of(key).get(key, principal=principal,
                                      purpose=purpose)

    def delete(self, key: str, principal: Principal = CONTROLLER) -> bool:
        return self.shard_of(key).delete(key, principal=principal)

    def keys_of_subject(self, subject: str) -> List[str]:
        # A set union, not a concatenation: during a live migration the
        # source and the importing target both index the same key.
        keys = set()
        for shard in self.shards:
            keys.update(shard.keys_of_subject(subject))
        return sorted(keys)

    def subject_exists(self, subject: str) -> bool:
        return any(shard.subject_exists(subject) for shard in self.shards)

    def process_for_purpose(self, purpose: str,
                            principal: Principal = CONTROLLER
                            ) -> List[Record]:
        records: List[Record] = []
        for shard in self.shards:
            records.extend(shard.process_for_purpose(purpose,
                                                     principal=principal))
        return records

    # -- subject rights, fanned out ----------------------------------------

    def access_report(self, subject: str,
                      principal: Optional[Principal] = None
                      ) -> AccessReport:
        """Art. 15 across shards: the union of every shard's holdings."""
        holders = self._require_subject(subject)
        started = self.clock.now()
        merged = AccessReport(subject=subject, generated_at=started)
        purposes: set = set()
        recipients: set = set()
        chosen: Dict[str, dict] = {}
        decision_keys: set = set()
        for index in holders:
            report = right_of_access(self.shards[index], subject,
                                     principal=principal)
            for entry in report.records:
                # Mid-migration both source and target report the key;
                # keep the copy on the shard routing considers current
                # (the still-authoritative source) and drop the shadow.
                key = entry["key"]
                if key not in chosen or index == self.shard_for(key):
                    chosen[key] = entry
            decision_keys.update(report.automated_decision_keys)
            purposes.update(report.purposes)
            recipients.update(report.recipients)
        merged.records = sorted(chosen.values(),
                                key=lambda entry: entry["key"])
        merged.automated_decision_keys = sorted(decision_keys)
        merged.purposes = sorted(purposes)
        merged.recipients = sorted(recipients)
        merged.elapsed = self.clock.now() - started
        return merged

    def erase_subject(self, subject: str,
                      principal: Optional[Principal] = None,
                      compact_log: Optional[bool] = None
                      ) -> ShardedErasureReceipt:
        """Art. 17 across shards: per-shard keyspace DELs and AOF
        compaction, plus one crypto-erasure through the shared keystore
        that voids the subject's ciphertexts on every shard."""
        holders = self._require_subject(subject)
        requested_at = self.clock.now()
        receipts: Dict[int, ErasureReceipt] = {}
        for index in holders:
            try:
                receipts[index] = right_to_erasure(
                    self.shards[index], subject, principal=principal,
                    compact_log=compact_log)
            except UnknownSubjectError:
                # A live slot migration's delete-cascade already evicted
                # this shard's copies (erasing the source shadow-deletes
                # the target); the subject is gone here, which is the
                # outcome erasure wants.
                continue
        keys = sorted({key for receipt in receipts.values()
                       for key in receipt.keys_erased})
        return ShardedErasureReceipt(
            subject=subject, requested_at=requested_at,
            completed_at=self.clock.now(), keys_erased=keys,
            # Only shards that actually recorded an erasure: a holder
            # whose copies were already evicted by a migration cascade
            # must not appear in the compliance evidence.
            shards_touched=sorted(receipts),
            crypto_erased=any(r.crypto_erased for r in receipts.values()),
            residual_in_aof=any(r.residual_in_aof
                                for r in receipts.values()),
            per_shard=receipts)

    def export_subject(self, subject: str, fmt: str = "json",
                       principal: Optional[Principal] = None) -> bytes:
        """Art. 20 across shards: one portable document, all shards
        (mid-migration shadow copies deduplicated by key)."""
        holders = self._require_subject(subject)
        chosen: Dict[str, dict] = {}
        for index in holders:
            for row in portability_rows(self.shards[index], subject,
                                        fmt=fmt, principal=principal):
                if row["key"] not in chosen \
                        or index == self.shard_for(row["key"]):
                    chosen[row["key"]] = row
        rows = sorted(chosen.values(), key=lambda row: row["key"])
        return render_portability(subject, rows, fmt)

    def object_to_purpose(self, subject: str, purpose: str,
                          principal: Optional[Principal] = None) -> int:
        """Art. 21 across shards; returns *distinct* records updated (a
        mid-migration record whose two copies both get the objection
        counts once)."""
        holders = self._require_subject(subject)
        for index in holders:
            right_to_object(self.shards[index], subject, purpose,
                            principal=principal)
        return len(self.keys_of_subject(subject))

    # -- replication -------------------------------------------------------

    def attach_replication(self, replicas_per_shard: int = 1,
                           delay: float = 0.001,
                           delays: Optional[List[float]] = None,
                           pump_interval: Optional[float] = None,
                           replica_factory=None) -> ClusterReplication:
        """Give every shard a replication group of ``replicas_per_shard``
        replicas (``delays`` overrides the uniform ``delay`` per
        replica).  With ``pump_interval`` set, every group pumps itself
        from daemon timer events on the store's clock -- replication
        progresses with the event timeline, and lag becomes measurable
        in event-driven runs.

        Once attached, slot migrations hand replica sets off too: the
        migrator full-syncs the destination's replicas at the ownership
        flip, and mid-migration cascade deletes reach both copies'
        replicas through the per-shard write streams.
        """
        if self.replication is not None:
            raise ClusterError("replication is already attached")
        self.replication = ClusterReplication.attach(
            self.clock,
            [(index, shard.kv, None)
             for index, shard in enumerate(self.shards)],
            replicas_per_shard=replicas_per_shard, delay=delay,
            delays=delays, pump_interval=pump_interval,
            replica_factory=replica_factory)
        return self.replication

    def erasure_horizon(self, key: str, step: float = 1e-3,
                        max_wait: float = 60.0) -> Optional[float]:
        """Cluster-wide erasure horizon of one key: simulated seconds
        until no primary and no replica on any shard serves it.  Call
        immediately after deleting the key; requires replicas attached
        (without them the primaries' DELs are synchronous and the
        horizon is trivially zero)."""
        if self.replication is None:
            raise ClusterError(
                "erasure_horizon needs attach_replication() first")
        return self.replication.erasure_horizon(key, step=step,
                                                max_wait=max_wait)

    def subject_erasure_horizon(self, keys: List[str],
                                step: float = 1e-3,
                                max_wait: float = 60.0
                                ) -> Optional[float]:
        """Erasure horizon of a whole subject's key set (capture it with
        :meth:`keys_of_subject` *before* erasing): time until the last
        copy of the last key is gone from every primary and replica."""
        if self.replication is None:
            raise ClusterError(
                "subject_erasure_horizon needs attach_replication() "
                "first")
        return self.replication.keys_erasure_horizon(
            keys, step=step, max_wait=max_wait)

    # -- resharding --------------------------------------------------------

    def begin_slot_migration(self, slot: int,
                             target: int) -> GDPRSlotMigrator:
        """Start a live migration of ``slot`` to ``target`` and return
        the steppable migrator.  Traffic (including subject rights) keeps
        flowing while the caller interleaves ``step()`` calls; ``finish``
        flips ownership atomically."""
        return GDPRSlotMigrator(self, slot, target)

    def migrate_slot(self, slot: int, target: int,
                     batch_size: int = 16) -> MigrationReceipt:
        """Move ``slot``'s records -- values, ciphertexts, GDPR metadata,
        and audit evidence of the handoff -- to ``target`` in one call."""
        return self.begin_slot_migration(slot, target).run(batch_size)

    def rebalance_plan(self, target: int) -> List[int]:
        """The slots an even rebalance hands ``target``: a 1/num_shards
        share of every other shard's populated slots."""
        plan: List[int] = []
        for index, shard in enumerate(self.shards):
            if index == target:
                continue
            populated = sorted({slot_for_key(key)
                                for key in shard.index.keys()})
            if not populated:
                continue
            share = max(1, len(populated) // self.num_shards)
            plan.extend(populated[:share])
        return plan

    def rebalance(self, target: int,
                  slots: Optional[List[int]] = None,
                  batch_size: int = 16,
                  concurrency: int = 4,
                  step_interval: float = 1e-4,
                  drive: bool = True) -> List[MigrationReceipt]:
        """Migrate many slots to ``target`` as *interleaved event streams*.

        Up to ``concurrency`` :class:`GDPRSlotMigrator`\\ s run at once,
        each stepping from its own scheduled events (so no slot
        monopolizes the timeline, and live traffic -- subject rights
        included -- keeps flowing between steps); as each slot's ownership
        flips, the next queued slot starts.  With ``drive=True`` the
        call runs the clock's event loop until every migration finished
        and returns the receipts in completion order; with
        ``drive=False`` the streams are scheduled and the caller drives
        the clock itself (interleaving its own foreground work), reading
        receipts off the returned list as they complete.
        """
        clock = self.clock
        if not hasattr(clock, "schedule_after"):
            raise ClusterError(
                "rebalance needs a scheduling clock (SimClock)")
        if not 0 <= target < self.num_shards:
            raise ClusterError(f"target shard {target} does not exist")
        if slots is None:
            slots = self.rebalance_plan(target)
        queue: List[int] = []
        seen = set()
        for slot in slots:
            if slot in seen:
                continue
            seen.add(slot)
            if self.slots.shard_of_slot(slot) != target:
                queue.append(slot)
        receipts: List[MigrationReceipt] = []
        total = len(queue)
        state = {"active": 0}

        def finish_one(receipt: MigrationReceipt) -> None:
            state["active"] -= 1
            receipts.append(receipt)
            launch()

        def launch() -> None:
            while queue and state["active"] < concurrency:
                slot = queue.pop(0)
                migrator = self.begin_slot_migration(slot, target)
                state["active"] += 1
                migrator.run_as_events(clock, batch_size=batch_size,
                                       interval=step_interval,
                                       on_done=finish_one)

        launch()
        if drive:
            while len(receipts) < total:
                # Guard on live events, not run_next() truthiness: a
                # recurring daemon (a server cron sharing this clock)
                # keeps the heap non-empty forever.
                if clock.pending_live_events() == 0:
                    raise ClusterError(
                        "rebalance stalled: migration events exhausted "
                        f"with {total - len(receipts)} slots unfinished")
                clock.run_next()
        return receipts

    def add_shard(self) -> int:
        """Bring one empty shard online (scale-out) and return its index.

        The new shard owns no slots until a :meth:`rebalance` (or
        explicit migrations) hands it some, so adding one is cheap and
        safe under live traffic.  Built through the same factories as
        the original shards, so configuration, engine choice, and
        tiering carry over.  With replication attached the new shard
        starts *unreplicated* -- its group must be added explicitly,
        because replica counts and delays are a deployment decision.
        """
        index = self.slots.add_shard()
        if index < len(self.shards):
            # A pre-built spare (a store constructed with more shards
            # than the slot map routes to) just comes into rotation.
            return index
        if index != len(self.shards):
            raise ClusterError(
                f"slot map grew to shard {index} but the store holds "
                f"{len(self.shards)} shards; topologies diverged")
        shard = GDPRStore(kv=self._build_engine(index),
                          config=self._config_factory(index),
                          keystore=self.keystore)
        if self._tenant_policies is not None:
            shard.attach_tenant_policies(self._tenant_policies)
        self.shards.append(shard)
        return index

    def attach_autoscaler(self, signals,
                          config=None,
                          scale_out=None,
                          start: bool = True):
        """Close the autoscaling loop over this store: watch per-shard
        queueing-delay signals and, when a hot shard has no worker
        headroom left, **add a shard and rebalance into it live**.

        ``signals`` is one saturation source per watched shard: either
        an object already exposing ``queueing_delay_ewma()`` (the RESP
        layer's :class:`~repro.cluster.workers.WorkerPool` fronting the
        same shard) or a bare callable returning the EWMA, which is
        wrapped in a :class:`~repro.cluster.autoscale.SignalProbe`.

        The default ``scale_out`` action is :meth:`add_shard` followed
        by :meth:`rebalance(..., drive=False) <rebalance>`, so the slot
        migrations run as interleaved events *while traffic -- subject
        rights included -- keeps flowing*; erasure guarantees mid-scale-
        out are exactly the live-migration guarantees the migrator
        already enforces.  Returns the started
        :class:`~repro.cluster.autoscale.Autoscaler`.
        """
        from .autoscale import Autoscaler, SignalProbe
        if not hasattr(self.clock, "schedule_after"):
            raise ClusterError(
                "attach_autoscaler needs a scheduling clock (SimClock)")
        targets = [signal if hasattr(signal, "queueing_delay_ewma")
                   else SignalProbe(signal) for signal in signals]
        if scale_out is None:
            def scale_out(autoscaler, shard_index: int) -> str:
                target = self.add_shard()
                self.rebalance(target, drive=False)
                return f"shard-add -> {target}"
        scaler = Autoscaler(self.clock, targets, config=config,
                            scale_out=scale_out)
        if start:
            scaler.start()
        return scaler

    # -- maintenance & evidence --------------------------------------------

    def tick(self) -> None:
        for shard in self.shards:
            shard.tick()

    def flush_compliance(self) -> None:
        """Close every shard's fast-GDPR visibility window (write-behind
        drain + audit block seal); a no-op for strict-mode shards."""
        for shard in self.shards:
            shard.flush_compliance()

    def verify_audit_chains(self) -> Dict[int, int]:
        """Verify every shard's hash chain -- per-record or block-sealed,
        whichever that shard runs -- as {shard: records verified}.
        Raises :class:`~repro.common.errors.AuditError` on any break."""
        return {index: shard.audit.verify()
                for index, shard in enumerate(self.shards)}

    def erasure_report(self) -> Dict[str, float]:
        """Cluster-wide roll-up of the per-shard erasure timeliness."""
        reports = [shard.erasure_report() for shard in self.shards]
        merged = {
            "events": sum(r["events"] for r in reports),
            "with_deadline": sum(r["with_deadline"] for r in reports),
            "max_lateness": max(r["max_lateness"] for r in reports),
            "sla_breaches": sum(r["sla_breaches"] for r in reports),
        }
        weighted = sum(r["mean_lateness"] * r["with_deadline"]
                       for r in reports)
        merged["mean_lateness"] = (weighted / merged["with_deadline"]
                                   if merged["with_deadline"] else 0.0)
        return merged

    def recover_shard(self, index: int,
                      aof_bytes: Optional[bytes] = None) -> int:
        """Rebuild one crashed shard from its durable AOF.

        Replays the shard's surviving AOF into a fresh store, re-derives
        the GDPR indexes from decryptable envelopes (crypto-erased records
        stay unreachable), and swaps the shard in.  Other shards are not
        touched.  Returns the number of commands replayed.
        """
        old = self.shards[index]
        if aof_bytes is None:
            if old.kv.aof_log is None:
                raise ValueError(f"shard {index} has no AOF to recover")
            aof_bytes = old.kv.aof_log.read_all()
        # Rebuild through the same factory that made the shard, so the
        # replacement keeps its configuration and device-latency model.
        # A tiered shard keeps its cold device: the archive's durable
        # bytes (segments, tombstones, erasure markers) survive the
        # crash and are re-indexed by the fresh TieredEngine.
        old_cold = getattr(old.kv, "cold", None)
        kv = self._build_engine(
            index, cold_device=old_cold.device if old_cold else None)
        replayed = kv.replay_aof(aof_bytes)
        if kv.aof_log is not None:
            # Seed the replacement AOF with the recovered state so the
            # shard is immediately durable again.
            kv.rewrite_aof()
        shard = GDPRStore(kv=kv, config=self._config_factory(index),
                          keystore=self.keystore)
        if self._tenant_policies is not None:
            shard.attach_tenant_policies(self._tenant_policies)
        shard.rebuild_indexes()
        self.shards[index] = shard
        if self.replication is not None \
                and self.replication.group_of(index) is not None:
            # The old group subscribed to the crashed store's write
            # stream; re-home it (same replica count/delays/pump) onto
            # the recovered primary and full-sync the replicas.
            self.replication.rebuild_shard(index, kv)
        return replayed
