"""Hash-slot sharded cluster layer: routing, pipelining, live resharding.

The scaling seam the ROADMAP calls for: CRC16 -> 16384 hash slots ->
N shards (:mod:`repro.cluster.slots`), a pipelining, redirect-following
:class:`ClusterClient` over the simulated network
(:mod:`repro.cluster.client`), **live slot migration** that moves data --
not just routing -- between shards behind MOVED/ASK redirects
(:mod:`repro.cluster.migration`), a :class:`ShardedGDPRStore` that
fans subject rights and crypto-erasure out across shards
(:mod:`repro.cluster.sharded_store`), **per-shard replication
groups** with a cluster-wide erasure horizon and replica-set handoff at
slot migration (:mod:`repro.cluster.replication`), **multi-core shard
execution** -- K simulated cores per shard behind one event loop, with
adaptive batching (:mod:`repro.cluster.workers`) -- and a
**queueing-delay autoscaler** that raises worker counts and triggers
live shard-adds under load (:mod:`repro.cluster.autoscale`).

Layer-wide invariants (each module's docstring details its own):

* every key maps to exactly one of :data:`NUM_SLOTS` hash slots, and
  every slot to exactly one owning shard, even mid-migration;
* multi-key commands are CROSSSLOT-checked at both the client and the
  shard (colocate with ``{hash tag}``);
* audit chains, AOFs, and erasure events are per shard -- compliance
  evidence stays on the machine that served the interaction;
* Art. 17 erasure reaches every copy a subject has, on every shard,
  including mid-migration shadow copies, and one shared-keystore
  crypto-erasure voids all ciphertexts at once;
* replication lag is a *compliance* property: shards may carry delayed
  replicas, erasure fans out to them through the per-shard write
  streams, and the cluster-wide ``erasure_horizon`` reports when a
  deleted key left the last copy.
"""

from .client import (
    BufferedTransport,
    ClusterClient,
    ClusterNode,
    ClusterStoreServer,
    EventClusterStoreServer,
    KEYLESS_COMMANDS,
    MULTI_KEY_COMMANDS,
    Pipeline,
    build_cluster,
    command_keys,
    parse_redirect,
)
from .autoscale import (
    Autoscaler,
    AutoscaleConfig,
    AutoscaleEvent,
    SignalProbe,
)
from .migration import GDPRSlotMigrator, MigrationReceipt, SlotMigrator
from .replication import (
    ClusterReplication,
    ReplicatedShard,
    queue_touches,
)
from .sharded_store import ShardedErasureReceipt, ShardedGDPRStore
from .slots import (
    MigrationState,
    NUM_SLOTS,
    SlotMap,
    SlotPlacement,
    hash_tag,
    slot_for_key,
)
from .workers import (
    PlacementPolicy,
    RebalanceEvent,
    Rebalancer,
    WorkerPool,
    WorkerPoolConfig,
)

__all__ = [
    "NUM_SLOTS",
    "MigrationState",
    "SlotMap",
    "hash_tag",
    "slot_for_key",
    "BufferedTransport",
    "ClusterClient",
    "ClusterNode",
    "ClusterStoreServer",
    "EventClusterStoreServer",
    "Pipeline",
    "build_cluster",
    "command_keys",
    "parse_redirect",
    "KEYLESS_COMMANDS",
    "MULTI_KEY_COMMANDS",
    "GDPRSlotMigrator",
    "MigrationReceipt",
    "SlotMigrator",
    "ClusterReplication",
    "ReplicatedShard",
    "queue_touches",
    "ShardedGDPRStore",
    "ShardedErasureReceipt",
    "WorkerPool",
    "WorkerPoolConfig",
    "PlacementPolicy",
    "Rebalancer",
    "RebalanceEvent",
    "SlotPlacement",
    "Autoscaler",
    "AutoscaleConfig",
    "AutoscaleEvent",
    "SignalProbe",
]
