"""Hash-slot sharded cluster layer: routing, pipelining, GDPR fan-out.

The scaling seam the ROADMAP calls for: CRC16 -> 16384 hash slots ->
N shards (:mod:`repro.cluster.slots`), a pipelining
:class:`ClusterClient` over the simulated network
(:mod:`repro.cluster.client`), and a :class:`ShardedGDPRStore` that fans
subject rights and crypto-erasure out across shards
(:mod:`repro.cluster.sharded_store`).
"""

from .client import (
    BufferedTransport,
    ClusterClient,
    ClusterNode,
    KEYLESS_COMMANDS,
    MULTI_KEY_COMMANDS,
    Pipeline,
    build_cluster,
)
from .sharded_store import ShardedErasureReceipt, ShardedGDPRStore
from .slots import NUM_SLOTS, SlotMap, hash_tag, slot_for_key

__all__ = [
    "NUM_SLOTS",
    "SlotMap",
    "hash_tag",
    "slot_for_key",
    "BufferedTransport",
    "ClusterClient",
    "ClusterNode",
    "Pipeline",
    "build_cluster",
    "KEYLESS_COMMANDS",
    "MULTI_KEY_COMMANDS",
    "ShardedGDPRStore",
    "ShardedErasureReceipt",
]
