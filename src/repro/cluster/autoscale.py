"""Queueing-delay autoscaler: close the loop the hockey-stick exposes.

The hockey-stick artifact shows what happens when offered load crosses a
shard's service capacity: queueing delay -- not service time -- explodes.
:class:`Autoscaler` watches exactly that signal (each target's
queueing-delay EWMA, e.g. :meth:`WorkerPool.queueing_delay_ewma
<repro.cluster.workers.WorkerPool.queueing_delay_ewma>`) from a
recurring **daemon** timer on the shared scheduler, so it runs *while an
open-loop workload keeps offering load* and never keeps the simulation
alive on its own.

Escalation ladder, per target, rate-limited by a cooldown:

1. the EWMA crosses :attr:`AutoscaleConfig.high_delay` and the target
   runs skew-aware placement with a measurable core imbalance ->
   **rebalance** first (``request_rebalance()`` re-homes hot slots at
   the pool's next quiescent instant) -- cheaper than adding a core
   when the problem is placement, not capacity;
2. otherwise, if the target has worker headroom -> **raise the worker
   count** (a live ``add_worker()``, applied at the pool's next
   quiescent instant);
3. the target is already at :attr:`AutoscaleConfig.max_workers` and is
   still hot -> invoke the **scale-out hook** (shard-add + live
   ``rebalance()`` under load -- see
   :meth:`ShardedGDPRStore.attach_autoscaler
   <repro.cluster.sharded_store.ShardedGDPRStore.attach_autoscaler>`),
   at most :attr:`AutoscaleConfig.max_scale_outs` times.

And the reverse rung: when :attr:`AutoscaleConfig.low_delay` is set and
a target's EWMA stays below it for a full cooldown window, one worker is
shed (a live ``remove_worker()``, also applied at quiescence), never
dropping below one core.  Scale-down is off by default
(``low_delay=0``).

Every action is recorded as an :class:`AutoscaleEvent`, which is what
the bench demo prints and the tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..common.clock import SimClock


@dataclass
class AutoscaleConfig:
    """Knobs for :class:`Autoscaler`."""

    interval: float = 0.005          # daemon check period (seconds)
    high_delay: float = 300e-6       # EWMA threshold that means "hot"
    low_delay: float = 0.0           # EWMA below this for a full
    #                                  cooldown window -> shed a worker
    #                                  (0 disables scale-down)
    max_workers: int = 4             # per-target worker ceiling
    cooldown: float = 0.01           # per-target seconds between actions
    max_scale_outs: int = 1          # shard-adds/rebalances allowed


@dataclass
class AutoscaleEvent:
    """One autoscaling action, for demos and assertions."""

    at: float
    target: int
    action: str        # "rebalance", "worker-raise", "worker-shed",
    #                    "scale-out"
    signal: float                    # the EWMA that triggered it
    detail: str = ""


class SignalProbe:
    """Adapt a bare EWMA callable into an autoscale target with no
    worker pool: every threshold crossing escalates straight to the
    scale-out hook.  This is how layers without per-core pools (the
    GDPR sharded store) plug their own saturation signal in."""

    def __init__(self, signal: Callable[[], float]) -> None:
        self._signal = signal

    def queueing_delay_ewma(self) -> float:
        return self._signal()


class Autoscaler:
    """Watch per-target queueing-delay EWMAs; raise workers, then spill.

    ``targets`` are duck-typed: anything with ``queueing_delay_ewma()``
    qualifies; targets additionally exposing ``num_workers`` /
    ``add_worker()`` (a :class:`~repro.cluster.workers.WorkerPool`) get
    the worker-raise rung of the ladder.
    """

    def __init__(self, scheduler: SimClock, targets: Sequence,
                 config: Optional[AutoscaleConfig] = None,
                 scale_out: Optional[Callable[["Autoscaler", int],
                                              str]] = None) -> None:
        if not hasattr(scheduler, "schedule_after"):
            raise ValueError(
                "the autoscaler needs a scheduling clock (SimClock)")
        self.scheduler = scheduler
        self.targets = list(targets)
        self.config = config or AutoscaleConfig()
        self.scale_out = scale_out
        self.events: List[AutoscaleEvent] = []
        self.checks = 0
        self._scale_outs = 0
        self._last_action = [-float("inf")] * len(self.targets)
        self._cold_since: List[Optional[float]] = [None] * len(self.targets)
        self._handle = None

    # -- the daemon timer ---------------------------------------------------

    def start(self) -> None:
        if self._handle is not None and self._handle.active:
            return

        def fire() -> None:
            self.check()
            self._handle = self.scheduler.schedule_after(
                self.config.interval, fire, label="autoscale", daemon=True)

        self._handle = self.scheduler.schedule_after(
            self.config.interval, fire, label="autoscale", daemon=True)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- one control decision ----------------------------------------------

    def check(self) -> Optional[AutoscaleEvent]:
        """Evaluate every target once; returns the action taken (at most
        one per check, so consecutive raises are observable)."""
        self.checks += 1
        now = self.scheduler.now()
        for index, target in enumerate(self.targets):
            signal = target.queueing_delay_ewma()
            self._track_cold_streak(index, signal, now)
            if now - self._last_action[index] < self.config.cooldown:
                continue
            if signal <= self.config.high_delay:
                event = self._maybe_shed(index, target, signal, now)
                if event is None:
                    continue
            else:
                add_worker = getattr(target, "add_worker", None)
                workers = getattr(target, "num_workers", 0)
                rebalance = getattr(target, "request_rebalance", None)
                if rebalance is not None and rebalance():
                    event = AutoscaleEvent(
                        now, index, "rebalance", signal,
                        detail="hot-slot re-home at quiescence")
                elif add_worker is not None \
                        and workers < self.config.max_workers:
                    heading_for = add_worker()
                    event = AutoscaleEvent(
                        now, index, "worker-raise", signal,
                        detail=f"workers -> {heading_for}")
                elif (self.scale_out is not None
                      and self._scale_outs < self.config.max_scale_outs):
                    detail = self.scale_out(self, index)
                    self._scale_outs += 1
                    event = AutoscaleEvent(now, index, "scale-out", signal,
                                           detail=detail or "")
                else:
                    continue
            self._last_action[index] = now
            self.events.append(event)
            return event
        return None

    def _track_cold_streak(self, index: int, signal: float,
                           now: float) -> None:
        """A cold streak is contiguous observation time with the EWMA
        under ``low_delay``; any sample at or above it resets the
        streak.  Tracked even while the cooldown gate is closed so the
        streak measures real wall time, not actionable checks."""
        if self.config.low_delay <= 0.0:
            return
        if signal < self.config.low_delay:
            if self._cold_since[index] is None:
                self._cold_since[index] = now
        else:
            self._cold_since[index] = None

    def _maybe_shed(self, index: int, target, signal: float,
                    now: float) -> Optional[AutoscaleEvent]:
        """Scale-down rung: shed one worker once the target has stayed
        cold for a full cooldown window (never below one worker)."""
        if self.config.low_delay <= 0.0:
            return None
        cold_since = self._cold_since[index]
        if cold_since is None or now - cold_since < self.config.cooldown:
            return None
        remove_worker = getattr(target, "remove_worker", None)
        if remove_worker is None or getattr(target, "num_workers", 1) <= 1:
            return None
        heading_for = remove_worker()
        self._cold_since[index] = None   # the next shed needs a new streak
        return AutoscaleEvent(now, index, "worker-shed", signal,
                              detail=f"workers -> {heading_for}")
