"""Multi-core shard execution: a worker pool over the event loop.

The paper's testbed was quad-core, but every shard here used to be one
event loop == one core, and the hockey-stick artifact shows p99 exploding
past ~40k offered ops/s.  :class:`WorkerPool` multiplexes K simulated
cores (:class:`~repro.common.clock.WorkerClock` children of one
:class:`~repro.common.clock.ShardClock`) over the *same*
:class:`~repro.common.clock.SimClock` scheduler, so determinism is
untouched -- there are still no threads, only more service meters.

Dispatch rules (single-writer semantics by construction):

* **keyspace partition** -- a command's keys hash to slots
  (:func:`~repro.cluster.slots.slot_for_key`), and slot ``s`` belongs to
  worker ``s % K``.  Every command touching a key is executed by that
  key's worker, so per-key operations stay serialized on one core and
  two identical runs pick identical workers;
* **skew-aware placement** (opt-in via
  :attr:`WorkerPoolConfig.placement`) -- the static ``s % K`` partition
  becomes only the *default* of a
  :class:`~repro.cluster.slots.SlotPlacement` table.  Per-slot billed
  service time (the shard clock's per-slot billing hook) feeds a
  decaying load accounting plus a cheap top-N hot-slot tracker, and a
  :class:`Rebalancer` -- applied at quiescence, exactly like a live
  worker raise -- re-homes hot slots onto the least-loaded cores with a
  greedy longest-processing-time pass.  When one slot alone exceeds a
  fair core share, its *read-only* commands (the
  :data:`~repro.cluster.client.REPLICA_READ_COMMANDS` classification
  replica routing already uses) are **split** across several cores
  while its writes stay pinned to the slot's home worker -- single
  writer by construction, reads fanned where the capacity is;
* **per-connection FIFO** -- only the *head* of a connection's queue is
  dispatchable (head-of-line blocking, as on a real connection), so
  RESP replies depart in request order;
* **control commands** (PING, CONFIG, ASKING, ...) ride worker 0;
* **barrier commands** -- anything that reads or mutates the whole
  keyspace (FLUSHALL, DBSIZE, KEYS, SAVE/BGSAVE/BGREWRITEAOF, SCAN,
  RANDOMKEY, cross-worker multi-key commands, and -- via the shard
  clock's stop-the-world ``advance`` -- the GDPR Art. 15/17/20/21
  fan-out and cron fsync) waits until every worker is free and then
  occupies *all* of them for its duration.

**Adaptive batching**: each dispatch lets a worker drain up to B queued
commands routed to it (round-robin across connections, so fairness is
preserved).  B doubles when the worker fills its batch (backlog) and
decays when the head-of-queue delay is below
:attr:`WorkerPoolConfig.batch_low_delay`, amortizing the per-dispatch
overhead exactly where the hockey-stick bends.

With ``workers=1``, batch 1 and zero dispatch overhead, the pool
reproduces the classic one-command-per-tick loop *exactly*: a command
starts at ``max(arrival wake-up, previous finish)``, costs the same, and
its reply flushes at the same instant -- the regression tests pin this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..common.clock import ShardClock, SimClock, WorkerClock
from ..common.histogram import LatencyHistogram
from .client import (
    BROADCAST_COMMANDS,
    REPLICA_READ_COMMANDS,
    UNROUTABLE_COMMANDS,
    command_keys,
)
from .slots import SlotPlacement, slot_for_key

# Keyless commands that scan or rewrite the whole keyspace: these cannot
# ride a single core.  (The rest of KEYLESS_COMMANDS -- PING, CONFIG,
# INFO, ... -- are control-plane and ride worker 0.)  TENANT is a
# barrier so the connection's tenant stamp is ordered with respect to
# every command dispatched around it, whichever worker serves them.
GLOBAL_COMMANDS = frozenset(
    BROADCAST_COMMANDS | UNROUTABLE_COMMANDS
    | {b"BGREWRITEAOF", b"BGSAVE", b"SAVE", b"TENANT"})

# Route classification sentinels (slots are plain ints, multi-slot
# commands carry their slot tuple so re-routing survives worker raises).
ROUTE_CONTROL = "control"
ROUTE_BARRIER = "barrier"
BARRIER = -1


def classify(request: Any):
    """Map a parsed request to a routing token: a slot (int), a tuple of
    slots (multi-key), :data:`ROUTE_CONTROL`, or :data:`ROUTE_BARRIER`.
    Computed once at arrival; the worker index is derived at dispatch so
    a live worker raise re-partitions the keyspace automatically."""
    if (not isinstance(request, list) or not request
            or not all(isinstance(a, bytes) for a in request)):
        return ROUTE_CONTROL      # protocol errors are answered inline
    name = request[0].upper()
    if name in GLOBAL_COMMANDS:
        return ROUTE_BARRIER
    keys = command_keys(request)
    if not keys:
        return ROUTE_CONTROL
    slots = {slot_for_key(key) for key in keys}
    if len(slots) == 1:
        return slots.pop()
    return tuple(sorted(slots))


def route_workers(route, num_workers: int,
                  placement: Optional[SlotPlacement] = None,
                  readonly: bool = False) -> Tuple[int, ...]:
    """Resolve a routing token to its candidate worker indices.

    A singleton tuple in the common case; a read on a split hot slot
    returns the slot's whole read fan (any member may serve it, writes
    never do); a cross-worker multi-key command returns
    ``(BARRIER,)``.  Without a placement table this is exactly the
    static ``slot % num_workers`` partition."""
    if route == ROUTE_CONTROL:
        return (0,)
    if route == ROUTE_BARRIER:
        return (BARRIER,)
    if isinstance(route, int):
        if placement is None:
            return (route % num_workers,)
        if readonly:
            fan = placement.split_of_slot(route)
            if fan is not None:
                return fan
        return (placement.worker_of_slot(route),)
    if placement is None:
        workers = {slot % num_workers for slot in route}
    else:
        workers = {placement.worker_of_slot(slot) for slot in route}
    if len(workers) == 1:
        return (workers.pop(),)
    return (BARRIER,)             # cross-worker multi-key command


def worker_for(route, num_workers: int) -> int:
    """Resolve a routing token to a single worker index (or
    :data:`BARRIER`) under the static partition -- the legacy entry
    point; placement-aware callers use :func:`route_workers`."""
    return route_workers(route, num_workers)[0]


class RouteMemo:
    """Memoize :func:`classify` for the hot dispatch path.

    ``classify`` hashes every key (CRC16) and builds a fresh slot set
    per request; under load the same few commands repeat, so a small
    keyed cache -- ``(command, key args) -> (route, readonly)`` --
    skips that work.  Routing tokens are worker-count independent, so
    this cache never needs invalidating; the *resolved worker* cache in
    :class:`WorkerPool` is the one dropped on a worker-count change.
    The readonly flag (is this one of the
    :data:`~repro.cluster.client.REPLICA_READ_COMMANDS`?) rides along
    because split-read routing needs it at the same point."""

    __slots__ = ("limit", "hits", "misses", "_cache")

    def __init__(self, limit: int = 1024) -> None:
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self._cache: Dict[Tuple, Tuple[Any, bool]] = {}

    def classify(self, request: Any) -> Tuple[Any, bool]:
        """``(routing token, readonly)`` for a parsed request; the token
        is exactly what :func:`classify` returns."""
        if (not isinstance(request, list) or not request
                or not all(isinstance(a, bytes) for a in request)):
            return ROUTE_CONTROL, False
        name = request[0].upper()
        if name in GLOBAL_COMMANDS:
            return ROUTE_BARRIER, False
        keys = command_keys(request)
        if not keys:
            return ROUTE_CONTROL, False
        key = (name, tuple(keys))
        entry = self._cache.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        entry = (classify(request), name in REPLICA_READ_COMMANDS)
        if len(self._cache) >= self.limit:
            # Tiny and rare: a wholesale reset beats LRU bookkeeping.
            self._cache.clear()
        self._cache[key] = entry
        return entry


@dataclass(frozen=True)
class PlacementPolicy:
    """Knobs for skew-aware slot placement (the :class:`Rebalancer`).

    Loads are billed service seconds per slot, accumulated O(1) at
    dispatch and decayed by ``slot_load_decay`` every
    ``rebalance_interval`` -- an interval-stepped EWMA, so a slot that
    cools down stops looking hot.  A rebalance arms when the busiest
    core carries more than ``imbalance_threshold`` times the mean core
    load, and applies at the pool's next quiescent instant."""

    slot_load_decay: float = 0.5     # per-interval load EWMA decay
    hot_slots: int = 8               # top-N hot-slot tracker size
    rebalance_interval: float = 5e-4  # seconds between imbalance checks
    imbalance_threshold: float = 1.2  # max/mean core load that arms
    split_ways: int = 0              # read fan of a split slot (0 = all)


@dataclass
class WorkerPoolConfig:
    """Knobs for :class:`WorkerPool`.

    ``dispatch_overhead`` is the fixed per-dispatch cost a worker pays
    before executing its batch (scheduling/wakeup cost on a real core);
    adaptive batching exists to amortize it.  ``placement`` switches the
    static ``slot % K`` partition to the skew-aware placement layer
    (``None``, the default, keeps the static partition byte-for-byte).
    """

    workers: int = 1
    dispatch_overhead: float = 0.0
    adaptive_batch: bool = False
    min_batch: int = 1
    max_batch: int = 32
    batch_low_delay: float = 50e-6   # head delay below which B decays
    ewma_alpha: float = 0.05         # queueing-delay EWMA smoothing
    placement: Optional[PlacementPolicy] = None


@dataclass
class RebalanceEvent:
    """One applied placement change, for demos and assertions."""

    at: float
    moved: int                 # hot slots re-homed off their default
    split_slots: Tuple[int, ...]   # slots with read fans in effect
    detail: str = ""


class Rebalancer:
    """Per-slot load accounting + greedy LPT placement of hot slots.

    :meth:`note` is the O(1) dispatch-path update: it accumulates a
    command's billed seconds under its slot and maintains the top-N
    hot-slot tracker.  :meth:`maybe_arm` runs at most once per
    ``rebalance_interval`` and reports whether core loads have drifted
    past the imbalance threshold; the pool then applies :meth:`apply`
    at its next quiescent instant (the same discipline as a live worker
    raise -- re-homing a slot under a running command would break
    single-writer semantics).

    ``apply`` is greedy longest-processing-time: cold slots keep their
    default ``slot % K`` homes (their summed load is each core's
    residual), then hot slots land heaviest-first on the currently
    least-loaded core.  If the hottest slot alone exceeds a fair core
    share -- the degenerate case no re-homing can fix -- its read-only
    commands are split across the least-loaded cores while writes stay
    pinned."""

    def __init__(self, placement: SlotPlacement,
                 policy: Optional[PlacementPolicy] = None) -> None:
        self.placement = placement
        self.policy = policy or PlacementPolicy()
        self.loads: Dict[int, float] = {}       # slot -> decayed seconds
        self.hot: Dict[int, float] = {}         # top-N subset of loads
        self.events: List[RebalanceEvent] = []
        self._last_check = 0.0

    # -- dispatch-path accounting (O(1)) ------------------------------------

    def note(self, slot: int, billed: float) -> None:
        if billed <= 0.0:
            return
        load = self.loads.get(slot, 0.0) + billed
        self.loads[slot] = load
        hot = self.hot
        if slot in hot or len(hot) < self.policy.hot_slots:
            hot[slot] = load
            return
        coldest = min(hot, key=hot.get)
        if load > hot[coldest]:
            del hot[coldest]
            hot[slot] = load

    # -- the arm/apply cycle ------------------------------------------------

    def maybe_arm(self, now: float) -> bool:
        """At most once per interval: decay the load EWMAs and report
        whether the current placement is imbalanced enough to rebalance."""
        if now - self._last_check < self.policy.rebalance_interval:
            return False
        self._last_check = now
        armed = self.imbalanced()
        decay = self.policy.slot_load_decay
        for slot in self.loads:
            self.loads[slot] *= decay
        for slot in self.hot:
            self.hot[slot] *= decay
        return armed

    def imbalanced(self) -> bool:
        """Is the busiest core past ``imbalance_threshold`` x the mean?
        Split slots count as spreading their load over their read fan."""
        per_core = self.core_loads()
        if per_core is None:
            return False
        mean = sum(per_core) / len(per_core)
        return mean > 0.0 and max(per_core) > \
            self.policy.imbalance_threshold * mean

    def core_loads(self) -> Optional[List[float]]:
        """Tracked load per core under the current placement (``None``
        when there is nothing to balance)."""
        count = self.placement.num_workers
        if count < 2 or not self.loads:
            return None
        per_core = [0.0] * count
        for slot, load in self.loads.items():
            fan = self.placement.split_of_slot(slot)
            if fan is not None:
                share = load / len(fan)
                for worker in fan:
                    per_core[worker] += share
            else:
                per_core[self.placement.worker_of_slot(slot)] += load
        return per_core

    def apply(self, now: float) -> Optional[RebalanceEvent]:
        """Recompute the placement table (call only at quiescence)."""
        count = self.placement.num_workers
        if count < 2 or not self.loads:
            return None
        hot = sorted(self.hot.items(), key=lambda item: (-item[1], item[0]))
        hot_slots = {slot for slot, _ in hot}
        residual = [0.0] * count
        for slot, load in self.loads.items():
            if slot not in hot_slots:
                residual[slot % count] += load
        self.placement.clear()
        moved = 0
        for slot, load in hot:
            target = min(range(count),
                         key=lambda worker: (residual[worker], worker))
            residual[target] += load
            self.placement.assign(slot, target)
            if target != slot % count:
                moved += 1
        split_slots: Tuple[int, ...] = ()
        total = sum(self.loads.values())
        if hot and total > 0.0:
            top_slot, top_load = hot[0]
            if top_load > total / count:
                # No re-homing can dilute a slot heavier than a fair
                # core share: fan its reads out instead.
                ways = self.policy.split_ways or count
                fan = sorted(range(count),
                             key=lambda worker: (residual[worker],
                                                 worker))[:max(2, ways)]
                self.placement.split(top_slot, fan)
                split_slots = (top_slot,)
        event = RebalanceEvent(
            at=now, moved=moved, split_slots=split_slots,
            detail=f"hot={len(hot)} moved={moved} "
                   f"split={list(split_slots)}")
        self.events.append(event)
        return event


class _WorkerState:
    """Per-core bookkeeping: the child clock, the adaptive batch size,
    and per-worker latency attribution histograms."""

    __slots__ = ("clock", "batch", "commands", "dispatches",
                 "queue_delay", "service_time", "aof_seconds")

    def __init__(self, clock: WorkerClock, config: WorkerPoolConfig) -> None:
        self.clock = clock
        self.batch = config.min_batch
        self.commands = 0
        self.dispatches = 0
        self.queue_delay = LatencyHistogram()
        self.service_time = LatencyHistogram()
        self.aof_seconds = 0.0


class _ConnState:
    """Per-connection intake bookkeeping, parallel to ``conn.pending``:
    one ``(arrival time, route, readonly)`` entry per queued request,
    plus the count of dispatched-but-unflushed commands (replies flush
    only when it returns to zero, preserving RESP reply order -- the
    same FIFO head that keeps split-read routes in order, since a later
    command only dispatches after the head popped and flushes only once
    every in-flight command on the connection completed)."""

    __slots__ = ("intake", "outstanding")

    def __init__(self) -> None:
        self.intake: Deque[Tuple[float, Any, bool]] = deque()
        self.outstanding = 0


class WorkerPool:
    """K simulated cores executing one shard's commands deterministically.

    Attach with :meth:`EventLoopMixin.attach_workers
    <repro.kvstore.server.EventLoopMixin.attach_workers>`; the server's
    store must already be metered by this pool's :class:`ShardClock`.
    """

    def __init__(self, shard_clock: ShardClock,
                 config: Optional[WorkerPoolConfig] = None) -> None:
        self.config = config or WorkerPoolConfig()
        if self.config.min_batch < 1 or self.config.max_batch < \
                self.config.min_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        self.shard_clock = shard_clock
        self.workers: List[_WorkerState] = [
            _WorkerState(clock, self.config) for clock in shard_clock.workers]
        self.server = None
        self.scheduler: Optional[SimClock] = None
        self._states: Dict[int, _ConnState] = {}   # id(conn) -> state
        self._tick_handle = None
        self._rr_cursor = 0
        self._resize_pending = 0
        self._shed_pending = 0
        self._ewma: Optional[float] = None
        self._last_aof_writer: Optional[_WorkerState] = None
        self.retired: List[_WorkerState] = []
        self.barrier_commands = 0
        self.resizes: List[Tuple[float, int]] = []  # (time, new count)
        self.route_memo = RouteMemo()
        self.placement: Optional[SlotPlacement] = None
        self.rebalancer: Optional[Rebalancer] = None
        self._rebalance_pending = False
        # route token -> candidate workers; stale whenever the worker
        # count or the placement table changes, so those paths clear it.
        self._worker_cache: Dict[Tuple[Any, bool], Tuple[int, ...]] = {}
        if self.config.placement is not None:
            self.placement = SlotPlacement(self.config.workers)
            self.rebalancer = Rebalancer(self.placement,
                                         self.config.placement)

    # -- wiring -------------------------------------------------------------

    def bind(self, server) -> None:
        if self.server is not None:
            raise RuntimeError("worker pool already bound to a server")
        if server.store.clock is not self.shard_clock:
            raise ValueError(
                "the server's store must be metered by this pool's "
                "ShardClock (otherwise service charges land on the "
                "wrong core)")
        self.server = server
        self.scheduler = server.scheduler
        now = self.scheduler.now()
        for conn in server.connections:
            state = self._state(conn)
            # Requests parsed before the pool attached: treat as arriving
            # now, routed normally.
            while len(state.intake) < len(conn.pending):
                request = conn.pending[len(state.intake)]
                route, readonly = self.route_memo.classify(request)
                state.intake.append((now, route, readonly))

    def _state(self, conn) -> _ConnState:
        state = self._states.get(id(conn))
        if state is None:
            state = self._states[id(conn)] = _ConnState()
        return state

    # -- intake (called by the server) --------------------------------------

    def note_arrivals(self, conn, count: int) -> None:
        """``count`` new requests were just parsed onto ``conn.pending``:
        timestamp them and classify their routes once."""
        now = self.scheduler.now()
        state = self._state(conn)
        start = len(conn.pending) - count
        for index in range(start, len(conn.pending)):
            route, readonly = self.route_memo.classify(conn.pending[index])
            state.intake.append((now, route, readonly))

    # -- scheduling ---------------------------------------------------------

    def wake(self) -> None:
        self._wake_at(self.scheduler.now())

    def _wake_at(self, when: float) -> None:
        handle = self._tick_handle
        if handle is not None and handle.active:
            if handle.when <= when:
                return
            handle.cancel()
        self._tick_handle = self.scheduler.schedule_at(
            when, self._tick, label="worker-tick")

    def _tick(self) -> None:
        self._tick_handle = None
        self._pump()

    # -- dispatch -----------------------------------------------------------

    def _resolve(self, route, readonly: bool) -> Tuple[int, ...]:
        """Candidate workers for a routing token, memoized: the cache is
        dropped whenever the worker count or the placement table changes
        (a cached route must re-partition after a raise or shed)."""
        key = (route, readonly)
        cached = self._worker_cache.get(key)
        if cached is None:
            cached = route_workers(route, len(self.workers),
                                   self.placement, readonly)
            self._worker_cache[key] = cached
        return cached

    def _pump(self) -> None:
        """Dispatch every eligible head-of-queue command to a free worker
        (round-robin over connections), then schedule the next tick at
        the earliest instant a blocked head could run."""
        now = self.scheduler.now()
        if (self._resize_pending or self._shed_pending) \
                and not self._apply_resize(now):
            return                      # re-wakes itself at quiescence
        if self._rebalance_pending and not self._apply_rebalance(now):
            return                      # re-wakes itself at quiescence
        progress = True
        while progress:
            progress = False
            conns = self.server.connections
            for offset in range(len(conns)):
                index = (self._rr_cursor + offset) % len(conns)
                conn = conns[index]
                if not conn.pending:
                    continue
                state = self._state(conn)
                _, route, readonly = state.intake[0]
                candidates = self._resolve(route, readonly)
                target = candidates[0]
                if target == BARRIER:
                    if any(w.clock.now() > now for w in self.workers):
                        continue
                    self._rr_cursor = (index + 1) % len(conns)
                    self._dispatch_barrier(conn, state, now)
                    progress = True
                    break
                if len(candidates) > 1:
                    # A split-read fan: any free member may serve it;
                    # prefer the least-busy core so the fan balances.
                    free = [w for w in candidates
                            if self.workers[w].clock.now() <= now]
                    if not free:
                        continue
                    target = min(
                        free, key=lambda w:
                        (self.workers[w].clock.busy_seconds, w))
                elif self.workers[target].clock.now() > now:
                    continue            # that core is mid-service
                self._rr_cursor = (index + 1) % len(conns)
                self._dispatch(self.workers[target], target, index, now)
                progress = True
                break
        self._schedule_followup(now)

    def _dispatch(self, worker: _WorkerState, target: int,
                  start_index: int, now: float) -> None:
        """Drain up to B head-of-queue commands routed to ``worker``,
        gathered round-robin across connections starting at the chosen
        one, and execute them back-to-back on its core."""
        limit = worker.batch if self.config.adaptive_batch \
            else self.config.min_batch
        conns = self.server.connections
        # (conn, request, arrival, route)
        batch: List[Tuple[Any, Any, float, Any]] = []
        while len(batch) < limit:
            took = False
            for offset in range(len(conns)):
                conn = conns[(start_index + offset) % len(conns)]
                if not conn.pending:
                    continue
                state = self._state(conn)
                head = state.intake[0]
                if target not in self._resolve(head[1], head[2]):
                    continue
                arrival, route, _ = state.intake.popleft()
                batch.append((conn, conn.pending.popleft(), arrival,
                              route))
                state.outstanding += 1
                took = True
                if len(batch) == limit:
                    break
            if not took:
                break
        self._tune_batch(worker, batch, limit, now)
        worker.clock.idle_until(now)
        if self.config.dispatch_overhead:
            worker.clock.advance(self.config.dispatch_overhead)
        aof = getattr(self.server.store, "aof", None)
        rebalancer = self.rebalancer
        for conn, request, arrival, route in batch:
            self._note_delay(worker, now - arrival)
            began = worker.clock.now()
            written = aof.records_written if aof is not None else 0
            slot = route if (rebalancer is not None
                             and isinstance(route, int)) else None
            self.shard_clock.activate(worker.clock, slot=slot)
            try:
                self.server._serve(conn, request)
            finally:
                billed = self.shard_clock.release()
            if slot is not None:
                rebalancer.note(slot, billed)
            if aof is not None and aof.records_written > written:
                self._last_aof_writer = worker
            worker.service_time.record(worker.clock.now() - began)
            worker.commands += 1
            self.server.loop_iterations += 1
        worker.dispatches += 1
        if rebalancer is not None and rebalancer.maybe_arm(now):
            self._rebalance_pending = True
        self.scheduler.schedule_at(
            worker.clock.now(), lambda batch=batch: self._complete(batch),
            label="worker-reply")

    def _dispatch_barrier(self, conn, state: _ConnState, now: float) -> None:
        """Run a whole-keyspace command: every core stops, the command's
        cost is charged to all of them, replies depart at the frontier."""
        arrival, _, _ = state.intake.popleft()
        request = conn.pending.popleft()
        state.outstanding += 1
        for worker in self.workers:
            worker.clock.idle_until(now)
        self._note_delay(self.workers[0], now - arrival)
        began = now
        # No active worker: the shard clock charges all cores.
        self.server._serve(conn, request)
        finish = self.shard_clock.now()
        self.workers[0].service_time.record(finish - began)
        self.workers[0].commands += 1
        self.barrier_commands += 1
        self.server.loop_iterations += 1
        self.scheduler.schedule_at(
            finish,
            lambda: self._complete([(conn, request, arrival,
                                     ROUTE_BARRIER)]),
            label="worker-reply")

    def _tune_batch(self, worker: _WorkerState, batch, limit: int,
                    now: float) -> None:
        if not self.config.adaptive_batch or not batch:
            return
        if len(batch) == limit:
            # Backlog: the worker filled its budget; give it more.
            worker.batch = min(worker.batch * 2, self.config.max_batch)
        elif now - batch[0][2] < self.config.batch_low_delay:
            # Queueing delay is low; shed batch budget one step at a
            # time so a burst does not leave B pinned high forever.
            worker.batch = max(worker.batch - 1, self.config.min_batch)

    def _note_delay(self, worker: _WorkerState, delay: float) -> None:
        worker.queue_delay.record(delay)
        alpha = self.config.ewma_alpha
        self._ewma = delay if self._ewma is None \
            else alpha * delay + (1.0 - alpha) * self._ewma

    def _complete(self, batch) -> None:
        """A batch's service time elapsed: its replies (buffered in
        request order) may now leave the NIC.  A connection flushes only
        once nothing it sent is still in service."""
        for conn, _, _, _ in batch:
            self._state(conn).outstanding -= 1
        for conn in self.server.connections:
            if self._state(conn).outstanding:
                continue
            flush = getattr(conn.transport, "flush", None)
            if flush is not None:
                flush()
        if any(conn.pending for conn in self.server.connections):
            self.wake()

    def _schedule_followup(self, now: float) -> None:
        """Blocked heads remain: tick again at the earliest instant one
        of them could dispatch (its worker's -- or, for a barrier, the
        slowest worker's -- free time)."""
        earliest: Optional[float] = None
        for conn in self.server.connections:
            if not conn.pending:
                continue
            _, route, readonly = self._state(conn).intake[0]
            candidates = self._resolve(route, readonly)
            if candidates[0] == BARRIER:
                when = max(w.clock.now() for w in self.workers)
            else:
                when = min(self.workers[w].clock.now()
                           for w in candidates)
            when = max(when, now)
            if earliest is None or when < earliest:
                earliest = when
        if earliest is not None:
            self._wake_at(earliest)

    # -- background work (cron) attribution ---------------------------------

    def cron_tick(self) -> None:
        """Run the store's cron (AOF fsync, expiry cycles) billing its
        cost to the worker that *caused* it: the core that executed the
        most recent AOF-appending write.  Without this, an everysec
        fsync would stop the world -- every core billed for one core's
        flush -- misattributing durability cost under multi-core shards.
        With one worker this is numerically identical to stop-the-world.
        """
        store = self.server.store
        now = self.scheduler.now()
        store.clock.sleep_until(now)
        writer = self._last_aof_writer
        if writer is None or writer not in self.workers:
            writer = self.workers[0]
        before = writer.clock.busy_seconds
        self.shard_clock.activate(writer.clock)
        try:
            store.tick()
        finally:
            self.shard_clock.release()
        writer.aof_seconds += writer.clock.busy_seconds - before

    # -- live scale-up / scale-down -----------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def add_worker(self) -> int:
        """Request one more core.  The raise applies at the next instant
        no command is mid-service (quiescence), because re-partitioning
        the keyspace under a running command would break single-writer
        semantics; returns the worker count the pool is heading for."""
        self._resize_pending += 1
        if self.scheduler is not None:
            self.wake()
        return len(self.workers) + self._resize_pending - self._shed_pending

    def remove_worker(self) -> int:
        """Request one core shed (a cold shard giving a core back).
        Applies at quiescence like :meth:`add_worker`; the pool never
        drops below one worker.  Returns the count heading for."""
        heading = len(self.workers) + self._resize_pending \
            - self._shed_pending
        if heading <= 1:
            raise ValueError("a shard needs at least one worker")
        self._shed_pending += 1
        if self.scheduler is not None:
            self.wake()
        return heading - 1

    def _apply_resize(self, now: float) -> bool:
        busy = [w.clock.now() for w in self.workers if w.clock.now() > now]
        if busy:
            self._wake_at(max(busy))
            return False
        for _ in range(self._resize_pending):
            clock = self.shard_clock.add_worker(now)
            self.workers.append(_WorkerState(clock, self.config))
        while self._shed_pending and len(self.workers) > 1:
            self._shed_pending -= 1
            retired = self.workers.pop()
            self.shard_clock.remove_worker()
            if self._last_aof_writer is retired:
                self._last_aof_writer = None
            self.retired.append(retired)
        self._resize_pending = 0
        self._shed_pending = 0
        self.resizes.append((now, len(self.workers)))
        # The worker count changed: the default slot partition (and any
        # placement overrides built on top of it) re-partitions, so
        # every cached route resolution is stale.
        if self.placement is not None:
            self.placement.resize(len(self.workers))
        self._worker_cache.clear()
        return True

    # -- skew-aware rebalancing ---------------------------------------------

    def request_rebalance(self) -> bool:
        """Ask for a placement rebalance (the autoscaler's first rung).
        Returns whether one was actually armed: ``False`` without a
        placement layer, with one already pending, or when core loads
        are currently balanced -- so callers can escalate."""
        if self.rebalancer is None or self.num_workers < 2 \
                or self._rebalance_pending:
            return False
        if not self.rebalancer.imbalanced():
            return False
        self._rebalance_pending = True
        if self.scheduler is not None:
            self.wake()
        return True

    def _apply_rebalance(self, now: float) -> bool:
        """Apply a pending rebalance at quiescence (same discipline as a
        live worker raise: never re-home a slot under a running
        command).  Returns False -- after scheduling its own wake-up --
        while any core is still mid-service."""
        busy = [w.clock.now() for w in self.workers if w.clock.now() > now]
        if busy:
            self._wake_at(max(busy))
            return False
        self._rebalance_pending = False
        if self.rebalancer is not None \
                and self.rebalancer.apply(now) is not None:
            self._worker_cache.clear()
        return True

    @property
    def rebalances(self) -> List[RebalanceEvent]:
        return self.rebalancer.events if self.rebalancer is not None \
            else []

    # -- attribution --------------------------------------------------------

    def queueing_delay_ewma(self) -> float:
        """The per-shard queueing-delay signal the autoscaler watches:
        an EWMA of (dispatch time - arrival time) across all commands."""
        return self._ewma if self._ewma is not None else 0.0

    def commands_served(self) -> int:
        return sum(worker.commands
                   for worker in self.workers + self.retired)

    def merged_queue_delay(self) -> LatencyHistogram:
        merged = LatencyHistogram()
        for worker in self.workers + self.retired:
            merged.merge(worker.queue_delay)
        return merged

    def merged_service_time(self) -> LatencyHistogram:
        merged = LatencyHistogram()
        for worker in self.workers + self.retired:
            merged.merge(worker.service_time)
        return merged

    def worker_rows(self) -> List[Dict[str, float]]:
        """Per-core attribution: commands, dispatches, busy seconds,
        attributed AOF/fsync seconds, and mean + p99 queueing delay --
        the imbalance a hot key causes under the slot % K partition is
        visible here.  Live cores only; shed cores keep counting in the
        merged totals."""
        rows = []
        for worker in self.workers:
            delay = worker.queue_delay
            rows.append({
                "worker": worker.clock.index,
                "commands": worker.commands,
                "dispatches": worker.dispatches,
                "busy_seconds": worker.clock.busy_seconds,
                "aof_seconds": worker.aof_seconds,
                "mean_queue_delay": delay.mean() if delay.count else 0.0,
                "p99_queue_delay":
                    delay.percentile(99) if delay.count else 0.0,
            })
        return rows
